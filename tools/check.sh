#!/usr/bin/env bash
# Build + test sweep across sanitizer modes, plus repo hygiene lints.
#
# Usage:
#   tools/check.sh              # plain, address (ASan+UBSan), thread (TSan)
#   tools/check.sh plain        # one mode only
#   tools/check.sh --quick      # lint + plain mode only (no sanitizer rebuilds)
#   tools/check.sh thread 'ThreadPool*:ParallelSweep*'   # mode + ctest -R filter
#   tools/check.sh --fuzz-seconds 60   # add a time-boxed fuzz soak (plain leg)
#   tools/check.sh perf         # throughput gate: bench_simspeed vs
#                               # BENCH_simspeed.json (tools/perf_compare.py)
#   tools/check.sh sampling     # sampled-vs-full differential: the
#                               # SampledDifferential dual-replay on the
#                               # reduced fuzz corpus + paper workloads,
#                               # warming-state equality, CI math
#   tools/check.sh stack        # stack-vs-exact differential under ASan:
#                               # the single-pass stack engine against
#                               # exact replay on presets + fuzz corpus,
#                               # Mattson properties, analytic oracle
#   tools/check.sh telemetry    # observability pipeline smoke: an
#                               # SAC_INTERVAL=ON sweep with --interval
#                               # and --heatmap, then sac_report.py
#                               # check/render/diff over the manifests
#                               # (diff must catch an injected
#                               # regression and survive a zero
#                               # baseline)
#   tools/check.sh checkpoint   # live-point library end to end: the
#                               # Checkpoint differential tests, a
#                               # cold sampled sweep that writes the
#                               # .saclp library, a warm re-sweep that
#                               # must serve every cell from it with
#                               # byte-identical tables, and a
#                               # corrupt-library probe that must
#                               # silently warm and rewrite
#   tools/check.sh parallel     # intra-trace parallelism under TSan:
#                               # the Parallel/Sharded/IntraJobs
#                               # differential tests and the nested-
#                               # submission ThreadPool regressions,
#                               # then a CLI livepoint sweep whose
#                               # --intra-jobs 4 manifests must be
#                               # byte-identical to --intra-jobs 1
#                               # (modulo "timing") and a live sacd
#                               # sweep that must count
#                               # sacd_parallel_windows > 0 in the
#                               # metrics verb
#   tools/check.sh service      # sweep service end to end: the
#                               # Service* tests, then a live sacd
#                               # driven by sacctl — submit/status/
#                               # metrics verbs, streamed manifests
#                               # byte-identical to the CLI bench
#                               # path (modulo wall-clock timing),
#                               # and a SIGTERM mid-request that
#                               # must drain gracefully (client
#                               # still gets its full response)
#
# Each mode builds into build-check-<mode>/ with -DSAC_SANITIZE=<mode>
# (empty for plain) and runs ctest. The script stops at the first
# failing mode.
#
# Fuzzing: every leg builds with -DSAC_AUDIT=ON so the structural
# invariant auditor runs inside the differential fuzz sweep. The
# address (ASan+UBSan) leg additionally replays the fixed-seed fuzz
# budget through examples/fuzz_replay; --fuzz-seconds N appends a
# randomized soak of N seconds to the plain leg.

set -euo pipefail
cd "$(dirname "$0")/.."

# Tracked-artifact lint: build outputs must never be committed. This
# catches re-additions of what .gitignore is meant to keep out.
tracked_artifacts="$(git ls-files | grep -E '^build[^/]*/|\.o$' || true)"
if [[ -n "${tracked_artifacts}" ]]; then
    echo "error: build artifacts are tracked by git:" >&2
    echo "${tracked_artifacts}" | head -20 >&2
    echo "(run: git rm -r --cached <path> and commit)" >&2
    exit 1
fi

fuzz_seconds=0
args=()
while [[ $# -gt 0 ]]; do
    case "$1" in
      --fuzz-seconds)
        [[ $# -ge 2 ]] || { echo "--fuzz-seconds needs a value" >&2; exit 2; }
        fuzz_seconds="$2"
        shift 2 ;;
      --fuzz-seconds=*)
        fuzz_seconds="${1#*=}"
        shift ;;
      *)
        args+=("$1")
        shift ;;
    esac
done
set -- "${args[@]+"${args[@]}"}"

if [[ "${1:-}" == "--quick" ]]; then
    modes=(plain)
    filter="${2:-}"
else
    modes=("${1:-}")
    if [[ -z "${modes[0]}" ]]; then
        modes=(plain address thread)
    fi
    filter="${2:-}"
fi

for mode in "${modes[@]}"; do
    if [[ "$mode" == "perf" ]]; then
        # Perf leg: audit hooks off (throughput build), then compare
        # simulator throughput against the committed baseline and the
        # within-run fast-vs-general ratios. Fails on >15% regression.
        build_dir="build-check-perf"
        echo "=== [perf] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=OFF \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" --target bench_simspeed
        echo "=== [perf] bench_simspeed ==="
        "${build_dir}/bench/bench_simspeed" \
            --benchmark_out="${build_dir}/simspeed.json" \
            --benchmark_out_format=json \
            --emit-json "${build_dir}/manifests"
        echo "=== [perf] compare vs BENCH_simspeed.json ==="
        python3 tools/perf_compare.py check "${build_dir}/simspeed.json"
        echo "=== [perf] OK ==="
        continue
    fi
    if [[ "$mode" == "sampling" ]]; then
        # Sampling leg: prove the statistical sampling engine against
        # ground truth — sampled-vs-full dual replay on the reduced
        # fuzz corpus and the paper workloads, warming-vs-detailed
        # bit-for-bit state equality, and the interval-coverage math.
        build_dir="build-check-sampling"
        echo "=== [sampling] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=ON \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target sac_test_sampling_test
        echo "=== [sampling] ctest (sampled dual-replay) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Sampl|Warming'
        echo "=== [sampling] OK ==="
        continue
    fi
    if [[ "$mode" == "stack" ]]; then
        # Stack leg: prove the single-pass stack-distance engine under
        # ASan+UBSan — bit-identical miss counts against exact replay
        # on the preset lattice and the standard-config subset of the
        # fuzz corpus, Mattson inclusion properties, the closed-form
        # independent-reference oracle, and the one-traversal harness
        # dispatch.
        build_dir="build-check-stack"
        echo "=== [stack] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="address" \
            -DSAC_AUDIT=ON \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target sac_test_stack_engine_test
        echo "=== [stack] ctest (stack-vs-exact differential) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Stack'
        echo "=== [stack] OK ==="
        continue
    fi
    if [[ "$mode" == "telemetry" ]]; then
        # Telemetry leg: drive the full observability pipeline end to
        # end — build with the interval/heat-profile hooks compiled in,
        # run the interval differential tests, sweep Figure 7 with
        # --interval/--heatmap, then validate + render the output with
        # sac_report.py and prove `diff` catches a planted regression.
        build_dir="build-check-telemetry"
        echo "=== [telemetry] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=OFF -DSAC_INTERVAL=ON \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target bench_fig07_traffic_missratio \
            --target sac_test_interval_test \
            --target sac_test_telemetry_test
        echo "=== [telemetry] ctest (interval differential) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Interval|SetProfiler|Histogram|Prometheus|EventTrace'
        echo "=== [telemetry] instrumented sweep ==="
        run_dir="${build_dir}/telemetry-run"
        rm -rf "${run_dir}"
        "${build_dir}/bench/bench_fig07_traffic_missratio" \
            --jobs 2 --emit-json "${run_dir}" \
            --interval 2000 --heatmap > /dev/null
        ls "${run_dir}"/*.intervals.jsonl > /dev/null
        echo "=== [telemetry] sac_report.py check + render ==="
        python3 tools/sac_report.py check "${run_dir}"
        python3 tools/sac_report.py render "${run_dir}" \
            -o "${build_dir}/sac-report.html"
        echo "=== [telemetry] sac_report.py diff (self = clean) ==="
        python3 tools/sac_report.py diff "${run_dir}" "${run_dir}"
        echo "=== [telemetry] sac_report.py diff (planted regression) ==="
        perturbed="${build_dir}/telemetry-run-perturbed"
        rm -rf "${perturbed}"
        cp -r "${run_dir}" "${perturbed}"
        python3 - "${perturbed}" <<'EOF'
import glob, json, sys
path = sorted(glob.glob(sys.argv[1] + "/*.json"))[0]
with open(path) as f:
    doc = json.load(f)
doc["metrics"]["miss_ratio"] = doc["metrics"]["miss_ratio"] * 1.5 + 0.01
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
EOF
        if python3 tools/sac_report.py diff "${run_dir}" "${perturbed}" \
            > /dev/null 2>&1; then
            echo "error: sac_report.py diff missed the planted regression" >&2
            exit 1
        fi
        echo "=== [telemetry] sac_report.py diff (zero baseline) ==="
        # A baseline metric of exactly 0 used to divide to inf and fail
        # every diff; the comparison must fall back to the absolute
        # delta, so a drift inside the threshold still passes.
        zero_a="${build_dir}/telemetry-run-zero-a"
        zero_b="${build_dir}/telemetry-run-zero-b"
        rm -rf "${zero_a}" "${zero_b}"
        cp -r "${run_dir}" "${zero_a}"
        cp -r "${run_dir}" "${zero_b}"
        python3 - "${zero_a}" "${zero_b}" <<'EOF'
import glob, json, sys
for run, value in ((sys.argv[1], 0.0), (sys.argv[2], 0.01)):
    path = sorted(glob.glob(run + "/*.json"))[0]
    with open(path) as f:
        doc = json.load(f)
    doc["metrics"]["miss_ratio"] = value
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
EOF
        zero_out="$(python3 tools/sac_report.py diff \
            "${zero_a}" "${zero_b}")" || {
            echo "error: zero-baseline diff failed (inf regression?)" >&2
            echo "${zero_out}" >&2
            exit 1
        }
        if echo "${zero_out}" | grep -qi 'inf'; then
            echo "error: zero-baseline diff still emits inf:" >&2
            echo "${zero_out}" >&2
            exit 1
        fi
        echo "=== [telemetry] OK ==="
        continue
    fi
    if [[ "$mode" == "checkpoint" ]]; then
        # Checkpoint leg: prove the live-point library end to end —
        # the Checkpoint differential + invalidation tests, then a
        # cold sampled sweep that builds and persists the library, a
        # warm re-sweep that must serve every cell from it (hits > 0,
        # zero misses) with byte-identical figure tables, and a
        # corrupt-library probe that must silently warm and rewrite
        # (stale counted, same tables) instead of restoring garbage.
        build_dir="build-check-checkpoint"
        echo "=== [checkpoint] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=OFF \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target sac_test_checkpoint_test \
            --target sac_test_trace_test \
            --target bench_fig07_traffic_missratio
        echo "=== [checkpoint] ctest (differential + invalidation) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Checkpoint|ArchState|TraceIoSkip'
        lib_dir="${build_dir}/checkpoint-lib"
        rm -rf "${lib_dir}" "${build_dir}"/checkpoint-run-* \
            "${build_dir}"/checkpoint-*.txt
        ck_sweep() {
            "${build_dir}/bench/bench_fig07_traffic_missratio" \
                --jobs 2 --sample --checkpoint-dir "${lib_dir}" \
                --emit-json "${build_dir}/checkpoint-run-$1" \
                > "${build_dir}/checkpoint-$1.txt"
        }
        ck_counters() {
            # Sum the library-outcome counters over one run's sampled
            # manifests and assert the expected outcome mix.
            python3 - "${build_dir}/checkpoint-run-$1" "$2" <<'EOF'
import glob, json, sys
run_dir, expect = sys.argv[1], sys.argv[2]
blocks = []
for path in sorted(glob.glob(run_dir + "/*.json")):
    with open(path) as f:
        doc = json.load(f)
    ck = doc.get("metrics", {}).get("checkpoint")
    if ck is None:
        continue
    if doc.get("engine") != "sampled-livepoint":
        sys.exit(f"{path}: checkpoint block without livepoint engine")
    blocks.append(ck)
if not blocks:
    sys.exit(f"{run_dir}: no sampled-livepoint manifests")
# Every manifest of one run snapshots the same runner-wide counters.
ck = blocks[0]
hits, misses = ck.get("hits", 0), ck.get("misses", 0)
stale = ck.get("stale", 0)
if ck.get("bytes", 0) <= 0:
    sys.exit(f"{run_dir}: checkpoint.bytes not accounted")
if expect == "cold" and not (misses > 0 and hits == 0 and stale == 0):
    sys.exit(f"{run_dir}: cold run expected all misses, got {ck}")
if expect == "warm" and not (hits > 0 and misses == 0 and stale == 0):
    sys.exit(f"{run_dir}: warm run expected all hits, got {ck}")
if expect == "stale" and not (stale >= 1 and misses >= 1):
    sys.exit(f"{run_dir}: stale run expected a rewrite, got {ck}")
print(f"  {expect}: hits={hits} misses={misses} stale={stale}")
EOF
        }
        echo "=== [checkpoint] cold sweep (builds the library) ==="
        ck_sweep cold
        ck_counters cold cold
        echo "=== [checkpoint] warm re-sweep (must hit the library) ==="
        ck_sweep warm
        ck_counters warm warm
        diff "${build_dir}/checkpoint-cold.txt" \
            "${build_dir}/checkpoint-warm.txt"
        echo "=== [checkpoint] corrupt-library probe (must warm) ==="
        victim="$(find "${lib_dir}" -name '*.saclp' | head -1)"
        [[ -n "${victim}" ]] || { echo "no .saclp written" >&2; exit 1; }
        python3 - "${victim}" <<'EOF'
import sys
with open(sys.argv[1], "r+b") as f:
    f.seek(40)
    byte = f.read(1)
    f.seek(40)
    f.write(bytes([byte[0] ^ 0x20]))
EOF
        ck_sweep stale
        ck_counters stale stale
        diff "${build_dir}/checkpoint-cold.txt" \
            "${build_dir}/checkpoint-stale.txt"
        echo "=== [checkpoint] OK ==="
        continue
    fi
    if [[ "$mode" == "parallel" ]]; then
        # Parallel leg: prove the intra-trace parallel engines — the
        # concurrent live-point window replay and the set-sharded
        # stack pass — race-clean under TSan and bit-identical to
        # their serial counterparts end to end. The CLI differential
        # runs the same warm livepoint sweep with --intra-jobs 1 and
        # 4; every manifest must match modulo the wall-clock "timing"
        # object and the parallel run must attach timing.parallel.
        # The live daemon run must serve identical tables and count
        # parallel windows through the metrics verb.
        build_dir="build-check-parallel"
        echo "=== [parallel] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="thread" \
            -DSAC_AUDIT=ON \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target sac_test_parallel_test \
            --target sac_test_thread_pool_test \
            --target sacd --target sacctl \
            --target bench_fig07_traffic_missratio
        echo "=== [parallel] ctest (differentials, TSan) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" \
            -R 'Parallel|Sharded|IntraJobs|ThreadPool|MergeAlgebra'
        par_dir="${build_dir}/parallel-run"
        rm -rf "${par_dir}"
        mkdir -p "${par_dir}"
        echo "=== [parallel] CLI differential: --intra-jobs 4 vs 1 ==="
        par_sweep() {
            "${build_dir}/bench/bench_fig07_traffic_missratio" \
                --jobs 2 --sample --sample-window 256 \
                --sample-stride 1024 --sample-warmup 512 \
                --checkpoint-dir "${par_dir}/lib" \
                --intra-jobs "$1" \
                --emit-json "${par_dir}/run-$2" \
                > "${par_dir}/table-$2.txt"
        }
        par_sweep 1 cold # builds the live-point libraries
        par_sweep 1 serial
        par_sweep 4 parallel
        diff "${par_dir}/table-serial.txt" \
            "${par_dir}/table-parallel.txt"
        python3 - "${par_dir}/run-serial" "${par_dir}/run-parallel" <<'EOF'
import glob, json, os, sys
serial, parallel = sys.argv[1], sys.argv[2]
names = sorted(os.path.basename(p)
               for p in glob.glob(serial + "/*.json"))
if not names:
    sys.exit(f"{serial}: no manifests")
def canon(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("timing", None)
    return json.dumps(doc, sort_keys=True)
counted = 0
for name in names:
    other = os.path.join(parallel, name)
    if not os.path.exists(other):
        sys.exit(f"{name}: missing from the parallel run")
    if canon(os.path.join(serial, name)) != canon(other):
        sys.exit(f"{name}: parallel manifest differs from serial")
    with open(other) as f:
        doc = json.load(f)
    par = doc.get("timing", {}).get("parallel")
    if par is not None:
        if par.get("windows", 0) <= 0:
            sys.exit(f"{name}: timing.parallel without windows")
        counted += 1
if counted == 0:
    sys.exit("no parallel-run manifest carries timing.parallel")
print(f"  {len(names)} manifests identical modulo timing; "
      f"{counted} carry timing.parallel")
EOF
        echo "=== [parallel] live sacd sweep (metrics must count) ==="
        sock="${par_dir}/sacd.sock"
        ctl() { "${build_dir}/examples/sacctl" --socket="${sock}" "$@"; }
        "${build_dir}/examples/sacd" --socket="${sock}" \
            --workers=2 --queue-cap=4 > "${par_dir}/sacd.log" 2>&1 &
        sacd_pid=$!
        trap 'kill "${sacd_pid}" 2>/dev/null || true' EXIT
        for _ in $(seq 1 100); do
            [[ -S "${sock}" ]] && break
            kill -0 "${sacd_pid}" 2>/dev/null \
                || { cat "${par_dir}/sacd.log" >&2; exit 1; }
            sleep 0.1
        done
        [[ -S "${sock}" ]] || { echo "sacd never bound ${sock}" >&2; exit 1; }
        svc_submit() {
            ctl submit --workloads=MV,SpMV --presets=standard,soft \
                --metric=miss-ratio --engine=sampled-livepoint \
                --jobs=2 --intra-jobs="$1" \
                --sample-window=256 --sample-stride=1024 \
                --sample-warmup=512 \
                --checkpoint-dir="${par_dir}/svc-lib" \
                > "${par_dir}/svc-table-$1.txt"
        }
        # The parallel submit must come first: the daemon's shared
        # runner latches finished cells in its in-memory store, so
        # whichever request runs second is served from the store
        # without replaying any windows. Cold library builds route
        # through the parallel replay too, so request #1 is the one
        # that counts sacd_parallel_windows.
        svc_submit 4
        svc_submit 1
        diff "${par_dir}/svc-table-1.txt" "${par_dir}/svc-table-4.txt"
        ctl metrics > "${par_dir}/metrics.prom"
        windows="$(awk '$1 == "sacd_parallel_windows" { print $2 }' \
            "${par_dir}/metrics.prom")"
        [[ -n "${windows}" && "${windows}" -gt 0 ]] || {
            echo "sacd_parallel_windows not counted: '${windows:-absent}'" >&2
            exit 1
        }
        ctl shutdown > /dev/null
        wait "${sacd_pid}" || { echo "sacd exited non-zero" >&2; exit 1; }
        trap - EXIT
        echo "=== [parallel] OK ==="
        continue
    fi
    if [[ "$mode" == "service" ]]; then
        # Service leg: prove the sweep daemon end to end — the
        # Service* unit/integration tests, then a live sacd driven
        # over its Unix socket by sacctl. The streamed manifests must
        # be byte-identical to what the CLI bench path writes with
        # --emit-json (modulo the wall-clock "timing" object), the
        # status/metrics verbs must report the admitted request, and
        # a SIGTERM while a request is in flight must drain
        # gracefully: the client still receives its full response and
        # the daemon exits 0 after "sacd: stopped".
        build_dir="build-check-service"
        echo "=== [service] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=OFF \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target sacd --target sacctl \
            --target sac_test_service_test \
            --target sac_test_sweep_request_test \
            --target bench_fig07_traffic_missratio
        echo "=== [service] ctest (protocol + server + request API) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Service|SweepRequest'
        svc_dir="${build_dir}/service-run"
        rm -rf "${svc_dir}"
        mkdir -p "${svc_dir}"
        sock="${svc_dir}/sacd.sock"
        ctl() { "${build_dir}/examples/sacctl" --socket="${sock}" "$@"; }
        echo "=== [service] CLI reference sweep (--emit-json) ==="
        "${build_dir}/bench/bench_fig07_traffic_missratio" \
            --jobs 2 --emit-json "${svc_dir}/cli-manifests" \
            > "${svc_dir}/cli-table.txt"
        echo "=== [service] start sacd ==="
        "${build_dir}/examples/sacd" --socket="${sock}" \
            --workers=2 --queue-cap=4 > "${svc_dir}/sacd.log" 2>&1 &
        sacd_pid=$!
        trap 'kill "${sacd_pid}" 2>/dev/null || true' EXIT
        for _ in $(seq 1 100); do
            [[ -S "${sock}" ]] && break
            kill -0 "${sacd_pid}" 2>/dev/null \
                || { cat "${svc_dir}/sacd.log" >&2; exit 1; }
            sleep 0.1
        done
        [[ -S "${sock}" ]] || { echo "sacd never bound ${sock}" >&2; exit 1; }
        echo "=== [service] submit: streamed vs CLI manifests ==="
        ctl submit --workloads=MV,SpMV \
            --presets=standard,soft-temporal,soft-spatial,soft \
            --metric=miss-ratio --jobs=2 \
            --out="${svc_dir}/streamed" > "${svc_dir}/svc-table.txt"
        python3 - "${svc_dir}/streamed" "${svc_dir}/cli-manifests" <<'EOF'
import glob, json, os, sys
streamed, reference = sys.argv[1], sys.argv[2]
names = sorted(os.path.basename(p)
               for p in glob.glob(streamed + "/*.json"))
if not names:
    sys.exit(f"{streamed}: no streamed manifests")
def canon(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("timing", None)
    return json.dumps(doc, sort_keys=True)
for name in names:
    ref = os.path.join(reference, name)
    if not os.path.exists(ref):
        sys.exit(f"{name}: streamed manifest has no CLI counterpart")
    if canon(os.path.join(streamed, name)) != canon(ref):
        sys.exit(f"{name}: streamed document differs from CLI path")
print(f"  {len(names)} streamed manifests byte-identical to the "
      f"CLI path (modulo timing)")
EOF
        echo "=== [service] status + metrics verbs ==="
        ctl status > "${svc_dir}/status.json"
        python3 - "${svc_dir}/status.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc.get("requests", doc)
if counters.get("accepted", 0) < 1:
    sys.exit(f"status did not count the accepted request: {doc}")
if counters.get("completed", 0) < 1:
    sys.exit(f"status did not count the completed request: {doc}")
EOF
        ctl metrics > "${svc_dir}/metrics.prom"
        grep -q 'sacd_request_accepted' "${svc_dir}/metrics.prom"
        grep -q 'sacd_request_completed' "${svc_dir}/metrics.prom"
        echo "=== [service] SIGTERM mid-request drains gracefully ==="
        ctl submit --workloads=MDG,BDN,DYF --presets=victim,2way \
            --metric=amat --jobs=2 \
            --out="${svc_dir}/drain" > "${svc_dir}/drain-table.txt" &
        client_pid=$!
        sleep 0.5
        kill -TERM "${sacd_pid}"
        wait "${client_pid}" \
            || { echo "client lost its in-flight sweep" >&2; exit 1; }
        [[ -s "${svc_dir}/drain-table.txt" ]] \
            || { echo "drained client received no table" >&2; exit 1; }
        wait "${sacd_pid}" \
            || { echo "sacd exited non-zero" >&2; exit 1; }
        trap - EXIT
        grep -q 'sacd: stopped' "${svc_dir}/sacd.log"
        [[ ! -S "${sock}" ]] \
            || { echo "socket not unlinked on drain" >&2; exit 1; }
        echo "=== [service] OK ==="
        continue
    fi
    case "$mode" in
      plain)   sanitize="" ;;
      address) sanitize="address" ;;
      thread)  sanitize="thread" ;;
      *) echo "unknown mode '$mode' (plain|address|thread|perf|sampling|stack|telemetry|checkpoint|parallel|service|--quick)" >&2; exit 2 ;;
    esac
    build_dir="build-check-${mode}"
    echo "=== [${mode}] configure + build (${build_dir}) ==="
    # SAC_AUDIT is passed explicitly: stale build-check-* caches would
    # otherwise keep whatever default they were first configured with.
    cmake -B "${build_dir}" -S . -DSAC_SANITIZE="${sanitize}" \
        -DSAC_AUDIT=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "${build_dir}" -j "$(nproc)"
    echo "=== [${mode}] ctest ==="
    ctest_args=(--test-dir "${build_dir}" --output-on-failure -j "$(nproc)")
    if [[ -n "${filter}" ]]; then
        ctest_args+=(-R "${filter}")
    fi
    ctest "${ctest_args[@]}"
    if [[ "$mode" == "address" ]]; then
        echo "=== [${mode}] fixed-seed fuzz budget ==="
        "${build_dir}/examples/fuzz_replay" --cases 5000
    fi
    if [[ "$mode" == "plain" && "${fuzz_seconds}" -gt 0 ]]; then
        echo "=== [${mode}] fuzz soak (${fuzz_seconds}s) ==="
        "${build_dir}/examples/fuzz_replay" --seconds "${fuzz_seconds}"
    fi
    echo "=== [${mode}] OK ==="
done
