#!/usr/bin/env bash
# Build + test sweep across sanitizer modes, plus repo hygiene lints.
#
# Usage:
#   tools/check.sh              # plain, address (ASan+UBSan), thread (TSan)
#   tools/check.sh plain        # one mode only
#   tools/check.sh --quick      # lint + plain mode only (no sanitizer rebuilds)
#   tools/check.sh thread 'ThreadPool*:ParallelSweep*'   # mode + ctest -R filter
#
# Each mode builds into build-check-<mode>/ with -DSAC_SANITIZE=<mode>
# (empty for plain) and runs ctest. The script stops at the first
# failing mode.

set -euo pipefail
cd "$(dirname "$0")/.."

# Tracked-artifact lint: build outputs must never be committed. This
# catches re-additions of what .gitignore is meant to keep out.
tracked_artifacts="$(git ls-files | grep -E '^build[^/]*/|\.o$' || true)"
if [[ -n "${tracked_artifacts}" ]]; then
    echo "error: build artifacts are tracked by git:" >&2
    echo "${tracked_artifacts}" | head -20 >&2
    echo "(run: git rm -r --cached <path> and commit)" >&2
    exit 1
fi

if [[ "${1:-}" == "--quick" ]]; then
    modes=(plain)
    filter="${2:-}"
else
    modes=("${1:-}")
    if [[ -z "${modes[0]}" ]]; then
        modes=(plain address thread)
    fi
    filter="${2:-}"
fi

for mode in "${modes[@]}"; do
    case "$mode" in
      plain)   sanitize="" ;;
      address) sanitize="address" ;;
      thread)  sanitize="thread" ;;
      *) echo "unknown mode '$mode' (plain|address|thread|--quick)" >&2; exit 2 ;;
    esac
    build_dir="build-check-${mode}"
    echo "=== [${mode}] configure + build (${build_dir}) ==="
    cmake -B "${build_dir}" -S . -DSAC_SANITIZE="${sanitize}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "${build_dir}" -j "$(nproc)"
    echo "=== [${mode}] ctest ==="
    ctest_args=(--test-dir "${build_dir}" --output-on-failure -j "$(nproc)")
    if [[ -n "${filter}" ]]; then
        ctest_args+=(-R "${filter}")
    fi
    ctest "${ctest_args[@]}"
    echo "=== [${mode}] OK ==="
done
