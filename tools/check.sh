#!/usr/bin/env bash
# Build + test sweep across sanitizer modes, plus repo hygiene lints.
#
# Usage:
#   tools/check.sh              # plain, address (ASan+UBSan), thread (TSan)
#   tools/check.sh plain        # one mode only
#   tools/check.sh --quick      # lint + plain mode only (no sanitizer rebuilds)
#   tools/check.sh thread 'ThreadPool*:ParallelSweep*'   # mode + ctest -R filter
#   tools/check.sh --fuzz-seconds 60   # add a time-boxed fuzz soak (plain leg)
#   tools/check.sh perf         # throughput gate: bench_simspeed vs
#                               # BENCH_simspeed.json (tools/perf_compare.py)
#   tools/check.sh sampling     # sampled-vs-full differential: the
#                               # SampledDifferential dual-replay on the
#                               # reduced fuzz corpus + paper workloads,
#                               # warming-state equality, CI math
#   tools/check.sh stack        # stack-vs-exact differential under ASan:
#                               # the single-pass stack engine against
#                               # exact replay on presets + fuzz corpus,
#                               # Mattson properties, analytic oracle
#   tools/check.sh telemetry    # observability pipeline smoke: an
#                               # SAC_INTERVAL=ON sweep with --interval
#                               # and --heatmap, then sac_report.py
#                               # check/render/diff over the manifests
#                               # (diff must catch an injected
#                               # regression)
#
# Each mode builds into build-check-<mode>/ with -DSAC_SANITIZE=<mode>
# (empty for plain) and runs ctest. The script stops at the first
# failing mode.
#
# Fuzzing: every leg builds with -DSAC_AUDIT=ON so the structural
# invariant auditor runs inside the differential fuzz sweep. The
# address (ASan+UBSan) leg additionally replays the fixed-seed fuzz
# budget through examples/fuzz_replay; --fuzz-seconds N appends a
# randomized soak of N seconds to the plain leg.

set -euo pipefail
cd "$(dirname "$0")/.."

# Tracked-artifact lint: build outputs must never be committed. This
# catches re-additions of what .gitignore is meant to keep out.
tracked_artifacts="$(git ls-files | grep -E '^build[^/]*/|\.o$' || true)"
if [[ -n "${tracked_artifacts}" ]]; then
    echo "error: build artifacts are tracked by git:" >&2
    echo "${tracked_artifacts}" | head -20 >&2
    echo "(run: git rm -r --cached <path> and commit)" >&2
    exit 1
fi

fuzz_seconds=0
args=()
while [[ $# -gt 0 ]]; do
    case "$1" in
      --fuzz-seconds)
        [[ $# -ge 2 ]] || { echo "--fuzz-seconds needs a value" >&2; exit 2; }
        fuzz_seconds="$2"
        shift 2 ;;
      --fuzz-seconds=*)
        fuzz_seconds="${1#*=}"
        shift ;;
      *)
        args+=("$1")
        shift ;;
    esac
done
set -- "${args[@]+"${args[@]}"}"

if [[ "${1:-}" == "--quick" ]]; then
    modes=(plain)
    filter="${2:-}"
else
    modes=("${1:-}")
    if [[ -z "${modes[0]}" ]]; then
        modes=(plain address thread)
    fi
    filter="${2:-}"
fi

for mode in "${modes[@]}"; do
    if [[ "$mode" == "perf" ]]; then
        # Perf leg: audit hooks off (throughput build), then compare
        # simulator throughput against the committed baseline and the
        # within-run fast-vs-general ratios. Fails on >15% regression.
        build_dir="build-check-perf"
        echo "=== [perf] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=OFF \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" --target bench_simspeed
        echo "=== [perf] bench_simspeed ==="
        "${build_dir}/bench/bench_simspeed" \
            --benchmark_out="${build_dir}/simspeed.json" \
            --benchmark_out_format=json \
            --emit-json "${build_dir}/manifests"
        echo "=== [perf] compare vs BENCH_simspeed.json ==="
        python3 tools/perf_compare.py check "${build_dir}/simspeed.json"
        echo "=== [perf] OK ==="
        continue
    fi
    if [[ "$mode" == "sampling" ]]; then
        # Sampling leg: prove the statistical sampling engine against
        # ground truth — sampled-vs-full dual replay on the reduced
        # fuzz corpus and the paper workloads, warming-vs-detailed
        # bit-for-bit state equality, and the interval-coverage math.
        build_dir="build-check-sampling"
        echo "=== [sampling] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=ON \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target sac_test_sampling_test
        echo "=== [sampling] ctest (sampled dual-replay) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Sampl|Warming'
        echo "=== [sampling] OK ==="
        continue
    fi
    if [[ "$mode" == "stack" ]]; then
        # Stack leg: prove the single-pass stack-distance engine under
        # ASan+UBSan — bit-identical miss counts against exact replay
        # on the preset lattice and the standard-config subset of the
        # fuzz corpus, Mattson inclusion properties, the closed-form
        # independent-reference oracle, and the one-traversal harness
        # dispatch.
        build_dir="build-check-stack"
        echo "=== [stack] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="address" \
            -DSAC_AUDIT=ON \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target sac_test_stack_engine_test
        echo "=== [stack] ctest (stack-vs-exact differential) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Stack'
        echo "=== [stack] OK ==="
        continue
    fi
    if [[ "$mode" == "telemetry" ]]; then
        # Telemetry leg: drive the full observability pipeline end to
        # end — build with the interval/heat-profile hooks compiled in,
        # run the interval differential tests, sweep Figure 7 with
        # --interval/--heatmap, then validate + render the output with
        # sac_report.py and prove `diff` catches a planted regression.
        build_dir="build-check-telemetry"
        echo "=== [telemetry] configure + build (${build_dir}) ==="
        cmake -B "${build_dir}" -S . -DSAC_SANITIZE="" \
            -DSAC_AUDIT=OFF -DSAC_INTERVAL=ON \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
        cmake --build "${build_dir}" -j "$(nproc)" \
            --target bench_fig07_traffic_missratio \
            --target sac_test_interval_test \
            --target sac_test_telemetry_test
        echo "=== [telemetry] ctest (interval differential) ==="
        ctest --test-dir "${build_dir}" --output-on-failure \
            -j "$(nproc)" -R 'Interval|SetProfiler|Histogram|Prometheus|EventTrace'
        echo "=== [telemetry] instrumented sweep ==="
        run_dir="${build_dir}/telemetry-run"
        rm -rf "${run_dir}"
        "${build_dir}/bench/bench_fig07_traffic_missratio" \
            --jobs 2 --emit-json "${run_dir}" \
            --interval 2000 --heatmap > /dev/null
        ls "${run_dir}"/*.intervals.jsonl > /dev/null
        echo "=== [telemetry] sac_report.py check + render ==="
        python3 tools/sac_report.py check "${run_dir}"
        python3 tools/sac_report.py render "${run_dir}" \
            -o "${build_dir}/sac-report.html"
        echo "=== [telemetry] sac_report.py diff (self = clean) ==="
        python3 tools/sac_report.py diff "${run_dir}" "${run_dir}"
        echo "=== [telemetry] sac_report.py diff (planted regression) ==="
        perturbed="${build_dir}/telemetry-run-perturbed"
        rm -rf "${perturbed}"
        cp -r "${run_dir}" "${perturbed}"
        python3 - "${perturbed}" <<'EOF'
import glob, json, sys
path = sorted(glob.glob(sys.argv[1] + "/*.json"))[0]
with open(path) as f:
    doc = json.load(f)
doc["metrics"]["miss_ratio"] = doc["metrics"]["miss_ratio"] * 1.5 + 0.01
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
EOF
        if python3 tools/sac_report.py diff "${run_dir}" "${perturbed}" \
            > /dev/null 2>&1; then
            echo "error: sac_report.py diff missed the planted regression" >&2
            exit 1
        fi
        echo "=== [telemetry] OK ==="
        continue
    fi
    case "$mode" in
      plain)   sanitize="" ;;
      address) sanitize="address" ;;
      thread)  sanitize="thread" ;;
      *) echo "unknown mode '$mode' (plain|address|thread|perf|sampling|stack|telemetry|--quick)" >&2; exit 2 ;;
    esac
    build_dir="build-check-${mode}"
    echo "=== [${mode}] configure + build (${build_dir}) ==="
    # SAC_AUDIT is passed explicitly: stale build-check-* caches would
    # otherwise keep whatever default they were first configured with.
    cmake -B "${build_dir}" -S . -DSAC_SANITIZE="${sanitize}" \
        -DSAC_AUDIT=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "${build_dir}" -j "$(nproc)"
    echo "=== [${mode}] ctest ==="
    ctest_args=(--test-dir "${build_dir}" --output-on-failure -j "$(nproc)")
    if [[ -n "${filter}" ]]; then
        ctest_args+=(-R "${filter}")
    fi
    ctest "${ctest_args[@]}"
    if [[ "$mode" == "address" ]]; then
        echo "=== [${mode}] fixed-seed fuzz budget ==="
        "${build_dir}/examples/fuzz_replay" --cases 5000
    fi
    if [[ "$mode" == "plain" && "${fuzz_seconds}" -gt 0 ]]; then
        echo "=== [${mode}] fuzz soak (${fuzz_seconds}s) ==="
        "${build_dir}/examples/fuzz_replay" --seconds "${fuzz_seconds}"
    fi
    echo "=== [${mode}] OK ==="
done
