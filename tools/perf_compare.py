#!/usr/bin/env python3
"""Throughput gate for bench_simspeed (stdlib only).

Reads a google-benchmark JSON report (``--benchmark_out`` format) and
checks it two ways:

1. Baseline drift: every benchmark present in both the report and the
   committed baseline (BENCH_simspeed.json) must keep at least
   ``1 - tolerance`` of the baseline's items_per_second (default
   tolerance 15%). The baseline is host-dependent; refresh it with
   ``update`` when the reference machine changes.

   Benchmarks present on only one side (baseline or report) warn
   instead of failing, so filtered runs and freshly added benchmarks
   do not break the gate; only zero overlap is fatal.

2. Within-run ratios (host-independent): each feature-specialized
   access path is timed against the same configuration forced onto the
   fully-general path in the same process, and specialization must
   never lose meaningfully; the functional-warming and sampled-sweep
   pairs additionally assert their speedup floors (2x and 5x). Ratios
   are computed from the report alone, so they hold on any host.
   Floors marked parallel (multi-worker vs. serial) are skipped when
   the report was taken on a single-CPU host.

Usage:
  tools/perf_compare.py check  <report.json> [--baseline FILE]
                               [--tolerance F] [--ratio-slack F]
                               [--emit-json FILE]
  tools/perf_compare.py update <report.json> [--baseline FILE]

``--emit-json FILE`` additionally writes a machine-readable
``sac-perf-summary-v1`` document (per-benchmark ratio and drift,
pass/fail) so CI and tools/sac_report.py can chart the perf
trajectory instead of scraping stdout.

Short runs (``--benchmark_min_time=0.1``, as in the ``perf-smoke``
target) are noisy; pass a larger ``--tolerance`` and a nonzero
``--ratio-slack`` (subtracted from every ratio floor) there, and keep
the defaults for the full-length ``tools/check.sh perf`` leg.

The baseline path defaults to BENCH_simspeed.json next to the repo
root (this script's parent directory); the SAC_PERF_BASELINE
environment variable overrides it.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.15

# (fast benchmark, slow benchmark, min ratio, parallel). The first
# three floors are no-regression guards with noise margin, not speedup
# claims: the soft lattice point keeps nearly every feature check, so
# its ratio hovers around 1.0; standard/prefetch run well above it.
# The warming and sampled floors ARE speedup claims (the acceptance
# criteria of the sampling engine): functional warming must run >=2x
# the detailed path, and the sampled sweep >=5x the full-detail sweep.
# Likewise the stack floor: ONE Mattson stack-distance traversal must
# answer the 8-cell standard family >=4x faster than eight exact
# replays (and, unlike sampling, with bit-identical miss counts).
# Floors marked parallel compare multi-worker against serial runs and
# are skipped when the report's host has a single CPU, where extra
# workers only add contention.
RATIO_FLOORS = [
    ("BM_SimulateStandard", "BM_SimulateStandardGeneral", 0.85, False),
    ("BM_SimulateSoft", "BM_SimulateSoftGeneral", 0.85, False),
    ("BM_SimulateSoftPrefetch", "BM_SimulateSoftPrefetchGeneral", 0.85,
     False),
    ("BM_SimulateSoftWarming", "BM_SimulateSoft", 2.0, False),
    # The perf leg builds with SAC_INTERVAL=OFF, so the interval/
    # heatmap hook sites must compile out entirely: attaching the
    # recorder may cost at most 1% against the unhooked run (the
    # acceptance gate of the time-resolved telemetry layer).
    ("BM_SimulateSoftInterval", "BM_SimulateSoft", 0.99, False),
    ("BM_SweepSampled", "BM_SweepFullDetail", 5.0, False),
    # The live-point floor: a sampled re-sweep served from a warm
    # checkpoint library restores each window's architectural state
    # instead of functionally warming it, so it must run >=5x the cold
    # sampled sweep at the same deep-warmup geometry (the acceptance
    # gate of the checkpoint library; the Checkpoint tests prove the
    # restored runs are bit-identical in RunStats).
    ("BM_SweepSampledCheckpointed", "BM_SweepSampled", 5.0, False),
    ("BM_SweepStackSinglePass", "BM_SweepPerConfigReplay", 4.0, False),
    ("BM_StreamedSweep/2/real_time", "BM_StreamedSweep/1/real_time",
     1.0, True),
    # Intra-trace parallelism floors (both bit-identical to their
    # serial counterparts by the Parallel/Sharded differential tests):
    # checkpointed window replay fanned out over 8 workers must beat
    # one worker >=3x, and the set-sharded Mattson pass at 8 shards
    # must beat the single-stack pass >=2x (each shard re-reads the
    # whole stream, so its scaling is bounded by the filter's cost).
    ("BM_SweepSampledCheckpointedParallel/8/real_time",
     "BM_SweepSampledCheckpointedParallel/1/real_time", 3.0, True),
    ("BM_SweepStackSharded/8/real_time",
     "BM_SweepStackSharded/1/real_time", 2.0, True),
]


def default_baseline():
    env = os.environ.get("SAC_PERF_BASELINE")
    if env:
        return env
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(root, "BENCH_simspeed.json")


def load_report(path):
    """items_per_second per benchmark, aggregates skipped."""
    with open(path) as f:
        report = json.load(f)
    out = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        ips = b.get("items_per_second")
        if ips:
            out[b["name"]] = float(ips)
    if not out:
        sys.exit(f"error: no items_per_second entries in {path}")
    return out, report.get("context", {})


def cmd_update(args):
    current, context = load_report(args.report)
    baseline = {
        "_meta": {
            "source": "tools/perf_compare.py update",
            "host_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("library_build_type"),
        },
        "items_per_second": {
            name: round(ips, 1) for name, ips in sorted(current.items())
        },
    }
    with open(args.baseline, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"wrote {len(current)} baseline entries to {args.baseline}")


def cmd_check(args):
    current, context = load_report(args.report)
    failures = []
    summary_benchmarks = []
    summary_ratios = []

    # 1. Drift against the committed baseline. Coverage mismatches in
    # either direction warn instead of fail: a renamed or added
    # benchmark should prompt a baseline refresh, not break the gate
    # for an unrelated change (only zero overlap is fatal).
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)["items_per_second"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read baseline {args.baseline}: {e}")
    compared = 0
    for name, base_ips in sorted(baseline.items()):
        ips = current.get(name)
        if ips is None:
            print(f"  warning: {name} is in the baseline but not in "
                  f"this report (filtered run, or a stale baseline — "
                  f"refresh with 'update')")
            continue
        compared += 1
        floor = base_ips * (1.0 - args.tolerance)
        verdict = "ok" if ips >= floor else "REGRESSED"
        summary_benchmarks.append({
            "name": name,
            "items_per_second": ips,
            "baseline_items_per_second": base_ips,
            "drift": ips / base_ips - 1.0,
            "floor": floor,
            "ok": ips >= floor,
        })
        print(f"  {verdict:9s} {name}: {ips / 1e6:.2f} M/s "
              f"(baseline {base_ips / 1e6:.2f}, floor {floor / 1e6:.2f})")
        if ips < floor:
            failures.append(
                f"{name} regressed: {ips / 1e6:.2f} M/s < "
                f"{floor / 1e6:.2f} M/s "
                f"({100 * args.tolerance:.0f}% below baseline)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  warning: {name} is in this report but not in the "
              f"baseline (new benchmark? refresh with 'update')")
    if compared == 0:
        failures.append("no benchmark overlaps the baseline")

    # 2. Host-independent within-run ratios.
    host_cpus = context.get("num_cpus")
    for fast, general, floor, parallel in RATIO_FLOORS:
        if fast not in current or general not in current:
            print(f"  (skip) ratio {fast}/{general}: missing entries")
            summary_ratios.append({"fast": fast, "slow": general,
                                   "skipped": "missing entries"})
            continue
        if parallel and host_cpus == 1:
            print(f"  (skip) ratio {fast}/{general}: single-CPU host, "
                  f"parallel floor not meaningful")
            summary_ratios.append({"fast": fast, "slow": general,
                                   "skipped": "single-CPU host"})
            continue
        floor = max(0.0, floor - args.ratio_slack)
        ratio = current[fast] / current[general]
        verdict = "ok" if ratio >= floor else "REGRESSED"
        summary_ratios.append({"fast": fast, "slow": general,
                               "ratio": ratio, "floor": floor,
                               "ok": ratio >= floor})
        print(f"  {verdict:9s} {fast}/{general} = {ratio:.2f}x "
              f"(floor {floor:.2f}x)")
        if ratio < floor:
            failures.append(
                f"within-run ratio below floor: "
                f"{fast}/{general} = {ratio:.2f}x < {floor:.2f}x")

    if args.emit_json:
        summary = {
            "schema": "sac-perf-summary-v1",
            "report": args.report,
            "baseline": args.baseline,
            "tolerance": args.tolerance,
            "ratio_slack": args.ratio_slack,
            "host_cpus": host_cpus,
            "benchmarks": summary_benchmarks,
            "ratios": summary_ratios,
            "pass": not failures,
            "failures": failures,
        }
        with open(args.emit_json, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
        print(f"  wrote machine-readable summary to {args.emit_json}")

    if failures:
        print("\nperf check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("\nperf check passed")


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)
    for name, fn in (("check", cmd_check), ("update", cmd_update)):
        s = sub.add_parser(name)
        s.add_argument("report", help="google-benchmark JSON report")
        s.add_argument("--baseline", default=default_baseline())
        if name == "check":
            s.add_argument("--tolerance", type=float,
                           default=DEFAULT_TOLERANCE)
            s.add_argument("--ratio-slack", type=float, default=0.0,
                           help="subtract from every ratio floor "
                                "(for short, noisy smoke runs)")
            s.add_argument("--emit-json", metavar="FILE",
                           help="write a machine-readable "
                                "sac-perf-summary-v1 JSON summary "
                                "(per-benchmark drift, ratios, "
                                "pass/fail) for CI and sac_report.py")
        s.set_defaults(fn=fn)
    args = p.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
