#!/usr/bin/env python3
"""Render and diff sac telemetry output (stdlib only).

The observability pipeline's exporter end (DESIGN.md §13): the bench
binaries write one ``sac-run-manifest-v1`` JSON document per sweep
cell under ``--emit-json DIR``, plus — under ``--interval N`` /
``--heatmap`` — a sibling ``<stem>.intervals.jsonl`` time series
(``sac-intervals-v1``) and an embedded per-set heat profile
(``sac-set-profile-v1``). This tool turns those directories into a
self-contained HTML report with time-series and heatmap charts, or
diffs two run directories for metric regressions.

Subcommands:
  check  DIR...                  validate schemas and interval sums
  render DIR... [-o FILE]        validate, then write an HTML report
                 [--perf FILE]   fold in perf trajectories: either a
                                 sac-perf-summary-v1 summary
                                 (tools/perf_compare.py --emit-json)
                                 or a BENCH_simspeed.json baseline
  diff   A B [--threshold F]     flag cells whose higher-is-worse
                                 metrics (amat, miss_ratio,
                                 words_per_access) regressed by more
                                 than F relative (default 0.02);
                                 exits 1 when any did

``check`` and ``render`` exit nonzero on any schema violation, on
interval deltas that do not sum to the manifest counters (they must
match exactly — the recorder telescopes uint64 counters), and on
malformed heat profiles. tools/check.sh's ``telemetry`` leg drives a
smoke sweep through all three subcommands.
"""

import argparse
import glob
import html
import json
import os
import sys

MANIFEST_SCHEMA = "sac-run-manifest-v1"
INTERVALS_SCHEMA = "sac-intervals-v1"
PROFILE_SCHEMA = "sac-set-profile-v1"
PERF_SUMMARY_SCHEMA = "sac-perf-summary-v1"

# Manifest metrics where a larger value is a worse result; diff mode
# flags relative increases in these.
HIGHER_IS_WORSE = ("amat", "miss_ratio", "words_per_access")


def fail(msg):
    sys.exit(f"error: {msg}")


def flatten(d, prefix=""):
    """Flatten the nested counters object to dotted-path leaves."""
    out = {}
    for key, value in d.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(flatten(value, path))
        else:
            out[path] = value
    return out


# ---------------------------------------------------------------------------
# Loading + validation


def load_manifest(path, errors):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable manifest: {e}")
        return None
    if doc.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, "
                      f"expected {MANIFEST_SCHEMA!r}")
        return None
    for key in ("workload", "config_name", "cache_key", "counters",
                "metrics"):
        if key not in doc:
            errors.append(f"{path}: missing required key {key!r}")
            return None
    doc["_path"] = path
    if "profile" in doc:
        validate_profile(path, doc["profile"], errors)
    return doc


def validate_profile(path, profile, errors):
    if profile.get("schema") != PROFILE_SCHEMA:
        errors.append(f"{path}: profile schema is "
                      f"{profile.get('schema')!r}, expected "
                      f"{PROFILE_SCHEMA!r}")
        return
    sets = profile.get("sets")
    if not isinstance(sets, int) or sets < 1:
        errors.append(f"{path}: profile.sets must be a positive int")
        return
    for series in ("accesses", "misses", "evictions", "conflicts"):
        values = profile.get(series)
        if not isinstance(values, list) or len(values) != sets:
            errors.append(f"{path}: profile.{series} must list "
                          f"{sets} per-set counts")
            return
        declared = profile.get("total", {}).get(series)
        if declared is not None and declared != sum(values):
            errors.append(f"{path}: profile total.{series} = "
                          f"{declared} != sum {sum(values)}")


def intervals_path_of(manifest_path):
    stem, ext = os.path.splitext(manifest_path)
    return stem + ".intervals.jsonl"


def load_intervals(path, errors):
    """Parse one intervals JSONL file: (header, [snapshot lines])."""
    try:
        with open(path) as f:
            lines = [json.loads(line) for line in f if line.strip()]
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable interval series: {e}")
        return None
    if not lines:
        errors.append(f"{path}: empty interval series")
        return None
    header, snaps = lines[0], lines[1:]
    if header.get("schema") != INTERVALS_SCHEMA:
        errors.append(f"{path}: header schema is "
                      f"{header.get('schema')!r}, expected "
                      f"{INTERVALS_SCHEMA!r}")
        return None
    for i, snap in enumerate(snaps):
        if "delta" not in snap or "cum" not in snap:
            errors.append(f"{path}: line {i + 2} lacks delta/cum")
            return None
    return header, snaps


def check_interval_sums(manifest, header, snaps, errors):
    """Interval deltas must sum exactly to the manifest counters."""
    path = intervals_path_of(manifest["_path"])
    counters = flatten(manifest["counters"])
    sums = {}
    for snap in snaps:
        for name, delta in snap["delta"].items():
            sums[name] = sums.get(name, 0) + delta
    for name, total in sums.items():
        if name == "time.access_cycles":
            # The one double-valued series: compare against the
            # manifest's derived metric with float tolerance.
            expect = manifest["metrics"].get("total_access_cycles")
            if expect is not None and abs(total - expect) > max(
                    1e-6 * max(abs(expect), 1.0), 1e-9):
                errors.append(f"{path}: {name} sums to {total}, "
                              f"manifest says {expect}")
            continue
        if name not in counters:
            errors.append(f"{path}: delta series {name!r} has no "
                          f"manifest counter")
            continue
        if total != counters[name]:
            errors.append(f"{path}: {name} deltas sum to {total}, "
                          f"manifest counter is {counters[name]}")
    if snaps:
        cum = snaps[-1]["cum"]
        want = counters.get("access.total")
        if want is not None and cum.get("accesses") != want:
            errors.append(f"{path}: final cum.accesses = "
                          f"{cum.get('accesses')} != access.total "
                          f"{want}")


def load_run_dir(directory, errors):
    """All manifests in @p directory with their interval series."""
    if not os.path.isdir(directory):
        fail(f"{directory} is not a directory")
    cells = []
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        manifest = load_manifest(path, errors)
        if manifest is None:
            continue
        ipath = intervals_path_of(path)
        intervals = None
        if os.path.exists(ipath):
            intervals = load_intervals(ipath, errors)
            if intervals is not None:
                check_interval_sums(manifest, *intervals, errors)
        cells.append((manifest, intervals))
    if not cells:
        errors.append(f"{directory}: no run manifests (*.json)")
    return cells


def load_perf_file(path, errors):
    """A --perf file: perf summary or google-benchmark baseline."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable perf file: {e}")
        return None
    if doc.get("schema") == PERF_SUMMARY_SCHEMA:
        return ("summary", path, doc)
    if "items_per_second" in doc:
        return ("baseline", path, doc)
    errors.append(f"{path}: neither a {PERF_SUMMARY_SCHEMA} summary "
                  f"nor a BENCH_simspeed.json baseline")
    return None


# ---------------------------------------------------------------------------
# HTML rendering (self-contained: inline CSS + SVG, no external refs)

CSS = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1, h2, h3 { color: #123; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em;
         text-align: right; font-size: 90%; }
th { background: #eef; }
td.name, th.name { text-align: left; }
.cell { margin-bottom: 2.2em; border-bottom: 1px solid #ddd; }
.ok { color: #070; } .bad { color: #b00; font-weight: bold; }
svg { background: #fafaff; border: 1px solid #ccd; }
.small { font-size: 80%; color: #666; }
"""


def svg_line_chart(points, width=640, height=160, label=""):
    """One polyline over (x, y) @p points, axes implied."""
    if len(points) < 2:
        return "<p class=small>(fewer than two intervals)</p>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    pad = 6
    sx = lambda x: pad + (x - x0) / (x1 - x0) * (width - 2 * pad)
    sy = lambda y: height - pad - (y - y0) / (y1 - y0) * (height -
                                                          2 * pad)
    pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    return (f"<svg width={width} height={height} "
            f"viewBox='0 0 {width} {height}'>"
            f"<polyline fill='none' stroke='#36c' stroke-width='1.5' "
            f"points='{pts}'/>"
            f"<text x='{pad + 2}' y='14' font-size='11'>"
            f"{html.escape(label)} (min {y0:.4g}, max {y1:.4g})"
            f"</text></svg>")


def svg_heatmap(values, width=640, label=""):
    """Per-set counts as a single-row heat strip (log-ish shading)."""
    n = len(values)
    if n == 0:
        return ""
    peak = max(values) or 1
    cell_w = max(1.0, width / n)
    height = 48
    rects = []
    for i, v in enumerate(values):
        # Brighter red = hotter set.
        heat = (v / peak) ** 0.5
        r = 255
        gb = int(235 * (1.0 - heat))
        rects.append(
            f"<rect x='{i * cell_w:.2f}' y='14' width='{cell_w:.2f}' "
            f"height='{height - 16}' fill='rgb({r},{gb},{gb})'>"
            f"<title>set {i}: {v}</title></rect>")
    return (f"<svg width={int(cell_w * n)} height={height} "
            f"viewBox='0 0 {int(cell_w * n)} {height}'>"
            f"<text x='2' y='11' font-size='11'>"
            f"{html.escape(label)} ({n} sets, peak {peak})</text>"
            f"{''.join(rects)}</svg>")


def render_metrics_table(metrics):
    rows = []
    for key in sorted(metrics):
        value = metrics[key]
        if isinstance(value, (int, float)):
            rows.append(f"<tr><td class=name>{html.escape(key)}</td>"
                        f"<td>{value:.6g}</td></tr>")
    return ("<table><tr><th class=name>metric</th><th>value</th></tr>"
            + "".join(rows) + "</table>")


def render_cell(manifest, intervals):
    name = (f"{manifest['workload']} · {manifest['config_name']}")
    parts = [f"<div class=cell><h2>{html.escape(name)}</h2>",
             f"<p class=small>engine: "
             f"{html.escape(str(manifest.get('engine', '?')))} · "
             f"cache key: "
             f"{html.escape(manifest['cache_key'])}</p>",
             render_metrics_table(manifest["metrics"])]
    if intervals is not None:
        header, snaps = intervals
        parts.append(f"<h3>interval series "
                     f"(every {header.get('interval_records')} "
                     f"records, {len(snaps)} intervals)</h3>")
        parts.append(svg_line_chart(
            [(s["end"], s["miss_ratio"]) for s in snaps],
            label="interval miss ratio"))
        parts.append(svg_line_chart(
            [(s["end"], s["amat"]) for s in snaps],
            label="interval AMAT (cycles)"))
        parts.append(svg_line_chart(
            [(s["end"], s["wb_occupancy"]) for s in snaps],
            label="write-buffer occupancy at boundary"))
    profile = manifest.get("profile")
    if profile:
        parts.append(f"<h3>per-set heat profile "
                     f"(hottest set {profile.get('hottest_set')})"
                     f"</h3>")
        for series in ("accesses", "misses", "conflicts"):
            parts.append(svg_heatmap(profile[series], label=series))
    parts.append("</div>")
    return "\n".join(parts)


def render_perf(kind, path, doc):
    parts = [f"<div class=cell><h2>perf: {html.escape(path)}</h2>"]
    if kind == "summary":
        verdict = ("<span class=ok>PASS</span>" if doc.get("pass")
                   else "<span class=bad>FAIL</span>")
        parts.append(f"<p>{verdict} (tolerance "
                     f"{doc.get('tolerance')}, ratio slack "
                     f"{doc.get('ratio_slack')})</p>")
        rows = "".join(
            f"<tr><td class=name>{html.escape(b['name'])}</td>"
            f"<td>{b['items_per_second'] / 1e6:.2f}</td>"
            f"<td>{b['baseline_items_per_second'] / 1e6:.2f}</td>"
            f"<td>{100 * b['drift']:+.1f}%</td>"
            f"<td>{'ok' if b['ok'] else 'REGRESSED'}</td></tr>"
            for b in doc.get("benchmarks", []))
        parts.append("<table><tr><th class=name>benchmark</th>"
                     "<th>M items/s</th><th>baseline</th>"
                     "<th>drift</th><th>verdict</th></tr>"
                     + rows + "</table>")
        rows = "".join(
            f"<tr><td class=name>{html.escape(r['fast'])} / "
            f"{html.escape(r['slow'])}</td>"
            f"<td>{r.get('ratio', 0):.2f}x</td>"
            f"<td>{r.get('floor', 0):.2f}x</td>"
            f"<td>{html.escape(str(r.get('skipped', '') or ('ok' if r.get('ok') else 'REGRESSED')))}</td></tr>"
            for r in doc.get("ratios", []))
        parts.append("<table><tr><th class=name>ratio</th>"
                     "<th>value</th><th>floor</th><th>verdict</th>"
                     "</tr>" + rows + "</table>")
    else:
        rows = "".join(
            f"<tr><td class=name>{html.escape(name)}</td>"
            f"<td>{ips / 1e6:.2f}</td></tr>"
            for name, ips in sorted(
                doc["items_per_second"].items()))
        parts.append("<table><tr><th class=name>benchmark</th>"
                     "<th>M items/s (baseline)</th></tr>"
                     + rows + "</table>")
    parts.append("</div>")
    return "\n".join(parts)


def render_report(dir_cells, perf_docs, title):
    body = []
    for directory, cells in dir_cells:
        body.append(f"<h1>{html.escape(title)} — "
                    f"{html.escape(directory)}</h1>")
        for manifest, intervals in cells:
            body.append(render_cell(manifest, intervals))
    for kind, path, doc in perf_docs:
        body.append(render_perf(kind, path, doc))
    return (f"<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{CSS}</style></head><body>"
            + "\n".join(body) + "</body></html>\n")


# ---------------------------------------------------------------------------
# Subcommands


def report_errors(errors):
    if errors:
        print("validation FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        sys.exit(1)


def cmd_check(args):
    errors = []
    total = 0
    for directory in args.dirs:
        cells = load_run_dir(directory, errors)
        total += len(cells)
        with_intervals = sum(1 for _, i in cells if i is not None)
        with_profile = sum(1 for m, _ in cells if m.get("profile"))
        print(f"{directory}: {len(cells)} manifests, "
              f"{with_intervals} interval series, "
              f"{with_profile} heat profiles")
    report_errors(errors)
    print(f"check passed ({total} manifests)")


def cmd_render(args):
    errors = []
    dir_cells = [(d, load_run_dir(d, errors)) for d in args.dirs]
    perf_docs = [doc for doc in (load_perf_file(p, errors)
                                 for p in args.perf or [])
                 if doc is not None]
    report_errors(errors)
    html_text = render_report(dir_cells, perf_docs, args.title)
    try:
        with open(args.output, "w") as f:
            f.write(html_text)
    except OSError as e:
        fail(f"cannot write {args.output}: {e}")
    cells = sum(len(c) for _, c in dir_cells)
    print(f"wrote {args.output} ({cells} cells, "
          f"{len(perf_docs)} perf sections)")


def cmd_diff(args):
    errors = []
    a_cells = load_run_dir(args.a, errors)
    b_cells = load_run_dir(args.b, errors)
    report_errors(errors)

    def keyed(cells):
        return {(m["workload"], m["config_name"]): m
                for m, _ in cells}

    a_by_key, b_by_key = keyed(a_cells), keyed(b_cells)
    common = sorted(set(a_by_key) & set(b_by_key))
    if not common:
        fail("no (workload, config) cells in common")
    for key in sorted(set(a_by_key) ^ set(b_by_key)):
        side = "only in A" if key in a_by_key else "only in B"
        print(f"  warning: {key[0]} · {key[1]}: {side}")

    regressions = []
    for key in common:
        ma, mb = a_by_key[key], b_by_key[key]
        for metric in HIGHER_IS_WORSE:
            va = ma["metrics"].get(metric)
            vb = mb["metrics"].get(metric)
            if va is None or vb is None:
                continue
            if abs(va) > 1e-9:
                rel = (vb - va) / abs(va)
                shown = f"{100 * rel:+.2f}%"
            else:
                # Zero (or vanishing) baseline: a relative delta would
                # divide by ~0 and turn any drift into an astronomical
                # percentage (or inf). Compare the absolute delta
                # against the same threshold instead — for ratios and
                # cycle counts near 0, "moved by more than the
                # threshold" is the meaningful regression test.
                rel = vb - va
                shown = f"Δ{rel:+.6g} abs"
            verdict = "ok" if rel <= args.threshold else "REGRESSED"
            if rel > args.threshold or args.verbose:
                print(f"  {verdict:9s} {key[0]} · {key[1]} · "
                      f"{metric}: {va:.6g} -> {vb:.6g} "
                      f"({shown})")
            if rel > args.threshold:
                regressions.append((key, metric, va, vb, rel))
    if regressions:
        print(f"\ndiff FAILED: {len(regressions)} metric "
              f"regression(s) above {100 * args.threshold:.1f}%",
              file=sys.stderr)
        sys.exit(1)
    print(f"diff passed ({len(common)} common cells)")


def main():
    p = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("check", help="validate run directories")
    s.add_argument("dirs", nargs="+", metavar="DIR")
    s.set_defaults(fn=cmd_check)

    s = sub.add_parser("render", help="write an HTML report")
    s.add_argument("dirs", nargs="+", metavar="DIR")
    s.add_argument("-o", "--output", default="sac-report.html")
    s.add_argument("--perf", action="append", metavar="FILE",
                   help="fold in a perf summary "
                        "(sac-perf-summary-v1) or BENCH_simspeed.json")
    s.add_argument("--title", default="sac run report")
    s.set_defaults(fn=cmd_render)

    s = sub.add_parser("diff", help="flag metric regressions A -> B")
    s.add_argument("a", metavar="A")
    s.add_argument("b", metavar="B")
    s.add_argument("--threshold", type=float, default=0.02,
                   help="relative regression tolerance "
                        "(default 0.02)")
    s.add_argument("--verbose", action="store_true",
                   help="print every compared metric, not only "
                        "regressions")
    s.set_defaults(fn=cmd_diff)

    args = p.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
