/**
 * @file
 * The command-line options shared by every bench binary and the
 * example CLIs. Until this existed each bench re-parsed --jobs and
 * --emit-json by hand and sacsim kept its own preset name table; now
 * one parse() owns the shared flags and --preset resolves through
 * core::presets(), so a new preset is automatically accepted
 * everywhere.
 */

#ifndef SAC_HARNESS_BENCH_OPTIONS_HH
#define SAC_HARNESS_BENCH_OPTIONS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "src/core/config.hh"
#include "src/sim/sampling.hh"
#include "src/trace/trace_source.hh"

namespace sac {
namespace util {
class Args;
} // namespace util

namespace harness {

/** Parsed shared bench flags. */
struct BenchOptions
{
    /** --jobs N: sweep worker threads (default: hardware threads). */
    unsigned jobs = 0;

    /**
     * --intra-jobs N: workers per cell for intra-trace parallelism
     * (live-point window replay, set-sharded stack passes). 0 = auto:
     * shard only when the sweep has fewer cells than --jobs workers.
     * Results are bit-identical at any value.
     */
    unsigned intraJobs = 0;

    /** --emit-json DIR: manifest output directory; empty = off. */
    std::string emitJsonDir;

    /** --preset NAME: a registry configuration, when given. */
    std::optional<core::Config> preset;

    /** The --preset key as typed (empty when absent). */
    std::string presetName;

    /** --trace-chunk N: records per chunk in streamed replay. */
    std::size_t traceChunk = trace::TraceSource::defaultChunkRecords;

    /** --trace-seed N: timing seed for generated traces. */
    std::uint64_t traceSeed = 0x7ac3ull;

    /** --sample: estimate figures with the windowed sampling engine. */
    bool sample = false;

    /**
     * Sampling geometry and confidence, tuned by --sample-window,
     * --sample-stride, --sample-warmup, --sample-ci (0.95, or 95 as
     * a percentage) and --sample-error (adaptive target relative
     * error; 0 disables).
     */
    sim::SamplingOptions sampling;

    /** Was any --sample-* tuning flag given on the command line? */
    bool sampleTuningGiven = false;

    /**
     * --checkpoint-dir DIR: root of the live-point checkpoint library
     * (sim::CheckpointLibrary). Sampled sweeps load `.saclp` files
     * from it and skip functional warming; misses warm once and write
     * the library for every later run. Empty = off. Requires
     * --sample.
     */
    std::string checkpointDir;

    /**
     * --checkpoint-rebuild: ignore any existing library and force a
     * warm-and-rewrite (e.g. after deliberately regenerating traces
     * in place). Requires --checkpoint-dir.
     */
    bool checkpointRebuild = false;

    /**
     * --interval N: record an interval-stats snapshot every N trace
     * records and write a sibling `<manifest>.intervals.jsonl` next
     * to each emitted cell manifest. 0 = off. Requires --emit-json;
     * only effective in builds with SAC_INTERVAL=ON (otherwise the
     * harness warns once and emits plain manifests).
     */
    std::uint64_t interval = 0;

    /**
     * --heatmap: embed the per-set heat profile ("profile" block) in
     * each emitted cell manifest. Requires --emit-json; same
     * SAC_INTERVAL build gate as --interval.
     */
    bool heatmap = false;

    /**
     * --trace-ring N: default telemetry::EventTracer ring capacity in
     * events (process-wide, forwarded to
     * EventTracer::setDefaultCapacity()). 0 = keep the built-in
     * default / SAC_TRACE_RING environment override.
     */
    std::size_t traceRing = 0;

    /**
     * The first constraint the parsed flag combination violates, or
     * nullopt when consistent (the Config::validationError()
     * convention): tuning flags without --sample are rejected, as is
     * an impossible geometry (e.g. --sample-stride below
     * --sample-window). parse() exits with status 2 on any of these;
     * the testable core is exposed separately.
     */
    std::optional<std::string> validationError() const;

    /**
     * Extract the shared flags from an already-parsed command line.
     * Prints a diagnostic to stderr and exits with status 2 on a bad
     * value (wrong type, unknown preset, missing directory,
     * contradictory sampling flags) — bench binaries have no recovery
     * path from a bad command line.
     */
    static BenchOptions parse(const util::Args &args);

    /** Convenience: parse argv, then the shared flags. */
    static BenchOptions parse(int argc, const char *const *argv);
};

} // namespace harness
} // namespace sac

#endif // SAC_HARNESS_BENCH_OPTIONS_HH
