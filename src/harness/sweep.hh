/**
 * @file
 * Request-oriented sweep API: one value type (SweepRequest) that
 * expresses every flag combination the benches accept — workloads,
 * config lattice, engine selection, sampling/checkpoint/telemetry
 * options — and one Runner::run() entry point that routes each cell
 * to the fastest eligible engine. The bench binaries and the sweep
 * service (src/service/) are thin adapters onto these types; the
 * legacy runMatrix()/runSampled() calls remain as building blocks.
 */

#ifndef SAC_HARNESS_SWEEP_HH
#define SAC_HARNESS_SWEEP_HH

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/bench_options.hh"
#include "src/harness/experiment.hh"
#include "src/telemetry/manifest.hh"

namespace sac {
namespace harness {

/**
 * Which engine a SweepRequest asks for. Auto is the default and
 * routes per cell: stack-derivable metrics over a stack family are
 * served by one single-pass traversal, everything else by exact
 * replay. The two sampled engines must be requested explicitly —
 * sampling trades accuracy for speed, which no router may decide
 * silently.
 */
enum class EngineSelect
{
    Auto,             //!< fastest exact-equivalent engine per cell
    Exact,            //!< force exact replay (no stack dispatch)
    Sampled,          //!< windowed sampling estimates
    SampledLivepoint, //!< sampling over a live-point checkpoint library
    Stack,            //!< require stack dispatch (fallback cells exact)
};

/** Wire/CLI name of @p engine ("auto", "exact", ...). */
const char *engineSelectName(EngineSelect engine);

/** Parse an engineSelectName() string; nullopt when unknown. */
std::optional<EngineSelect>
engineSelectFromName(const std::string &name);

/**
 * The engine that actually produced one sweep cell — the routing
 * decision, recorded per cell in SweepResult and as the manifest's
 * "engine" key.
 */
enum class EngineTag
{
    ExactReplay,      //!< full-detail replay ("exact-replay")
    Sampled,          //!< windowed sampling ("sampled")
    SampledLivepoint, //!< sampling + checkpoints ("sampled-livepoint")
    StackSinglePass,  //!< Mattson stack pass ("stack-single-pass")
};

/** Manifest "engine" value of @p tag. */
const char *engineName(EngineTag tag);

/**
 * Everything writeCellManifest() may need to render one sweep-cell
 * manifest, engine-independent: exact and stack cells carry stats,
 * sampled cells carry the report (+ sampling geometry and, on the
 * live-point path, the checkpoint-outcome block). Pointers reference
 * caller-owned data and are only read during the call.
 */
struct ManifestCell
{
    std::string workload;
    const core::Config *config = nullptr; //!< required

    /** Exact/stack cells: the run's statistics. */
    const sim::RunStats *stats = nullptr;

    /** Sampled cells: the estimate report. */
    const sim::SampleReport *report = nullptr;
    /** Sampled cells: the geometry that produced the report. */
    const sim::SamplingOptions *sampling = nullptr;
    /** Live-point cells: the "checkpoint" block (outcome counters). */
    const util::Json *checkpoint = nullptr;
    /**
     * Intra-trace parallelism counters ("parallel" block), rendered
     * inside "timing": window-replay and set-shard tallies. Like the
     * rest of "timing" it never affects result comparisons.
     */
    const util::Json *parallel = nullptr;

    /** Stack cells: members in the family the pass covered. */
    std::size_t stackFamilySize = 0;

    /** Exact cells: trace for an instrumented re-replay (optional). */
    const trace::Trace *trace = nullptr;
    InstrumentOptions instrument;

    double simSeconds = 0.0; //!< wall seconds of the cell (0 = omit)
    /** Extra members merged into "timing" (e.g. phase totals). */
    const util::Json *extraTiming = nullptr;
};

/**
 * Render the manifest document of one sweep cell with its "engine"
 * key derived from @p tag. Pure: no filesystem access, so servers can
 * stream the document without writing it. The instrumented re-replay
 * (cell.trace + instrument flags, exact cells only) runs here and
 * embeds the heat profile; the interval series needs a sibling file
 * and is only written by writeCellManifest().
 */
telemetry::Manifest renderCellManifest(const ManifestCell &cell,
                                       EngineTag tag);

/**
 * Write the manifest of one sweep cell under @p dir. This is the one
 * writer behind the legacy writeSampledCellManifest()/
 * writeStackCellManifest()/writeInstrumentedCellManifest() wrappers.
 * Returns the written path ("" on I/O failure).
 */
std::string writeCellManifest(const std::string &dir,
                              const ManifestCell &cell, EngineTag tag);

/** Manifest emission options of a SweepRequest. */
struct SweepTelemetry
{
    /** Directory for per-cell manifests; empty = do not write. */
    std::string manifestDir;

    /** Instrumented exact cells: interval period (0 = off). */
    std::uint64_t intervalRecords = 0;
    /** Instrumented exact cells: embed per-set heat profiles. */
    bool heatmap = false;

    /**
     * Also emit one "suite-total" aggregate manifest per
     * configuration (exact sweeps only; stack-served configs are
     * skipped — a stack pass yields no timing to aggregate).
     */
    bool suiteTotals = false;

    /**
     * Optional cross-request dedup set keyed (workload, cacheKey):
     * cells already present are not emitted again. The benches pass
     * their process-wide set; nullptr emits every cell of the run.
     */
    std::set<std::pair<std::string, std::string>> *dedup = nullptr;

    /**
     * Incremental manifest sink: invoked once per emitted manifest
     * with its canonical file name and the document bytes (identical
     * to the file writeManifestFile() would produce). The service
     * streams these frames to clients as cells finish. A sink works
     * with or without manifestDir.
     */
    std::function<void(const std::string &file,
                       const std::string &document)>
        sink;
};

/**
 * One batched sweep: which cells to run, how, and what to emit.
 * Everything the bench command line can express maps onto this type
 * (fromBenchOptions()), and the service's wire protocol parses into
 * it. Validate with validationError() before calling Runner::run().
 */
struct SweepRequest
{
    std::vector<Workload> workloads;
    std::vector<core::Config> configs;
    Metric metric = missRatioMetric();
    unsigned jobs = 1; //!< worker threads (<= 1 = serial)

    EngineSelect engine = EngineSelect::Auto;
    sim::SamplingOptions sampling; //!< sampled engines only

    /**
     * Workers per cell for intra-trace parallelism: live-point window
     * replay and set-sharded stack passes. 0 = auto (shard only when
     * the cell count cannot keep all @ref jobs workers busy,
     * intra = jobs / cells); 1 = serial. Results are bit-identical
     * either way.
     */
    unsigned intraJobs = 0;

    /** Live-point library root (SampledLivepoint engine). */
    std::string checkpointDir;
    bool checkpointRebuild = false; //!< force warm-and-rewrite

    SweepTelemetry telemetry;

    /** First contradiction in this request, or nullopt when valid. */
    std::optional<std::string> validationError() const;

    /**
     * The request equivalent to one bench invocation: --sample maps
     * to Sampled (SampledLivepoint with --checkpoint-dir), everything
     * else to Auto; --emit-json/--interval/--heatmap land in
     * telemetry. Suite totals are on — the benches emit them.
     */
    static SweepRequest fromBenchOptions(
        const BenchOptions &options, std::vector<Workload> workloads,
        std::vector<core::Config> configs, Metric metric);
};

/** What Runner::run() produced for one SweepRequest. */
struct SweepResult
{
    /** The classic figure table (workload rows x config columns). */
    util::Table table;

    /** Routing record of one sweep cell. */
    struct Cell
    {
        std::string workload;
        std::string configName;
        std::string cacheKey;
        EngineTag engine = EngineTag::ExactReplay;
        /** Canonical manifest file name (set when emitted). */
        std::string manifestFile;
        /** On-disk manifest path (set when written to manifestDir). */
        std::string manifestPath;
    };

    /** All cells, workload-major in request order. */
    std::vector<Cell> cells;

    std::size_t manifestsWritten = 0;
    /** Cells whose manifest write failed (I/O errors). */
    std::size_t manifestFailures = 0;

    /** Wall-clock account of the sweep. */
    Runner::SweepTiming timing;
};

} // namespace harness
} // namespace sac

#endif // SAC_HARNESS_SWEEP_HH
