#include "src/harness/experiment.hh"

#include <fstream>
#include <future>
#include <sstream>

#include "src/util/thread_pool.hh"
#include "src/workloads/workloads.hh"

namespace sac {
namespace harness {

Metric
amatMetric()
{
    return {"AMAT", [](const sim::RunStats &s) { return s.amat(); }, 3};
}

Metric
missRatioMetric()
{
    return {"miss ratio",
            [](const sim::RunStats &s) { return s.missRatio(); }, 4};
}

Metric
wordsPerAccessMetric()
{
    return {"words/ref",
            [](const sim::RunStats &s) {
                return s.wordsFetchedPerAccess();
            },
            3};
}

Metric
mainHitShareMetric()
{
    return {"main-hit share",
            [](const sim::RunStats &s) { return s.mainHitShare(); },
            3};
}

Metric
auxHitShareMetric()
{
    return {"aux-hit share",
            [](const sim::RunStats &s) { return s.auxHitShare(); }, 3};
}

const trace::Trace &
Runner::traceOf(const Workload &w)
{
    Slot<trace::Trace> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = traces_[w.name];
        if (!entry)
            entry = std::make_unique<Slot<trace::Trace>>();
        slot = entry.get(); // stable: the map holds pointers
    }
    std::call_once(slot->once, [&] {
        slot->value = w.build();
        tracesGenerated_.fetch_add(1);
    });
    return slot->value;
}

const sim::RunStats &
Runner::run(const Workload &w, const core::Config &cfg)
{
    const auto key = std::make_pair(w.name, cfg.cacheKey());
    Slot<sim::RunStats> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = results_[key];
        if (!entry)
            entry = std::make_unique<Slot<sim::RunStats>>();
        slot = entry.get();
    }
    std::call_once(slot->once, [&] {
        slot->value = core::simulateTrace(traceOf(w), cfg);
        runsExecuted_.fetch_add(1);
    });
    return slot->value;
}

util::Table
Runner::matrix(const std::vector<Workload> &workloads,
               const std::vector<core::Config> &configs,
               const Metric &metric)
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (const auto &w : workloads) {
        const auto row = table.addRow();
        table.set(row, 0, w.name);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            table.setNumber(row, c + 1,
                            metric.extract(run(w, configs[c])),
                            metric.decimals);
        }
    }
    return table;
}

util::Table
Runner::runMatrix(const std::vector<Workload> &workloads,
                  const std::vector<core::Config> &configs,
                  const Metric &metric, unsigned jobs)
{
    if (jobs > 1 && workloads.size() * configs.size() > 1) {
        // Simulate every cell concurrently. run() latches each trace
        // and each result exactly once, so racing cells block on the
        // first producer instead of duplicating work. The futures
        // re-raise any exception a cell threw.
        util::ThreadPool pool(jobs);
        std::vector<std::future<void>> cells;
        cells.reserve(workloads.size() * configs.size());
        for (const auto &w : workloads) {
            for (const auto &cfg : configs) {
                cells.push_back(
                    pool.submit([this, &w, &cfg] { run(w, cfg); }));
            }
        }
        for (auto &cell : cells)
            cell.get();
    }
    // Render serially from the (now warm) cache: ordering, rounding
    // and therefore bytes are identical to the serial path.
    return matrix(workloads, configs, metric);
}

std::vector<Workload>
paperWorkloads()
{
    std::vector<Workload> out;
    for (const auto &b : workloads::paperBenchmarks()) {
        out.push_back(
            {b.name, [name = b.name] {
                 return workloads::makeBenchmarkTrace(name);
             }});
    }
    return out;
}

namespace {

/** Quote a CSV field when it contains separators or quotes. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
toCsv(const util::Table &table)
{
    std::ostringstream os;
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (c)
            os << ',';
        os << csvField(table.header(c));
    }
    os << '\n';
    for (std::size_t r = 0; r < table.rows(); ++r) {
        for (std::size_t c = 0; c < table.cols(); ++c) {
            if (c)
                os << ',';
            os << csvField(table.cell(r, c));
        }
        os << '\n';
    }
    return os.str();
}

bool
writeCsvFile(const util::Table &table, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toCsv(table);
    return static_cast<bool>(os);
}

} // namespace harness
} // namespace sac
