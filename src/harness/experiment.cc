#include "src/harness/experiment.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>

#include "src/harness/sweep.hh"
#include "src/telemetry/counter_registry.hh"
#include "src/telemetry/manifest.hh"
#include "src/util/logging.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/workloads.hh"

namespace sac {
namespace harness {

Metric
amatMetric()
{
    return {"AMAT", [](const sim::RunStats &s) { return s.amat(); }, 3};
}

Metric
missRatioMetric()
{
    return {"miss ratio",
            [](const sim::RunStats &s) { return s.missRatio(); }, 4};
}

Metric
wordsPerAccessMetric()
{
    return {"words/ref",
            [](const sim::RunStats &s) {
                return s.wordsFetchedPerAccess();
            },
            3};
}

Metric
mainHitShareMetric()
{
    return {"main-hit share",
            [](const sim::RunStats &s) { return s.mainHitShare(); },
            3};
}

Metric
auxHitShareMetric()
{
    return {"aux-hit share",
            [](const sim::RunStats &s) { return s.auxHitShare(); }, 3};
}

const trace::Trace &
Runner::traceOf(const Workload &w)
{
    Slot<trace::Trace> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = traces_[w.name];
        if (!entry)
            entry = std::make_unique<Slot<trace::Trace>>();
        slot = entry.get(); // stable: the map holds pointers
    }
    std::call_once(slot->once, [&] {
        const telemetry::ScopedPhase phase(phases_, "trace-gen");
        slot->value = w.build();
        tracesGenerated_.fetch_add(1);
    });
    return slot->value;
}

void
Runner::warmup(const std::vector<Workload> &workloads)
{
    const telemetry::ScopedPhase phase(phases_, "warmup");
    for (const auto &w : workloads)
        traceOf(w);
}

const Runner::CellResult &
Runner::cell(const Workload &w, const core::Config &cfg)
{
    const auto key = std::make_pair(w.name, cfg.cacheKey());
    Slot<CellResult> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = results_[key];
        if (!entry)
            entry = std::make_unique<Slot<CellResult>>();
        slot = entry.get();
    }
    std::call_once(slot->once, [&] {
        const trace::Trace &t = traceOf(w);
        const telemetry::ScopedPhase phase(phases_, "sim");
        slot->value.stats = core::simulateTrace(t, cfg);
        slot->value.simSeconds = phase.elapsed();
        runsExecuted_.fetch_add(1);
    });
    return slot->value;
}

const sim::RunStats &
Runner::run(const Workload &w, const core::Config &cfg)
{
    return cell(w, cfg).stats;
}

Runner::SweepTiming
Runner::lastSweep() const
{
    std::lock_guard<std::mutex> lock(sweepMutex_);
    return lastSweep_;
}

util::Table
Runner::matrix(const std::vector<Workload> &workloads,
               const std::vector<core::Config> &configs,
               const Metric &metric)
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (const auto &w : workloads) {
        const auto row = table.addRow();
        table.set(row, 0, w.name);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            table.setNumber(row, c + 1,
                            metric.extract(run(w, configs[c])),
                            metric.decimals);
        }
    }
    return table;
}

bool
stackFamilyEligible(const core::Config &cfg)
{
    // Only the Standard feature path is a plain LRU cache the stack
    // model reproduces. featureSetOf() does not look at
    // preferNonTemporalReplacement (it changes the victim choice, not
    // the feature lattice), so it is excluded here explicitly.
    return core::featureSetOf(cfg) == core::FeatureSet::Standard &&
           !cfg.preferNonTemporalReplacement &&
           stackPointOf(cfg).wellFormed();
}

bool
stackDerivableMetric(const Metric &metric)
{
    return metric.name == "miss ratio" ||
           metric.name == "words/ref" ||
           metric.name == "main-hit share" ||
           metric.name == "aux-hit share";
}

sim::StackPoint
stackPointOf(const core::Config &cfg)
{
    return {cfg.cacheSizeBytes, cfg.lineBytes, cfg.assoc};
}

sim::RunStats
stackStatsFor(const sim::StackDistanceEngine &eng,
              const core::Config &cfg)
{
    sim::RunStats s;
    s.accesses = eng.accesses();
    s.reads = eng.reads();
    s.writes = eng.writes();
    s.misses = eng.missCount(stackPointOf(cfg));
    // Standard path: every non-miss hits the main array, and every
    // miss fetches exactly one physical line (write-allocate).
    s.mainHits = s.accesses - s.misses;
    s.linesFetched = s.misses;
    s.bytesFetched = s.misses * cfg.lineBytes;
    return s;
}

void
Runner::runStackFamily(const Workload &w,
                       const std::vector<const core::Config *> &family,
                       unsigned intra_jobs)
{
    // Serialize passes per workload: a concurrent sweep requesting
    // the same family waits here, then finds the store filled and
    // skips its own traversal (cells shared, one pass total).
    std::mutex *pass_mutex = nullptr;
    {
        std::lock_guard<std::mutex> lock(stackMutex_);
        auto &slot = stackPassMutexes_[w.name];
        if (!slot)
            slot = std::make_unique<std::mutex>();
        pass_mutex = slot.get();
    }
    std::lock_guard<std::mutex> pass_lock(*pass_mutex);

    std::size_t missing = 0;
    {
        std::lock_guard<std::mutex> lock(stackMutex_);
        for (const core::Config *cfg : family) {
            if (!stackResults_.count({w.name, cfg->cacheKey()}))
                ++missing;
        }
        stackCounters_.counter("stack.pass.cached_cells",
                               "sweep cells served from the stack "
                               "store") += family.size() - missing;
    }
    if (missing == 0)
        return;

    // One traversal covers the whole family, so even a sweep that
    // adds a single new point to a mostly-cached family costs one
    // pass, never per-point replays.
    std::vector<sim::StackPoint> points;
    points.reserve(family.size());
    for (const core::Config *cfg : family)
        points.push_back(stackPointOf(*cfg));

    const trace::Trace &t = traceOf(w);
    std::uint64_t records = 0;
    std::optional<sim::StackDistanceEngine> eng;
    if (intra_jobs > 1) {
        // Set-sharded pass: per-set LRU stacks never interact, so
        // each shard profiles a disjoint slice of every profiler's
        // set space over the full stream and the histograms sum to
        // exactly the unsharded counts (proven by the
        // ShardedStackDifferential tests).
        const telemetry::ScopedPhase phase(phases_, "stack-pass");
        const unsigned shards = intra_jobs;
        std::vector<sim::StackDistanceEngine> slices;
        slices.reserve(shards);
        for (unsigned s = 0; s < shards; ++s)
            slices.emplace_back(points, s, shards);
        {
            util::ThreadPool pool(shards);
            std::vector<std::future<void>> tasks;
            tasks.reserve(shards);
            for (unsigned s = 0; s < shards; ++s) {
                tasks.push_back(pool.submit([&slices, s, &t] {
                    trace::MemoryTraceSource src(t);
                    slices[s].run(src);
                }));
            }
            for (auto &task : tasks)
                task.get();
        }
        const auto merge0 = std::chrono::steady_clock::now();
        for (unsigned s = 1; s < shards; ++s)
            slices[0].absorb(slices[s]);
        const auto merge_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - merge0)
                .count());
        records = slices[0].accesses();
        eng.emplace(std::move(slices[0]));
        {
            std::lock_guard<std::mutex> lock(parallelMutex_);
            parallelCounters_.counter(
                "parallel.shards",
                "set-shard stack-pass slices executed") += shards;
            parallelCounters_.counter(
                "parallel.merge_ns",
                "nanoseconds merging parallel partial results") +=
                merge_ns;
        }
    } else {
        eng.emplace(points);
        const telemetry::ScopedPhase phase(phases_, "stack-pass");
        trace::MemoryTraceSource src(t);
        records = eng->run(src);
    }

    std::lock_guard<std::mutex> lock(stackMutex_);
    for (const core::Config *cfg : family) {
        stackResults_.try_emplace({w.name, cfg->cacheKey()},
                                  stackStatsFor(*eng, *cfg));
    }
    ++stackCounters_.counter("stack.pass.traversals",
                             "single-pass stack traversals executed");
    stackCounters_.counter("stack.pass.records",
                           "records profiled by stack traversals") +=
        records;
    stackCounters_.counter("stack.pass.cells",
                           "sweep cells served fresh from a stack "
                           "pass") += missing;
}

const sim::RunStats *
Runner::stackStats(const Workload &w, const core::Config &cfg) const
{
    std::lock_guard<std::mutex> lock(stackMutex_);
    const auto it = stackResults_.find({w.name, cfg.cacheKey()});
    return it == stackResults_.end() ? nullptr : &it->second;
}

std::uint64_t
Runner::stackCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(stackMutex_);
    return stackCounters_.value(name);
}

std::uint64_t
Runner::checkpointCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(checkpointMutex_);
    return checkpointCounters_.value(name);
}

std::uint64_t
Runner::parallelCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(parallelMutex_);
    return parallelCounters_.value(name);
}

util::Table
Runner::runMatrix(const std::vector<Workload> &workloads,
                  const std::vector<core::Config> &configs,
                  const Metric &metric, unsigned jobs)
{
    return runMatrixWith(workloads, configs, metric, jobs, true);
}

util::Table
Runner::runMatrixWith(const std::vector<Workload> &workloads,
                      const std::vector<core::Config> &configs,
                      const Metric &metric, unsigned jobs,
                      bool allow_stack, unsigned intra_jobs)
{
    const auto sweep_start = std::chrono::steady_clock::now();
    // Per-worker busy time: summed wall time of the cell tasks
    // (nanoseconds so workers can accumulate without a double CAS).
    std::atomic<std::uint64_t> busy_ns{0};
    const auto timed_cell = [this, &busy_ns](const Workload &w,
                                             const core::Config &cfg) {
        const auto t0 = std::chrono::steady_clock::now();
        run(w, cfg);
        busy_ns.fetch_add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    };

    // Partition into the stack family — served by one single-pass
    // traversal per workload — and the exact remainder. A family of
    // one gains nothing over a replay, so dispatch needs two members.
    std::vector<const core::Config *> family;
    std::vector<const core::Config *> exact;
    if (allow_stack && stackDerivableMetric(metric)) {
        for (const auto &cfg : configs) {
            (stackFamilyEligible(cfg) ? family : exact).push_back(&cfg);
        }
    }
    if (family.size() < 2) {
        family.clear();
        exact.clear();
        for (const auto &cfg : configs)
            exact.push_back(&cfg);
    }

    if (!family.empty()) {
        // Stack passes run serially on this thread: each is already a
        // whole-family batch, and the counter registry is
        // single-threaded by design.
        for (const auto &w : workloads) {
            const auto t0 = std::chrono::steady_clock::now();
            runStackFamily(w, family, intra_jobs);
            busy_ns.fetch_add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
        }
        if (!exact.empty()) {
            std::lock_guard<std::mutex> lock(stackMutex_);
            stackCounters_.counter("stack.pass.fallback_cells",
                                   "cells exact-replayed in "
                                   "stack-dispatched sweeps") +=
                workloads.size() * exact.size();
        }
    }

    const std::size_t n_exact = workloads.size() * exact.size();
    if (jobs > 1 && n_exact > 1) {
        // Simulate every exact cell concurrently. run() latches each
        // trace and each result exactly once, so racing cells block
        // on the first producer instead of duplicating work. The
        // futures re-raise any exception a cell threw.
        util::ThreadPool pool(jobs);
        std::vector<std::future<void>> cells;
        cells.reserve(n_exact);
        for (const auto &w : workloads) {
            for (const core::Config *cfg : exact) {
                cells.push_back(pool.submit(
                    [&timed_cell, &w, cfg] { timed_cell(w, *cfg); }));
            }
        }
        for (auto &cell : cells)
            cell.get();
    } else {
        for (const auto &w : workloads) {
            for (const core::Config *cfg : exact)
                timed_cell(w, *cfg);
        }
    }

    const double sweep_wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - sweep_start)
            .count();
    phases_.add("sweep", sweep_wall);
    {
        std::lock_guard<std::mutex> lock(sweepMutex_);
        lastSweep_.wallSeconds = sweep_wall;
        lastSweep_.busySeconds =
            static_cast<double>(busy_ns.load()) * 1e-9;
        lastSweep_.jobs = std::max(1u, jobs);
    }

    // Render serially: ordering, rounding and therefore bytes are
    // identical to the serial path (stack-served cells extract the
    // same integer counts replay would produce, so the rendered
    // doubles match bit for bit).
    const telemetry::ScopedPhase render(phases_, "report");
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (const auto &w : workloads) {
        const auto row = table.addRow();
        table.set(row, 0, w.name);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const sim::RunStats *s =
                family.empty() ? nullptr : stackStats(w, configs[c]);
            table.setNumber(row, c + 1,
                            metric.extract(s ? *s
                                             : run(w, configs[c])),
                            metric.decimals);
        }
    }
    return table;
}

std::vector<sim::RunStats>
Runner::runStreamed(const Workload &w,
                    const std::vector<core::Config> &configs,
                    unsigned jobs, std::size_t chunk_records)
{
    const telemetry::ScopedPhase phase(phases_, "sweep-streamed");
    std::vector<std::unique_ptr<core::SoftwareAssistedCache>> sims;
    sims.reserve(configs.size());
    for (const auto &cfg : configs)
        sims.push_back(
            std::make_unique<core::SoftwareAssistedCache>(cfg));

    // Producer: the workload's native streaming entry when it has
    // one; otherwise generate the full trace and replay it (still
    // correct, but memory then scales with the trace length).
    const auto produce =
        w.stream ? w.stream
                 : std::function<void(const trace::RecordSink &)>(
                       [&w](const trace::RecordSink &sink) {
                           const trace::Trace t = w.build();
                           for (const auto &rec : t)
                               sink(rec);
                       });
    // One bounded queue between the producer thread and this thread;
    // the per-config fan-out below is a barrier per chunk, so no
    // simulator can fall behind and no per-config queue can fill up
    // while its consumer is unscheduled (the deadlock a per-config
    // queue design would allow when pool threads < configs).
    trace::GeneratorTraceSource src(w.name, produce, chunk_records);

    // More workers than simulators can never help: each simulator is
    // sequential over its records.
    const std::size_t groups =
        std::min<std::size_t>(jobs, configs.size());
    std::optional<util::ThreadPool> pool;
    if (groups > 1)
        pool.emplace(static_cast<unsigned>(groups));

    // Double-buffered chunks: while the pool replays one chunk, this
    // thread already pulls the next from the producer queue, so the
    // queue handoff overlaps simulation instead of serializing with
    // it at every barrier.
    std::vector<trace::Record> batches[2] = {
        std::vector<trace::Record>(chunk_records),
        std::vector<trace::Record>(chunk_records)};
    std::vector<std::future<void>> tasks;
    tasks.reserve(groups);

    std::size_t cur = 0;
    std::size_t n = src.next(batches[cur].data(), chunk_records);
    while (n > 0) {
        if (pool) {
            // Fan the chunk out as `groups` contiguous simulator
            // groups — one task per worker, not per config, so the
            // per-chunk submit/notify overhead does not scale with
            // the sweep width.
            tasks.clear();
            const std::size_t per = (sims.size() + groups - 1) / groups;
            const trace::Record *data = batches[cur].data();
            for (std::size_t g0 = 0; g0 < sims.size(); g0 += per) {
                const std::size_t g1 =
                    std::min(sims.size(), g0 + per);
                tasks.push_back(pool->submit([&sims, g0, g1, data, n] {
                    for (std::size_t s = g0; s < g1; ++s) {
                        for (std::size_t i = 0; i < n; ++i)
                            sims[s]->access(data[i]);
                    }
                }));
            }
            const std::size_t nxt = 1 - cur;
            const std::size_t n_next =
                src.next(batches[nxt].data(), chunk_records);
            // Barrier: re-raises any worker exception; after it the
            // just-replayed buffer is free to be overwritten.
            for (auto &t : tasks)
                t.get();
            cur = nxt;
            n = n_next;
        } else {
            for (auto &sim : sims) {
                for (std::size_t i = 0; i < n; ++i)
                    sim->access(batches[cur][i]);
            }
            n = src.next(batches[cur].data(), chunk_records);
        }
    }

    std::vector<sim::RunStats> out;
    out.reserve(sims.size());
    for (auto &sim : sims) {
        sim->finish();
        out.push_back(sim->stats());
    }
    runsExecuted_.fetch_add(sims.size());
    return out;
}

std::vector<std::vector<Runner::SampledCell>>
Runner::runSampled(const std::vector<Workload> &workloads,
                   const std::vector<core::Config> &configs,
                   const sim::SamplingOptions &opt, unsigned jobs)
{
    return runSampled(workloads, configs, opt, jobs, std::string(),
                      false);
}

Runner::SampledCell
Runner::computeSampledCell(const Workload &w, const core::Config &cfg,
                           const sim::SamplingOptions &opt,
                           const std::string &checkpoint_dir,
                           bool rebuild, std::uint64_t trace_hash,
                           util::ThreadPool *intra_pool,
                           unsigned intra_jobs)
{
    const sim::SampledEngine engine(opt);
    SampledCell out;
    const auto t0 = std::chrono::steady_clock::now();
    const trace::Trace &t = traceOf(w);
    core::SoftwareAssistedCache sim(cfg);
    if (!checkpoint_dir.empty()) {
        sim::CheckpointKey key;
        key.traceHash = trace_hash;
        key.configKey = cfg.cacheKey();
        key.window = opt.window;
        key.stride = opt.stride;
        key.warmup = opt.warmup;
        const std::string path = sim::CheckpointLibrary::pathFor(
            checkpoint_dir, t.name(), key);

        sim::CheckpointLibrary lib;
        using LoadResult = sim::CheckpointLibrary::LoadResult;
        const LoadResult r =
            rebuild ? LoadResult::Missing : lib.load(path, key);
        std::uint64_t bytes = 0;
        if (r == LoadResult::Hit) {
            bytes = lib.loadedBytes();
        } else {
            // Warm once through the builder (a warming-only mirror of
            // the sampled replay), persist, then run the same restore
            // path a hit takes.
            core::SoftwareAssistedCache warmer(cfg);
            trace::MemoryTraceSource warm_src(t);
            engine.buildLibrary(warm_src, warmer, lib);
            bytes = lib.save(path, key);
        }
        {
            std::lock_guard<std::mutex> lock(checkpointMutex_);
            if (r == LoadResult::Hit) {
                ++checkpointCounters_.counter(
                    "checkpoint.hits",
                    "sampled cells served from a live-point "
                    "library");
            } else {
                if (r == LoadResult::Stale)
                    ++checkpointCounters_.counter(
                        "checkpoint.stale",
                        "libraries rejected as stale (key, "
                        "version or file mismatch)");
                ++checkpointCounters_.counter(
                    "checkpoint.misses",
                    "sampled cells that warmed and wrote a "
                    "library");
            }
            checkpointCounters_.counter(
                "checkpoint.bytes",
                "bytes moved through .saclp files") += bytes;
        }
        trace::MemoryTraceSource src(t);
        if (intra_pool && intra_jobs > 1) {
            sim::ParallelReplayStats ps;
            out.report = engine.runCheckpointedParallel(
                src,
                [&cfg] { return core::SoftwareAssistedCache(cfg); },
                lib, *intra_pool, intra_jobs, &ps);
            if (ps.parallel) {
                std::lock_guard<std::mutex> lock(parallelMutex_);
                parallelCounters_.counter(
                    "parallel.windows",
                    "detailed windows replayed concurrently") +=
                    ps.windows;
                parallelCounters_.counter(
                    "parallel.merge_ns",
                    "nanoseconds merging parallel partial "
                    "results") += ps.mergeNanos;
            }
        } else {
            out.report = engine.runCheckpointed(src, sim, lib);
        }
        out.fromCheckpoints = true;
    } else {
        trace::MemoryTraceSource src(t);
        out.report = engine.run(src, sim);
    }
    out.simSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    runsExecuted_.fetch_add(1);
    return out;
}

namespace {

/** Cache key of one sampled cell: identity + geometry + library. */
std::string
sampledCellKey(const std::string &workload,
               const std::string &cache_key,
               const sim::SamplingOptions &opt,
               const std::string &checkpoint_dir)
{
    std::ostringstream os;
    os << workload << '\x1f' << cache_key << '\x1f' << opt.window
       << ',' << opt.stride << ',' << opt.warmup << ','
       << opt.confidence << ',' << opt.targetRelativeError << ','
       << opt.minWindows << ',' << opt.maxWindows << '\x1f'
       << checkpoint_dir;
    return os.str();
}

} // namespace

const Runner::SampledCell &
Runner::sampledCellShared(const Workload &w, const core::Config &cfg,
                          const sim::SamplingOptions &opt,
                          const std::string &checkpoint_dir,
                          std::uint64_t trace_hash,
                          util::ThreadPool *intra_pool,
                          unsigned intra_jobs)
{
    const std::string key =
        sampledCellKey(w.name, cfg.cacheKey(), opt, checkpoint_dir);
    Slot<SampledCell> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = sampledResults_[key];
        if (!entry)
            entry = std::make_unique<Slot<SampledCell>>();
        slot = entry.get();
    }
    std::call_once(slot->once, [&] {
        slot->value =
            computeSampledCell(w, cfg, opt, checkpoint_dir, false,
                               trace_hash, intra_pool, intra_jobs);
    });
    return slot->value;
}

std::vector<std::vector<Runner::SampledCell>>
Runner::runSampled(const std::vector<Workload> &workloads,
                   const std::vector<core::Config> &configs,
                   const sim::SamplingOptions &opt, unsigned jobs,
                   const std::string &checkpoint_dir, bool rebuild,
                   unsigned intra_jobs)
{
    const telemetry::ScopedPhase phase(phases_, "sweep-sampled");
    const sim::SampledEngine engine(opt); // validates opt up front
    const bool use_library =
        !checkpoint_dir.empty() && engine.checkpointable();
    const std::string library_dir =
        use_library ? checkpoint_dir : std::string();
    // Intra-cell window replay needs a live-point library to slice;
    // plain sampled runs are a single sequential stream.
    const unsigned intra =
        use_library ? std::max(1u, intra_jobs) : 1u;

    // Latch every trace first so the parallel phase below measures
    // sampled replay alone (and workers never race a generation).
    for (const auto &w : workloads)
        traceOf(w);

    // Library identity is the trace *content*, not its name: hash
    // once per workload, outside the parallel phase.
    std::vector<std::uint64_t> trace_hashes(workloads.size(), 0);
    if (use_library) {
        for (std::size_t wi = 0; wi < workloads.size(); ++wi)
            trace_hashes[wi] = sim::hashTrace(traceOf(workloads[wi]));
    }

    std::vector<std::vector<SampledCell>> cells(
        workloads.size(), std::vector<SampledCell>(configs.size()));

    // --checkpoint-rebuild must warm-and-rewrite, so it bypasses the
    // shared cell store (and never poisons it with its fresh result —
    // a later plain run should still latch its own).
    // One pool serves both levels of parallelism: cell tasks fan out
    // across it, and each checkpointed cell may additionally shard
    // its window replay onto the same workers (the replay waits with
    // helpWait(), so nested submission cannot deadlock).
    const std::size_t n_cells = workloads.size() * configs.size();
    const unsigned pool_threads = std::max(jobs, intra);
    std::optional<util::ThreadPool> pool;
    if (pool_threads > 1 && (n_cells > 1 || intra > 1))
        pool.emplace(pool_threads);
    util::ThreadPool *intra_pool =
        (intra > 1 && pool) ? &*pool : nullptr;

    const auto run_cell = [&](std::size_t wi, std::size_t ci) {
        cells[wi][ci] =
            rebuild ? computeSampledCell(workloads[wi], configs[ci],
                                         opt, library_dir, true,
                                         trace_hashes[wi],
                                         intra_pool, intra)
                    : sampledCellShared(workloads[wi], configs[ci],
                                        opt, library_dir,
                                        trace_hashes[wi],
                                        intra_pool, intra);
    };

    if (pool && jobs > 1 && n_cells > 1) {
        std::vector<std::future<void>> tasks;
        tasks.reserve(n_cells);
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            for (std::size_t ci = 0; ci < configs.size(); ++ci) {
                tasks.push_back(pool->submit(
                    [&run_cell, wi, ci] { run_cell(wi, ci); }));
            }
        }
        for (auto &t : tasks)
            pool->helpWait(t);
    } else {
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            for (std::size_t ci = 0; ci < configs.size(); ++ci)
                run_cell(wi, ci);
        }
    }
    return cells;
}

namespace {

/** The report's sampled series matching @p metric, if any. */
const sim::SampleStats *
sampleSeriesOf(const Metric &metric, const sim::SampleReport &rep)
{
    if (metric.name == "miss ratio")
        return &rep.missRatio;
    if (metric.name == "AMAT")
        return &rep.amat;
    if (metric.name == "words/ref")
        return &rep.wordsPerAccess;
    return nullptr;
}

/** Point estimate matching @p series (one of the report's three). */
double
sampleEstimateOf(const sim::SampleStats *series,
                 const sim::SampleReport &rep)
{
    if (series == &rep.missRatio)
        return rep.missRatioEstimate();
    if (series == &rep.amat)
        return rep.amatEstimate();
    return rep.wordsPerAccessEstimate();
}

} // namespace

util::Table
sampledMatrix(const std::vector<Workload> &workloads,
              const std::vector<core::Config> &configs,
              const std::vector<std::vector<Runner::SampledCell>> &cells,
              const Metric &metric)
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const auto row = table.addRow();
        table.set(row, 0, workloads[wi].name);
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            const sim::SampleReport &rep = cells[wi][ci].report;
            if (const auto *series = sampleSeriesOf(metric, rep)) {
                table.set(row, ci + 1,
                          sim::formatWithCi(
                              sampleEstimateOf(series, rep),
                              rep.halfWidthOf(*series),
                              metric.decimals));
            } else {
                table.setNumber(row, ci + 1,
                                metric.extract(rep.detailed),
                                metric.decimals);
            }
        }
    }
    return table;
}

std::vector<Workload>
paperWorkloads()
{
    std::vector<Workload> out;
    for (const auto &b : workloads::paperBenchmarks()) {
        out.push_back(
            {b.name,
             [name = b.name] {
                 return workloads::makeBenchmarkTrace(name);
             },
             [name = b.name](const trace::RecordSink &sink) {
                 workloads::streamBenchmarkTrace(name, sink);
             }});
    }
    return out;
}

namespace {

/** Quote a CSV field when it contains separators or quotes. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
toCsv(const util::Table &table)
{
    std::ostringstream os;
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (c)
            os << ',';
        os << csvField(table.header(c));
    }
    os << '\n';
    for (std::size_t r = 0; r < table.rows(); ++r) {
        for (std::size_t c = 0; c < table.cols(); ++c) {
            if (c)
                os << ',';
            os << csvField(table.cell(r, c));
        }
        os << '\n';
    }
    return os.str();
}

// The legacy per-engine writers are thin wrappers over the unified
// writeCellManifest(dir, ManifestCell, EngineTag) in sweep.cc; they
// remain for one release (see the @deprecated notes in the header).

std::string
writeCellManifest(const std::string &dir, const std::string &workload,
                  const core::Config &cfg,
                  const sim::RunStats &stats, double sim_seconds,
                  const util::Json *extra_timing)
{
    ManifestCell cell;
    cell.workload = workload;
    cell.config = &cfg;
    cell.stats = &stats;
    cell.simSeconds = sim_seconds;
    cell.extraTiming = extra_timing;
    return writeCellManifest(dir, cell, EngineTag::ExactReplay);
}

std::string
writeInstrumentedCellManifest(const std::string &dir,
                              const std::string &workload,
                              const core::Config &cfg,
                              const trace::Trace &t,
                              const sim::RunStats &stats,
                              const InstrumentOptions &opt,
                              double sim_seconds,
                              const util::Json *extra_timing)
{
    ManifestCell cell;
    cell.workload = workload;
    cell.config = &cfg;
    cell.stats = &stats;
    cell.trace = &t;
    cell.instrument = opt;
    cell.simSeconds = sim_seconds;
    cell.extraTiming = extra_timing;
    return writeCellManifest(dir, cell, EngineTag::ExactReplay);
}

std::string
writeSampledCellManifest(const std::string &dir,
                         const std::string &workload,
                         const core::Config &cfg,
                         const sim::SampleReport &report,
                         const sim::SamplingOptions &opt,
                         double sim_seconds,
                         const util::Json *checkpoint)
{
    ManifestCell cell;
    cell.workload = workload;
    cell.config = &cfg;
    cell.report = &report;
    cell.sampling = &opt;
    cell.checkpoint = checkpoint;
    cell.simSeconds = sim_seconds;
    return writeCellManifest(dir, cell,
                             checkpoint ? EngineTag::SampledLivepoint
                                        : EngineTag::Sampled);
}

std::string
writeStackCellManifest(const std::string &dir,
                       const std::string &workload,
                       const core::Config &cfg,
                       const sim::RunStats &stats,
                       std::size_t family_size, double pass_seconds)
{
    ManifestCell cell;
    cell.workload = workload;
    cell.config = &cfg;
    cell.stats = &stats;
    cell.stackFamilySize = family_size;
    cell.simSeconds = pass_seconds;
    return writeCellManifest(dir, cell, EngineTag::StackSinglePass);
}

bool
writeCsvFile(const util::Table &table, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toCsv(table);
    return static_cast<bool>(os);
}

} // namespace harness
} // namespace sac
