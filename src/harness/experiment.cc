#include "src/harness/experiment.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <optional>
#include <sstream>

#include "src/telemetry/counter_registry.hh"
#include "src/telemetry/manifest.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/workloads.hh"

namespace sac {
namespace harness {

Metric
amatMetric()
{
    return {"AMAT", [](const sim::RunStats &s) { return s.amat(); }, 3};
}

Metric
missRatioMetric()
{
    return {"miss ratio",
            [](const sim::RunStats &s) { return s.missRatio(); }, 4};
}

Metric
wordsPerAccessMetric()
{
    return {"words/ref",
            [](const sim::RunStats &s) {
                return s.wordsFetchedPerAccess();
            },
            3};
}

Metric
mainHitShareMetric()
{
    return {"main-hit share",
            [](const sim::RunStats &s) { return s.mainHitShare(); },
            3};
}

Metric
auxHitShareMetric()
{
    return {"aux-hit share",
            [](const sim::RunStats &s) { return s.auxHitShare(); }, 3};
}

const trace::Trace &
Runner::traceOf(const Workload &w)
{
    Slot<trace::Trace> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = traces_[w.name];
        if (!entry)
            entry = std::make_unique<Slot<trace::Trace>>();
        slot = entry.get(); // stable: the map holds pointers
    }
    std::call_once(slot->once, [&] {
        const telemetry::ScopedPhase phase(phases_, "trace-gen");
        slot->value = w.build();
        tracesGenerated_.fetch_add(1);
    });
    return slot->value;
}

void
Runner::warmup(const std::vector<Workload> &workloads)
{
    const telemetry::ScopedPhase phase(phases_, "warmup");
    for (const auto &w : workloads)
        traceOf(w);
}

const Runner::CellResult &
Runner::cell(const Workload &w, const core::Config &cfg)
{
    const auto key = std::make_pair(w.name, cfg.cacheKey());
    Slot<CellResult> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = results_[key];
        if (!entry)
            entry = std::make_unique<Slot<CellResult>>();
        slot = entry.get();
    }
    std::call_once(slot->once, [&] {
        const trace::Trace &t = traceOf(w);
        const telemetry::ScopedPhase phase(phases_, "sim");
        slot->value.stats = core::simulateTrace(t, cfg);
        slot->value.simSeconds = phase.elapsed();
        runsExecuted_.fetch_add(1);
    });
    return slot->value;
}

const sim::RunStats &
Runner::run(const Workload &w, const core::Config &cfg)
{
    return cell(w, cfg).stats;
}

Runner::SweepTiming
Runner::lastSweep() const
{
    std::lock_guard<std::mutex> lock(sweepMutex_);
    return lastSweep_;
}

util::Table
Runner::matrix(const std::vector<Workload> &workloads,
               const std::vector<core::Config> &configs,
               const Metric &metric)
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (const auto &w : workloads) {
        const auto row = table.addRow();
        table.set(row, 0, w.name);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            table.setNumber(row, c + 1,
                            metric.extract(run(w, configs[c])),
                            metric.decimals);
        }
    }
    return table;
}

util::Table
Runner::runMatrix(const std::vector<Workload> &workloads,
                  const std::vector<core::Config> &configs,
                  const Metric &metric, unsigned jobs)
{
    const std::size_t n_cells = workloads.size() * configs.size();
    const auto sweep_start = std::chrono::steady_clock::now();
    // Per-worker busy time: summed wall time of the cell tasks
    // (nanoseconds so workers can accumulate without a double CAS).
    std::atomic<std::uint64_t> busy_ns{0};
    const auto timed_cell = [this, &busy_ns](const Workload &w,
                                             const core::Config &cfg) {
        const auto t0 = std::chrono::steady_clock::now();
        run(w, cfg);
        busy_ns.fetch_add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    };

    if (jobs > 1 && n_cells > 1) {
        // Simulate every cell concurrently. run() latches each trace
        // and each result exactly once, so racing cells block on the
        // first producer instead of duplicating work. The futures
        // re-raise any exception a cell threw.
        util::ThreadPool pool(jobs);
        std::vector<std::future<void>> cells;
        cells.reserve(n_cells);
        for (const auto &w : workloads) {
            for (const auto &cfg : configs) {
                cells.push_back(pool.submit(
                    [&timed_cell, &w, &cfg] { timed_cell(w, cfg); }));
            }
        }
        for (auto &cell : cells)
            cell.get();
    } else {
        for (const auto &w : workloads) {
            for (const auto &cfg : configs)
                timed_cell(w, cfg);
        }
    }

    const double sweep_wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - sweep_start)
            .count();
    phases_.add("sweep", sweep_wall);
    {
        std::lock_guard<std::mutex> lock(sweepMutex_);
        lastSweep_.wallSeconds = sweep_wall;
        lastSweep_.busySeconds =
            static_cast<double>(busy_ns.load()) * 1e-9;
        lastSweep_.jobs = std::max(1u, jobs);
    }

    // Render serially from the (now warm) cache: ordering, rounding
    // and therefore bytes are identical to the serial path.
    const telemetry::ScopedPhase render(phases_, "report");
    return matrix(workloads, configs, metric);
}

std::vector<sim::RunStats>
Runner::runStreamed(const Workload &w,
                    const std::vector<core::Config> &configs,
                    unsigned jobs, std::size_t chunk_records)
{
    const telemetry::ScopedPhase phase(phases_, "sweep-streamed");
    std::vector<std::unique_ptr<core::SoftwareAssistedCache>> sims;
    sims.reserve(configs.size());
    for (const auto &cfg : configs)
        sims.push_back(
            std::make_unique<core::SoftwareAssistedCache>(cfg));

    // Producer: the workload's native streaming entry when it has
    // one; otherwise generate the full trace and replay it (still
    // correct, but memory then scales with the trace length).
    const auto produce =
        w.stream ? w.stream
                 : std::function<void(const trace::RecordSink &)>(
                       [&w](const trace::RecordSink &sink) {
                           const trace::Trace t = w.build();
                           for (const auto &rec : t)
                               sink(rec);
                       });
    // One bounded queue between the producer thread and this thread;
    // the per-config fan-out below is a barrier per chunk, so no
    // simulator can fall behind and no per-config queue can fill up
    // while its consumer is unscheduled (the deadlock a per-config
    // queue design would allow when pool threads < configs).
    trace::GeneratorTraceSource src(w.name, produce, chunk_records);

    std::optional<util::ThreadPool> pool;
    if (jobs > 1 && configs.size() > 1)
        pool.emplace(jobs);

    std::vector<trace::Record> batch(chunk_records);
    std::size_t n;
    while ((n = src.next(batch.data(), batch.size())) > 0) {
        if (pool) {
            std::vector<std::future<void>> tasks;
            tasks.reserve(sims.size());
            for (auto &sim : sims) {
                tasks.push_back(pool->submit([&sim, &batch, n] {
                    for (std::size_t i = 0; i < n; ++i)
                        sim->access(batch[i]);
                }));
            }
            // Barrier: the next next() call overwrites the batch.
            for (auto &t : tasks)
                t.get();
        } else {
            for (auto &sim : sims) {
                for (std::size_t i = 0; i < n; ++i)
                    sim->access(batch[i]);
            }
        }
    }

    std::vector<sim::RunStats> out;
    out.reserve(sims.size());
    for (auto &sim : sims) {
        sim->finish();
        out.push_back(sim->stats());
    }
    runsExecuted_.fetch_add(sims.size());
    return out;
}

std::vector<Workload>
paperWorkloads()
{
    std::vector<Workload> out;
    for (const auto &b : workloads::paperBenchmarks()) {
        out.push_back(
            {b.name,
             [name = b.name] {
                 return workloads::makeBenchmarkTrace(name);
             },
             [name = b.name](const trace::RecordSink &sink) {
                 workloads::streamBenchmarkTrace(name, sink);
             }});
    }
    return out;
}

namespace {

/** Quote a CSV field when it contains separators or quotes. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
toCsv(const util::Table &table)
{
    std::ostringstream os;
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (c)
            os << ',';
        os << csvField(table.header(c));
    }
    os << '\n';
    for (std::size_t r = 0; r < table.rows(); ++r) {
        for (std::size_t c = 0; c < table.cols(); ++c) {
            if (c)
                os << ',';
            os << csvField(table.cell(r, c));
        }
        os << '\n';
    }
    return os.str();
}

std::string
writeCellManifest(const std::string &dir, const std::string &workload,
                  const core::Config &cfg,
                  const sim::RunStats &stats, double sim_seconds,
                  const util::Json *extra_timing)
{
    telemetry::Manifest m;
    m.workload = workload;
    m.configName = cfg.name;
    m.cacheKey = cfg.cacheKey();
    m.config = cfg.toJson();

    telemetry::CounterRegistry reg;
    stats.registerInto(reg);
    m.counters = reg.toJson();

    m.metrics = util::Json::object();
    m.metrics.set("amat", stats.amat());
    m.metrics.set("miss_ratio", stats.missRatio());
    m.metrics.set("hit_ratio", stats.hitRatio());
    m.metrics.set("main_hit_share", stats.mainHitShare());
    m.metrics.set("aux_hit_share", stats.auxHitShare());
    m.metrics.set("words_per_access",
                  stats.wordsFetchedPerAccess());
    m.metrics.set("total_access_cycles", stats.totalAccessCycles);

    m.timing = util::Json::object();
    if (sim_seconds > 0.0)
        m.timing.set("sim_seconds", sim_seconds);
    if (extra_timing && extra_timing->type() == util::Json::Type::Object)
        m.timing.set("phases", *extra_timing);

    return telemetry::writeManifestFile(dir, m);
}

bool
writeCsvFile(const util::Table &table, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toCsv(table);
    return static_cast<bool>(os);
}

} // namespace harness
} // namespace sac
