#include "src/harness/experiment.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>

#include "src/telemetry/counter_registry.hh"
#include "src/telemetry/interval.hh"
#include "src/telemetry/manifest.hh"
#include "src/telemetry/set_profile.hh"
#include "src/util/logging.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/workloads.hh"

namespace sac {
namespace harness {

Metric
amatMetric()
{
    return {"AMAT", [](const sim::RunStats &s) { return s.amat(); }, 3};
}

Metric
missRatioMetric()
{
    return {"miss ratio",
            [](const sim::RunStats &s) { return s.missRatio(); }, 4};
}

Metric
wordsPerAccessMetric()
{
    return {"words/ref",
            [](const sim::RunStats &s) {
                return s.wordsFetchedPerAccess();
            },
            3};
}

Metric
mainHitShareMetric()
{
    return {"main-hit share",
            [](const sim::RunStats &s) { return s.mainHitShare(); },
            3};
}

Metric
auxHitShareMetric()
{
    return {"aux-hit share",
            [](const sim::RunStats &s) { return s.auxHitShare(); }, 3};
}

const trace::Trace &
Runner::traceOf(const Workload &w)
{
    Slot<trace::Trace> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = traces_[w.name];
        if (!entry)
            entry = std::make_unique<Slot<trace::Trace>>();
        slot = entry.get(); // stable: the map holds pointers
    }
    std::call_once(slot->once, [&] {
        const telemetry::ScopedPhase phase(phases_, "trace-gen");
        slot->value = w.build();
        tracesGenerated_.fetch_add(1);
    });
    return slot->value;
}

void
Runner::warmup(const std::vector<Workload> &workloads)
{
    const telemetry::ScopedPhase phase(phases_, "warmup");
    for (const auto &w : workloads)
        traceOf(w);
}

const Runner::CellResult &
Runner::cell(const Workload &w, const core::Config &cfg)
{
    const auto key = std::make_pair(w.name, cfg.cacheKey());
    Slot<CellResult> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = results_[key];
        if (!entry)
            entry = std::make_unique<Slot<CellResult>>();
        slot = entry.get();
    }
    std::call_once(slot->once, [&] {
        const trace::Trace &t = traceOf(w);
        const telemetry::ScopedPhase phase(phases_, "sim");
        slot->value.stats = core::simulateTrace(t, cfg);
        slot->value.simSeconds = phase.elapsed();
        runsExecuted_.fetch_add(1);
    });
    return slot->value;
}

const sim::RunStats &
Runner::run(const Workload &w, const core::Config &cfg)
{
    return cell(w, cfg).stats;
}

Runner::SweepTiming
Runner::lastSweep() const
{
    std::lock_guard<std::mutex> lock(sweepMutex_);
    return lastSweep_;
}

util::Table
Runner::matrix(const std::vector<Workload> &workloads,
               const std::vector<core::Config> &configs,
               const Metric &metric)
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (const auto &w : workloads) {
        const auto row = table.addRow();
        table.set(row, 0, w.name);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            table.setNumber(row, c + 1,
                            metric.extract(run(w, configs[c])),
                            metric.decimals);
        }
    }
    return table;
}

bool
stackFamilyEligible(const core::Config &cfg)
{
    // Only the Standard feature path is a plain LRU cache the stack
    // model reproduces. featureSetOf() does not look at
    // preferNonTemporalReplacement (it changes the victim choice, not
    // the feature lattice), so it is excluded here explicitly.
    return core::featureSetOf(cfg) == core::FeatureSet::Standard &&
           !cfg.preferNonTemporalReplacement &&
           stackPointOf(cfg).wellFormed();
}

bool
stackDerivableMetric(const Metric &metric)
{
    return metric.name == "miss ratio" ||
           metric.name == "words/ref" ||
           metric.name == "main-hit share" ||
           metric.name == "aux-hit share";
}

sim::StackPoint
stackPointOf(const core::Config &cfg)
{
    return {cfg.cacheSizeBytes, cfg.lineBytes, cfg.assoc};
}

sim::RunStats
stackStatsFor(const sim::StackDistanceEngine &eng,
              const core::Config &cfg)
{
    sim::RunStats s;
    s.accesses = eng.accesses();
    s.reads = eng.reads();
    s.writes = eng.writes();
    s.misses = eng.missCount(stackPointOf(cfg));
    // Standard path: every non-miss hits the main array, and every
    // miss fetches exactly one physical line (write-allocate).
    s.mainHits = s.accesses - s.misses;
    s.linesFetched = s.misses;
    s.bytesFetched = s.misses * cfg.lineBytes;
    return s;
}

void
Runner::runStackFamily(const Workload &w,
                       const std::vector<const core::Config *> &family)
{
    std::size_t missing = 0;
    {
        std::lock_guard<std::mutex> lock(stackMutex_);
        for (const core::Config *cfg : family) {
            if (!stackResults_.count({w.name, cfg->cacheKey()}))
                ++missing;
        }
        stackCounters_.counter("stack.pass.cached_cells",
                               "sweep cells served from the stack "
                               "store") += family.size() - missing;
    }
    if (missing == 0)
        return;

    // One traversal covers the whole family, so even a sweep that
    // adds a single new point to a mostly-cached family costs one
    // pass, never per-point replays.
    std::vector<sim::StackPoint> points;
    points.reserve(family.size());
    for (const core::Config *cfg : family)
        points.push_back(stackPointOf(*cfg));
    sim::StackDistanceEngine eng(points);

    const trace::Trace &t = traceOf(w);
    std::uint64_t records = 0;
    {
        const telemetry::ScopedPhase phase(phases_, "stack-pass");
        trace::MemoryTraceSource src(t);
        records = eng.run(src);
    }

    std::lock_guard<std::mutex> lock(stackMutex_);
    for (const core::Config *cfg : family) {
        stackResults_.try_emplace({w.name, cfg->cacheKey()},
                                  stackStatsFor(eng, *cfg));
    }
    ++stackCounters_.counter("stack.pass.traversals",
                             "single-pass stack traversals executed");
    stackCounters_.counter("stack.pass.records",
                           "records profiled by stack traversals") +=
        records;
    stackCounters_.counter("stack.pass.cells",
                           "sweep cells served fresh from a stack "
                           "pass") += missing;
}

const sim::RunStats *
Runner::stackStats(const Workload &w, const core::Config &cfg) const
{
    std::lock_guard<std::mutex> lock(stackMutex_);
    const auto it = stackResults_.find({w.name, cfg.cacheKey()});
    return it == stackResults_.end() ? nullptr : &it->second;
}

std::uint64_t
Runner::stackCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(stackMutex_);
    return stackCounters_.value(name);
}

std::uint64_t
Runner::checkpointCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(checkpointMutex_);
    return checkpointCounters_.value(name);
}

util::Table
Runner::runMatrix(const std::vector<Workload> &workloads,
                  const std::vector<core::Config> &configs,
                  const Metric &metric, unsigned jobs)
{
    const auto sweep_start = std::chrono::steady_clock::now();
    // Per-worker busy time: summed wall time of the cell tasks
    // (nanoseconds so workers can accumulate without a double CAS).
    std::atomic<std::uint64_t> busy_ns{0};
    const auto timed_cell = [this, &busy_ns](const Workload &w,
                                             const core::Config &cfg) {
        const auto t0 = std::chrono::steady_clock::now();
        run(w, cfg);
        busy_ns.fetch_add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    };

    // Partition into the stack family — served by one single-pass
    // traversal per workload — and the exact remainder. A family of
    // one gains nothing over a replay, so dispatch needs two members.
    std::vector<const core::Config *> family;
    std::vector<const core::Config *> exact;
    if (stackDerivableMetric(metric)) {
        for (const auto &cfg : configs) {
            (stackFamilyEligible(cfg) ? family : exact).push_back(&cfg);
        }
    }
    if (family.size() < 2) {
        family.clear();
        exact.clear();
        for (const auto &cfg : configs)
            exact.push_back(&cfg);
    }

    if (!family.empty()) {
        // Stack passes run serially on this thread: each is already a
        // whole-family batch, and the counter registry is
        // single-threaded by design.
        for (const auto &w : workloads) {
            const auto t0 = std::chrono::steady_clock::now();
            runStackFamily(w, family);
            busy_ns.fetch_add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
        }
        if (!exact.empty()) {
            std::lock_guard<std::mutex> lock(stackMutex_);
            stackCounters_.counter("stack.pass.fallback_cells",
                                   "cells exact-replayed in "
                                   "stack-dispatched sweeps") +=
                workloads.size() * exact.size();
        }
    }

    const std::size_t n_exact = workloads.size() * exact.size();
    if (jobs > 1 && n_exact > 1) {
        // Simulate every exact cell concurrently. run() latches each
        // trace and each result exactly once, so racing cells block
        // on the first producer instead of duplicating work. The
        // futures re-raise any exception a cell threw.
        util::ThreadPool pool(jobs);
        std::vector<std::future<void>> cells;
        cells.reserve(n_exact);
        for (const auto &w : workloads) {
            for (const core::Config *cfg : exact) {
                cells.push_back(pool.submit(
                    [&timed_cell, &w, cfg] { timed_cell(w, *cfg); }));
            }
        }
        for (auto &cell : cells)
            cell.get();
    } else {
        for (const auto &w : workloads) {
            for (const core::Config *cfg : exact)
                timed_cell(w, *cfg);
        }
    }

    const double sweep_wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - sweep_start)
            .count();
    phases_.add("sweep", sweep_wall);
    {
        std::lock_guard<std::mutex> lock(sweepMutex_);
        lastSweep_.wallSeconds = sweep_wall;
        lastSweep_.busySeconds =
            static_cast<double>(busy_ns.load()) * 1e-9;
        lastSweep_.jobs = std::max(1u, jobs);
    }

    // Render serially: ordering, rounding and therefore bytes are
    // identical to the serial path (stack-served cells extract the
    // same integer counts replay would produce, so the rendered
    // doubles match bit for bit).
    const telemetry::ScopedPhase render(phases_, "report");
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (const auto &w : workloads) {
        const auto row = table.addRow();
        table.set(row, 0, w.name);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const sim::RunStats *s =
                family.empty() ? nullptr : stackStats(w, configs[c]);
            table.setNumber(row, c + 1,
                            metric.extract(s ? *s
                                             : run(w, configs[c])),
                            metric.decimals);
        }
    }
    return table;
}

std::vector<sim::RunStats>
Runner::runStreamed(const Workload &w,
                    const std::vector<core::Config> &configs,
                    unsigned jobs, std::size_t chunk_records)
{
    const telemetry::ScopedPhase phase(phases_, "sweep-streamed");
    std::vector<std::unique_ptr<core::SoftwareAssistedCache>> sims;
    sims.reserve(configs.size());
    for (const auto &cfg : configs)
        sims.push_back(
            std::make_unique<core::SoftwareAssistedCache>(cfg));

    // Producer: the workload's native streaming entry when it has
    // one; otherwise generate the full trace and replay it (still
    // correct, but memory then scales with the trace length).
    const auto produce =
        w.stream ? w.stream
                 : std::function<void(const trace::RecordSink &)>(
                       [&w](const trace::RecordSink &sink) {
                           const trace::Trace t = w.build();
                           for (const auto &rec : t)
                               sink(rec);
                       });
    // One bounded queue between the producer thread and this thread;
    // the per-config fan-out below is a barrier per chunk, so no
    // simulator can fall behind and no per-config queue can fill up
    // while its consumer is unscheduled (the deadlock a per-config
    // queue design would allow when pool threads < configs).
    trace::GeneratorTraceSource src(w.name, produce, chunk_records);

    // More workers than simulators can never help: each simulator is
    // sequential over its records.
    const std::size_t groups =
        std::min<std::size_t>(jobs, configs.size());
    std::optional<util::ThreadPool> pool;
    if (groups > 1)
        pool.emplace(static_cast<unsigned>(groups));

    // Double-buffered chunks: while the pool replays one chunk, this
    // thread already pulls the next from the producer queue, so the
    // queue handoff overlaps simulation instead of serializing with
    // it at every barrier.
    std::vector<trace::Record> batches[2] = {
        std::vector<trace::Record>(chunk_records),
        std::vector<trace::Record>(chunk_records)};
    std::vector<std::future<void>> tasks;
    tasks.reserve(groups);

    std::size_t cur = 0;
    std::size_t n = src.next(batches[cur].data(), chunk_records);
    while (n > 0) {
        if (pool) {
            // Fan the chunk out as `groups` contiguous simulator
            // groups — one task per worker, not per config, so the
            // per-chunk submit/notify overhead does not scale with
            // the sweep width.
            tasks.clear();
            const std::size_t per = (sims.size() + groups - 1) / groups;
            const trace::Record *data = batches[cur].data();
            for (std::size_t g0 = 0; g0 < sims.size(); g0 += per) {
                const std::size_t g1 =
                    std::min(sims.size(), g0 + per);
                tasks.push_back(pool->submit([&sims, g0, g1, data, n] {
                    for (std::size_t s = g0; s < g1; ++s) {
                        for (std::size_t i = 0; i < n; ++i)
                            sims[s]->access(data[i]);
                    }
                }));
            }
            const std::size_t nxt = 1 - cur;
            const std::size_t n_next =
                src.next(batches[nxt].data(), chunk_records);
            // Barrier: re-raises any worker exception; after it the
            // just-replayed buffer is free to be overwritten.
            for (auto &t : tasks)
                t.get();
            cur = nxt;
            n = n_next;
        } else {
            for (auto &sim : sims) {
                for (std::size_t i = 0; i < n; ++i)
                    sim->access(batches[cur][i]);
            }
            n = src.next(batches[cur].data(), chunk_records);
        }
    }

    std::vector<sim::RunStats> out;
    out.reserve(sims.size());
    for (auto &sim : sims) {
        sim->finish();
        out.push_back(sim->stats());
    }
    runsExecuted_.fetch_add(sims.size());
    return out;
}

std::vector<std::vector<Runner::SampledCell>>
Runner::runSampled(const std::vector<Workload> &workloads,
                   const std::vector<core::Config> &configs,
                   const sim::SamplingOptions &opt, unsigned jobs)
{
    return runSampled(workloads, configs, opt, jobs, std::string(),
                      false);
}

std::vector<std::vector<Runner::SampledCell>>
Runner::runSampled(const std::vector<Workload> &workloads,
                   const std::vector<core::Config> &configs,
                   const sim::SamplingOptions &opt, unsigned jobs,
                   const std::string &checkpoint_dir, bool rebuild)
{
    const telemetry::ScopedPhase phase(phases_, "sweep-sampled");
    const sim::SampledEngine engine(opt);
    const bool use_library =
        !checkpoint_dir.empty() && engine.checkpointable();

    // Latch every trace first so the parallel phase below measures
    // sampled replay alone (and workers never race a generation).
    for (const auto &w : workloads)
        traceOf(w);

    // Library identity is the trace *content*, not its name: hash
    // once per workload, outside the parallel phase.
    std::vector<std::uint64_t> trace_hashes(workloads.size(), 0);
    if (use_library) {
        for (std::size_t wi = 0; wi < workloads.size(); ++wi)
            trace_hashes[wi] = sim::hashTrace(traceOf(workloads[wi]));
    }

    std::vector<std::vector<SampledCell>> cells(
        workloads.size(), std::vector<SampledCell>(configs.size()));

    const auto run_cell = [&](std::size_t wi, std::size_t ci) {
        const auto t0 = std::chrono::steady_clock::now();
        const trace::Trace &t = traceOf(workloads[wi]);
        core::SoftwareAssistedCache sim(configs[ci]);
        if (use_library) {
            sim::CheckpointKey key;
            key.traceHash = trace_hashes[wi];
            key.configKey = configs[ci].cacheKey();
            key.window = opt.window;
            key.stride = opt.stride;
            key.warmup = opt.warmup;
            const std::string path = sim::CheckpointLibrary::pathFor(
                checkpoint_dir, t.name(), key);

            sim::CheckpointLibrary lib;
            using LoadResult = sim::CheckpointLibrary::LoadResult;
            const LoadResult r = rebuild ? LoadResult::Missing
                                         : lib.load(path, key);
            std::uint64_t bytes = 0;
            if (r == LoadResult::Hit) {
                bytes = lib.loadedBytes();
            } else {
                // Warm once through the builder (a warming-only
                // mirror of the sampled replay), persist, then run
                // the same restore path a hit takes.
                core::SoftwareAssistedCache warmer(configs[ci]);
                trace::MemoryTraceSource warm_src(t);
                engine.buildLibrary(warm_src, warmer, lib);
                bytes = lib.save(path, key);
            }
            {
                std::lock_guard<std::mutex> lock(checkpointMutex_);
                if (r == LoadResult::Hit) {
                    ++checkpointCounters_.counter(
                        "checkpoint.hits",
                        "sampled cells served from a live-point "
                        "library");
                } else {
                    if (r == LoadResult::Stale)
                        ++checkpointCounters_.counter(
                            "checkpoint.stale",
                            "libraries rejected as stale (key, "
                            "version or file mismatch)");
                    ++checkpointCounters_.counter(
                        "checkpoint.misses",
                        "sampled cells that warmed and wrote a "
                        "library");
                }
                checkpointCounters_.counter(
                    "checkpoint.bytes",
                    "bytes moved through .saclp files") += bytes;
            }
            trace::MemoryTraceSource src(t);
            cells[wi][ci].report =
                engine.runCheckpointed(src, sim, lib);
            cells[wi][ci].fromCheckpoints = true;
        } else {
            trace::MemoryTraceSource src(t);
            cells[wi][ci].report = engine.run(src, sim);
        }
        cells[wi][ci].simSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        runsExecuted_.fetch_add(1);
    };

    const std::size_t n_cells = workloads.size() * configs.size();
    if (jobs > 1 && n_cells > 1) {
        util::ThreadPool pool(jobs);
        std::vector<std::future<void>> tasks;
        tasks.reserve(n_cells);
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            for (std::size_t ci = 0; ci < configs.size(); ++ci) {
                tasks.push_back(pool.submit(
                    [&run_cell, wi, ci] { run_cell(wi, ci); }));
            }
        }
        for (auto &t : tasks)
            t.get();
    } else {
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            for (std::size_t ci = 0; ci < configs.size(); ++ci)
                run_cell(wi, ci);
        }
    }
    return cells;
}

namespace {

/** The report's sampled series matching @p metric, if any. */
const sim::SampleStats *
sampleSeriesOf(const Metric &metric, const sim::SampleReport &rep)
{
    if (metric.name == "miss ratio")
        return &rep.missRatio;
    if (metric.name == "AMAT")
        return &rep.amat;
    if (metric.name == "words/ref")
        return &rep.wordsPerAccess;
    return nullptr;
}

/** Point estimate matching @p series (one of the report's three). */
double
sampleEstimateOf(const sim::SampleStats *series,
                 const sim::SampleReport &rep)
{
    if (series == &rep.missRatio)
        return rep.missRatioEstimate();
    if (series == &rep.amat)
        return rep.amatEstimate();
    return rep.wordsPerAccessEstimate();
}

} // namespace

util::Table
sampledMatrix(const std::vector<Workload> &workloads,
              const std::vector<core::Config> &configs,
              const std::vector<std::vector<Runner::SampledCell>> &cells,
              const Metric &metric)
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &cfg : configs)
        headers.push_back(cfg.name);
    util::Table table(std::move(headers));
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const auto row = table.addRow();
        table.set(row, 0, workloads[wi].name);
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            const sim::SampleReport &rep = cells[wi][ci].report;
            if (const auto *series = sampleSeriesOf(metric, rep)) {
                table.set(row, ci + 1,
                          sim::formatWithCi(
                              sampleEstimateOf(series, rep),
                              rep.halfWidthOf(*series),
                              metric.decimals));
            } else {
                table.setNumber(row, ci + 1,
                                metric.extract(rep.detailed),
                                metric.decimals);
            }
        }
    }
    return table;
}

std::vector<Workload>
paperWorkloads()
{
    std::vector<Workload> out;
    for (const auto &b : workloads::paperBenchmarks()) {
        out.push_back(
            {b.name,
             [name = b.name] {
                 return workloads::makeBenchmarkTrace(name);
             },
             [name = b.name](const trace::RecordSink &sink) {
                 workloads::streamBenchmarkTrace(name, sink);
             }});
    }
    return out;
}

namespace {

/** Quote a CSV field when it contains separators or quotes. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
toCsv(const util::Table &table)
{
    std::ostringstream os;
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (c)
            os << ',';
        os << csvField(table.header(c));
    }
    os << '\n';
    for (std::size_t r = 0; r < table.rows(); ++r) {
        for (std::size_t c = 0; c < table.cols(); ++c) {
            if (c)
                os << ',';
            os << csvField(table.cell(r, c));
        }
        os << '\n';
    }
    return os.str();
}

namespace {

/** The shared exact-replay cell manifest (no instrumentation). */
telemetry::Manifest
exactCellManifest(const std::string &workload, const core::Config &cfg,
                  const sim::RunStats &stats, double sim_seconds,
                  const util::Json *extra_timing)
{
    telemetry::Manifest m;
    m.workload = workload;
    m.configName = cfg.name;
    m.cacheKey = cfg.cacheKey();
    m.engine = "exact-replay";
    m.config = cfg.toJson();

    telemetry::CounterRegistry reg;
    stats.registerInto(reg);
    m.counters = reg.toJson();

    m.metrics = util::Json::object();
    m.metrics.set("amat", stats.amat());
    m.metrics.set("miss_ratio", stats.missRatio());
    m.metrics.set("hit_ratio", stats.hitRatio());
    m.metrics.set("main_hit_share", stats.mainHitShare());
    m.metrics.set("aux_hit_share", stats.auxHitShare());
    m.metrics.set("words_per_access",
                  stats.wordsFetchedPerAccess());
    m.metrics.set("total_access_cycles", stats.totalAccessCycles);

    m.timing = util::Json::object();
    if (sim_seconds > 0.0)
        m.timing.set("sim_seconds", sim_seconds);
    if (extra_timing && extra_timing->type() == util::Json::Type::Object)
        m.timing.set("phases", *extra_timing);

    return m;
}

} // namespace

std::string
writeCellManifest(const std::string &dir, const std::string &workload,
                  const core::Config &cfg,
                  const sim::RunStats &stats, double sim_seconds,
                  const util::Json *extra_timing)
{
    return telemetry::writeManifestFile(
        dir, exactCellManifest(workload, cfg, stats, sim_seconds,
                               extra_timing));
}

std::string
writeInstrumentedCellManifest(const std::string &dir,
                              const std::string &workload,
                              const core::Config &cfg,
                              const trace::Trace &t,
                              const sim::RunStats &stats,
                              const InstrumentOptions &opt,
                              double sim_seconds,
                              const util::Json *extra_timing)
{
    const bool wants = opt.intervalRecords > 0 || opt.heatmap;
    if (!wants) {
        return writeCellManifest(dir, workload, cfg, stats,
                                 sim_seconds, extra_timing);
    }
    if (!core::SoftwareAssistedCache::intervalHooksCompiledIn()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::cerr << "warning: --interval/--heatmap requested but "
                         "this build has SAC_INTERVAL=OFF; emitting "
                         "plain manifests (reconfigure with "
                         "-DSAC_INTERVAL=ON)\n";
        }
        return writeCellManifest(dir, workload, cfg, stats,
                                 sim_seconds, extra_timing);
    }

    // Instrumented re-replay. The hooks observe without perturbing,
    // so the result must reproduce the recorded run bit-for-bit.
    core::SoftwareAssistedCache sim(cfg);
    std::optional<telemetry::IntervalRecorder> recorder;
    std::optional<telemetry::SetProfiler> profiler;
    if (opt.intervalRecords > 0) {
        recorder.emplace(opt.intervalRecords);
        sim.attachIntervalRecorder(&*recorder);
    }
    if (opt.heatmap) {
        profiler.emplace(sim.mainArray().numSets());
        sim.attachSetProfiler(&*profiler);
    }
    sim.run(t);
    SAC_ASSERT(sim.stats() == stats,
               "instrumented replay diverged from the recorded run");

    telemetry::Manifest m = exactCellManifest(
        workload, cfg, stats, sim_seconds, extra_timing);
    if (profiler)
        m.profile = profiler->toJson();
    const std::string path = telemetry::writeManifestFile(dir, m);
    if (path.empty() || !recorder)
        return path;

    // The interval series rides next to the manifest:
    // <workload>_<hash>.json -> <workload>_<hash>.intervals.jsonl.
    std::string jsonl = path;
    const std::string suffix = ".json";
    jsonl.replace(jsonl.size() - suffix.size(), suffix.size(),
                  ".intervals.jsonl");
    if (!recorder->writeJsonl(jsonl, workload, cfg.name,
                              cfg.cacheKey()))
        return "";
    return path;
}

std::string
writeSampledCellManifest(const std::string &dir,
                         const std::string &workload,
                         const core::Config &cfg,
                         const sim::SampleReport &report,
                         const sim::SamplingOptions &opt,
                         double sim_seconds,
                         const util::Json *checkpoint)
{
    telemetry::Manifest m;
    m.workload = workload;
    m.configName = cfg.name;
    m.cacheKey = cfg.cacheKey();
    m.engine = checkpoint ? "sampled-livepoint" : "sampled";
    m.config = cfg.toJson();

    telemetry::CounterRegistry reg;
    report.detailed.registerInto(reg);
    m.counters = reg.toJson();

    const auto interval = [&report](double estimate,
                                    const sim::SampleStats &s) {
        util::Json j = util::Json::object();
        j.set("estimate", estimate);
        j.set("half_width", report.halfWidthOf(s));
        j.set("windows", s.count());
        return j;
    };

    util::Json sampling = util::Json::object();
    sampling.set("window", opt.window);
    sampling.set("stride", opt.stride);
    sampling.set("warmup", opt.warmup);
    sampling.set("confidence", report.confidence);
    sampling.set("windows", report.windows);
    sampling.set("records_total", report.recordsTotal);
    sampling.set("records_detailed", report.recordsDetailed);
    sampling.set("records_warmed", report.recordsWarmed);
    sampling.set("records_skipped", report.recordsSkipped);
    sampling.set("exact", report.exact);
    sampling.set("miss_ratio", interval(report.missRatioEstimate(),
                                        report.missRatio));
    sampling.set("amat", interval(report.amatEstimate(), report.amat));
    sampling.set("words_per_access",
                 interval(report.wordsPerAccessEstimate(),
                          report.wordsPerAccess));

    m.metrics = util::Json::object();
    m.metrics.set("amat", report.amatEstimate());
    m.metrics.set("miss_ratio", report.missRatioEstimate());
    m.metrics.set("words_per_access", report.wordsPerAccessEstimate());
    m.metrics.set("sampling", std::move(sampling));
    if (checkpoint)
        m.metrics.set("checkpoint", *checkpoint);

    m.timing = util::Json::object();
    if (sim_seconds > 0.0)
        m.timing.set("sim_seconds", sim_seconds);

    return telemetry::writeManifestFile(dir, m);
}

std::string
writeStackCellManifest(const std::string &dir,
                       const std::string &workload,
                       const core::Config &cfg,
                       const sim::RunStats &stats,
                       std::size_t family_size, double pass_seconds)
{
    telemetry::Manifest m;
    m.workload = workload;
    m.configName = cfg.name;
    m.cacheKey = cfg.cacheKey();
    m.engine = "stack-single-pass";
    m.config = cfg.toJson();

    telemetry::CounterRegistry reg;
    stats.registerInto(reg);
    m.counters = reg.toJson();

    // Count-derived metrics only: a stack pass yields no cycles, so
    // amat/total_access_cycles would be bogus zeros and are omitted.
    m.metrics = util::Json::object();
    m.metrics.set("miss_ratio", stats.missRatio());
    m.metrics.set("hit_ratio", stats.hitRatio());
    m.metrics.set("main_hit_share", stats.mainHitShare());
    m.metrics.set("aux_hit_share", stats.auxHitShare());
    m.metrics.set("words_per_access", stats.wordsFetchedPerAccess());
    util::Json stack = util::Json::object();
    stack.set("family_size",
              static_cast<std::uint64_t>(family_size));
    m.metrics.set("stack", std::move(stack));

    m.timing = util::Json::object();
    if (pass_seconds > 0.0)
        m.timing.set("pass_seconds", pass_seconds);

    return telemetry::writeManifestFile(dir, m);
}

bool
writeCsvFile(const util::Table &table, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toCsv(table);
    return static_cast<bool>(os);
}

} // namespace harness
} // namespace sac
