#include "src/harness/bench_options.hh"

#include <cstdlib>
#include <iostream>

#include "src/telemetry/event_trace.hh"
#include "src/util/args.hh"
#include "src/util/thread_pool.hh"

namespace sac {
namespace harness {

namespace {

[[noreturn]] void
badCommandLine(const std::string &message)
{
    std::cerr << message << "\n";
    std::exit(2);
}

} // namespace

BenchOptions
BenchOptions::parse(const util::Args &args)
{
    BenchOptions opts;
    opts.jobs = util::ThreadPool::defaultThreads();

    const auto jobs_arg = args.getInt("jobs", 0);
    if (!jobs_arg || *jobs_arg < 0) {
        std::string message = "--jobs expects a non-negative integer";
        if (!jobs_arg && args.valueWasSeparateToken("jobs")) {
            // A trailing bare --jobs swallows the next positional
            // (e.g. a benchmark filter) as its value; name the token
            // so the mistake is obvious.
            message += " (got '" + args.getString("jobs") +
                       "' — did a bare --jobs consume a positional?"
                       " use --jobs=N)";
        }
        badCommandLine(message);
    }
    if (*jobs_arg > 0)
        opts.jobs = static_cast<unsigned>(*jobs_arg);

    const auto intra_arg = args.getInt("intra-jobs", 0);
    if (!intra_arg || *intra_arg < 0)
        badCommandLine("--intra-jobs expects a non-negative integer"
                       " (0 = auto)");
    opts.intraJobs = static_cast<unsigned>(*intra_arg);

    if (args.has("emit-json")) {
        const std::string dir = args.getString("emit-json");
        // A bare --emit-json (no following value) parses as the
        // boolean "true"; there is no directory to write to.
        if (dir.empty() || dir == "true")
            badCommandLine("--emit-json expects a directory");
        opts.emitJsonDir = dir;
    }

    if (args.has("preset")) {
        const std::string name = args.getString("preset");
        if (!core::presets().contains(name)) {
            std::string message = "unknown preset \"" + name +
                                  "\"; known presets:";
            for (const auto &key : core::presets().names())
                message += " " + key;
            badCommandLine(message);
        }
        opts.presetName = name;
        opts.preset = core::presets().get(name);
    }

    const auto chunk = args.getInt(
        "trace-chunk", static_cast<std::int64_t>(opts.traceChunk));
    if (!chunk || *chunk <= 0)
        badCommandLine("--trace-chunk expects a positive integer");
    opts.traceChunk = static_cast<std::size_t>(*chunk);

    const auto seed = args.getInt(
        "trace-seed", static_cast<std::int64_t>(opts.traceSeed));
    if (!seed || *seed < 0)
        badCommandLine("--trace-seed expects a non-negative integer");
    opts.traceSeed = static_cast<std::uint64_t>(*seed);

    opts.sample = args.has("sample");
    opts.sampleTuningGiven =
        args.has("sample-window") || args.has("sample-stride") ||
        args.has("sample-warmup") || args.has("sample-ci") ||
        args.has("sample-error");

    const auto count_flag = [&args](const char *key,
                                    std::uint64_t fallback,
                                    std::int64_t min_value) {
        const auto v =
            args.getInt(key, static_cast<std::int64_t>(fallback));
        if (!v || *v < min_value) {
            badCommandLine(std::string("--") + key +
                           " expects an integer >= " +
                           std::to_string(min_value));
        }
        return static_cast<std::uint64_t>(*v);
    };
    opts.sampling.window =
        count_flag("sample-window", opts.sampling.window, 1);
    opts.sampling.stride =
        count_flag("sample-stride", opts.sampling.stride, 1);
    opts.sampling.warmup =
        count_flag("sample-warmup", opts.sampling.warmup, 0);

    if (args.has("checkpoint-dir")) {
        const std::string dir = args.getString("checkpoint-dir");
        // A bare --checkpoint-dir (no following value) parses as the
        // boolean "true"; there is no directory to use.
        if (dir.empty() || dir == "true")
            badCommandLine("--checkpoint-dir expects a directory");
        opts.checkpointDir = dir;
    }
    opts.checkpointRebuild = args.has("checkpoint-rebuild");

    opts.interval = count_flag("interval", opts.interval, 0);
    opts.heatmap = args.has("heatmap");
    opts.traceRing = static_cast<std::size_t>(
        count_flag("trace-ring", opts.traceRing, 0));
    if (opts.traceRing > 0)
        telemetry::EventTracer::setDefaultCapacity(opts.traceRing);

    const auto real_flag = [&args](const char *key, double fallback) {
        if (!args.has(key))
            return fallback;
        const std::string s = args.getString(key);
        char *end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        if (s.empty() || end != s.c_str() + s.size()) {
            badCommandLine(std::string("--") + key +
                           " expects a number (got '" + s + "')");
        }
        return v;
    };
    double ci = real_flag("sample-ci", opts.sampling.confidence);
    // "--sample-ci 95" reads as a percentage; "0.95" is the level.
    if (ci > 1.0)
        ci /= 100.0;
    opts.sampling.confidence = ci;
    opts.sampling.targetRelativeError =
        real_flag("sample-error", opts.sampling.targetRelativeError);

    if (const auto err = opts.validationError())
        badCommandLine(*err);

    return opts;
}

std::optional<std::string>
BenchOptions::validationError() const
{
    if (sampleTuningGiven && !sample) {
        return "--sample-window/--sample-stride/--sample-warmup/"
               "--sample-ci/--sample-error require --sample";
    }
    if ((interval > 0 || heatmap) && !checkpointDir.empty()) {
        return "--interval/--heatmap instrument an exact re-replay "
               "and cannot be combined with --checkpoint-dir: "
               "restored checkpoint state skips the accesses the "
               "instrumentation would observe";
    }
    if (!checkpointDir.empty() && !sample) {
        return "--checkpoint-dir persists sampled warming state and "
               "requires --sample";
    }
    if (checkpointRebuild && checkpointDir.empty()) {
        return "--checkpoint-rebuild requires --checkpoint-dir";
    }
    if ((interval > 0 || heatmap) && emitJsonDir.empty()) {
        return "--interval/--heatmap write into the manifest "
               "directory and require --emit-json";
    }
    if ((interval > 0 || heatmap) && sample) {
        return "--interval/--heatmap instrument exact replay and "
               "cannot be combined with --sample";
    }
    if (sample) {
        if (const auto err = sampling.validationError())
            return "--sample: " + *err;
    }
    return std::nullopt;
}

BenchOptions
BenchOptions::parse(int argc, const char *const *argv)
{
    util::Args args;
    if (!args.parse(argc, argv))
        badCommandLine("bad command line: " + args.error());
    return parse(args);
}

} // namespace harness
} // namespace sac
