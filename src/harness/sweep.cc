#include "src/harness/sweep.hh"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/telemetry/counter_registry.hh"
#include "src/telemetry/interval.hh"
#include "src/telemetry/set_profile.hh"
#include "src/util/logging.hh"

namespace sac {
namespace harness {

const char *
engineSelectName(EngineSelect engine)
{
    switch (engine) {
    case EngineSelect::Auto:
        return "auto";
    case EngineSelect::Exact:
        return "exact";
    case EngineSelect::Sampled:
        return "sampled";
    case EngineSelect::SampledLivepoint:
        return "sampled-livepoint";
    case EngineSelect::Stack:
        return "stack";
    }
    return "auto";
}

std::optional<EngineSelect>
engineSelectFromName(const std::string &name)
{
    for (const EngineSelect e :
         {EngineSelect::Auto, EngineSelect::Exact, EngineSelect::Sampled,
          EngineSelect::SampledLivepoint, EngineSelect::Stack}) {
        if (name == engineSelectName(e))
            return e;
    }
    return std::nullopt;
}

const char *
engineName(EngineTag tag)
{
    switch (tag) {
    case EngineTag::ExactReplay:
        return "exact-replay";
    case EngineTag::Sampled:
        return "sampled";
    case EngineTag::SampledLivepoint:
        return "sampled-livepoint";
    case EngineTag::StackSinglePass:
        return "stack-single-pass";
    }
    return "exact-replay";
}

namespace {

/** Shared head of every cell manifest: identity, config, counters. */
telemetry::Manifest
manifestHead(const ManifestCell &cell, EngineTag tag,
             const sim::RunStats &counted)
{
    telemetry::Manifest m;
    m.workload = cell.workload;
    m.configName = cell.config->name;
    m.cacheKey = cell.config->cacheKey();
    m.engine = engineName(tag);
    m.config = cell.config->toJson();

    telemetry::CounterRegistry reg;
    counted.registerInto(reg);
    m.counters = reg.toJson();
    return m;
}

/**
 * Render @p cell, running the instrumented re-replay when requested
 * (exact cells with a trace); @p recorder receives the interval
 * recorder so writeCellManifest() can emit the sidecar series.
 */
telemetry::Manifest
renderCell(const ManifestCell &cell, EngineTag tag,
           std::optional<telemetry::IntervalRecorder> &recorder)
{
    SAC_ASSERT(cell.config != nullptr,
               "ManifestCell without a configuration");

    if (tag == EngineTag::Sampled || tag == EngineTag::SampledLivepoint) {
        SAC_ASSERT(cell.report != nullptr && cell.sampling != nullptr,
                   "sampled ManifestCell needs report + sampling");
        const sim::SampleReport &report = *cell.report;
        const sim::SamplingOptions &opt = *cell.sampling;
        telemetry::Manifest m = manifestHead(cell, tag, report.detailed);

        const auto interval = [&report](double estimate,
                                        const sim::SampleStats &s) {
            util::Json j = util::Json::object();
            j.set("estimate", estimate);
            j.set("half_width", report.halfWidthOf(s));
            j.set("windows", s.count());
            return j;
        };

        util::Json sampling = util::Json::object();
        sampling.set("window", opt.window);
        sampling.set("stride", opt.stride);
        sampling.set("warmup", opt.warmup);
        sampling.set("confidence", report.confidence);
        sampling.set("windows", report.windows);
        sampling.set("records_total", report.recordsTotal);
        sampling.set("records_detailed", report.recordsDetailed);
        sampling.set("records_warmed", report.recordsWarmed);
        sampling.set("records_skipped", report.recordsSkipped);
        sampling.set("exact", report.exact);
        sampling.set("miss_ratio", interval(report.missRatioEstimate(),
                                            report.missRatio));
        sampling.set("amat",
                     interval(report.amatEstimate(), report.amat));
        sampling.set("words_per_access",
                     interval(report.wordsPerAccessEstimate(),
                              report.wordsPerAccess));

        m.metrics = util::Json::object();
        m.metrics.set("amat", report.amatEstimate());
        m.metrics.set("miss_ratio", report.missRatioEstimate());
        m.metrics.set("words_per_access",
                      report.wordsPerAccessEstimate());
        m.metrics.set("sampling", std::move(sampling));
        if (cell.checkpoint)
            m.metrics.set("checkpoint", *cell.checkpoint);

        m.timing = util::Json::object();
        if (cell.simSeconds > 0.0)
            m.timing.set("sim_seconds", cell.simSeconds);
        if (cell.parallel)
            m.timing.set("parallel", *cell.parallel);
        return m;
    }

    SAC_ASSERT(cell.stats != nullptr,
               "exact/stack ManifestCell needs stats");
    const sim::RunStats &stats = *cell.stats;

    if (tag == EngineTag::StackSinglePass) {
        telemetry::Manifest m = manifestHead(cell, tag, stats);
        // Count-derived metrics only: a stack pass yields no cycles,
        // so amat/total_access_cycles would be bogus zeros.
        m.metrics = util::Json::object();
        m.metrics.set("miss_ratio", stats.missRatio());
        m.metrics.set("hit_ratio", stats.hitRatio());
        m.metrics.set("main_hit_share", stats.mainHitShare());
        m.metrics.set("aux_hit_share", stats.auxHitShare());
        m.metrics.set("words_per_access",
                      stats.wordsFetchedPerAccess());
        util::Json stack = util::Json::object();
        stack.set("family_size",
                  static_cast<std::uint64_t>(cell.stackFamilySize));
        m.metrics.set("stack", std::move(stack));

        m.timing = util::Json::object();
        if (cell.simSeconds > 0.0)
            m.timing.set("pass_seconds", cell.simSeconds);
        if (cell.parallel)
            m.timing.set("parallel", *cell.parallel);
        return m;
    }

    // Exact replay, optionally with the instrumented re-replay.
    telemetry::Manifest m = manifestHead(cell, tag, stats);
    m.metrics = util::Json::object();
    m.metrics.set("amat", stats.amat());
    m.metrics.set("miss_ratio", stats.missRatio());
    m.metrics.set("hit_ratio", stats.hitRatio());
    m.metrics.set("main_hit_share", stats.mainHitShare());
    m.metrics.set("aux_hit_share", stats.auxHitShare());
    m.metrics.set("words_per_access", stats.wordsFetchedPerAccess());
    m.metrics.set("total_access_cycles", stats.totalAccessCycles);

    m.timing = util::Json::object();
    if (cell.simSeconds > 0.0)
        m.timing.set("sim_seconds", cell.simSeconds);
    if (cell.extraTiming &&
        cell.extraTiming->type() == util::Json::Type::Object)
        m.timing.set("phases", *cell.extraTiming);

    const bool wants = cell.trace != nullptr &&
                       (cell.instrument.intervalRecords > 0 ||
                        cell.instrument.heatmap);
    if (!wants)
        return m;
    if (!core::SoftwareAssistedCache::intervalHooksCompiledIn()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::cerr << "warning: --interval/--heatmap requested but "
                         "this build has SAC_INTERVAL=OFF; emitting "
                         "plain manifests (reconfigure with "
                         "-DSAC_INTERVAL=ON)\n";
        }
        return m;
    }

    // Instrumented re-replay. The hooks observe without perturbing,
    // so the result must reproduce the recorded run bit-for-bit.
    core::SoftwareAssistedCache sim(*cell.config);
    std::optional<telemetry::SetProfiler> profiler;
    if (cell.instrument.intervalRecords > 0) {
        recorder.emplace(cell.instrument.intervalRecords);
        sim.attachIntervalRecorder(&*recorder);
    }
    if (cell.instrument.heatmap) {
        profiler.emplace(sim.mainArray().numSets());
        sim.attachSetProfiler(&*profiler);
    }
    sim.run(*cell.trace);
    SAC_ASSERT(sim.stats() == stats,
               "instrumented replay diverged from the recorded run");
    if (profiler)
        m.profile = profiler->toJson();
    return m;
}

} // namespace

telemetry::Manifest
renderCellManifest(const ManifestCell &cell, EngineTag tag)
{
    std::optional<telemetry::IntervalRecorder> recorder;
    return renderCell(cell, tag, recorder);
}

std::string
writeCellManifest(const std::string &dir, const ManifestCell &cell,
                  EngineTag tag)
{
    std::optional<telemetry::IntervalRecorder> recorder;
    const telemetry::Manifest m = renderCell(cell, tag, recorder);
    const std::string path = telemetry::writeManifestFile(dir, m);
    if (path.empty() || !recorder)
        return path;

    // The interval series rides next to the manifest:
    // <workload>_<hash>.json -> <workload>_<hash>.intervals.jsonl.
    std::string jsonl = path;
    const std::string suffix = ".json";
    jsonl.replace(jsonl.size() - suffix.size(), suffix.size(),
                  ".intervals.jsonl");
    if (!recorder->writeJsonl(jsonl, cell.workload, cell.config->name,
                              cell.config->cacheKey()))
        return "";
    return path;
}

std::optional<std::string>
SweepRequest::validationError() const
{
    if (workloads.empty())
        return std::string("request has no workloads");
    if (configs.empty())
        return std::string("request has no configurations");
    if (!metric.extract)
        return std::string("request has no metric");
    const bool sampled = engine == EngineSelect::Sampled ||
                         engine == EngineSelect::SampledLivepoint;
    if (engine == EngineSelect::SampledLivepoint &&
        checkpointDir.empty()) {
        return std::string(
            "engine sampled-livepoint requires a checkpoint directory");
    }
    if (engine == EngineSelect::Sampled && !checkpointDir.empty()) {
        return std::string("engine sampled ignores the checkpoint "
                           "directory; use sampled-livepoint");
    }
    if (!checkpointDir.empty() && !sampled) {
        return std::string(
            "a checkpoint directory requires a sampled engine");
    }
    if (checkpointRebuild && checkpointDir.empty()) {
        return std::string(
            "checkpoint rebuild requires a checkpoint directory");
    }
    if ((telemetry.intervalRecords > 0 || telemetry.heatmap) &&
        sampled) {
        return std::string("interval/heatmap instrumentation replays "
                           "exactly and cannot combine with a sampled "
                           "engine");
    }
    if (engine == EngineSelect::Stack &&
        !stackDerivableMetric(metric)) {
        return "metric '" + metric.name +
               "' is not stack-derivable; use engine auto or exact";
    }
    if (sampled) {
        if (const auto err = sampling.validationError())
            return "sampling: " + *err;
    }
    return std::nullopt;
}

SweepRequest
SweepRequest::fromBenchOptions(const BenchOptions &options,
                               std::vector<Workload> workloads,
                               std::vector<core::Config> configs,
                               Metric metric)
{
    SweepRequest req;
    req.workloads = std::move(workloads);
    req.configs = std::move(configs);
    req.metric = std::move(metric);
    req.jobs = options.jobs;
    req.intraJobs = options.intraJobs;
    if (options.sample) {
        req.engine = options.checkpointDir.empty()
                         ? EngineSelect::Sampled
                         : EngineSelect::SampledLivepoint;
    }
    req.sampling = options.sampling;
    req.checkpointDir = options.checkpointDir;
    req.checkpointRebuild = options.checkpointRebuild;
    req.telemetry.manifestDir = options.emitJsonDir;
    req.telemetry.intervalRecords = options.interval;
    req.telemetry.heatmap = options.heatmap;
    req.telemetry.suiteTotals = true;
    return req;
}

namespace {

/** Serialize the manifest document exactly as writeManifestFile(). */
std::string
manifestDocument(const telemetry::Manifest &m)
{
    std::ostringstream os;
    telemetry::manifestJson(m).write(os, 2);
    os << '\n';
    return os.str();
}

/** Per-run emission state shared by the engine-specific paths. */
struct Emitter
{
    const SweepTelemetry &telemetry;
    SweepResult &result;

    bool
    active() const
    {
        return !telemetry.manifestDir.empty() ||
               static_cast<bool>(telemetry.sink);
    }

    /** Claim (workload, cacheKey) in the dedup set (true = emit). */
    bool
    claim(const std::string &workload, const std::string &cache_key)
    {
        return !telemetry.dedup ||
               telemetry.dedup->emplace(workload, cache_key).second;
    }

    /**
     * Emit one cell: write under manifestDir and/or stream through
     * the sink. @p record (when given) receives the file/path.
     */
    void
    emit(const ManifestCell &cell, EngineTag tag,
         SweepResult::Cell *record)
    {
        const std::string file = telemetry::manifestFileName(
            cell.workload, cell.config->cacheKey());
        std::string path;
        if (telemetry.sink) {
            // Render once, stream the exact bytes a file would hold,
            // then materialize those same bytes when a directory was
            // also requested. (The interval sidecar is CLI-only and
            // never combines with a sink.)
            const telemetry::Manifest m =
                renderCellManifest(cell, tag);
            const std::string doc = manifestDocument(m);
            telemetry.sink(file, doc);
            if (!telemetry.manifestDir.empty()) {
                std::error_code ec;
                std::filesystem::create_directories(
                    telemetry.manifestDir, ec);
                const std::filesystem::path p =
                    std::filesystem::path(telemetry.manifestDir) /
                    file;
                std::ofstream os(p);
                os << doc;
                path = os ? p.string() : std::string();
            } else {
                path = file; // streamed only; count as written
            }
        } else if (!telemetry.manifestDir.empty()) {
            path = writeCellManifest(telemetry.manifestDir, cell, tag);
        }
        if (path.empty())
            ++result.manifestFailures;
        else
            ++result.manifestsWritten;
        if (record) {
            record->manifestFile = file;
            if (path != file)
                record->manifestPath = path;
        }
    }
};

} // namespace

SweepResult
Runner::run(const SweepRequest &request)
{
    if (const auto err = request.validationError())
        SAC_ASSERT(false, "invalid SweepRequest: ", *err);

    SweepResult out;
    Emitter emitter{request.telemetry, out};
    const bool sampled =
        request.engine == EngineSelect::Sampled ||
        request.engine == EngineSelect::SampledLivepoint;
    const std::size_t n_w = request.workloads.size();
    const std::size_t n_c = request.configs.size();
    out.cells.resize(n_w * n_c);
    const auto record = [&](std::size_t wi,
                            std::size_t ci) -> SweepResult::Cell & {
        SweepResult::Cell &r = out.cells[wi * n_c + ci];
        r.workload = request.workloads[wi].name;
        r.configName = request.configs[ci].name;
        r.cacheKey = request.configs[ci].cacheKey();
        return r;
    };

    // Intra-trace workers per cell: an explicit request wins; auto
    // shards only when the cell count cannot keep every sweep worker
    // busy, splitting the leftover concurrency across cells.
    const std::size_t n_cells = n_w * n_c;
    const unsigned intra =
        request.intraJobs > 0
            ? request.intraJobs
            : ((request.jobs > 1 && n_cells < request.jobs)
                   ? request.jobs / static_cast<unsigned>(n_cells)
                   : 1);

    if (sampled) {
        const auto cells = runSampled(
            request.workloads, request.configs, request.sampling,
            request.jobs,
            request.engine == EngineSelect::SampledLivepoint
                ? request.checkpointDir
                : std::string(),
            request.checkpointRebuild, intra);
        out.table = sampledMatrix(request.workloads, request.configs,
                                  cells, request.metric);

        // Library-served cells carry a "checkpoint" block so a reader
        // can tell an instant re-sweep from a cold warm.
        util::Json ck = util::Json::object();
        if (!request.checkpointDir.empty()) {
            for (const char *key :
                 {"checkpoint.hits", "checkpoint.misses",
                  "checkpoint.stale", "checkpoint.bytes"}) {
                // Strip the "checkpoint." prefix inside the block.
                ck.set(std::string(key).substr(11),
                       checkpointCounter(key));
            }
        }

        // Cells whose window replay ran sharded additionally carry a
        // "parallel" block inside "timing" (so result comparisons
        // stay unaffected), mirroring the checkpoint block above.
        util::Json par = util::Json::object();
        const bool ran_parallel =
            parallelCounter("parallel.windows") > 0;
        if (ran_parallel) {
            par.set("intra_jobs", static_cast<std::uint64_t>(intra));
            for (const char *key :
                 {"parallel.windows", "parallel.merge_ns"}) {
                // Strip the "parallel." prefix inside the block.
                par.set(std::string(key).substr(9),
                        parallelCounter(key));
            }
        }
        for (std::size_t wi = 0; wi < n_w; ++wi) {
            for (std::size_t ci = 0; ci < n_c; ++ci) {
                const SampledCell &cell = cells[wi][ci];
                const EngineTag tag =
                    cell.fromCheckpoints ? EngineTag::SampledLivepoint
                                         : EngineTag::Sampled;
                SweepResult::Cell &r = record(wi, ci);
                r.engine = tag;
                if (!emitter.active() ||
                    !emitter.claim(r.workload, r.cacheKey))
                    continue;
                ManifestCell mc;
                mc.workload = r.workload;
                mc.config = &request.configs[ci];
                mc.report = &cell.report;
                mc.sampling = &request.sampling;
                mc.checkpoint = cell.fromCheckpoints ? &ck : nullptr;
                mc.parallel = cell.fromCheckpoints && ran_parallel
                                  ? &par
                                  : nullptr;
                mc.simSeconds = cell.simSeconds;
                emitter.emit(mc, tag, &r);
            }
        }
        return out;
    }

    // Exact path (Auto routes stack families; Exact forbids them).
    const bool allow_stack = request.engine != EngineSelect::Exact;
    out.table = runMatrixWith(request.workloads, request.configs,
                              request.metric, request.jobs,
                              allow_stack, intra);
    out.timing = lastSweep();

    // Stack passes that ran set-sharded carry their own "parallel"
    // block (under "timing", like the sampled path's).
    util::Json par = util::Json::object();
    const bool ran_sharded = parallelCounter("parallel.shards") > 0;
    if (ran_sharded) {
        par.set("intra_jobs", static_cast<std::uint64_t>(intra));
        for (const char *key :
             {"parallel.shards", "parallel.merge_ns"}) {
            par.set(std::string(key).substr(9), parallelCounter(key));
        }
    }

    // Mirror runMatrixWith's partition rule so stack-served cells are
    // recorded (and emitted) as such instead of being exact-replayed
    // just for the manifest.
    std::size_t family_size = 0;
    if (allow_stack && stackDerivableMetric(request.metric)) {
        for (const auto &cfg : request.configs) {
            if (stackFamilyEligible(cfg))
                ++family_size;
        }
        if (family_size < 2)
            family_size = 0;
    }

    const bool instrument = request.telemetry.intervalRecords > 0 ||
                            request.telemetry.heatmap;
    util::Json phases;
    if (emitter.active() && request.telemetry.suiteTotals) {
        const SweepTiming sweep = out.timing;
        phases = phases_.toJson();
        phases.set("sweep_jobs",
                   static_cast<std::uint64_t>(sweep.jobs));
        phases.set("worker_utilization", sweep.utilization());
    }

    for (std::size_t ci = 0; ci < n_c; ++ci) {
        const core::Config &cfg = request.configs[ci];
        sim::RunStats suite_total;
        double suite_seconds = 0.0;
        bool stack_served = false;
        for (std::size_t wi = 0; wi < n_w; ++wi) {
            const Workload &w = request.workloads[wi];
            const sim::RunStats *stack =
                family_size > 0 && stackFamilyEligible(cfg)
                    ? stackStats(w, cfg)
                    : nullptr;
            SweepResult::Cell &r = record(wi, ci);
            if (stack != nullptr) {
                stack_served = true;
                r.engine = EngineTag::StackSinglePass;
                if (emitter.active() &&
                    emitter.claim(r.workload, r.cacheKey)) {
                    ManifestCell mc;
                    mc.workload = r.workload;
                    mc.config = &cfg;
                    mc.stats = stack;
                    mc.stackFamilySize = family_size;
                    mc.parallel = ran_sharded ? &par : nullptr;
                    emitter.emit(mc, EngineTag::StackSinglePass, &r);
                }
                continue;
            }
            r.engine = EngineTag::ExactReplay;
            if (!emitter.active())
                continue;
            const CellResult &cell = this->cell(w, cfg);
            if (emitter.claim(r.workload, r.cacheKey)) {
                ManifestCell mc;
                mc.workload = r.workload;
                mc.config = &cfg;
                mc.stats = &cell.stats;
                mc.simSeconds = cell.simSeconds;
                if (instrument)
                    mc.trace = &traceOf(w);
                mc.instrument = {request.telemetry.intervalRecords,
                                 request.telemetry.heatmap};
                emitter.emit(mc, EngineTag::ExactReplay, &r);
            }
            suite_total += cell.stats;
            suite_seconds += cell.simSeconds;
        }
        if (emitter.active() && request.telemetry.suiteTotals &&
            !stack_served &&
            emitter.claim("suite-total", cfg.cacheKey())) {
            ManifestCell mc;
            mc.workload = "suite-total";
            mc.config = &cfg;
            mc.stats = &suite_total;
            mc.simSeconds = suite_seconds;
            mc.extraTiming = &phases;
            emitter.emit(mc, EngineTag::ExactReplay, nullptr);
        }
    }
    return out;
}

} // namespace harness
} // namespace sac
