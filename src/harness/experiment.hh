/**
 * @file
 * Experiment harness: runs configuration x workload matrices with
 * trace and result caching, extracts named metrics, and renders the
 * results as aligned tables or CSV. The figure-reproduction benches
 * are thin clients of this library.
 */

#ifndef SAC_HARNESS_EXPERIMENT_HH
#define SAC_HARNESS_EXPERIMENT_HH

#include <atomic>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/sim/sampling.hh"
#include "src/sim/stack_engine.hh"
#include "src/telemetry/counter_registry.hh"
#include "src/telemetry/phase_timer.hh"
#include "src/trace/trace.hh"
#include "src/trace/trace_source.hh"
#include "src/util/table.hh"

namespace sac {

namespace util {
class ThreadPool;
} // namespace util

namespace harness {

struct SweepRequest;
struct SweepResult;

/** A metric extracted from one simulation run. */
struct Metric
{
    std::string name;
    std::function<double(const sim::RunStats &)> extract;
    int decimals = 3;
};

/** The metrics the paper reports. */
Metric amatMetric();
Metric missRatioMetric();
Metric wordsPerAccessMetric();
Metric mainHitShareMetric();
Metric auxHitShareMetric();

/** A named trace source (generated lazily, cached per runner). */
struct Workload
{
    std::string name;
    std::function<trace::Trace()> build;
    /**
     * Optional streaming producer: emit every record into the sink
     * without materializing the trace. When set, runStreamed() keeps
     * memory bounded by the chunk size instead of the trace length.
     */
    std::function<void(const trace::RecordSink &)> stream;
};

/**
 * Runs (workload, config) pairs, caching each generated trace and
 * each simulation result so sweeps sharing points are free.
 *
 * Thread safety: traceOf() and run() may be called concurrently from
 * any number of threads. Each trace is generated exactly once (a
 * per-workload once-latch blocks concurrent requesters until the
 * first generation finishes) and each (workload, config) cell is
 * simulated exactly once; results are keyed on the canonical
 * serialized configuration (core::Config::cacheKey()), never on the
 * display name, so two configs sharing a label cannot alias.
 */
class Runner
{
  public:
    /** One simulated sweep cell: statistics plus its wall-clock cost. */
    struct CellResult
    {
        sim::RunStats stats;
        double simSeconds = 0.0; //!< wall seconds of simulateTrace()
    };

    /** Wall-clock account of the last runMatrix() sweep. */
    struct SweepTiming
    {
        double wallSeconds = 0.0; //!< sweep wall time
        double busySeconds = 0.0; //!< summed per-worker cell time
        unsigned jobs = 1;        //!< workers used

        /** Fraction of worker-seconds spent in cells (0..1). */
        double
        utilization() const
        {
            return jobs > 0 && wallSeconds > 0.0
                       ? busySeconds /
                             (static_cast<double>(jobs) * wallSeconds)
                       : 0.0;
        }
    };

    Runner() = default;

    /** The trace of @p w, generated on first use. Thread-safe. */
    const trace::Trace &traceOf(const Workload &w);

    /**
     * Pre-generate every trace of @p workloads (the "warmup" phase),
     * so subsequent sweeps measure simulation alone.
     */
    void warmup(const std::vector<Workload> &workloads);

    /**
     * The statistics of @p w under @p cfg, simulated on first use.
     * Thread-safe.
     */
    const sim::RunStats &run(const Workload &w,
                             const core::Config &cfg);

    /**
     * THE sweep entry point: execute one batched request, routing
     * each (workload, config) cell to the fastest eligible engine
     * (see EngineSelect in sweep.hh), emit the requested telemetry,
     * and return the rendered table plus the per-cell routing record.
     * Tables and manifests are byte-identical to the legacy
     * runMatrix()/runSampled()+writer sequence for the same options
     * (the SweepRequestDifferential tests prove it). The request must
     * be valid (SweepRequest::validationError()); thread-safe like
     * every other entry — concurrent requests share the trace, cell,
     * stack and sampled caches.
     */
    SweepResult run(const SweepRequest &request);

    /** Like run(), including the cell's wall-clock cost. */
    const CellResult &cell(const Workload &w,
                           const core::Config &cfg);

    /**
     * Build the classic figure table: one row per workload, one
     * column per configuration, cells = metric. Serial reference
     * path.
     */
    util::Table matrix(const std::vector<Workload> &workloads,
                       const std::vector<core::Config> &configs,
                       const Metric &metric);

    /**
     * Parallel sweep executor: simulate every uncached (workload,
     * config) cell on @p jobs worker threads, then render the table.
     * The result is byte-identical to matrix() — cells are rendered
     * serially in workload x config order after the sweep completes.
     * @p jobs <= 1 degenerates to the serial path.
     *
     * Stack dispatch: when the metric is stack-derivable
     * (stackDerivableMetric()) and at least two configurations form a
     * stack family (stackFamilyEligible()), the family's cells are
     * served by ONE single-pass Mattson stack traversal per workload
     * (sim::StackDistanceEngine) instead of per-config replays; the
     * remaining configurations fall back to exact replay. Stack miss
     * counts are bit-identical to replay (the StackDifferential tests
     * prove it), so the rendered table stays byte-identical to
     * matrix() either way. Stack-derived stats live in their own
     * store, never the exact cell cache, and the pass is accounted
     * under the "stack.pass.*" counters (stackCounter()).
     */
    util::Table runMatrix(const std::vector<Workload> &workloads,
                          const std::vector<core::Config> &configs,
                          const Metric &metric, unsigned jobs);

    /**
     * Streamed sweep: simulate @p w under every configuration in one
     * pass over the trace, never holding more than a bounded window
     * of records. The producer (w.stream when set, else a fallback
     * that generates via w.build and replays) runs on its own thread
     * feeding a bounded chunk queue; each popped chunk is fanned out
     * over the per-config simulators in at most @p jobs groups (<= 1
     * = serial), with a barrier per chunk so all simulators advance
     * in lockstep. Chunks are double-buffered: the next chunk is
     * pulled from the queue while the workers replay the current one.
     * Results are NOT cached (the cell cache stores
     * materialized-trace results only; the two are bit-identical, as
     * the streaming differential tests prove).
     *
     * @return one RunStats per configuration, in @p configs order
     */
    std::vector<sim::RunStats>
    runStreamed(const Workload &w,
                const std::vector<core::Config> &configs,
                unsigned jobs = 0,
                std::size_t chunk_records =
                    trace::TraceSource::defaultChunkRecords);

    /** One sampled sweep cell: the estimate report plus its cost. */
    struct SampledCell
    {
        sim::SampleReport report;
        double simSeconds = 0.0; //!< wall seconds of the sampled replay
        /**
         * The cell ran on the live-point restore path (warming
         * replaced by checkpoint restores); manifests then carry
         * "engine": "sampled-livepoint".
         */
        bool fromCheckpoints = false;
    };

    /**
     * Sampled sweep: estimate every (workload, config) cell with the
     * windowed sampling engine (sim::SampledEngine) instead of a full
     * simulation. Traces come from the shared trace cache; each cell
     * replays an independent MemoryTraceSource over the cached trace,
     * so cells are embarrassingly parallel and run on @p jobs pool
     * workers (<= 1 = serial). Estimates are never stored in the
     * exact-cell cache — a sampled figure cannot silently poison a
     * later full-detail run of the same matrix.
     *
     * @return cells indexed [workload][config]
     */
    std::vector<std::vector<SampledCell>>
    runSampled(const std::vector<Workload> &workloads,
               const std::vector<core::Config> &configs,
               const sim::SamplingOptions &opt, unsigned jobs = 0);

    /**
     * Sampled sweep backed by a live-point checkpoint library rooted
     * at @p checkpoint_dir (sim::CheckpointLibrary): each cell first
     * tries to load the `.saclp` for (trace content, config family,
     * sampling geometry). On a hit the cell replays detailed windows
     * from restored live-points and skips functional warming
     * entirely; on a miss (or any stale library — wrong trace hash,
     * config, geometry, version, or a corrupt/truncated file) the
     * cell warms once through the library builder, rewrites the file,
     * and then runs the same restore path. Either way the resulting
     * RunStats are bit-identical to the plain runSampled() cell (the
     * checkpoint differential tests prove it). Outcomes land in the
     * "checkpoint.*" counters (checkpointCounter()). Geometries with
     * no warming gap (stride == window) and an empty @p
     * checkpoint_dir fall back to plain runSampled() cells.
     * @p rebuild forces warm-and-rewrite even when a valid library
     * exists (--checkpoint-rebuild).
     */
    std::vector<std::vector<SampledCell>>
    runSampled(const std::vector<Workload> &workloads,
               const std::vector<core::Config> &configs,
               const sim::SamplingOptions &opt, unsigned jobs,
               const std::string &checkpoint_dir, bool rebuild,
               unsigned intra_jobs = 1);

    /** Number of simulations actually executed (not served cached). */
    std::size_t runsExecuted() const { return runsExecuted_.load(); }

    /**
     * Value of one of this runner's "stack.pass.*" telemetry
     * counters (0 when never incremented):
     *   stack.pass.traversals     single-pass traversals executed
     *   stack.pass.records        records profiled by those passes
     *   stack.pass.cells          cells served fresh from a pass
     *   stack.pass.cached_cells   cells served from the stack store
     *   stack.pass.fallback_cells exact-replay cells in stack sweeps
     */
    std::uint64_t stackCounter(const std::string &name) const;

    /**
     * Value of one of this runner's "checkpoint.*" telemetry counters
     * (0 when never incremented):
     *   checkpoint.hits    cells served from a valid library
     *   checkpoint.misses  cells that warmed and wrote a library
     *   checkpoint.stale   rejected libraries (bad key/version/file)
     *   checkpoint.bytes   bytes moved through .saclp files
     */
    std::uint64_t checkpointCounter(const std::string &name) const;

    /**
     * Value of one of this runner's "parallel.*" telemetry counters
     * (0 when never incremented) — the intra-trace parallelism
     * account:
     *   parallel.windows   detailed windows replayed concurrently
     *                      (checkpointed window-replay shards)
     *   parallel.shards    set-shard stack-pass slices executed
     *   parallel.merge_ns  nanoseconds spent merging parallel
     *                      partial results in deterministic order
     */
    std::uint64_t parallelCounter(const std::string &name) const;

    /**
     * Stack-store stats of (w, cfg), or nullptr when no stack pass
     * has served that cell. Lets manifest emitters record
     * stack-served cells (writeStackCellManifest) without forcing an
     * exact replay through run()/cell().
     */
    const sim::RunStats *stackStats(const Workload &w,
                                    const core::Config &cfg) const;

    /** Number of traces actually generated. */
    std::size_t tracesGenerated() const
    {
        return tracesGenerated_.load();
    }

    /**
     * Wall-clock phase account of this runner: "trace-gen" (workload
     * builds), "warmup" (warmup() calls), "sim" (simulateTrace
     * cells), "sweep" (runMatrix execution) and "report" (table
     * rendering). Phase adds are thread-safe.
     */
    const telemetry::PhaseTimer &phases() const { return phases_; }

    /** Timing of the most recent runMatrix() sweep. */
    SweepTiming lastSweep() const;

  private:
    /** A once-latched cache slot: built exactly once, then immutable. */
    template <typename T> struct Slot
    {
        std::once_flag once;
        T value;
    };

    /**
     * Run one stack pass over @p w covering the whole @p family,
     * storing per-config stats for any member not already in the
     * stack store. Called from the sweep's issuing thread;
     * @p intra_jobs > 1 splits the pass into that many set-shard
     * slices (sim::StackDistanceEngine shard mode) run concurrently
     * and absorbed in shard order — bit-identical counts, one
     * traversal's wall time divided across cores.
     */
    void runStackFamily(const Workload &w,
                        const std::vector<const core::Config *> &family,
                        unsigned intra_jobs = 1);

    /**
     * runMatrix() with the stack dispatch gated: @p allow_stack false
     * forces every cell onto exact replay (EngineSelect::Exact).
     * @p intra_jobs > 1 shards each stack pass across that many
     * workers (runStackFamily).
     */
    util::Table runMatrixWith(const std::vector<Workload> &workloads,
                              const std::vector<core::Config> &configs,
                              const Metric &metric, unsigned jobs,
                              bool allow_stack,
                              unsigned intra_jobs = 1);

    /**
     * Simulate one sampled cell (optionally over the live-point
     * library at @p checkpoint_dir). Always executes; the cache is
     * sampledCellShared()'s. When @p intra_pool is given with
     * @p intra_jobs > 1, the live-point replay fans its detailed
     * windows out over the pool (runCheckpointedParallel) — the
     * report stays bit-identical to the serial path.
     */
    SampledCell computeSampledCell(const Workload &w,
                                   const core::Config &cfg,
                                   const sim::SamplingOptions &opt,
                                   const std::string &checkpoint_dir,
                                   bool rebuild,
                                   std::uint64_t trace_hash,
                                   util::ThreadPool *intra_pool = nullptr,
                                   unsigned intra_jobs = 1);

    /**
     * The once-latched sampled cell of (w, cfg, geometry, library):
     * concurrent requests for the same cell share one sampled replay
     * — and, on the live-point path, one library build. Keyed on the
     * full sampling geometry plus the checkpoint directory, so a
     * plain and a checkpointed run of the same cell never alias.
     * (Not on intra_jobs: parallel and serial replays are
     * bit-identical, so they may share one slot.)
     */
    const SampledCell &
    sampledCellShared(const Workload &w, const core::Config &cfg,
                      const sim::SamplingOptions &opt,
                      const std::string &checkpoint_dir,
                      std::uint64_t trace_hash,
                      util::ThreadPool *intra_pool = nullptr,
                      unsigned intra_jobs = 1);

    std::mutex mutex_; //!< guards the two slot maps (not the slots)
    std::map<std::string, std::unique_ptr<Slot<trace::Trace>>>
        traces_;
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<Slot<CellResult>>>
        results_;
    /**
     * Stack-derived stats, keyed like results_ on (workload,
     * cacheKey). Deliberately a separate store: stack stats carry
     * counts but no timing, so they must never be served where an
     * exact CellResult is expected (the sampled engine's
     * no-poisoning discipline).
     */
    std::map<std::pair<std::string, std::string>, sim::RunStats>
        stackResults_;
    /**
     * Sampled-cell cache, keyed by sampledCellKey() (workload,
     * cacheKey, geometry, checkpoint dir). Separate from results_ for
     * the same reason stackResults_ is: an estimate must never be
     * served where an exact CellResult is expected.
     */
    std::map<std::string, std::unique_ptr<Slot<SampledCell>>>
        sampledResults_;
    mutable std::mutex stackMutex_; //!< guards stackResults_/counters
    /**
     * One pass mutex per workload (created under stackMutex_): the
     * whole check-store / traverse / fill-store sequence of
     * runStackFamily() holds it, so concurrent sweeps over the same
     * workload share one traversal instead of racing to duplicate it.
     */
    std::map<std::string, std::unique_ptr<std::mutex>>
        stackPassMutexes_;
    telemetry::CounterRegistry stackCounters_;
    mutable std::mutex checkpointMutex_; //!< guards checkpointCounters_
    telemetry::CounterRegistry checkpointCounters_;
    mutable std::mutex parallelMutex_; //!< guards parallelCounters_
    telemetry::CounterRegistry parallelCounters_;
    std::atomic<std::size_t> runsExecuted_{0};
    std::atomic<std::size_t> tracesGenerated_{0};
    telemetry::PhaseTimer phases_;
    mutable std::mutex sweepMutex_; //!< guards lastSweep_
    SweepTiming lastSweep_;
};

/** The nine paper benchmarks as harness workloads. */
std::vector<Workload> paperWorkloads();

/**
 * Render a sampled sweep as the classic figure table: one row per
 * workload, one column per configuration, cells "estimate +/-half" at
 * the report's confidence. The three sampled metrics (miss ratio,
 * AMAT, words/ref) carry their interval; any other metric falls back
 * to extracting from the cumulative detailed stats, without a bound.
 * Exact cells (short traces) render like matrix() does, +/-0.
 */
util::Table
sampledMatrix(const std::vector<Workload> &workloads,
              const std::vector<core::Config> &configs,
              const std::vector<std::vector<Runner::SampledCell>> &cells,
              const Metric &metric);

/**
 * Is @p cfg a member of the stack family — a configuration whose
 * miss counts a single-pass stack traversal reproduces exactly? True
 * for plain LRU set-associative caches on the Standard feature path
 * (no aux cache, no virtual lines, no prefetch, no bypass) without
 * the non-temporal replacement preference (which alters the victim
 * choice), in a power-of-two bit-selection geometry.
 */
bool stackFamilyEligible(const core::Config &cfg);

/**
 * Does @p metric derive purely from counts a stack pass determines
 * (misses, hits, traffic)? True for "miss ratio", "words/ref",
 * "main-hit share" and "aux-hit share"; false for timing metrics
 * like AMAT, which need the exact replay's cycle model.
 */
bool stackDerivableMetric(const Metric &metric);

/** The stack lattice point of @p cfg's main-array geometry. */
sim::StackPoint stackPointOf(const core::Config &cfg);

/**
 * The RunStats a stack pass implies for @p cfg: access/read/write
 * counts, misses, main hits and fetch traffic are exact; timing and
 * miss-class fields stay zero (a stack pass yields counts, not
 * cycles). @p cfg must be covered by @p eng's lattice.
 */
sim::RunStats stackStatsFor(const sim::StackDistanceEngine &eng,
                            const core::Config &cfg);

/**
 * Write the run manifest of one stack-dispatched sweep cell: tagged
 * "engine": "stack-single-pass", with the count-derived metrics and
 * a "stack" object recording the family size. Timing metrics are
 * omitted — a stack pass does not model cycles.
 *
 * @deprecated Thin wrapper over writeCellManifest(dir, ManifestCell,
 * EngineTag::StackSinglePass) (sweep.hh); will be removed next
 * release.
 */
std::string
writeStackCellManifest(const std::string &dir,
                       const std::string &workload,
                       const core::Config &cfg,
                       const sim::RunStats &stats,
                       std::size_t family_size,
                       double pass_seconds = 0.0);

/**
 * Write the run manifest of one sampled sweep cell: the regular cell
 * manifest built from the cumulative detailed stats, with a
 * "sampling" object in the metrics section carrying the geometry,
 * record accounting, and each estimate with its half-width. When
 * @p checkpoint is given (an object, typically the library-outcome
 * counters: hits/misses/stale/bytes), the cell ran on the live-point
 * restore path: the manifest is tagged "engine": "sampled-livepoint"
 * and carries the object as its "checkpoint" block.
 *
 * @deprecated Thin wrapper over writeCellManifest(dir, ManifestCell,
 * EngineTag::Sampled / ::SampledLivepoint) (sweep.hh); will be
 * removed next release.
 */
std::string
writeSampledCellManifest(const std::string &dir,
                         const std::string &workload,
                         const core::Config &cfg,
                         const sim::SampleReport &report,
                         const sim::SamplingOptions &opt,
                         double sim_seconds = 0.0,
                         const util::Json *checkpoint = nullptr);

/**
 * Write one telemetry run manifest for a sweep cell: the full
 * configuration, its cache key, every RunStats counter, the derived
 * paper metrics, and timing. Returns the written path ("" on I/O
 * failure). @p sim_seconds <= 0 omits the per-cell cost; members of
 * @p extra_timing (an object), when given, are merged into the
 * manifest's timing section (e.g. phase totals and utilization).
 */
std::string writeCellManifest(const std::string &dir,
                              const std::string &workload,
                              const core::Config &cfg,
                              const sim::RunStats &stats,
                              double sim_seconds = 0.0,
                              const util::Json *extra_timing = nullptr);

/** What writeInstrumentedCellManifest() adds to a cell manifest. */
struct InstrumentOptions
{
    /**
     * Interval-stats period in records: > 0 writes the sibling
     * `<manifest stem>.intervals.jsonl` time series. 0 = off.
     */
    std::uint64_t intervalRecords = 0;

    /** Embed the per-set heat profile ("profile" manifest block). */
    bool heatmap = false;
};

/**
 * Write the cell manifest of an already-simulated run *with*
 * time-resolved instrumentation: the trace is replayed once more with
 * an IntervalRecorder / SetProfiler attached (the instrumented replay
 * must reproduce @p stats bit-for-bit — asserted), the heat profile
 * lands in the manifest's "profile" block and the interval series in
 * a sibling `<stem>.intervals.jsonl` file. In builds without
 * SAC_INTERVAL the function warns once and falls back to the plain
 * writeCellManifest(). Returns the manifest path ("" on I/O failure).
 *
 * @deprecated Thin wrapper over writeCellManifest(dir, ManifestCell,
 * EngineTag::ExactReplay) with cell.trace/instrument set (sweep.hh);
 * will be removed next release.
 */
std::string
writeInstrumentedCellManifest(const std::string &dir,
                              const std::string &workload,
                              const core::Config &cfg,
                              const trace::Trace &t,
                              const sim::RunStats &stats,
                              const InstrumentOptions &opt,
                              double sim_seconds = 0.0,
                              const util::Json *extra_timing = nullptr);

/** Render a table as RFC-4180-style CSV (quoted where needed). */
std::string toCsv(const util::Table &table);

/** Write a table to a CSV file; returns false on I/O failure. */
bool writeCsvFile(const util::Table &table, const std::string &path);

} // namespace harness
} // namespace sac

#endif // SAC_HARNESS_EXPERIMENT_HH
