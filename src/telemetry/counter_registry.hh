/**
 * @file
 * Named hierarchical statistics registry in the gem5 stats style:
 * every counter carries a dotted path ("cache.main.hits"), a
 * description, and serializes uniformly to JSON (nested by path
 * segment) and CSV. sim::RunStats registers its fields here so run
 * manifests and tools observe one schema instead of ad-hoc printing.
 *
 * Naming convention: lower_snake_case segments joined by dots,
 * subsystem first ("bounce.aborted", "traffic.bytes_fetched"). A path
 * must not be both a leaf counter and a group prefix of another
 * counter; registration enforces this.
 */

#ifndef SAC_TELEMETRY_COUNTER_REGISTRY_HH
#define SAC_TELEMETRY_COUNTER_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/json.hh"

namespace sac {
namespace telemetry {

/** One named event counter. */
struct Counter
{
    std::string name; //!< dotted path, e.g. "cache.main.hits"
    std::string desc; //!< one-line human description
    std::uint64_t value = 0;

    Counter &operator+=(std::uint64_t n)
    {
        value += n;
        return *this;
    }
    Counter &operator++()
    {
        ++value;
        return *this;
    }
};

/** A histogram with power-of-two buckets: bucket i counts [2^i, 2^(i+1)). */
struct Histogram
{
    std::string name;
    std::string desc;
    std::vector<std::uint64_t> buckets; //!< log2 buckets, grown on demand
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;

    /** Record one sample of magnitude @p v (v = 0 lands in bucket 0). */
    void sample(std::uint64_t v);

    /** Mean of all samples (0 when empty). */
    double mean() const;

    /**
     * The @p p quantile (p in [0, 1], e.g. 0.5/0.95/0.99) estimated
     * by linear interpolation within the log2 bucket that crosses the
     * target rank; exact bucket boundaries are recovered exactly
     * (uniform 0..1023 reports p50 = 512). 0 when empty.
     */
    double percentile(double p) const;
};

/**
 * Registry of named counters and histograms. Registration returns a
 * stable reference (entries are never removed); re-registering a name
 * returns the existing entry so independent components can share a
 * counter. Lookup and serialization respect registration order, which
 * keeps emitted documents byte-stable.
 *
 * Not thread-safe: each simulation owns its registry (matching the
 * one-RunStats-per-run design); merge across runs with merge().
 */
class CounterRegistry
{
  public:
    /** Register (or fetch) counter @p name. Panics on group/leaf clash. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");

    /** Register (or fetch) histogram @p name. */
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "");

    /** Lookup; nullptr when @p name was never registered. */
    const Counter *find(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Value of counter @p name; 0 when absent. */
    std::uint64_t value(const std::string &name) const;

    /** Sum of every counter whose name starts with @p prefix. */
    std::uint64_t total(const std::string &prefix) const;

    /** All counters in registration order. */
    const std::deque<Counter> &counters() const { return counters_; }

    /** All histograms in registration order. */
    const std::deque<Histogram> &histograms() const
    {
        return histograms_;
    }

    /** Add every counter/histogram of @p other into this registry. */
    void merge(const CounterRegistry &other);

    /**
     * Counters as a JSON object nested by dotted-path segment:
     * {"cache": {"main": {"hits": 12}}}. Histograms appear under
     * their path as {"buckets": [...], "samples": n, "mean": x}.
     */
    util::Json toJson() const;

    /**
     * Flat JSON object ("cache.main.hits": 12), for diff-friendly
     * machine consumption in manifests.
     */
    util::Json toFlatJson() const;

    /** CSV with header "name,value,description", one counter per row. */
    std::string toCsv() const;

    /**
     * Prometheus text exposition (version 0.0.4) of the registry:
     * every counter becomes `<prefix>_<name>` (dots and other
     * non-metric characters mapped to '_') with # HELP / # TYPE
     * comments; histograms expand to the conventional cumulative
     * _bucket{le="..."} series (le = inclusive upper bound of each
     * log2 bucket) plus _sum and _count. Groundwork for the sweep
     * service's /metrics endpoint.
     */
    void writePrometheus(std::ostream &os,
                         const std::string &prefix = "sac") const;

    /** writePrometheus() into a string. */
    std::string toPrometheus(const std::string &prefix = "sac") const;

  private:
    // Deques: registration hands out references that must survive
    // later registrations.
    std::deque<Counter> counters_;
    std::deque<Histogram> histograms_;
};

} // namespace telemetry
} // namespace sac

#endif // SAC_TELEMETRY_COUNTER_REGISTRY_HH
