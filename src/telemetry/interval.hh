/**
 * @file
 * Time-resolved run statistics: the IntervalRecorder snapshots the
 * full sim::RunStats delta every N records — miss ratio, per-class
 * misses, traffic, write-buffer occupancy, bounce-backs — and exports
 * the series as JSONL ("sac-intervals-v1") next to the run manifest.
 * The simulator hook is compile-time gated by SAC_INTERVAL (mirroring
 * SAC_AUDIT) and runs only in detailed StatsMode, so functional
 * warming and the compiled-out configuration pay nothing.
 *
 * Every uint64 counter is monotone non-decreasing within a run (the
 * completion cycle included), so plain unsigned subtraction telescopes
 * exactly: the per-interval deltas sum bit-for-bit to the final
 * RunStats. interval_test pins that property differentially.
 *
 * Layering: RunStats fields are read through the header-only
 * forEachCounter() enumeration only, so sac_telemetry keeps linking
 * nothing but sac_util.
 */

#ifndef SAC_TELEMETRY_INTERVAL_HH
#define SAC_TELEMETRY_INTERVAL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/run_stats.hh"
#include "src/util/json.hh"

// Fallback so includers that predate the build-system flag (or
// standalone header parses) see the hooks as enabled, mirroring
// SAC_AUDIT_ENABLED / SAC_TRACE_EVENTS_ENABLED.
#ifndef SAC_INTERVAL_ENABLED
#define SAC_INTERVAL_ENABLED 1
#endif

namespace sac {
namespace telemetry {

/** Schema tag of the interval JSONL export (header line). */
inline constexpr const char *intervalSchema = "sac-intervals-v1";

/**
 * One recorded interval: the counter deltas accumulated since the
 * previous snapshot plus the cumulative state at the boundary.
 */
struct IntervalSnapshot
{
    std::uint64_t index = 0;       //!< 0-based interval number
    std::uint64_t startRecord = 0; //!< first access of the interval
    std::uint64_t endRecord = 0;   //!< one past the last access
    std::uint32_t writeBufferOccupancy = 0; //!< entries at the boundary
    bool closing = false; //!< partial interval flushed by finish()

    /** Per-counter deltas, in RunStats::forEachCounter() order. */
    std::vector<std::uint64_t> deltas;

    /** Latency-cycle delta (the one double-valued RunStats field). */
    double deltaAccessCycles = 0.0;

    /** Cumulative stats at the interval boundary. */
    sim::RunStats cumulative;
};

/**
 * Periodic RunStats snapshotter. The simulator calls afterAccess()
 * once per detailed-mode access (one decrement and one branch on the
 * hot path); every `interval_records`-th call captures a snapshot.
 * finish() flushes the trailing partial interval. Attach with
 * core::SoftwareAssistedCache::attachIntervalRecorder() — the hook
 * compiles out entirely when SAC_INTERVAL_ENABLED is 0.
 */
class IntervalRecorder
{
  public:
    /** Snapshot every @p interval_records accesses (clamped >= 1). */
    explicit IntervalRecorder(std::uint64_t interval_records);

    /** Hot-path hook: countdown, snapshot on expiry. */
    void afterAccess(const sim::RunStats &stats,
                     std::uint32_t wb_occupancy)
    {
        if (--countdown_ != 0)
            return;
        countdown_ = every_;
        capture(stats, wb_occupancy, false);
    }

    /**
     * Flush the trailing partial interval (no-op when the run ended
     * exactly on a boundary or nothing changed since the last
     * snapshot). Idempotent; called by the simulator's finish().
     */
    void finish(const sim::RunStats &stats,
                std::uint32_t wb_occupancy);

    /** Snapshot period in records. */
    std::uint64_t intervalRecords() const { return every_; }

    /** All captured snapshots, in time order. */
    const std::vector<IntervalSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /**
     * Component-wise sum of every snapshot's deltas — equals the
     * final RunStats counters exactly (the differential property
     * interval_test checks).
     */
    std::vector<std::uint64_t> deltaTotals() const;

    /** Sum of the per-interval latency-cycle deltas. */
    double deltaAccessCyclesTotal() const;

    /**
     * Dotted counter names in snapshot-delta order (identical to
     * RunStats::registerInto() registration order).
     */
    static const std::vector<std::string> &counterNames();

    /** Index of @p name in counterNames(); size() when unknown. */
    static std::size_t counterIndex(const std::string &name);

    /** The JSONL header line (schema, run identity, period). */
    util::Json headerJson(const std::string &workload,
                          const std::string &config_name,
                          const std::string &cache_key) const;

    /** One snapshot as a single JSONL line value. */
    util::Json snapshotJson(const IntervalSnapshot &s) const;

    /**
     * Write the full series as JSONL: one header line, then one line
     * per snapshot. Returns false when the file cannot be written.
     */
    bool writeJsonl(const std::string &path,
                    const std::string &workload,
                    const std::string &config_name,
                    const std::string &cache_key) const;

  private:
    void capture(const sim::RunStats &stats, std::uint32_t wb_occupancy,
                 bool closing);

    std::uint64_t every_;
    std::uint64_t countdown_;
    bool finished_ = false;
    sim::RunStats last_;                    //!< state at last snapshot
    std::vector<std::uint64_t> lastValues_; //!< counters of last_
    std::vector<IntervalSnapshot> snapshots_;
};

} // namespace telemetry
} // namespace sac

#endif // SAC_TELEMETRY_INTERVAL_HH
