#include "src/telemetry/phase_timer.hh"

namespace sac {
namespace telemetry {

PhaseTimer::Phase &
PhaseTimer::lockedPhase(const std::string &name)
{
    for (auto &p : phases_) {
        if (p.name == name)
            return p;
    }
    phases_.push_back(Phase{name, 0.0, 0});
    return phases_.back();
}

void
PhaseTimer::add(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Phase &p = lockedPhase(name);
    p.seconds += seconds;
    ++p.invocations;
}

void
PhaseTimer::count(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++lockedPhase(name).invocations;
}

double
PhaseTimer::seconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &p : phases_) {
        if (p.name == name)
            return p.seconds;
    }
    return 0.0;
}

std::vector<PhaseTimer::Phase>
PhaseTimer::phases() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return phases_;
}

util::Json
PhaseTimer::toJson() const
{
    util::Json root = util::Json::object();
    for (const auto &p : phases()) {
        util::Json entry = util::Json::object();
        entry.set("seconds", p.seconds);
        entry.set("invocations", p.invocations);
        root.set(p.name, std::move(entry));
    }
    return root;
}

} // namespace telemetry
} // namespace sac
