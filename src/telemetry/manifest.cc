#include "src/telemetry/manifest.hh"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace sac {
namespace telemetry {

std::string
gitDescribe()
{
#ifdef SAC_GIT_DESCRIBE
    return SAC_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
manifestFileName(const std::string &workload,
                 const std::string &cache_key)
{
    std::string safe;
    for (const char c : workload) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            safe += c;
        else
            safe += '_';
    }
    if (safe.empty())
        safe = "run";
    std::ostringstream os;
    os << safe << '_' << std::hex << std::setw(16)
       << std::setfill('0') << fnv1a(cache_key) << ".json";
    return os.str();
}

util::Json
manifestJson(const Manifest &m)
{
    util::Json doc = util::Json::object();
    doc.set("schema", manifestSchema);
    doc.set("git_describe", gitDescribe());
    doc.set("workload", m.workload);
    doc.set("config_name", m.configName);
    doc.set("cache_key", m.cacheKey);
    if (!m.engine.empty())
        doc.set("engine", m.engine);
    doc.set("config", m.config);
    doc.set("counters", m.counters);
    doc.set("metrics", m.metrics);
    doc.set("timing", m.timing);
    if (m.profile.size() > 0)
        doc.set("profile", m.profile);
    return doc;
}

std::string
writeManifestFile(const std::string &dir, const Manifest &m)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "";
    const std::filesystem::path path =
        std::filesystem::path(dir) /
        manifestFileName(m.workload, m.cacheKey);
    std::ofstream os(path);
    if (!os)
        return "";
    manifestJson(m).write(os, 2);
    os << '\n';
    if (!os)
        return "";
    return path.string();
}

} // namespace telemetry
} // namespace sac
