/**
 * @file
 * Per-set heat profiling over cache::CacheArray: access, miss,
 * eviction and conflict counters indexed by set, emitted as a compact
 * heatmap block ("sac-set-profile-v1") in the run manifest. This
 * makes the paper's conflict story visible — fig09-style sweeps can
 * show *which* sets the assisted configurations decongest instead of
 * only how many conflict misses disappeared in aggregate.
 *
 * The simulator hooks (attachSetProfiler) share the SAC_INTERVAL
 * compile-time gate with the interval engine and only run in detailed
 * StatsMode. The profiler itself is simulator-agnostic: plain
 * per-set vectors any array-indexed structure can drive.
 */

#ifndef SAC_TELEMETRY_SET_PROFILE_HH
#define SAC_TELEMETRY_SET_PROFILE_HH

#include <cstdint>
#include <vector>

#include "src/util/json.hh"

namespace sac {
namespace telemetry {

/** Schema tag of the manifest heatmap block. */
inline constexpr const char *setProfileSchema = "sac-set-profile-v1";

/** Per-set access/miss/eviction/conflict counters. */
class SetProfiler
{
  public:
    /** Profile an array of @p num_sets sets (clamped >= 1). */
    explicit SetProfiler(std::uint32_t num_sets);

    void onAccess(std::uint32_t set) noexcept { ++accesses_[set]; }
    void onMiss(std::uint32_t set) noexcept { ++misses_[set]; }
    void onEviction(std::uint32_t set) noexcept { ++evictions_[set]; }
    void onConflict(std::uint32_t set) noexcept { ++conflicts_[set]; }

    std::uint32_t numSets() const
    {
        return static_cast<std::uint32_t>(accesses_.size());
    }

    const std::vector<std::uint64_t> &accesses() const
    {
        return accesses_;
    }
    const std::vector<std::uint64_t> &misses() const
    {
        return misses_;
    }
    const std::vector<std::uint64_t> &evictions() const
    {
        return evictions_;
    }
    const std::vector<std::uint64_t> &conflicts() const
    {
        return conflicts_;
    }

    std::uint64_t totalAccesses() const { return total(accesses_); }
    std::uint64_t totalMisses() const { return total(misses_); }
    std::uint64_t totalEvictions() const { return total(evictions_); }
    std::uint64_t totalConflicts() const { return total(conflicts_); }

    /** Set with the most misses (lowest index on ties). */
    std::uint32_t hottestSet() const;

    /** The manifest heatmap block (schema, per-set arrays, totals). */
    util::Json toJson() const;

  private:
    static std::uint64_t total(const std::vector<std::uint64_t> &v);

    std::vector<std::uint64_t> accesses_;
    std::vector<std::uint64_t> misses_;
    std::vector<std::uint64_t> evictions_;
    std::vector<std::uint64_t> conflicts_;
};

} // namespace telemetry
} // namespace sac

#endif // SAC_TELEMETRY_SET_PROFILE_HH
