/**
 * @file
 * Low-overhead per-access event tracer: a fixed-capacity ring buffer
 * of (cycle, kind, address, arg) tuples recorded by the simulator and
 * exportable as Chrome trace_event JSON for visual inspection of a
 * window of a run in chrome://tracing or Perfetto.
 *
 * The simulator hooks are compile-time gated: configure with
 * -DSAC_TRACE_EVENTS=OFF to compile every SAC_TRACE_EVENT() site out
 * entirely (zero overhead, verified by bench_simspeed). With the
 * hooks compiled in, an unattached tracer costs one predictable
 * branch per event site.
 */

#ifndef SAC_TELEMETRY_EVENT_TRACE_HH
#define SAC_TELEMETRY_EVENT_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/types.hh"

// CMake normally defines this (option SAC_TRACE_EVENTS); standalone
// compilations get the hooks by default.
#ifndef SAC_TRACE_EVENTS_ENABLED
#define SAC_TRACE_EVENTS_ENABLED 1
#endif

#if SAC_TRACE_EVENTS_ENABLED
/** Record an event iff @p tracer is attached (compiled in). */
#define SAC_TRACE_EVENT(tracer, kind, cycle, addr, arg)                     \
    do {                                                                    \
        if (tracer)                                                         \
            (tracer)->record((kind), (cycle), (addr), (arg));               \
    } while (0)
#else
/** Event tracing compiled out: the site vanishes entirely. */
#define SAC_TRACE_EVENT(tracer, kind, cycle, addr, arg)                     \
    do {                                                                    \
    } while (0)
#endif

namespace sac {
namespace telemetry {

/** Kind of simulator event. Keep kindName() in sync. */
enum class EventKind : std::uint8_t
{
    Access,          //!< reference issued (arg: 0 read, 1 write)
    MainHit,         //!< hit in the main cache
    AuxHit,          //!< hit in the bounce-back / victim / pf buffer
    Miss,            //!< demand miss (arg: physical lines fetched)
    Fill,            //!< one physical line installed by a miss
    Swap,            //!< aux hit swapped with the main resident
    Bounce,          //!< temporal bounce-back performed
    BounceCancelled, //!< bounce aimed at an in-flight fill target
    BounceAborted,   //!< bounce onto dirty line, write buffer full
    Evict,           //!< valid line displaced from the main cache
    Writeback,       //!< line queued to the write buffer (arg: bytes)
    Prefetch,        //!< prefetch request issued (arg: degree)
    PrefetchInstall, //!< prefetched line landed in the aux cache
    Bypass,          //!< non-temporal reference bypassed the cache
};

/** Number of EventKind values (for per-kind rows/tallies). */
inline constexpr std::size_t numEventKinds = 14;

/** Stable lower-camel name of @p kind ("mainHit"). */
const char *kindName(EventKind kind);

/** One recorded simulator event. */
struct Event
{
    Cycle cycle = 0;
    Addr addr = 0;
    std::uint32_t arg = 0;
    EventKind kind = EventKind::Access;
};

/**
 * Fixed-capacity ring buffer of simulator events. When full, new
 * events overwrite the oldest, so the buffer always holds the most
 * recent window of the run — the interesting part when diagnosing an
 * end-of-run anomaly, and a bounded cost for arbitrarily long traces.
 */
class EventTracer
{
  public:
    /** A tracer of defaultCapacity() events. */
    EventTracer() : EventTracer(defaultCapacity()) {}

    /** @param capacity ring size in events (rounded up to >= 2). */
    explicit EventTracer(std::size_t capacity);

    /**
     * Ring capacity used when none is given: the process-wide
     * override set by setDefaultCapacity() (harness `--trace-ring`),
     * else the SAC_TRACE_RING environment variable (events, parsed
     * per call so tests can vary it), else 65536.
     */
    static std::size_t defaultCapacity();

    /**
     * Set (n > 0) or clear (n = 0) the process-wide default capacity
     * override; takes precedence over SAC_TRACE_RING.
     */
    static void setDefaultCapacity(std::size_t n);

    /** Record one event (overwrites the oldest when full). */
    void
    record(EventKind kind, Cycle cycle, Addr addr,
           std::uint32_t arg = 0) noexcept
    {
        Event &e = ring_[head_];
        e.cycle = cycle;
        e.addr = addr;
        e.arg = arg;
        e.kind = kind;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++recorded_;
    }

    /** Events currently held (<= capacity()). */
    std::size_t size() const;

    /** Ring capacity in events. */
    std::size_t capacity() const { return ring_.size(); }

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to overwriting. */
    std::uint64_t dropped() const { return recorded_ - size(); }

    /** Forget everything (capacity is retained). */
    void clear();

    /** Held events, oldest first. */
    std::vector<Event> snapshot() const;

    /** Per-kind tallies over the held window, indexed by EventKind. */
    std::vector<std::uint64_t> kindTallies() const;

    /**
     * Export the held window in Chrome trace_event JSON format: one
     * instant event per record, one track (tid) per event kind, ts =
     * simulated cycle (displayed as microseconds). Load the file in
     * chrome://tracing or https://ui.perfetto.dev.
     */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace() to a file; false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    std::vector<Event> ring_;
    std::size_t head_ = 0;        //!< next slot to write
    std::uint64_t recorded_ = 0;  //!< lifetime event count
};

} // namespace telemetry
} // namespace sac

#endif // SAC_TELEMETRY_EVENT_TRACE_HH
