#include "src/telemetry/set_profile.hh"

namespace sac {
namespace telemetry {

namespace {

util::Json
countsArray(const std::vector<std::uint64_t> &v)
{
    util::Json arr = util::Json::array();
    for (std::uint64_t x : v)
        arr.push(x);
    return arr;
}

} // namespace

SetProfiler::SetProfiler(std::uint32_t num_sets)
    : accesses_(num_sets == 0 ? 1 : num_sets, 0),
      misses_(accesses_.size(), 0), evictions_(accesses_.size(), 0),
      conflicts_(accesses_.size(), 0)
{
}

std::uint32_t
SetProfiler::hottestSet() const
{
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < numSets(); ++i) {
        if (misses_[i] > misses_[best])
            best = i;
    }
    return best;
}

util::Json
SetProfiler::toJson() const
{
    util::Json j = util::Json::object();
    j.set("schema", setProfileSchema);
    j.set("sets", static_cast<std::uint64_t>(numSets()));
    j.set("accesses", countsArray(accesses_));
    j.set("misses", countsArray(misses_));
    j.set("evictions", countsArray(evictions_));
    j.set("conflicts", countsArray(conflicts_));
    util::Json totals = util::Json::object();
    totals.set("accesses", totalAccesses());
    totals.set("misses", totalMisses());
    totals.set("evictions", totalEvictions());
    totals.set("conflicts", totalConflicts());
    j.set("total", std::move(totals));
    j.set("hottest_set", static_cast<std::uint64_t>(hottestSet()));
    return j;
}

std::uint64_t
SetProfiler::total(const std::vector<std::uint64_t> &v)
{
    std::uint64_t sum = 0;
    for (std::uint64_t x : v)
        sum += x;
    return sum;
}

} // namespace telemetry
} // namespace sac
