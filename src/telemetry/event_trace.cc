#include "src/telemetry/event_trace.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/util/json.hh"
#include "src/util/logging.hh"

namespace sac {
namespace telemetry {

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Access:
        return "access";
      case EventKind::MainHit:
        return "mainHit";
      case EventKind::AuxHit:
        return "auxHit";
      case EventKind::Miss:
        return "miss";
      case EventKind::Fill:
        return "fill";
      case EventKind::Swap:
        return "swap";
      case EventKind::Bounce:
        return "bounce";
      case EventKind::BounceCancelled:
        return "bounceCancelled";
      case EventKind::BounceAborted:
        return "bounceAborted";
      case EventKind::Evict:
        return "evict";
      case EventKind::Writeback:
        return "writeback";
      case EventKind::Prefetch:
        return "prefetch";
      case EventKind::PrefetchInstall:
        return "prefetchInstall";
      case EventKind::Bypass:
        return "bypass";
    }
    util::panic("unknown EventKind ",
                static_cast<unsigned>(kind));
}

EventTracer::EventTracer(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 2))
{
}

namespace {

std::size_t &
capacityOverride()
{
    static std::size_t value = 0; // 0 = no override
    return value;
}

} // namespace

std::size_t
EventTracer::defaultCapacity()
{
    if (capacityOverride() != 0)
        return capacityOverride();
    // Parsed per call (not cached) so tests and long-lived harnesses
    // observe environment changes.
    if (const char *env = std::getenv("SAC_TRACE_RING")) {
        char *end = nullptr;
        const unsigned long long n = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<std::size_t>(n);
    }
    return 1 << 16;
}

void
EventTracer::setDefaultCapacity(std::size_t n)
{
    capacityOverride() = n;
}

std::size_t
EventTracer::size() const
{
    return recorded_ < ring_.size()
               ? static_cast<std::size_t>(recorded_)
               : ring_.size();
}

void
EventTracer::clear()
{
    head_ = 0;
    recorded_ = 0;
}

std::vector<Event>
EventTracer::snapshot() const
{
    std::vector<Event> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest first: when the ring has wrapped, the oldest entry sits
    // at head_ (the next slot to be overwritten).
    const std::size_t start =
        recorded_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::vector<std::uint64_t>
EventTracer::kindTallies() const
{
    std::vector<std::uint64_t> tallies(numEventKinds, 0);
    for (const Event &e : snapshot())
        ++tallies[static_cast<std::size_t>(e.kind)];
    return tallies;
}

namespace {

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

void
EventTracer::exportChromeTrace(std::ostream &os) const
{
    util::Json events = util::Json::array();

    // One named track per event kind so chrome://tracing / Perfetto
    // render each mechanism as its own row.
    for (std::size_t k = 0; k < numEventKinds; ++k) {
        util::Json meta = util::Json::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", static_cast<std::int64_t>(k));
        util::Json args = util::Json::object();
        args.set("name", kindName(static_cast<EventKind>(k)));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }

    for (const Event &e : snapshot()) {
        util::Json j = util::Json::object();
        j.set("name", kindName(e.kind));
        j.set("ph", "i");
        j.set("s", "t");
        j.set("ts", e.cycle);
        j.set("pid", 1);
        j.set("tid",
              static_cast<std::int64_t>(
                  static_cast<std::size_t>(e.kind)));
        util::Json args = util::Json::object();
        args.set("addr", hexAddr(e.addr));
        args.set("arg", static_cast<std::uint64_t>(e.arg));
        j.set("args", std::move(args));
        events.push(std::move(j));
    }

    util::Json doc = util::Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ns");
    doc.write(os, 0);
}

bool
EventTracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    exportChromeTrace(os);
    return static_cast<bool>(os);
}

} // namespace telemetry
} // namespace sac
