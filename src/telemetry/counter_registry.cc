#include "src/telemetry/counter_registry.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace telemetry {

void
Histogram::sample(std::uint64_t v)
{
    std::size_t bucket = 0;
    while ((1ull << (bucket + 1)) <= v && bucket < 63)
        ++bucket;
    if (bucket >= buckets.size())
        buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
    ++samples;
    sum += v;
}

double
Histogram::mean() const
{
    if (samples == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(samples);
}

double
Histogram::percentile(double p) const
{
    if (samples == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(samples);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        if (static_cast<double>(cum + buckets[i]) >= target) {
            // Interpolate within [lo, hi): bucket 0 holds 0 and 1,
            // bucket i >= 1 holds [2^i, 2^(i+1)). Samples are assumed
            // uniform inside the bucket, so an exact boundary rank
            // (e.g. the median of uniform 0..1023) lands exactly on
            // the boundary value.
            const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i);
            const double hi = std::ldexp(1.0, i + 1);
            const double frac = (target - static_cast<double>(cum)) /
                                static_cast<double>(buckets[i]);
            return lo + frac * (hi - lo);
        }
        cum += buckets[i];
    }
    // p rounded past the last sample: the top of the last bucket.
    for (std::size_t i = buckets.size(); i-- > 0;) {
        if (buckets[i] != 0)
            return std::ldexp(1.0, i + 1);
    }
    return 0.0;
}

Counter &
CounterRegistry::counter(const std::string &name,
                         const std::string &desc)
{
    SAC_ASSERT(!name.empty(), "counter names must be non-empty");
    for (auto &c : counters_) {
        if (c.name == name) {
            if (c.desc.empty() && !desc.empty())
                c.desc = desc;
            return c;
        }
    }
    // Enforce the tree shape: a leaf may not also be a group.
    const std::string as_group = name + ".";
    for (const auto &c : counters_) {
        if (c.name.rfind(as_group, 0) == 0 ||
            name.rfind(c.name + ".", 0) == 0) {
            util::panic("counter name '", name,
                        "' clashes with existing counter '", c.name,
                        "': a path cannot be both a leaf and a group");
        }
    }
    counters_.push_back(Counter{name, desc, 0});
    return counters_.back();
}

Histogram &
CounterRegistry::histogram(const std::string &name,
                           const std::string &desc)
{
    SAC_ASSERT(!name.empty(), "histogram names must be non-empty");
    for (auto &h : histograms_) {
        if (h.name == name)
            return h;
    }
    histograms_.push_back(Histogram{name, desc, {}, 0, 0});
    return histograms_.back();
}

const Counter *
CounterRegistry::find(const std::string &name) const
{
    for (const auto &c : counters_) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

const Histogram *
CounterRegistry::findHistogram(const std::string &name) const
{
    for (const auto &h : histograms_) {
        if (h.name == name)
            return &h;
    }
    return nullptr;
}

std::uint64_t
CounterRegistry::value(const std::string &name) const
{
    const Counter *c = find(name);
    return c ? c->value : 0;
}

std::uint64_t
CounterRegistry::total(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (const auto &c : counters_) {
        if (c.name.rfind(prefix, 0) == 0)
            sum += c.value;
    }
    return sum;
}

void
CounterRegistry::merge(const CounterRegistry &other)
{
    for (const auto &c : other.counters_)
        counter(c.name, c.desc) += c.value;
    for (const auto &h : other.histograms_) {
        Histogram &mine = histogram(h.name, h.desc);
        if (mine.buckets.size() < h.buckets.size())
            mine.buckets.resize(h.buckets.size(), 0);
        for (std::size_t i = 0; i < h.buckets.size(); ++i)
            mine.buckets[i] += h.buckets[i];
        mine.samples += h.samples;
        mine.sum += h.sum;
    }
}

namespace {

/** Insert @p value at dotted @p path below object @p root. */
void
setByPath(util::Json &root, const std::string &path, util::Json value)
{
    util::Json *node = &root;
    std::size_t start = 0;
    for (;;) {
        const std::size_t dot = path.find('.', start);
        const std::string segment =
            path.substr(start, dot == std::string::npos
                                   ? std::string::npos
                                   : dot - start);
        if (dot == std::string::npos) {
            node->set(segment, std::move(value));
            return;
        }
        if (!node->find(segment))
            node->set(segment, util::Json::object());
        node = node->find(segment);
        start = dot + 1;
    }
}

util::Json
histogramJson(const Histogram &h)
{
    util::Json buckets = util::Json::array();
    for (const auto b : h.buckets)
        buckets.push(b);
    util::Json j = util::Json::object();
    j.set("samples", h.samples);
    j.set("sum", h.sum);
    j.set("mean", h.mean());
    j.set("p50", h.percentile(0.50));
    j.set("p95", h.percentile(0.95));
    j.set("p99", h.percentile(0.99));
    j.set("log2_buckets", std::move(buckets));
    return j;
}

/** Map a dotted counter path onto a Prometheus metric name. */
std::string
promName(const std::string &prefix, const std::string &name)
{
    std::string out = prefix.empty() ? name : prefix + "_" + name;
    for (char &ch : out) {
        const bool ok =
            std::isalnum(static_cast<unsigned char>(ch)) != 0 ||
            ch == '_' || ch == ':';
        if (!ok)
            ch = '_';
    }
    if (!out.empty() &&
        std::isdigit(static_cast<unsigned char>(out[0])) != 0)
        out.insert(out.begin(), '_');
    return out;
}

/** Escape a description for a single-line # HELP comment. */
std::string
promHelp(const std::string &desc)
{
    std::string out;
    out.reserve(desc.size());
    for (const char ch : desc) {
        if (ch == '\\')
            out += "\\\\";
        else if (ch == '\n')
            out += "\\n";
        else
            out += ch;
    }
    return out;
}

} // namespace

util::Json
CounterRegistry::toJson() const
{
    util::Json root = util::Json::object();
    for (const auto &c : counters_)
        setByPath(root, c.name, c.value);
    for (const auto &h : histograms_)
        setByPath(root, h.name, histogramJson(h));
    return root;
}

util::Json
CounterRegistry::toFlatJson() const
{
    util::Json root = util::Json::object();
    for (const auto &c : counters_)
        root.set(c.name, c.value);
    for (const auto &h : histograms_)
        root.set(h.name, histogramJson(h));
    return root;
}

void
CounterRegistry::writePrometheus(std::ostream &os,
                                 const std::string &prefix) const
{
    for (const auto &c : counters_) {
        const std::string n = promName(prefix, c.name);
        if (!c.desc.empty())
            os << "# HELP " << n << ' ' << promHelp(c.desc) << '\n';
        os << "# TYPE " << n << " counter\n";
        os << n << ' ' << c.value << '\n';
    }
    for (const auto &h : histograms_) {
        const std::string n = promName(prefix, h.name);
        if (!h.desc.empty())
            os << "# HELP " << n << ' ' << promHelp(h.desc) << '\n';
        os << "# TYPE " << n << " histogram\n";
        // le is inclusive, so log2 bucket i ([2^i, 2^(i+1))) maps to
        // le = 2^(i+1) - 1; counts are cumulative per the exposition
        // format.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            cum += h.buckets[i];
            os << n << "_bucket{le=\"" << ((1ull << (i + 1)) - 1)
               << "\"} " << cum << '\n';
        }
        os << n << "_bucket{le=\"+Inf\"} " << h.samples << '\n';
        os << n << "_sum " << h.sum << '\n';
        os << n << "_count " << h.samples << '\n';
    }
}

std::string
CounterRegistry::toPrometheus(const std::string &prefix) const
{
    std::ostringstream os;
    writePrometheus(os, prefix);
    return os.str();
}

std::string
CounterRegistry::toCsv() const
{
    std::ostringstream os;
    os << "name,value,description\n";
    for (const auto &c : counters_) {
        std::string desc = c.desc;
        const bool needs_quotes =
            desc.find_first_of(",\"\n") != std::string::npos;
        if (needs_quotes) {
            std::string quoted = "\"";
            for (const char ch : desc) {
                if (ch == '"')
                    quoted += '"';
                quoted += ch;
            }
            quoted += '"';
            desc = quoted;
        }
        os << c.name << ',' << c.value << ',' << desc << '\n';
    }
    return os.str();
}

} // namespace telemetry
} // namespace sac
