/**
 * @file
 * Wall-clock phase accounting for the experiment pipeline: how long a
 * run spent generating traces, warming caches, simulating and
 * rendering reports, plus worker utilization of parallel sweeps.
 * Phases are named free-form; the harness uses "trace-gen", "warmup",
 * "sim" and "report".
 */

#ifndef SAC_TELEMETRY_PHASE_TIMER_HH
#define SAC_TELEMETRY_PHASE_TIMER_HH

#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/util/json.hh"

namespace sac {
namespace telemetry {

/**
 * Accumulates wall-clock seconds per named phase. add() is
 * thread-safe, so parallel sweep workers can report their per-cell
 * durations concurrently; phase order follows first use.
 */
class PhaseTimer
{
  public:
    /** Add @p seconds to phase @p name. Thread-safe. */
    void add(const std::string &name, double seconds);

    /** Increment the invocation count of @p name without time. */
    void count(const std::string &name);

    /** Accumulated seconds of @p name (0 when never reported). */
    double seconds(const std::string &name) const;

    /** All phases in first-use order: (name, seconds, invocations). */
    struct Phase
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t invocations = 0;
    };
    std::vector<Phase> phases() const;

    /** {"trace-gen": {"seconds": s, "invocations": n}, ...}. */
    util::Json toJson() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Phase> phases_;

    Phase &lockedPhase(const std::string &name);
};

/**
 * RAII phase measurement: adds the scope's wall-clock duration to
 * @p timer under @p name on destruction.
 */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseTimer &timer, std::string name)
        : timer_(timer), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    /** Seconds elapsed since construction. */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    ~ScopedPhase() { timer_.add(name_, elapsed()); }

  private:
    PhaseTimer &timer_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace telemetry
} // namespace sac

#endif // SAC_TELEMETRY_PHASE_TIMER_HH
