#include "src/telemetry/interval.hh"

#include <fstream>
#include <ostream>

#include "src/telemetry/manifest.hh"
#include "src/util/stats.hh"

namespace sac {
namespace telemetry {

namespace {

std::vector<std::uint64_t>
counterValues(const sim::RunStats &s)
{
    std::vector<std::uint64_t> out;
    out.reserve(IntervalRecorder::counterNames().size());
    s.forEachCounter(
        [&](const char *, const char *, std::uint64_t value) {
            out.push_back(value);
        });
    return out;
}

} // namespace

IntervalRecorder::IntervalRecorder(std::uint64_t interval_records)
    : every_(interval_records == 0 ? 1 : interval_records),
      countdown_(every_), lastValues_(counterValues(last_))
{
}

void
IntervalRecorder::finish(const sim::RunStats &stats,
                         std::uint32_t wb_occupancy)
{
    if (finished_)
        return;
    finished_ = true;
    countdown_ = every_;
    bool dirty = stats.totalAccessCycles != last_.totalAccessCycles;
    const auto cur = counterValues(stats);
    for (std::size_t i = 0; i < cur.size() && !dirty; ++i)
        dirty = cur[i] != lastValues_[i];
    if (dirty)
        capture(stats, wb_occupancy, true);
}

void
IntervalRecorder::capture(const sim::RunStats &stats,
                          std::uint32_t wb_occupancy, bool closing)
{
    const auto cur = counterValues(stats);
    IntervalSnapshot s;
    s.index = snapshots_.size();
    s.startRecord = last_.accesses;
    s.endRecord = stats.accesses;
    s.writeBufferOccupancy = wb_occupancy;
    s.closing = closing;
    s.deltas.resize(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i)
        s.deltas[i] = cur[i] - lastValues_[i];
    s.deltaAccessCycles =
        stats.totalAccessCycles - last_.totalAccessCycles;
    s.cumulative = stats;
    snapshots_.push_back(std::move(s));
    last_ = stats;
    lastValues_ = cur;
}

std::vector<std::uint64_t>
IntervalRecorder::deltaTotals() const
{
    std::vector<std::uint64_t> out(counterNames().size(), 0);
    for (const auto &s : snapshots_) {
        for (std::size_t i = 0; i < s.deltas.size(); ++i)
            out[i] += s.deltas[i];
    }
    return out;
}

double
IntervalRecorder::deltaAccessCyclesTotal() const
{
    double out = 0.0;
    for (const auto &s : snapshots_)
        out += s.deltaAccessCycles;
    return out;
}

const std::vector<std::string> &
IntervalRecorder::counterNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        sim::RunStats{}.forEachCounter(
            [&](const char *name, const char *, std::uint64_t) {
                out.emplace_back(name);
            });
        return out;
    }();
    return names;
}

std::size_t
IntervalRecorder::counterIndex(const std::string &name)
{
    const auto &names = counterNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return i;
    }
    return names.size();
}

util::Json
IntervalRecorder::headerJson(const std::string &workload,
                             const std::string &config_name,
                             const std::string &cache_key) const
{
    util::Json h = util::Json::object();
    h.set("schema", intervalSchema);
    h.set("git_describe", gitDescribe());
    h.set("workload", workload);
    h.set("config_name", config_name);
    h.set("cache_key", cache_key);
    h.set("interval_records", every_);
    return h;
}

util::Json
IntervalRecorder::snapshotJson(const IntervalSnapshot &s) const
{
    // Interval-local derived metrics; field arithmetic stays inline
    // (RunStats::missRatio()/amat() live in sac_sim, which this
    // library must not link).
    static const std::size_t idx_access = counterIndex("access.total");
    static const std::size_t idx_miss =
        counterIndex("cache.miss.total");
    static const std::size_t idx_bypass = counterIndex("bypass.total");
    const double d_accesses = static_cast<double>(s.deltas[idx_access]);

    util::Json j = util::Json::object();
    j.set("i", s.index);
    j.set("start", s.startRecord);
    j.set("end", s.endRecord);
    if (s.closing)
        j.set("closing", true);
    j.set("wb_occupancy",
          static_cast<std::uint64_t>(s.writeBufferOccupancy));
    j.set("miss_ratio",
          util::safeRatio(static_cast<double>(s.deltas[idx_miss] +
                                              s.deltas[idx_bypass]),
                          d_accesses));
    j.set("amat", util::safeRatio(s.deltaAccessCycles, d_accesses));

    util::Json delta = util::Json::object();
    const auto &names = counterNames();
    for (std::size_t i = 0; i < names.size(); ++i)
        delta.set(names[i], s.deltas[i]);
    delta.set("time.access_cycles", s.deltaAccessCycles);
    j.set("delta", std::move(delta));

    const sim::RunStats &c = s.cumulative;
    util::Json cum = util::Json::object();
    cum.set("accesses", c.accesses);
    cum.set("misses", c.misses);
    cum.set("miss_ratio",
            util::safeRatio(static_cast<double>(c.misses + c.bypasses),
                            static_cast<double>(c.accesses)));
    cum.set("amat", util::safeRatio(c.totalAccessCycles,
                                    static_cast<double>(c.accesses)));
    cum.set("completion_cycle",
            static_cast<std::uint64_t>(c.completionCycle));
    j.set("cum", std::move(cum));
    return j;
}

bool
IntervalRecorder::writeJsonl(const std::string &path,
                             const std::string &workload,
                             const std::string &config_name,
                             const std::string &cache_key) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << headerJson(workload, config_name, cache_key).dump(0) << '\n';
    for (const auto &s : snapshots_)
        os << snapshotJson(s).dump(0) << '\n';
    return static_cast<bool>(os);
}

} // namespace telemetry
} // namespace sac
