/**
 * @file
 * Machine-readable run manifests: one JSON document per (workload,
 * configuration) sweep cell recording everything needed to reproduce
 * and diff the run — the full configuration, its canonical cache key,
 * the git revision of the binary, every registered counter, and
 * wall-clock timing. The bench binaries write these under a directory
 * given by --emit-json; BENCH_*.json perf trajectories are rebuilt
 * from them.
 */

#ifndef SAC_TELEMETRY_MANIFEST_HH
#define SAC_TELEMETRY_MANIFEST_HH

#include <cstdint>
#include <string>

#include "src/util/json.hh"

namespace sac {
namespace telemetry {

/** Manifest schema identifier; bump when the layout changes. */
inline constexpr const char *manifestSchema = "sac-run-manifest-v1";

/** All components of one sweep-cell manifest. */
struct Manifest
{
    std::string workload;   //!< workload / benchmark name
    std::string configName; //!< display name of the configuration
    std::string cacheKey;   //!< core::Config::cacheKey()
    /**
     * Producing engine of the cell's numbers ("exact-replay",
     * "sampled", "stack-single-pass", ...). Optional: omitted from
     * the document when empty, so pre-existing manifests keep their
     * byte layout.
     */
    std::string engine;
    util::Json config = util::Json::object();   //!< full Config
    util::Json counters = util::Json::object(); //!< registry snapshot
    util::Json metrics = util::Json::object();  //!< derived metrics
    util::Json timing = util::Json::object();   //!< wall-clock phases
    /**
     * Per-set heat profile (telemetry::SetProfiler::toJson(),
     * "sac-set-profile-v1"). Optional: omitted from the document when
     * it stays an empty object, so uninstrumented manifests keep
     * their byte layout.
     */
    util::Json profile = util::Json::object();
};

/** `git describe` of the built tree ("unknown" outside a checkout). */
std::string gitDescribe();

/** FNV-1a 64-bit hash (stable across platforms, used in filenames). */
std::uint64_t fnv1a(const std::string &s);

/**
 * Canonical manifest filename: the sanitized workload name plus a
 * 16-hex-digit FNV-1a hash of the cache key, so two cells collide
 * iff they simulate identically.
 */
std::string manifestFileName(const std::string &workload,
                             const std::string &cache_key);

/** Assemble the full manifest document (schema + git + components). */
util::Json manifestJson(const Manifest &m);

/**
 * Write @p m into directory @p dir (created if missing) under
 * manifestFileName(). Returns the written path, or an empty string on
 * I/O failure.
 */
std::string writeManifestFile(const std::string &dir,
                              const Manifest &m);

} // namespace telemetry
} // namespace sac

#endif // SAC_TELEMETRY_MANIFEST_HH
