#include "src/loopnest/program.hh"

#include "src/util/logging.hh"

namespace sac {
namespace loopnest {

std::int64_t
ArrayDecl::elementCount() const
{
    std::int64_t n = 1;
    for (const auto d : dims)
        n *= d;
    return n;
}

std::int64_t
ArrayDecl::sizeBytes() const
{
    return elementCount() * static_cast<std::int64_t>(elemBytes);
}

VarId
Program::addVar(std::string name)
{
    SAC_ASSERT(!finalized_, "cannot add variables after finalize()");
    vars_.push_back(std::move(name));
    return static_cast<VarId>(vars_.size() - 1);
}

ArrayId
Program::addArray(std::string name, std::vector<std::int64_t> dims,
                  unsigned elem_bytes)
{
    SAC_ASSERT(!finalized_, "cannot add arrays after finalize()");
    SAC_ASSERT(!dims.empty(), "arrays need at least one dimension");
    for (const auto d : dims)
        SAC_ASSERT(d > 0, "array dimensions must be positive: ", name);
    ArrayDecl decl;
    decl.name = std::move(name);
    decl.dims = std::move(dims);
    decl.elemBytes = elem_bytes;
    arrays_.push_back(std::move(decl));
    return static_cast<ArrayId>(arrays_.size() - 1);
}

void
Program::setArrayBase(ArrayId a, Addr base)
{
    SAC_ASSERT(a < arrays_.size(), "unknown array id");
    SAC_ASSERT(!finalized_, "cannot move arrays after finalize()");
    arrays_[a].base = base;
}

void
Program::setArrayData(ArrayId a, std::vector<std::int64_t> data)
{
    SAC_ASSERT(a < arrays_.size(), "unknown array id");
    SAC_ASSERT(static_cast<std::int64_t>(data.size()) ==
                   arrays_[a].elementCount(),
               "data size must match the array extent of ",
               arrays_[a].name);
    arrays_[a].data = std::move(data);
}

namespace {

/** Assign dense reference ids to every reference in lexical order. */
class RefNumberer
{
  public:
    void
    numberStmts(std::vector<Stmt> &stmts)
    {
        for (auto &s : stmts)
            numberStmt(s);
    }

    std::size_t count() const { return next_; }

  private:
    void
    numberStmt(Stmt &s)
    {
        if (s.isLoop()) {
            auto &l = s.loop();
            numberBound(l.lo);
            numberBound(l.hi);
            numberStmts(l.body);
        } else if (s.isRef()) {
            auto &r = s.ref();
            for (auto &sub : r.subs)
                if (sub.indirect)
                    sub.indirect->ref = nextId();
            r.ref = nextId();
        } else if (s.isConditional()) {
            numberStmts(s.conditional().body);
        }
    }

    void
    numberBound(Bound &b)
    {
        if (b.indirect)
            b.indirect->ref = nextId();
    }

    RefId nextId() { return static_cast<RefId>(next_++); }

    std::size_t next_ = 0;
};

} // namespace

void
Program::finalize()
{
    SAC_ASSERT(!finalized_, "finalize() may only be called once");

    Addr next = baseAddress;
    for (auto &a : arrays_) {
        if (!a.base) {
            a.base = next;
        }
        const Addr end =
            *a.base + static_cast<Addr>(a.sizeBytes());
        if (end > next)
            next = end;
        next = (next + arrayAlignment - 1) & ~(arrayAlignment - 1);
    }

    RefNumberer numberer;
    numberer.numberStmts(top_);
    ref_count_ = numberer.count();
    finalized_ = true;
}

} // namespace loopnest
} // namespace sac
