/**
 * @file
 * The loop-nest interpreter: executes a finalized Program and emits
 * the memory-reference trace, attaching the software tags computed by
 * the locality analyzer and an issue-time delta sampled from the
 * timing model — the reproduction of the paper's instrumented trace
 * extraction (Section 3.1).
 */

#ifndef SAC_LOOPNEST_GENERATOR_HH
#define SAC_LOOPNEST_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "src/loopnest/program.hh"
#include "src/trace/timing_model.hh"
#include "src/trace/trace.hh"
#include "src/trace/trace_source.hh"

namespace sac {
namespace loopnest {

/** The software tags of one static reference. */
struct Tags
{
    bool temporal = false;
    bool spatial = false;
    /**
     * Spatial level for the variable-virtual-line extension: the
     * virtual line spans 2^spatialLevel physical lines (0 when the
     * reference is not spatial).
     */
    std::uint8_t spatialLevel = 0;

    bool operator==(const Tags &) const = default;
};

/** Tags for every static reference, indexed by RefId. */
using TagVector = std::vector<Tags>;

/**
 * Executes a Program, emitting one trace Record per dynamic array
 * reference (including indirect-subscript and indirect-bound loads).
 */
class TraceGenerator
{
  public:
    /**
     * @param program finalized program to execute
     * @param tags per-reference software tags (size == refCount());
     *        pass an all-false vector for untagged tracing
     * @param timing issue-time delta sampler
     */
    TraceGenerator(const Program &program, const TagVector &tags,
                   trace::TimingModel &timing);

    /**
     * Run the program and append its references to @p out.
     * @param out destination trace (name is set to the program name)
     * @param max_records safety cap; generation panics beyond it
     */
    void run(trace::Trace &out,
             std::uint64_t max_records = defaultMaxRecords);

    /**
     * Run the program, emitting each reference into @p sink as it is
     * produced — the streaming entry: nothing is materialized here,
     * so trace length does not bound memory.
     */
    void run(const trace::RecordSink &sink,
             std::uint64_t max_records = defaultMaxRecords);

    /** Default record-count safety cap. */
    static constexpr std::uint64_t defaultMaxRecords = 200'000'000;

  private:
    void execStmts(const std::vector<Stmt> &stmts);
    void execLoop(const Loop &l);
    void execRef(const ArrayRef &r);

    /** Evaluate a bound, tracing its indirect load if present. */
    std::int64_t evalBound(const Bound &b);

    /**
     * Evaluate an indirect part: traces the index-array load and
     * returns the loaded value.
     */
    std::int64_t evalIndirect(const IndirectPart &p);

    /** Emit one record for address @p addr. */
    void emit(Addr addr, RefId ref, trace::AccessType type);

    /** Byte address of element @p linear of array @p a. */
    Addr elementAddr(ArrayId a, std::int64_t linear) const;

    /** Column-major linearization with bounds checking. */
    std::int64_t linearize(const ArrayDecl &a,
                           const std::vector<std::int64_t> &idx) const;

    const Program &program_;
    const TagVector &tags_;
    trace::TimingModel &timing_;
    std::vector<std::int64_t> env_;
    const trace::RecordSink *sink_ = nullptr;
    std::uint64_t emitted_ = 0;
    std::uint64_t maxRecords_ = defaultMaxRecords;
};

/**
 * Convenience: analyze-free generation with all tags cleared (a
 * "standard" trace with no software assistance).
 */
trace::Trace generateUntagged(const Program &program,
                              trace::TimingModel &timing);

} // namespace loopnest
} // namespace sac

#endif // SAC_LOOPNEST_GENERATOR_HH
