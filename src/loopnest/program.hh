/**
 * @file
 * The loop-nest program representation: arrays, loop variables, and a
 * statement tree of loops, array references and CALL markers.
 *
 * This IR is the reproduction's stand-in for the Fortran sources the
 * paper instrumented with Sage++: workloads are written against it,
 * the locality analyzer (src/locality) computes the per-reference
 * temporal/spatial tags from it, and the interpreter
 * (src/loopnest/generator) executes it to emit a reference trace.
 */

#ifndef SAC_LOOPNEST_PROGRAM_HH
#define SAC_LOOPNEST_PROGRAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/loopnest/expr.hh"
#include "src/trace/record.hh"
#include "src/util/types.hh"

namespace sac {
namespace loopnest {

/**
 * An indirect component of a subscript or loop bound: the value of a
 * one-dimensional integer array element, itself a traced load (e.g.
 * `Index(j2)` in the sparse matrix-vector product). The load carries
 * its own reference id and tags.
 */
struct IndirectPart
{
    /** The (one-dimensional) index array that is loaded. */
    ArrayId array = 0;
    /** Affine subscript of the index-array load. */
    AffineExpr index;
    /** Reference id of the load itself; set by Program::finalize(). */
    RefId ref = invalidRefId;
};

/**
 * One subscript of an array reference: an affine part plus an optional
 * indirect part whose loaded value is added to the affine part.
 */
struct Subscript
{
    AffineExpr affine;
    std::optional<IndirectPart> indirect;

    /** Purely affine subscript. */
    Subscript(AffineExpr a) : affine(std::move(a)) {} // NOLINT implicit

    /** Indirect subscript `affine + array[index]`. */
    Subscript(AffineExpr a, IndirectPart ind)
        : affine(std::move(a)), indirect(std::move(ind))
    {
    }
};

/**
 * A traced reference to an array element. Subscripts are in Fortran
 * order: subscript 0 is the contiguous (column-major leading)
 * dimension.
 */
struct ArrayRef
{
    ArrayId array = 0;
    std::vector<Subscript> subs;
    trace::AccessType type = trace::AccessType::Read;
    /** User-directive override of the temporal tag (Section 4.1). */
    std::optional<bool> userTemporal;
    /** User-directive override of the spatial tag (Section 4.1). */
    std::optional<bool> userSpatial;
    /** Reference id, assigned by Program::finalize(). */
    RefId ref = invalidRefId;
};

/**
 * A CALL marker. The paper performed no interprocedural analysis:
 * every reference inside a loop whose body contains a CALL gets both
 * tags cleared.
 */
struct CallStmt
{
};

struct Loop;
struct Conditional;

/** A statement: loop, array reference, conditional, or CALL marker. */
struct Stmt;

/** A loop bound: affine part plus optional indirect (array value) part. */
struct Bound
{
    AffineExpr affine;
    std::optional<IndirectPart> indirect;

    Bound() = default;
    Bound(std::int64_t c) : affine(c) {} // NOLINT implicit
    Bound(AffineExpr a) : affine(std::move(a)) {} // NOLINT implicit
    Bound(AffineExpr a, IndirectPart ind)
        : affine(std::move(a)), indirect(std::move(ind))
    {
    }
};

/** A DO loop over an inclusive range with a constant non-zero step. */
struct Loop
{
    VarId var = 0;
    Bound lo;
    Bound hi;
    std::int64_t step = 1;
    std::vector<Stmt> body;
};

/**
 * A data-dependent guard: the body executes on iterations where
 * `(expr mod modulus) < threshold`, a deterministic stand-in for
 * sparse control flow like molecular-dynamics cutoff tests. The
 * locality analyzer treats the body as always executing, as real
 * compilers do when tagging loop bodies.
 */
struct Conditional
{
    AffineExpr expr;
    std::int64_t modulus = 2;
    std::int64_t threshold = 1;
    std::vector<Stmt> body;
};

struct Stmt
{
    std::variant<Loop, ArrayRef, CallStmt, Conditional> node;

    Stmt(Loop l) : node(std::move(l)) {} // NOLINT implicit
    Stmt(ArrayRef r) : node(std::move(r)) {} // NOLINT implicit
    Stmt(CallStmt c) : node(c) {} // NOLINT implicit
    Stmt(Conditional c) : node(std::move(c)) {} // NOLINT implicit

    bool isLoop() const { return std::holds_alternative<Loop>(node); }
    bool isRef() const { return std::holds_alternative<ArrayRef>(node); }
    bool isCall() const { return std::holds_alternative<CallStmt>(node); }
    bool
    isConditional() const
    {
        return std::holds_alternative<Conditional>(node);
    }

    const Loop &loop() const { return std::get<Loop>(node); }
    Loop &loop() { return std::get<Loop>(node); }
    const ArrayRef &ref() const { return std::get<ArrayRef>(node); }
    ArrayRef &ref() { return std::get<ArrayRef>(node); }
    const Conditional &
    conditional() const
    {
        return std::get<Conditional>(node);
    }
    Conditional &conditional() { return std::get<Conditional>(node); }
};

/** Declaration of a (column-major) array. */
struct ArrayDecl
{
    std::string name;
    /** Extents per dimension; dims[0] is the contiguous dimension. */
    std::vector<std::int64_t> dims;
    /** Element size in bytes (8 for double-precision data). */
    unsigned elemBytes = elementBytes;
    /** Base byte address; assigned by finalize() unless set explicitly. */
    std::optional<Addr> base;
    /** Integer contents, used by indirect subscripts and bounds. */
    std::vector<std::int64_t> data;

    /** Number of elements. */
    std::int64_t elementCount() const;
    /** Footprint in bytes. */
    std::int64_t sizeBytes() const;
};

/**
 * A complete program: arrays, loop variables and top-level statements.
 * Call finalize() once after construction; it assigns base addresses
 * to arrays and dense reference ids to every ArrayRef and IndirectPart
 * in lexical order.
 */
class Program
{
  public:
    /** Create a program named @p name (the benchmark name). */
    explicit Program(std::string name) : name_(std::move(name)) {}

    /** Benchmark name. */
    const std::string &name() const { return name_; }

    /** Declare a loop variable; returns its id. */
    VarId addVar(std::string name);

    /** Declare an array; returns its id. */
    ArrayId addArray(std::string name,
                     std::vector<std::int64_t> dims,
                     unsigned elem_bytes = elementBytes);

    /** Pin array @p a at byte address @p base (conflict studies). */
    void setArrayBase(ArrayId a, Addr base);

    /** Provide integer contents for an index array. */
    void setArrayData(ArrayId a, std::vector<std::int64_t> data);

    /** Append a top-level statement. */
    void addStmt(Stmt s) { top_.push_back(std::move(s)); }

    /** Number of declared loop variables. */
    std::size_t varCount() const { return vars_.size(); }

    /** Name of loop variable @p v. */
    const std::string &varName(VarId v) const { return vars_[v]; }

    /** Array declaration for @p a. */
    const ArrayDecl &array(ArrayId a) const { return arrays_[a]; }

    /** Number of declared arrays. */
    std::size_t arrayCount() const { return arrays_.size(); }

    /** Top-level statements. */
    const std::vector<Stmt> &statements() const { return top_; }

    /** Mutable top-level statements (builder use only). */
    std::vector<Stmt> &statements() { return top_; }

    /**
     * Assign array base addresses (packed, line-aligned, starting at
     * baseAddress) and dense reference ids in lexical order. Must be
     * called exactly once before analysis or execution.
     */
    void finalize();

    /** True once finalize() has run. */
    bool finalized() const { return finalized_; }

    /** Number of static references (valid after finalize()). */
    std::size_t refCount() const { return ref_count_; }

    /** First byte address used for automatically placed arrays. */
    static constexpr Addr baseAddress = 0x10000;

    /** Alignment of automatically placed arrays (one physical line). */
    static constexpr Addr arrayAlignment = 32;

  private:
    std::string name_;
    std::vector<std::string> vars_;
    std::vector<ArrayDecl> arrays_;
    std::vector<Stmt> top_;
    bool finalized_ = false;
    std::size_t ref_count_ = 0;
};

} // namespace loopnest
} // namespace sac

#endif // SAC_LOOPNEST_PROGRAM_HH
