/**
 * @file
 * Affine expressions over loop variables: the building block of array
 * subscripts and loop bounds in the loop-nest IR.
 */

#ifndef SAC_LOOPNEST_EXPR_HH
#define SAC_LOOPNEST_EXPR_HH

#include <cstdint>
#include <vector>

namespace sac {
namespace loopnest {

/** Identifier of a loop variable within a Program. */
using VarId = std::uint32_t;

/** Identifier of an array within a Program. */
using ArrayId = std::uint32_t;

/**
 * An affine expression c0 + sum(ci * var_i). Terms are kept sorted by
 * variable id with no duplicates and no zero coefficients, so
 * structural comparison doubles as semantic comparison.
 */
class AffineExpr
{
  public:
    /** One (variable, coefficient) term. */
    struct Term
    {
        VarId var;
        std::int64_t coeff;

        bool operator==(const Term &) const = default;
    };

    /** The zero expression. */
    AffineExpr() = default;

    /** A constant expression. */
    explicit AffineExpr(std::int64_t c) : constant_(c) {}

    /** The expression `v` (coefficient 1, constant 0). */
    static AffineExpr var(VarId v) { return term(v, 1); }

    /** The expression `coeff * v`. */
    static AffineExpr term(VarId v, std::int64_t coeff);

    /** Add another expression (term-wise). */
    AffineExpr &operator+=(const AffineExpr &o);

    /** Sum of two expressions. */
    friend AffineExpr
    operator+(AffineExpr a, const AffineExpr &b)
    {
        a += b;
        return a;
    }

    /** Add a constant. */
    friend AffineExpr
    operator+(AffineExpr a, std::int64_t c)
    {
        a.constant_ += c;
        return a;
    }

    /** Subtract a constant. */
    friend AffineExpr
    operator-(AffineExpr a, std::int64_t c)
    {
        a.constant_ -= c;
        return a;
    }

    /** Subtract another expression. */
    friend AffineExpr
    operator-(AffineExpr a, const AffineExpr &b)
    {
        a += b.scaled(-1);
        return a;
    }

    /** Multiply by a scalar. */
    AffineExpr scaled(std::int64_t k) const;

    /** Constant part. */
    std::int64_t constant() const { return constant_; }

    /** Coefficient of variable @p v (0 when absent). */
    std::int64_t coeffOf(VarId v) const;

    /** Non-zero terms, sorted by variable id. */
    const std::vector<Term> &terms() const { return terms_; }

    /** True when the expression has no variable terms. */
    bool isConstant() const { return terms_.empty(); }

    /**
     * Evaluate under an environment mapping variable id to value.
     * @param env value of variable i at env[i]; must cover all terms
     */
    std::int64_t eval(const std::vector<std::int64_t> &env) const;

    /** Structural (== semantic) equality. */
    bool operator==(const AffineExpr &) const = default;

    /** True when all variable coefficients match (constants ignored). */
    bool sameCoefficients(const AffineExpr &o) const
    {
        return terms_ == o.terms_;
    }

  private:
    std::int64_t constant_ = 0;
    std::vector<Term> terms_;
};

} // namespace loopnest
} // namespace sac

#endif // SAC_LOOPNEST_EXPR_HH
