#include "src/loopnest/expr.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace sac {
namespace loopnest {

AffineExpr
AffineExpr::term(VarId v, std::int64_t coeff)
{
    AffineExpr e;
    if (coeff != 0)
        e.terms_.push_back({v, coeff});
    return e;
}

AffineExpr &
AffineExpr::operator+=(const AffineExpr &o)
{
    constant_ += o.constant_;
    for (const auto &t : o.terms_) {
        auto it = std::lower_bound(
            terms_.begin(), terms_.end(), t.var,
            [](const Term &a, VarId v) { return a.var < v; });
        if (it != terms_.end() && it->var == t.var) {
            it->coeff += t.coeff;
            if (it->coeff == 0)
                terms_.erase(it);
        } else {
            terms_.insert(it, t);
        }
    }
    return *this;
}

AffineExpr
AffineExpr::scaled(std::int64_t k) const
{
    AffineExpr e;
    if (k == 0)
        return e;
    e.constant_ = constant_ * k;
    e.terms_ = terms_;
    for (auto &t : e.terms_)
        t.coeff *= k;
    return e;
}

std::int64_t
AffineExpr::coeffOf(VarId v) const
{
    const auto it = std::lower_bound(
        terms_.begin(), terms_.end(), v,
        [](const Term &a, VarId id) { return a.var < id; });
    return (it != terms_.end() && it->var == v) ? it->coeff : 0;
}

std::int64_t
AffineExpr::eval(const std::vector<std::int64_t> &env) const
{
    std::int64_t v = constant_;
    for (const auto &t : terms_) {
        SAC_ASSERT(t.var < env.size(),
                   "loop variable without a value in eval()");
        v += t.coeff * env[t.var];
    }
    return v;
}

} // namespace loopnest
} // namespace sac
