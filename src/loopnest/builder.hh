/**
 * @file
 * Terse construction helpers for loop-nest programs, so workload
 * definitions read close to the Fortran loops in the paper.
 */

#ifndef SAC_LOOPNEST_BUILDER_HH
#define SAC_LOOPNEST_BUILDER_HH

#include <utility>
#include <vector>

#include "src/loopnest/program.hh"

namespace sac {
namespace loopnest {
namespace builder {

/** The affine expression for loop variable @p v. */
inline AffineExpr
v(VarId var)
{
    return AffineExpr::var(var);
}

/** The constant affine expression @p c. */
inline AffineExpr
c(std::int64_t value)
{
    return AffineExpr(value);
}

/** Scale an expression: k * e. */
inline AffineExpr
operator*(std::int64_t k, const AffineExpr &e)
{
    return e.scaled(k);
}

/** A read reference `array(subs...)`. */
inline ArrayRef
read(ArrayId array, std::vector<Subscript> subs)
{
    ArrayRef r;
    r.array = array;
    r.subs = std::move(subs);
    r.type = trace::AccessType::Read;
    return r;
}

/** A write reference `array(subs...) = ...`. */
inline ArrayRef
write(ArrayId array, std::vector<Subscript> subs)
{
    ArrayRef r;
    r.array = array;
    r.subs = std::move(subs);
    r.type = trace::AccessType::Write;
    return r;
}

/** Apply user tag directives to a reference (Section 4.1). */
inline ArrayRef
directives(ArrayRef r, std::optional<bool> temporal,
           std::optional<bool> spatial)
{
    r.userTemporal = temporal;
    r.userSpatial = spatial;
    return r;
}

/** An indirect subscript `base + array(index)`. */
inline Subscript
indirect(ArrayId array, AffineExpr index, AffineExpr base = AffineExpr())
{
    IndirectPart part;
    part.array = array;
    part.index = std::move(index);
    return {std::move(base), std::move(part)};
}

/** An indirect loop bound `offset + array(index)`. */
inline Bound
indirectBound(ArrayId array, AffineExpr index,
              std::int64_t offset = 0)
{
    IndirectPart part;
    part.array = array;
    part.index = std::move(index);
    return {AffineExpr(offset), std::move(part)};
}

/** A DO loop `for var = lo .. hi step step { body }` (inclusive). */
inline Loop
loop(VarId var, Bound lo, Bound hi, std::vector<Stmt> body,
     std::int64_t step = 1)
{
    Loop l;
    l.var = var;
    l.lo = std::move(lo);
    l.hi = std::move(hi);
    l.step = step;
    l.body = std::move(body);
    return l;
}

/**
 * A guard: body executes on iterations where (expr mod modulus) <
 * threshold. With modulus 4 and threshold 1 the body runs on a
 * quarter of the iterations.
 */
inline Conditional
when(AffineExpr expr, std::int64_t modulus, std::int64_t threshold,
     std::vector<Stmt> body)
{
    Conditional c;
    c.expr = std::move(expr);
    c.modulus = modulus;
    c.threshold = threshold;
    c.body = std::move(body);
    return c;
}

/** A CALL marker statement. */
inline Stmt
call()
{
    return {CallStmt{}};
}

} // namespace builder
} // namespace loopnest
} // namespace sac

#endif // SAC_LOOPNEST_BUILDER_HH
