#include "src/loopnest/generator.hh"

#include "src/util/logging.hh"

namespace sac {
namespace loopnest {

TraceGenerator::TraceGenerator(const Program &program,
                               const TagVector &tags,
                               trace::TimingModel &timing)
    : program_(program), tags_(tags), timing_(timing)
{
    SAC_ASSERT(program_.finalized(),
               "the program must be finalized before execution");
    SAC_ASSERT(tags_.size() == program_.refCount(),
               "tag vector size must equal the static reference count");
    env_.assign(program_.varCount(), 0);
}

void
TraceGenerator::run(trace::Trace &out, std::uint64_t max_records)
{
    out.setName(program_.name());
    const trace::RecordSink sink = [&out](const trace::Record &r) {
        out.push(r);
    };
    run(sink, max_records);
}

void
TraceGenerator::run(const trace::RecordSink &sink,
                    std::uint64_t max_records)
{
    sink_ = &sink;
    maxRecords_ = max_records;
    execStmts(program_.statements());
    sink_ = nullptr;
}

void
TraceGenerator::execStmts(const std::vector<Stmt> &stmts)
{
    for (const auto &s : stmts) {
        if (s.isLoop()) {
            execLoop(s.loop());
        } else if (s.isRef()) {
            execRef(s.ref());
        } else if (s.isConditional()) {
            const auto &c = s.conditional();
            SAC_ASSERT(c.modulus > 0, "conditional modulus must be > 0");
            const std::int64_t value = c.expr.eval(env_);
            const std::int64_t residue =
                ((value % c.modulus) + c.modulus) % c.modulus;
            if (residue < c.threshold)
                execStmts(c.body);
        }
        // CALL markers only affect analysis; nothing to execute.
    }
}

void
TraceGenerator::execLoop(const Loop &l)
{
    SAC_ASSERT(l.step != 0, "loop step must be non-zero");
    const std::int64_t lo = evalBound(l.lo);
    const std::int64_t hi = evalBound(l.hi);
    const std::int64_t saved = env_[l.var];
    if (l.step > 0) {
        for (std::int64_t i = lo; i <= hi; i += l.step) {
            env_[l.var] = i;
            execStmts(l.body);
        }
    } else {
        for (std::int64_t i = lo; i >= hi; i += l.step) {
            env_[l.var] = i;
            execStmts(l.body);
        }
    }
    env_[l.var] = saved;
}

void
TraceGenerator::execRef(const ArrayRef &r)
{
    const ArrayDecl &decl = program_.array(r.array);
    std::vector<std::int64_t> idx;
    idx.reserve(r.subs.size());
    for (const auto &sub : r.subs) {
        std::int64_t value = sub.affine.eval(env_);
        if (sub.indirect)
            value += evalIndirect(*sub.indirect);
        idx.push_back(value);
    }
    emit(elementAddr(r.array, linearize(decl, idx)), r.ref, r.type);
}

std::int64_t
TraceGenerator::evalBound(const Bound &b)
{
    std::int64_t value = b.affine.eval(env_);
    if (b.indirect)
        value += evalIndirect(*b.indirect);
    return value;
}

std::int64_t
TraceGenerator::evalIndirect(const IndirectPart &p)
{
    const ArrayDecl &decl = program_.array(p.array);
    SAC_ASSERT(decl.dims.size() == 1,
               "indirect index arrays must be one-dimensional: ",
               decl.name);
    SAC_ASSERT(!decl.data.empty(),
               "index array has no contents: ", decl.name);
    const std::int64_t i = p.index.eval(env_);
    SAC_ASSERT(i >= 0 && i < decl.elementCount(),
               "index-array subscript out of bounds in ", decl.name,
               ": ", i);
    emit(elementAddr(p.array, i), p.ref, trace::AccessType::Read);
    return decl.data[static_cast<std::size_t>(i)];
}

void
TraceGenerator::emit(Addr addr, RefId ref, trace::AccessType type)
{
    SAC_ASSERT(ref != invalidRefId,
               "executing a reference with no id; was finalize() run?");
    SAC_ASSERT(emitted_ < maxRecords_,
               "trace exceeds the record cap; runaway loop nest?");
    trace::Record rec;
    rec.addr = addr;
    rec.ref = ref;
    rec.delta = timing_.sampleDelta();
    rec.size = elementBytes;
    rec.type = type;
    rec.temporal = tags_[ref].temporal;
    rec.spatial = tags_[ref].spatial;
    rec.spatialLevel = tags_[ref].spatialLevel;
    (*sink_)(rec);
    ++emitted_;
}

Addr
TraceGenerator::elementAddr(ArrayId a, std::int64_t linear) const
{
    const ArrayDecl &decl = program_.array(a);
    return *decl.base +
           static_cast<Addr>(linear) * decl.elemBytes;
}

std::int64_t
TraceGenerator::linearize(const ArrayDecl &a,
                          const std::vector<std::int64_t> &idx) const
{
    SAC_ASSERT(idx.size() == a.dims.size(),
               "subscript count does not match array rank of ", a.name);
    std::int64_t linear = 0;
    std::int64_t stride = 1;
    for (std::size_t d = 0; d < idx.size(); ++d) {
        SAC_ASSERT(idx[d] >= 0 && idx[d] < a.dims[d],
                   "subscript out of bounds in ", a.name, " dim ", d,
                   ": ", idx[d], " not in [0, ", a.dims[d], ")");
        linear += idx[d] * stride;
        stride *= a.dims[d];
    }
    return linear;
}

trace::Trace
generateUntagged(const Program &program, trace::TimingModel &timing)
{
    TagVector tags(program.refCount());
    TraceGenerator gen(program, tags, timing);
    trace::Trace t(program.name());
    gen.run(t);
    return t;
}

} // namespace loopnest
} // namespace sac
