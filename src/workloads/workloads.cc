/**
 * @file
 * Benchmark registry and the build → analyze → trace pipeline.
 */

#include "src/workloads/workloads.hh"

#include "src/loopnest/generator.hh"
#include "src/trace/timing_model.hh"
#include "src/util/logging.hh"

namespace sac {
namespace workloads {

const std::vector<Benchmark> &
paperBenchmarks()
{
    static const std::vector<Benchmark> list = {
        {"MDG", [] { return buildMdg(); }},
        {"BDN", [] { return buildBdn(); }},
        {"DYF", [] { return buildDyf(); }},
        {"TRF", [] { return buildTrf(); }},
        {"NAS", [] { return buildNas(); }},
        {"Slalom", [] { return buildSlalom(); }},
        {"LIV", [] { return buildLiv(); }},
        {"MV", [] { return buildMv(); }},
        {"SpMV", [] { return buildSpMv(); }},
    };
    return list;
}

const std::vector<Benchmark> &
kernelOnlyBenchmarks()
{
    static const std::vector<Benchmark> list = {
        {"ADM", [] { return buildKernelOnly("ADM"); }},
        {"MDG", [] { return buildKernelOnly("MDG"); }},
        {"BDN", [] { return buildKernelOnly("BDN"); }},
        {"DYF", [] { return buildKernelOnly("DYF"); }},
        {"ARC", [] { return buildKernelOnly("ARC"); }},
        {"FLO", [] { return buildKernelOnly("FLO"); }},
        {"TRF", [] { return buildKernelOnly("TRF"); }},
    };
    return list;
}

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const auto &b : paperBenchmarks())
        if (b.name == name)
            return b;
    util::fatal("unknown benchmark: ", name);
}

trace::Trace
makeTaggedTrace(loopnest::Program &&program, std::uint64_t seed,
                locality::AnalysisResult *analysis)
{
    program.finalize();
    locality::AnalysisResult result = locality::analyze(program);
    trace::TimingModel timing(seed);
    loopnest::TraceGenerator gen(program, result.tags, timing);
    trace::Trace t(program.name());
    gen.run(t);
    if (analysis)
        *analysis = std::move(result);
    return t;
}

trace::Trace
makeBenchmarkTrace(const std::string &name, std::uint64_t seed)
{
    return makeTaggedTrace(findBenchmark(name).build(), seed);
}

void
streamTaggedTrace(loopnest::Program &&program,
                  const trace::RecordSink &sink, std::uint64_t seed)
{
    program.finalize();
    const locality::AnalysisResult result = locality::analyze(program);
    trace::TimingModel timing(seed);
    loopnest::TraceGenerator gen(program, result.tags, timing);
    gen.run(sink);
}

void
streamBenchmarkTrace(const std::string &name,
                     const trace::RecordSink &sink, std::uint64_t seed)
{
    streamTaggedTrace(findBenchmark(name).build(), sink, seed);
}

std::unique_ptr<trace::TraceSource>
benchmarkTraceSource(const std::string &name, std::uint64_t seed)
{
    return std::make_unique<trace::GeneratorTraceSource>(
        name, [name, seed](const trace::RecordSink &sink) {
            streamBenchmarkTrace(name, sink, seed);
        });
}

trace::Trace
makeTaggedTraceWithTiming(loopnest::Program &&program,
                          const util::DiscreteDistribution &deltas,
                          std::uint64_t seed)
{
    program.finalize();
    const locality::AnalysisResult result = locality::analyze(program);
    trace::TimingModel timing(deltas, seed);
    loopnest::TraceGenerator gen(program, result.tags, timing);
    trace::Trace t(program.name());
    gen.run(t);
    return t;
}

} // namespace workloads
} // namespace sac
