/**
 * @file
 * LIV: a Livermore-loops kernel suite stand-in. Each kernel is
 * repeated by its own outer loop, so arrays exhibit the cyclic
 * temporal reuse with long reuse distances that the paper identifies
 * as the worst case for LRU and the motivating case for the
 * bounce-back mechanism (Section 2.2).
 *
 * Twelve kernels are modeled, chosen to cover the suite's access
 * patterns: pure streams (1, 7, 12), first-order recurrences (5, 11),
 * reductions (3), gather/scatter (13), banded and strided access
 * (4, 8), small dense matrix work (21), an excerpt of the ICCG
 * wavefront (2), and a state-equation fragment with a wide
 * uniformly-generated group (7, 9).
 */

#include "src/workloads/workloads.hh"

#include "src/loopnest/builder.hh"
#include "src/util/rng.hh"

namespace sac {
namespace workloads {

using namespace loopnest::builder;
using loopnest::Program;

Program
buildLiv(Scale scale)
{
    const std::int64_t n = scale.apply(2000, 64);
    const std::int64_t reps = 3;

    Program p("LIV");
    const auto X = p.addArray("X", {n + 16});
    const auto Y = p.addArray("Y", {n + 16});
    const auto Z = p.addArray("Z", {n + 16});
    const auto U = p.addArray("U", {n + 16});
    const auto V = p.addArray("V", {n + 16});
    const auto l = p.addVar("l");
    const auto k = p.addVar("k");
    const auto j = p.addVar("j");

    // Kernel 1 — hydro fragment:
    //   X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11))
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 0, n - 1,
                         {read(Y, {v(k)}), read(Z, {v(k) + 10}),
                          read(Z, {v(k) + 11}), write(X, {v(k)})})}));

    // Kernel 2 — ICCG excerpt (strided gather at halving distance,
    // modeled at a fixed stride of 2):
    //   X(k) = X(2k) - V(2k)*X(2k+1)
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 0, n / 2 - 1,
                         {read(X, {2 * v(k)}), read(V, {2 * v(k)}),
                          read(X, {2 * v(k) + 1}),
                          write(X, {v(k)})})}));

    // Kernel 3 — inner product: Q += Z(k)*X(k)
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 0, n - 1,
                         {read(Z, {v(k)}), read(X, {v(k)})})}));

    // Kernel 4 — banded linear equations (stride-5 gather):
    //   fragment: XZ += Y(j)*X(j*5)
    p.addStmt(loop(l, 1, reps,
                   {loop(j, 0, n / 5 - 1,
                         {read(Y, {v(j)}), read(X, {5 * v(j)})})}));

    // Kernel 5 — tri-diagonal elimination, below diagonal:
    //   X(i) = Z(i)*(Y(i) - X(i-1))
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 1, n - 1,
                         {read(Z, {v(k)}), read(Y, {v(k)}),
                          read(X, {v(k) - 1}), write(X, {v(k)})})}));

    // Kernel 7 — equation of state fragment (a taste of its U(k+d)
    // group reuse):
    //   X(k) = U(k) + R*(Z(k)+R*Y(k))
    //        + T*(U(k+3)+R*(U(k+2)+R*U(k+1)))
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 0, n - 1,
                         {read(U, {v(k)}), read(Z, {v(k)}),
                          read(Y, {v(k)}), read(U, {v(k) + 3}),
                          read(U, {v(k) + 2}), read(U, {v(k) + 1}),
                          write(X, {v(k)})})}));

    // Kernel 8 — ADI-like fragment: two interleaved strided streams.
    //   U(2k) and U(2k+1) updated from V(k), Z(k)
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 0, n / 2 - 1,
                         {read(V, {v(k)}), read(Z, {v(k)}),
                          write(U, {2 * v(k)}),
                          write(U, {2 * v(k) + 1})})}));

    // Kernel 9 — integrate predictors: a wide uniformly generated
    // group over one array (10 terms in the original).
    p.addStmt(loop(
        l, 1, reps,
        {loop(k, 0, n - 8,
              {read(U, {v(k)}), read(U, {v(k) + 1}),
               read(U, {v(k) + 2}), read(U, {v(k) + 3}),
               read(U, {v(k) + 4}), read(U, {v(k) + 5}),
               write(X, {v(k)})})}));

    // Kernel 11 — first sum: X(k) = X(k-1) + Y(k)
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 1, n - 1,
                         {read(X, {v(k) - 1}), read(Y, {v(k)}),
                          write(X, {v(k)})})}));

    // Kernel 12 — first difference: X(k) = Y(k+1) - Y(k)
    p.addStmt(loop(l, 1, reps,
                   {loop(k, 0, n - 1,
                         {read(Y, {v(k) + 1}), read(Y, {v(k)}),
                          write(X, {v(k)})})}));

    // Kernel 13 — 2-D particle in cell (gather/scatter through a
    // position-derived index).
    {
        const auto Ix = p.addArray("Ix", {n});
        util::Rng rng(0x11cull);
        std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
        for (auto &x : idx)
            x = rng.nextInRange(0, n - 1);
        p.setArrayData(Ix, idx);
        p.addStmt(loop(l, 1, reps,
                       {loop(k, 0, n - 1,
                             {read(Y, {indirect(Ix, v(k))}),
                              write(Z, {indirect(Ix, v(k))})})}));
    }

    // Kernel 21 — matrix product fragment on a small dense block:
    //   PX(i,j) += VY(i,k)*CX(k,j) with 24x24 blocks.
    {
        const std::int64_t m = 24;
        const auto PX = p.addArray("PX", {m, m});
        const auto VY = p.addArray("VY", {m, m});
        const auto CX = p.addArray("CX", {m, m});
        const auto i = p.addVar("i");
        const auto kk = p.addVar("kk");
        const auto jj = p.addVar("jj");
        p.addStmt(loop(
            l, 1, reps,
            {loop(jj, 0, m - 1,
                  {loop(kk, 0, m - 1,
                        {read(CX, {v(kk), v(jj)}),
                         loop(i, 0, m - 1,
                              {read(PX, {v(i), v(jj)}),
                               read(VY, {v(i), v(kk)}),
                               write(PX, {v(i), v(jj)})})})})}));
    }

    return p;
}

} // namespace workloads
} // namespace sac
