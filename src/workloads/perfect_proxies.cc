/**
 * @file
 * Perfect Club proxies (MDG, BDN, DYF, TRF, ADM, ARC, FLO). The
 * original sources are unavailable; each proxy reproduces the
 * properties the paper reports for its code — small working sets,
 * CALL-poisoned loop bodies that defeat the locality analysis,
 * indirect and badly ordered accesses, and (for DYF) strong cyclic
 * temporal reuse. Kernel-only variants (Figure 10a) drop the
 * poisoned and out-of-loop parts so every reference is analyzable.
 */

#include "src/workloads/workloads.hh"

#include <algorithm>

#include "src/loopnest/builder.hh"
#include "src/util/logging.hh"
#include "src/util/rng.hh"

namespace sac {
namespace workloads {

using namespace loopnest::builder;
using loopnest::ArrayId;
using loopnest::Program;
using loopnest::VarId;

namespace {

/**
 * Append a CALL-poisoned bookkeeping nest: a loop whose body contains
 * a subroutine call, so the analyzer clears every tag inside it. This
 * is how dusty-deck codes lose most of their taggable references.
 */
void
addPoisonedNest(Program &p, ArrayId scratch, VarId var,
                std::int64_t count, std::int64_t refs_per_iter)
{
    std::vector<loopnest::Stmt> body;
    body.push_back(call());
    for (std::int64_t r = 0; r < refs_per_iter; ++r) {
        body.push_back(r % 2 == 0 ? read(scratch, {v(var)})
                                  : write(scratch, {v(var)}));
    }
    p.addStmt(loop(var, 0, count - 1, std::move(body)));
}

/** Build a random neighbor / connectivity list in [0, n). */
std::vector<std::int64_t>
randomIndices(std::int64_t count, std::int64_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<std::int64_t> idx(static_cast<std::size_t>(count));
    for (auto &x : idx)
        x = rng.nextInRange(0, n - 1);
    return idx;
}

} // namespace

Program
buildMdgImpl(Scale scale, bool kernel_only)
{
    const std::int64_t n = scale.apply(600, 16);
    const std::int64_t avg_nb = 20;
    const std::int64_t steps = 3;
    util::Rng rng(0x3d6aull);

    std::vector<std::int64_t> start(static_cast<std::size_t>(n + 1));
    std::vector<std::int64_t> nbrs;
    start[0] = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t nb = std::max<std::int64_t>(
            1, rng.nextInRange(avg_nb / 2, avg_nb + avg_nb / 2));
        for (std::int64_t k = 0; k < nb; ++k)
            nbrs.push_back(rng.nextInRange(0, n - 1));
        start[static_cast<std::size_t>(i + 1)] =
            start[static_cast<std::size_t>(i)] + nb;
    }
    const auto pairs = static_cast<std::int64_t>(nbrs.size());

    Program p(kernel_only ? "MDG(kernel)" : "MDG");
    const auto Xc = p.addArray("Xc", {n});
    const auto F = p.addArray("F", {n});
    const auto List = p.addArray("List", {pairs});
    const auto St = p.addArray("St", {n + 1});
    const auto W = p.addArray("W", {n});
    p.setArrayData(List, nbrs);
    p.setArrayData(St, start);

    const auto i = p.addVar("i");
    const auto k = p.addVar("k");

    // Time steps are repeated lexically: the analyzer sees each sweep
    // in isolation, so cross-step reuse stays untagged — the paper's
    // observation that simple techniques catch only a small share of
    // the total reuse.
    for (std::int64_t step = 1; step <= steps; ++step) {
        if (!kernel_only) {
            // Per-molecule preparation with a CALL: tags cleared.
            addPoisonedNest(p, W, i, n, 3);
        }
        // Pair-interaction sweep: coordinates gathered through the
        // neighbor list; F(i) forms a read/write group in i.
        p.addStmt(loop(i, 0, n - 1,
                       {read(Xc, {v(i)}), read(F, {v(i)}),
                        loop(k, indirectBound(St, v(i)),
                             indirectBound(St, v(i) + 1, -1),
                             {read(Xc, {indirect(List, v(k))})}),
                        write(F, {v(i)})}));
    }
    return p;
}

Program
buildBdnImpl(Scale scale, bool kernel_only)
{
    const std::int64_t n = scale.apply(4000, 64);
    const std::int64_t band = 9;
    const std::int64_t half = band / 2;
    const std::int64_t sweeps = 2;

    Program p(kernel_only ? "BDN(kernel)" : "BDN");
    const auto AB = p.addArray("AB", {band, n});
    const auto X = p.addArray("X", {n + band});
    const auto Y = p.addArray("Y", {n + band});
    const auto W = p.addArray("W", {n});

    const auto i = p.addVar("i");
    const auto b = p.addVar("b");

    // Sweeps are repeated lexically so cross-sweep reuse stays
    // untagged (only in-nest dependences are analyzable).
    for (std::int64_t s = 0; s < sweeps; ++s) {
        // Banded multiply: Y(i) = sum_b AB(b,i) * X(i+b-half); the
        // 72-byte band columns are ideal virtual-line material.
        p.addStmt(loop(i, half, n - half - 1,
                       {read(Y, {v(i)}),
                        loop(b, 0, band - 1,
                             {read(AB, {v(b), v(i)}),
                              read(X, {v(i) + v(b) + -half})}),
                        write(Y, {v(i)})}));

        // Forward elimination: X(i) = Y(i) - c*X(i-1).
        p.addStmt(loop(i, 1, n - 1,
                       {read(Y, {v(i)}), read(X, {v(i) - 1}),
                        write(X, {v(i)})}));

        // Per-sweep boundary/bookkeeping pass with a CALL: a
        // sizeable share of BDN's references stays untagged.
        if (!kernel_only)
            addPoisonedNest(p, W, i, n, 6);
    }
    return p;
}

Program
buildDyfImpl(Scale scale, bool kernel_only)
{
    const std::int64_t g = scale.apply(40, 12);
    const std::int64_t steps = 16;

    Program p(kernel_only ? "DYF(kernel)" : "DYF");
    const auto U = p.addArray("U", {g, g});
    const auto Un = p.addArray("Un", {g, g});
    const auto W = p.addArray("W", {g});

    const auto t = p.addVar("t");
    const auto j = p.addVar("j");
    const auto i = p.addVar("i");

    // Time-stepped five-point stencil: the uniformly generated U
    // group makes most references temporal (the paper singles out
    // DYF for its high temporal-tag fraction and bounce-back gains).
    p.addStmt(loop(
        t, 1, steps,
        {loop(j, 1, g - 2,
              {loop(i, 1, g - 2,
                    {read(U, {v(i) - 1, v(j)}),
                     read(U, {v(i) + 1, v(j)}),
                     read(U, {v(i), v(j) - 1}),
                     read(U, {v(i), v(j) + 1}),
                     read(U, {v(i), v(j)}),
                     write(Un, {v(i), v(j)})})}),
         loop(j, 1, g - 2,
              {loop(i, 1, g - 2,
                    {read(Un, {v(i), v(j)}),
                     write(U, {v(i), v(j)})})})}));

    if (!kernel_only)
        addPoisonedNest(p, W, i, g, 4);
    return p;
}

Program
buildTrfImpl(Scale scale, bool kernel_only)
{
    const std::int64_t m = scale.apply(40, 12);
    const std::int64_t sweeps = 10;

    Program p(kernel_only ? "TRF(kernel)" : "TRF");
    const auto A = p.addArray("A", {m, m});
    const auto B = p.addArray("B", {m, m});
    const auto W = p.addArray("W", {m * 4});

    const auto i = p.addVar("i");
    const auto j = p.addVar("j");

    // Transpose-order sweep (B written with a large stride — a badly
    // ordered loop, as the paper observes for dusty-deck codes) then
    // a stride-one rescale pass. Sweeps repeat lexically, so TRF
    // carries almost no temporal tags: its gains come from virtual
    // lines, as in Figure 6a.
    for (std::int64_t s = 0; s < sweeps; ++s) {
        p.addStmt(loop(i, 0, m - 1,
                       {loop(j, 0, m - 1,
                             {read(A, {v(j), v(i)}),
                              write(B, {v(i), v(j)})})}));
        p.addStmt(loop(j, 0, m - 1,
                       {loop(i, 0, m - 1,
                             {read(B, {v(i), v(j)}),
                              write(A, {v(i), v(j)})})}));
    }

    if (!kernel_only)
        addPoisonedNest(p, W, i, m * 4, 4);
    return p;
}

Program
buildAdmImpl(Scale scale, bool kernel_only)
{
    // The Perfect codes ship with small test inputs: the 3-D grids
    // are sized so the working set is only ~2x the 8-KB cache.
    const std::int64_t g = scale.apply(10, 6);
    const std::int64_t steps = 40;

    Program p(kernel_only ? "ADM(kernel)" : "ADM");
    const auto U = p.addArray("U", {g, g, g});
    const auto Un = p.addArray("Un", {g, g, g});
    const auto W = p.addArray("W", {g * g});

    const auto t = p.addVar("t");
    const auto k = p.addVar("k");
    const auto j = p.addVar("j");
    const auto i = p.addVar("i");

    // Small-working-set 3-D seven-point stencil (the Perfect codes
    // ship with small test inputs, which limits the achievable gain).
    p.addStmt(loop(
        t, 1, steps,
        {loop(k, 1, g - 2,
              {loop(j, 1, g - 2,
                    {loop(i, 1, g - 2,
                          {read(U, {v(i) - 1, v(j), v(k)}),
                           read(U, {v(i) + 1, v(j), v(k)}),
                           read(U, {v(i), v(j) - 1, v(k)}),
                           read(U, {v(i), v(j) + 1, v(k)}),
                           read(U, {v(i), v(j), v(k) - 1}),
                           read(U, {v(i), v(j), v(k) + 1}),
                           read(U, {v(i), v(j), v(k)}),
                           write(Un, {v(i), v(j), v(k)})})})}),
         loop(k, 0, g - 1,
              {loop(j, 0, g - 1,
                    {loop(i, 0, g - 1,
                          {read(Un, {v(i), v(j), v(k)}),
                           write(U, {v(i), v(j), v(k)})})})})}));

    if (!kernel_only) {
        // A large share of ADM's references sit in CALL-heavy physics
        // loops that the analyzer must leave untagged.
        addPoisonedNest(p, W, i, g * g, 6);
        addPoisonedNest(p, W, j, g * g, 6);
    }
    return p;
}

Program
buildArcImpl(Scale scale, bool kernel_only)
{
    const std::int64_t n = scale.apply(8192, 64);
    const std::int64_t reps = 2;

    Program p(kernel_only ? "ARC(kernel)" : "ARC");
    const auto X = p.addArray("X", {2 * n});
    const auto W = p.addArray("W", {n});

    const auto b = p.addVar("b");
    const auto k = p.addVar("k");

    // FFT-like butterfly stages: stage s pairs elements half apart;
    // early stages are stride-one friendly, late stages are not. The
    // four X references of a butterfly form a uniformly generated
    // group, so they carry temporal tags within a stage.
    for (std::int64_t rep = 0; rep < reps; ++rep) {
        for (std::int64_t half = 1; half < n; half *= 2) {
            const std::int64_t blocks = n / (2 * half);
            p.addStmt(loop(
                b, 0, blocks - 1,
                {loop(k, 0, half - 1,
                      {read(X, {2 * half * v(b) + v(k)}),
                       read(X, {2 * half * v(b) + v(k) + half}),
                       write(X, {2 * half * v(b) + v(k)}),
                       write(X, {2 * half * v(b) + v(k) + half})})}));
        }
    }

    if (!kernel_only)
        addPoisonedNest(p, W, k, n / 4, 3);
    return p;
}

Program
buildFloImpl(Scale scale, bool kernel_only)
{
    const std::int64_t cells = scale.apply(1200, 32);
    const std::int64_t faces = cells * 4;
    const std::int64_t sweeps = 5;

    Program p(kernel_only ? "FLO(kernel)" : "FLO");
    const auto Cl = p.addArray("Cl", {faces});
    const auto Cr = p.addArray("Cr", {faces});
    const auto Area = p.addArray("Area", {faces});
    const auto Q = p.addArray("Q", {cells});
    const auto Res = p.addArray("Res", {cells});
    const auto W = p.addArray("W", {cells});

    p.setArrayData(Cl, randomIndices(faces, cells, 0xf10aull));
    p.setArrayData(Cr, randomIndices(faces, cells, 0xf10bull));

    const auto f = p.addVar("f");
    const auto c = p.addVar("c");

    // Face sweep with indirect gathers/scatters, then a stride-one
    // cell update, repeated lexically per pseudo-time step.
    for (std::int64_t s = 0; s < sweeps; ++s) {
        p.addStmt(loop(f, 0, faces - 1,
                       {read(Area, {v(f)}),
                        read(Q, {indirect(Cl, v(f))}),
                        read(Q, {indirect(Cr, v(f))}),
                        write(Res, {indirect(Cl, v(f))})}));
        p.addStmt(loop(c, 0, cells - 1,
                       {read(Res, {v(c)}), read(Q, {v(c)}),
                        write(Q, {v(c)})}));
    }

    if (!kernel_only)
        addPoisonedNest(p, W, c, cells, 4);
    return p;
}

Program
buildMdg(Scale scale)
{
    return buildMdgImpl(scale, false);
}

Program
buildBdn(Scale scale)
{
    return buildBdnImpl(scale, false);
}

Program
buildDyf(Scale scale)
{
    return buildDyfImpl(scale, false);
}

Program
buildTrf(Scale scale)
{
    return buildTrfImpl(scale, false);
}

Program
buildAdm(Scale scale)
{
    return buildAdmImpl(scale, false);
}

Program
buildArc(Scale scale)
{
    return buildArcImpl(scale, false);
}

Program
buildFlo(Scale scale)
{
    return buildFloImpl(scale, false);
}

Program
buildKernelOnly(const std::string &name, Scale scale)
{
    if (name == "MDG")
        return buildMdgImpl(scale, true);
    if (name == "BDN")
        return buildBdnImpl(scale, true);
    if (name == "DYF")
        return buildDyfImpl(scale, true);
    if (name == "TRF")
        return buildTrfImpl(scale, true);
    if (name == "ADM")
        return buildAdmImpl(scale, true);
    if (name == "ARC")
        return buildArcImpl(scale, true);
    if (name == "FLO")
        return buildFloImpl(scale, true);
    util::fatal("unknown kernel-only benchmark: ", name);
}

} // namespace workloads
} // namespace sac
