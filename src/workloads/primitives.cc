/**
 * @file
 * The numerical primitives of the paper: dense and sparse
 * matrix-vector multiply (Sections 2.2 and 4.1) and the blocked /
 * copied kernels of Sections 4.2-4.3.
 */

#include "src/workloads/workloads.hh"

#include <algorithm>

#include "src/loopnest/builder.hh"
#include "src/util/logging.hh"
#include "src/util/rng.hh"

namespace sac {
namespace workloads {

using namespace loopnest::builder;
using loopnest::Program;
using loopnest::Stmt;

Program
buildMv(std::int64_t n)
{
    SAC_ASSERT(n > 0, "MV needs a positive order");
    Program p("MV");
    const auto A = p.addArray("A", {n, n});
    const auto X = p.addArray("X", {n});
    const auto Y = p.addArray("Y", {n});
    const auto j1 = p.addVar("j1");
    const auto j2 = p.addVar("j2");

    // DO j1: reg = Y(j1); DO j2: reg += A(j2,j1)*X(j2); Y(j1) = reg
    p.addStmt(loop(j1, 0, n - 1,
                   {read(Y, {v(j1)}),
                    loop(j2, 0, n - 1,
                         {read(A, {v(j2), v(j1)}), read(X, {v(j2)})}),
                    write(Y, {v(j1)})}));
    return p;
}

Program
buildSpMv(std::int64_t n, std::int64_t avg_nnz, std::uint64_t seed)
{
    SAC_ASSERT(n > 1 && avg_nnz > 0, "bad SpMV parameters");
    util::Rng rng(seed);

    // Column pointer array D (n+1) and a row-index array per nonzero.
    std::vector<std::int64_t> colptr(static_cast<std::size_t>(n + 1));
    std::vector<std::int64_t> rows;
    colptr[0] = 0;
    for (std::int64_t j = 0; j < n; ++j) {
        // Column counts vary between avg/2 and 3*avg/2.
        const std::int64_t nnz = std::max<std::int64_t>(
            1, rng.nextInRange(avg_nnz / 2, avg_nnz + avg_nnz / 2));
        for (std::int64_t k = 0; k < nnz; ++k)
            rows.push_back(rng.nextInRange(0, n - 1));
        std::sort(rows.end() - nnz, rows.end());
        colptr[static_cast<std::size_t>(j + 1)] =
            colptr[static_cast<std::size_t>(j)] + nnz;
    }
    const auto total_nnz = static_cast<std::int64_t>(rows.size());

    Program p("SpMV");
    const auto A = p.addArray("A", {total_nnz});
    const auto Index = p.addArray("Index", {total_nnz});
    const auto D = p.addArray("D", {n + 1});
    const auto X = p.addArray("X", {n});
    const auto Y = p.addArray("Y", {n});
    p.setArrayData(Index, rows);
    p.setArrayData(D, colptr);

    const auto j1 = p.addVar("j1");
    const auto j2 = p.addVar("j2");

    // X is reused scarcely through the indirection; the compiler
    // cannot analyze it, so a user directive tags it temporal
    // (Section 4.1). A and Index are streaming pollution.
    p.addStmt(loop(
        j1, 0, n - 1,
        {read(Y, {v(j1)}),
         loop(j2, indirectBound(D, v(j1)),
              indirectBound(D, v(j1) + 1, -1),
              {read(A, {v(j2)}),
               directives(read(X, {indirect(Index, v(j2))}), true,
                          std::nullopt)}),
         write(Y, {v(j1)})}));
    return p;
}

Program
buildBlockedMv(std::int64_t n, std::int64_t block)
{
    SAC_ASSERT(n > 0 && block > 0, "bad blocked-MV parameters");
    block = std::min(block, n);
    Program p("BlockedMV");
    const auto A = p.addArray("A", {n, n});
    const auto X = p.addArray("X", {n});
    const auto Y = p.addArray("Y", {n});
    const auto j1 = p.addVar("j1");
    const auto j2 = p.addVar("j2");

    // Block over j2 (the X direction): each X block is swept across
    // all rows before moving on, so larger blocks amortize Y traffic
    // while X stays resident — until pollution by A evicts it.
    const std::int64_t full_blocks = n / block;
    for (std::int64_t b = 0; b < full_blocks; ++b) {
        const std::int64_t lo = b * block;
        const std::int64_t hi = lo + block - 1;
        p.addStmt(loop(j1, 0, n - 1,
                       {read(Y, {v(j1)}),
                        loop(j2, lo, hi,
                             {read(A, {v(j2), v(j1)}),
                              read(X, {v(j2)})}),
                        write(Y, {v(j1)})}));
    }
    const std::int64_t rem_lo = full_blocks * block;
    if (rem_lo < n) {
        p.addStmt(loop(j1, 0, n - 1,
                       {read(Y, {v(j1)}),
                        loop(j2, rem_lo, n - 1,
                             {read(A, {v(j2), v(j1)}),
                              read(X, {v(j2)})}),
                        write(Y, {v(j1)})}));
    }
    return p;
}

Program
buildCopiedMm(std::int64_t n, std::int64_t leading_dim,
              std::int64_t block, bool copying)
{
    SAC_ASSERT(n > 0 && leading_dim >= n && block > 0 && block <= n &&
                   n % block == 0,
               "bad copied-MM parameters");
    Program p(copying ? "CopiedMM" : "BlockedMM");
    const auto A = p.addArray("A", {leading_dim, n});
    const auto B = p.addArray("B", {leading_dim, n});
    const auto C = p.addArray("C", {leading_dim, n});
    // The local-memory array is contiguous regardless of leading_dim.
    const auto T = p.addArray("T", {n, block});

    const auto i = p.addVar("i");
    const auto j = p.addVar("j");
    const auto k = p.addVar("k");

    // DO kb (blocks of k): [copy A block to T]; DO j, k, i:
    //   C(i,j) += (T(i,k) | A(i,kb+k)) * B(kb+k,j)
    for (std::int64_t kb = 0; kb < n; kb += block) {
        if (copying) {
            // Refill loop: very regular stride-one accesses that the
            // virtual-line mechanism accelerates (Section 4.3).
            p.addStmt(loop(k, 0, block - 1,
                           {loop(i, 0, n - 1,
                                 {read(A, {v(i), v(k) + kb}),
                                  write(T, {v(i), v(k)})})}));
        }
        // B(kb+k,j) is loop-invariant in i and hoisted to a register,
        // as the paper's codes do; it is read once per (j,k).
        Stmt inner =
            copying
                ? Stmt(loop(i, 0, n - 1,
                            {read(C, {v(i), v(j)}),
                             read(T, {v(i), v(k)}),
                             write(C, {v(i), v(j)})}))
                : Stmt(loop(i, 0, n - 1,
                            {read(C, {v(i), v(j)}),
                             read(A, {v(i), v(k) + kb}),
                             write(C, {v(i), v(j)})}));
        p.addStmt(loop(j, 0, n - 1,
                       {loop(k, 0, block - 1,
                             {read(B, {v(k) + kb, v(j)}),
                              std::move(inner)})}));
    }
    return p;
}

} // namespace workloads
} // namespace sac
