/**
 * @file
 * NAS and Slalom stand-ins. NAS is modeled as a conjugate-gradient
 * iteration (sparse matrix-vector product plus vector kernels), the
 * heart of NAS CG; Slalom as a dense LU-style factorization in the
 * column-oriented jki form.
 */

#include "src/workloads/workloads.hh"

#include <algorithm>

#include "src/loopnest/builder.hh"
#include "src/util/rng.hh"

namespace sac {
namespace workloads {

using namespace loopnest::builder;
using loopnest::Program;

Program
buildNas(Scale scale)
{
    const std::int64_t n = scale.apply(1000, 64);
    const std::int64_t avg_nnz = 10;
    const std::int64_t iters = 5;
    util::Rng rng(0xca71ull);

    std::vector<std::int64_t> rowptr(static_cast<std::size_t>(n + 1));
    std::vector<std::int64_t> cols;
    rowptr[0] = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t nnz = std::max<std::int64_t>(
            1, rng.nextInRange(avg_nnz / 2, avg_nnz + avg_nnz / 2));
        for (std::int64_t c = 0; c < nnz; ++c)
            cols.push_back(rng.nextInRange(0, n - 1));
        std::sort(cols.end() - nnz, cols.end());
        rowptr[static_cast<std::size_t>(i + 1)] =
            rowptr[static_cast<std::size_t>(i)] + nnz;
    }
    const auto total_nnz = static_cast<std::int64_t>(cols.size());

    Program p("NAS");
    const auto A = p.addArray("A", {total_nnz});
    const auto Col = p.addArray("Col", {total_nnz});
    const auto Rp = p.addArray("Rp", {n + 1});
    const auto P = p.addArray("P", {n});
    const auto Q = p.addArray("Q", {n});
    const auto R = p.addArray("R", {n});
    p.setArrayData(Col, cols);
    p.setArrayData(Rp, rowptr);

    const auto it = p.addVar("it");
    const auto i = p.addVar("i");
    const auto k = p.addVar("k");

    p.addStmt(loop(
        it, 1, iters,
        {// q = A * p (CSR row sweep); p gathered through Col and
         // tagged temporal by user directive, as in Section 4.1.
         loop(i, 0, n - 1,
              {loop(k, indirectBound(Rp, v(i)),
                    indirectBound(Rp, v(i) + 1, -1),
                    {read(A, {v(k)}),
                     directives(read(P, {indirect(Col, v(k))}), true,
                                std::nullopt)}),
               write(Q, {v(i)})}),
         // alpha = p . q
         loop(k, 0, n - 1, {read(P, {v(k)}), read(Q, {v(k)})}),
         // r = r - alpha * q ; rho = r . r
         loop(k, 0, n - 1,
              {read(R, {v(k)}), read(Q, {v(k)}), write(R, {v(k)}),
               read(R, {v(k)})}),
         // p = r + beta * p
         loop(k, 0, n - 1,
              {read(R, {v(k)}), read(P, {v(k)}),
               write(P, {v(k)})})}));
    return p;
}

Program
buildSlalom(Scale scale)
{
    const std::int64_t m = scale.apply(128, 12);

    Program p("Slalom");
    const auto A = p.addArray("A", {m, m});
    const auto j = p.addVar("j");
    const auto k = p.addVar("k");
    const auto i = p.addVar("i");

    // Column-oriented (jki) LU factorization without pivoting:
    //   DO j: DO k < j: DO i > k: A(i,j) -= A(i,k)*A(k,j)
    //         DO i > j: A(i,j) /= A(j,j)
    p.addStmt(loop(
        j, 0, m - 1,
        {loop(k, 0, v(j) + -1,
              {read(A, {v(k), v(j)}),
               loop(i, v(k) + 1, m - 1,
                    {read(A, {v(i), v(j)}), read(A, {v(i), v(k)}),
                     write(A, {v(i), v(j)})})}),
         read(A, {v(j), v(j)}),
         loop(i, v(j) + 1, m - 1,
              {read(A, {v(i), v(j)}), write(A, {v(i), v(j)})})}));
    return p;
}

} // namespace workloads
} // namespace sac
