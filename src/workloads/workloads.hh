/**
 * @file
 * The benchmark suite: loop-nest programs standing in for the paper's
 * workloads (Section 3.1), plus the blocking / copying kernels of
 * Section 4. Each builder returns an un-finalized Program; the
 * makeTaggedTrace() pipeline finalizes it, runs the locality analyzer
 * and executes it into a trace.
 *
 * Benchmark substitutions (the Perfect Club sources, Sage++ and Spa
 * are unavailable) are documented in DESIGN.md; the proxies reproduce
 * the properties the paper reports for each code: working-set size,
 * tag fractions, CALL-poisoned loops, stride behavior and the shape
 * of the temporal reuse.
 */

#ifndef SAC_WORKLOADS_WORKLOADS_HH
#define SAC_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/locality/analyzer.hh"
#include "src/loopnest/program.hh"
#include "src/trace/trace.hh"
#include "src/trace/trace_source.hh"
#include "src/util/distribution.hh"

namespace sac {
namespace workloads {

/** Scale factor applied to benchmark problem sizes (1 = default). */
struct Scale
{
    double factor = 1.0;

    /** Apply the factor to a nominal size, keeping it >= floor. */
    std::int64_t
    apply(std::int64_t nominal, std::int64_t floor_value = 4) const
    {
        const auto scaled =
            static_cast<std::int64_t>(nominal * factor);
        return scaled < floor_value ? floor_value : scaled;
    }
};

// --- Numerical primitives (paper Sections 2.2, 4.1) ---------------

/** Dense matrix-vector multiply, the paper's Section 2.2 loop. */
loopnest::Program buildMv(std::int64_t n = 500);

/**
 * Sparse matrix-vector multiply in compressed-column form, the
 * paper's Section 4.1 loop; X is tagged temporal by user directive.
 *
 * @param n number of columns (and length of X)
 * @param avg_nnz average non-zeros per column (paper: 10-80 in 3-D)
 * @param seed RNG seed for the sparsity pattern
 */
loopnest::Program buildSpMv(std::int64_t n = 1200,
                            std::int64_t avg_nnz = 20,
                            std::uint64_t seed = 0x5135ull);

/**
 * Blocked matrix-vector multiply (Section 4.2, Figure 11a).
 * @param n matrix order
 * @param block block size over the reused vector X
 */
loopnest::Program buildBlockedMv(std::int64_t n, std::int64_t block);

/**
 * Blocked matrix-matrix multiply with optional data copying
 * (Section 4.3, Figure 11b).
 *
 * @param n loop extent (logical matrix order)
 * @param leading_dim allocated leading dimension (>= n)
 * @param block k-block size
 * @param copying copy the A block to a contiguous local array
 */
loopnest::Program buildCopiedMm(std::int64_t n,
                                std::int64_t leading_dim,
                                std::int64_t block, bool copying);

// --- Suite benchmarks ----------------------------------------------

/** Livermore-loop kernel suite stand-in (LIV). */
loopnest::Program buildLiv(Scale scale = {});

/** NAS stand-in: conjugate-gradient-style iteration. */
loopnest::Program buildNas(Scale scale = {});

/** Slalom stand-in: dense LU-style factorization (jki form). */
loopnest::Program buildSlalom(Scale scale = {});

/** MDG proxy: molecular-dynamics pair interactions (Perfect Club). */
loopnest::Program buildMdg(Scale scale = {});

/** BDN proxy: banded-solver sweeps (Perfect Club). */
loopnest::Program buildBdn(Scale scale = {});

/** DYF proxy: time-stepped 2-D stencil with cyclic reuse. */
loopnest::Program buildDyf(Scale scale = {});

/** TRF proxy: transform with transpose-order sweeps. */
loopnest::Program buildTrf(Scale scale = {});

/** ADM proxy: small 3-D stencil with CALL-poisoned physics. */
loopnest::Program buildAdm(Scale scale = {});

/** ARC proxy: FFT-like butterfly sweeps. */
loopnest::Program buildArc(Scale scale = {});

/** FLO proxy: flow-solver face sweeps with indirect gathers. */
loopnest::Program buildFlo(Scale scale = {});

/**
 * Kernel-only variant of a Perfect Club proxy (Figure 10a): the most
 * time-consuming computational loops traced alone, fully
 * instrumentable (no CALL poisoning, no outside-loop references).
 * Supported names: ADM, MDG, BDN, DYF, ARC, FLO, TRF.
 */
loopnest::Program buildKernelOnly(const std::string &name,
                                  Scale scale = {});

// --- Registry and pipeline -----------------------------------------

/** A named benchmark builder. */
struct Benchmark
{
    std::string name;
    std::function<loopnest::Program()> build;
};

/**
 * The nine benchmarks of the paper's main evaluation, in figure
 * order: MDG, BDN, DYF, TRF, NAS, Slalom, LIV, MV, SpMV.
 */
const std::vector<Benchmark> &paperBenchmarks();

/** The seven kernel-only subroutines of Figure 10a. */
const std::vector<Benchmark> &kernelOnlyBenchmarks();

/** Look up a benchmark builder by name (fatal on unknown names). */
const Benchmark &findBenchmark(const std::string &name);

/**
 * Full tagging pipeline: finalize @p program, run the locality
 * analyzer, and execute it with the Figure-4b timing model.
 *
 * @param program freshly built (un-finalized) program; consumed
 * @param seed timing-model seed (traces are deterministic per seed)
 * @param analysis optional out-parameter for the analysis result
 */
trace::Trace makeTaggedTrace(loopnest::Program &&program,
                             std::uint64_t seed = 0x7ac3ull,
                             locality::AnalysisResult *analysis =
                                 nullptr);

/** Build + tag + trace a registered benchmark by name. */
trace::Trace makeBenchmarkTrace(const std::string &name,
                                std::uint64_t seed = 0x7ac3ull);

/**
 * Streaming variant of makeTaggedTrace(): finalize, analyze, then
 * emit each record into @p sink as it is generated — the trace is
 * never materialized, so memory stays bounded for any length.
 */
void streamTaggedTrace(loopnest::Program &&program,
                       const trace::RecordSink &sink,
                       std::uint64_t seed = 0x7ac3ull);

/** Streaming variant of makeBenchmarkTrace(). */
void streamBenchmarkTrace(const std::string &name,
                          const trace::RecordSink &sink,
                          std::uint64_t seed = 0x7ac3ull);

/**
 * Pull-based source for a registered benchmark: generation runs on a
 * background thread bridged through a bounded queue, so consumption
 * overlaps generation.
 */
std::unique_ptr<trace::TraceSource>
benchmarkTraceSource(const std::string &name,
                     std::uint64_t seed = 0x7ac3ull);

/**
 * Pipeline variant with a custom issue-time distribution, for
 * issue-rate sensitivity studies (the paper: "a cache design is
 * sensitive to the processor request issue rate").
 */
trace::Trace makeTaggedTraceWithTiming(
    loopnest::Program &&program,
    const util::DiscreteDistribution &deltas,
    std::uint64_t seed = 0x7ac3ull);

} // namespace workloads
} // namespace sac

#endif // SAC_WORKLOADS_WORKLOADS_HH
