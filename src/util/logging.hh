/**
 * @file
 * Error and status reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn()
 * and inform() for status messages.
 */

#ifndef SAC_UTIL_LOGGING_HH
#define SAC_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace sac {
namespace util {

/** Severity of a log event. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a log message. Fatal exits with code 1; Panic aborts. Exposed so
 * the convenience wrappers below stay header-only for formatting.
 *
 * @param level severity class
 * @param msg fully formatted message text
 */
[[gnu::cold]] void logMessage(LogLevel level, const std::string &msg);

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal error that should never happen regardless of what
 * the user does, then abort.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    logMessage(LogLevel::Panic, detail::format(args...));
    __builtin_unreachable();
}

/**
 * Report a condition caused by bad user input or configuration, then
 * exit(1).
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    logMessage(LogLevel::Fatal, detail::format(args...));
    __builtin_unreachable();
}

/** Warn about suspicious but non-fatal behavior. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, detail::format(args...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Inform, detail::format(args...));
}

/**
 * Check an invariant; panic with a description when it does not hold.
 * Active in all build types (unlike assert).
 */
#define SAC_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sac::util::panic("assertion failed: ", #cond, " at ",         \
                               __FILE__, ":", __LINE__, " ",                \
                               ##__VA_ARGS__);                              \
        }                                                                   \
    } while (0)

} // namespace util
} // namespace sac

#endif // SAC_UTIL_LOGGING_HH
