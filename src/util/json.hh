/**
 * @file
 * Minimal ordered JSON document builder used by the telemetry layer
 * (counter serialization, run manifests, Chrome trace exports) and,
 * since the sweep service exists, a strict parser for the documents
 * the wire protocol carries. Object members keep insertion order so
 * every emitted document is byte-stable across runs.
 */

#ifndef SAC_UTIL_JSON_HH
#define SAC_UTIL_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sac {
namespace util {

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    /** The JSON value kinds. */
    enum class Type
    {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool v) : type_(Type::Bool), bool_(v) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(std::int64_t v) : type_(Type::Int), int_(v) {}
    Json(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(const char *v) : type_(Type::String), string_(v) {}
    Json(std::string v) : type_(Type::String), string_(std::move(v)) {}

    /** An empty JSON object ({}). */
    static Json object();

    /** An empty JSON array ([]). */
    static Json array();

    /**
     * Parse @p text as one JSON document (strict: no comments, no
     * trailing commas, nothing but whitespace after the value).
     * Returns nullopt on malformed input, with a position-qualified
     * diagnostic in @p error when given. Numbers parse as Int when
     * they fit a signed 64-bit integer, Uint when only an unsigned
     * one, Double otherwise.
     */
    static std::optional<Json> parse(const std::string &text,
                                     std::string *error = nullptr);

    Type type() const { return type_; }

    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isString() const { return type_ == Type::String; }
    bool isBool() const { return type_ == Type::Bool; }

    /** Is this any of the three number kinds? */
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Double;
    }

    /** String payload, or @p fallback for non-strings. */
    const std::string &asString(const std::string &fallback = "") const
    {
        return type_ == Type::String ? string_ : fallback;
    }

    /** Bool payload, or @p fallback for non-bools. */
    bool asBool(bool fallback = false) const
    {
        return type_ == Type::Bool ? bool_ : fallback;
    }

    /** Numeric payload as a signed integer (doubles truncate). */
    std::int64_t asInt(std::int64_t fallback = 0) const;

    /** Numeric payload as an unsigned integer (negatives clamp to 0). */
    std::uint64_t asUint(std::uint64_t fallback = 0) const;

    /** Numeric payload as a double. */
    double asDouble(double fallback = 0.0) const;

    /**
     * Add (or overwrite) member @p key of an object. Calling set() on
     * a non-object is a programming error (panics).
     */
    Json &set(const std::string &key, Json value);

    /** Append @p value to an array; panics on non-arrays. */
    Json &push(Json value);

    /** Number of members (object) or elements (array). */
    std::size_t size() const;

    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    Json *find(const std::string &key);

    /** Element @p i of an array; panics when out of range. */
    const Json &at(std::size_t i) const;

    /** All elements of an array (empty for non-arrays). */
    const std::vector<Json> &elements() const { return elements_; }

    /** All members of an object (empty for non-objects). */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /** Serialize with @p indent spaces per level (0 = compact). */
    std::string dump(int indent = 2) const;

    /** Serialize into @p os (same format as dump()). */
    void write(std::ostream &os, int indent = 2) const;

    /** Escape @p s as a quoted JSON string literal. */
    static std::string quote(const std::string &s);

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> elements_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace util
} // namespace sac

#endif // SAC_UTIL_JSON_HH
