#include "src/util/args.hh"

#include <cerrno>
#include <cstdlib>

namespace sac {
namespace util {

bool
Args::parse(int argc, const char *const *argv, bool skip_first)
{
    options_.clear();
    separateValueKeys_.clear();
    positionals_.clear();
    error_.clear();

    for (int i = skip_first ? 1 : 0; i < argc; ++i) {
        const std::string tok = argv[i];
        if (tok == "--") {
            // Everything after a bare -- is positional.
            for (int j = i + 1; j < argc; ++j)
                positionals_.emplace_back(argv[j]);
            break;
        }
        if (tok.rfind("--", 0) != 0) {
            positionals_.push_back(tok);
            continue;
        }
        std::string body = tok.substr(2);
        if (body.empty()) {
            error_ = "empty option name";
            return false;
        }
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        if (body.rfind("no-", 0) == 0) {
            options_[body.substr(3)] = "false";
            continue;
        }
        // `--key value` when the next token is not an option.
        if (i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_[body] = argv[++i];
            separateValueKeys_.insert(body);
        } else {
            options_[body] = "true";
        }
    }
    return true;
}

bool
Args::has(const std::string &key) const
{
    return options_.count(key) > 0;
}

std::string
Args::getString(const std::string &key,
                const std::string &fallback) const
{
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
}

std::optional<std::int64_t>
Args::getInt(const std::string &key, std::int64_t fallback) const
{
    const auto it = options_.find(key);
    if (it == options_.end())
        return fallback;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    // An out-of-range value saturates to LLONG_MIN/MAX with ERANGE;
    // treat it as malformed rather than silently clamping.
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

bool
Args::getBool(const std::string &key, bool fallback) const
{
    const auto it = options_.find(key);
    if (it == options_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    return fallback;
}

bool
Args::valueWasSeparateToken(const std::string &key) const
{
    return separateValueKeys_.count(key) > 0;
}

std::vector<std::string>
Args::keys() const
{
    std::vector<std::string> out;
    out.reserve(options_.size());
    for (const auto &[k, v] : options_) {
        (void)v;
        out.push_back(k);
    }
    return out;
}

} // namespace util
} // namespace sac
