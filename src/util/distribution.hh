/**
 * @file
 * Empirical discrete distributions: sampling (used by the Figure-4b
 * issue-time model) and histogram accumulation (used by every trace
 * profiler that reports a distribution of references among buckets).
 */

#ifndef SAC_UTIL_DISTRIBUTION_HH
#define SAC_UTIL_DISTRIBUTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.hh"

namespace sac {
namespace util {

/**
 * A discrete distribution over arbitrary integer outcomes with given
 * relative weights; samples with a precomputed cumulative table.
 */
class DiscreteDistribution
{
  public:
    /** One possible outcome and its (relative, unnormalized) weight. */
    struct Outcome
    {
        std::int64_t value;
        double weight;
    };

    /** Build from outcomes; total weight must be positive. */
    explicit DiscreteDistribution(std::vector<Outcome> outcomes);

    /** Draw one outcome value using the supplied generator. */
    std::int64_t sample(Rng &rng) const;

    /** Probability mass of outcome index @p i (normalized). */
    double probability(std::size_t i) const;

    /** Number of distinct outcomes. */
    std::size_t size() const { return outcomes_.size(); }

    /** Outcome value at index @p i. */
    std::int64_t value(std::size_t i) const { return outcomes_[i].value; }

    /** Expected value of the distribution. */
    double mean() const;

  private:
    std::vector<Outcome> outcomes_;
    std::vector<double> cumulative_; // normalized, ends at 1.0
};

/**
 * A histogram over half-open value ranges [bound[i-1], bound[i]), used
 * to reproduce the paper's "distribution of references among ..."
 * figures. The first bucket is (-inf, bound[0]) and a final implicit
 * bucket covers [bound[n-1], +inf).
 */
class BucketHistogram
{
  public:
    /**
     * @param upper_bounds strictly increasing exclusive upper bounds;
     *        one extra overflow bucket is appended automatically
     * @param labels human-readable label per bucket (size() + 1 of
     *        upper_bounds), used by formatting helpers
     */
    BucketHistogram(std::vector<std::int64_t> upper_bounds,
                    std::vector<std::string> labels);

    /** Add @p weight to the bucket containing @p value. */
    void add(std::int64_t value, double weight = 1.0);

    /** Number of buckets (bounds + overflow). */
    std::size_t size() const { return counts_.size(); }

    /** Raw accumulated weight of bucket @p i. */
    double count(std::size_t i) const { return counts_[i]; }

    /** Fraction of total weight in bucket @p i (0 if histogram empty). */
    double fraction(std::size_t i) const;

    /** Label of bucket @p i. */
    const std::string &label(std::size_t i) const { return labels_[i]; }

    /** Total accumulated weight. */
    double total() const { return total_; }

  private:
    std::vector<std::int64_t> bounds_;
    std::vector<std::string> labels_;
    std::vector<double> counts_;
    double total_ = 0.0;
};

} // namespace util
} // namespace sac

#endif // SAC_UTIL_DISTRIBUTION_HH
