#include "src/util/table.hh"

#include <ostream>
#include <sstream>

#include "src/util/logging.hh"
#include "src/util/stats.hh"

namespace sac {
namespace util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SAC_ASSERT(!headers_.empty(), "a table needs at least one column");
}

std::size_t
Table::addRow()
{
    cells_.emplace_back(headers_.size());
    return cells_.size() - 1;
}

void
Table::set(std::size_t row, std::size_t col, std::string value)
{
    SAC_ASSERT(row < cells_.size() && col < headers_.size(),
               "table cell out of range");
    cells_[row][col] = std::move(value);
}

void
Table::setNumber(std::size_t row, std::size_t col, double value,
                 int decimals)
{
    set(row, col, formatFixed(value, decimals));
}

void
Table::addRow(std::vector<std::string> cells)
{
    SAC_ASSERT(cells.size() == headers_.size(),
               "row width does not match column count");
    cells_.push_back(std::move(cells));
}

const std::string &
Table::header(std::size_t col) const
{
    SAC_ASSERT(col < headers_.size(), "column out of range");
    return headers_[col];
}

const std::string &
Table::cell(std::size_t row, std::size_t col) const
{
    SAC_ASSERT(row < cells_.size() && col < headers_.size(),
               "table cell out of range");
    return cells_[row][col];
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : cells_)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto &row : cells_)
        emit_row(row);
}

std::string
Table::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace util
} // namespace sac
