/**
 * @file
 * Fundamental scalar types shared by every subsystem of the
 * software-assisted cache reproduction.
 */

#ifndef SAC_UTIL_TYPES_HH
#define SAC_UTIL_TYPES_HH

#include <cstdint>

namespace sac {

/** Byte address in the simulated (virtual) address space. */
using Addr = std::uint64_t;

/** Simulated processor cycle count. */
using Cycle = std::uint64_t;

/** Identifier of a static load/store instruction (a source reference). */
using RefId = std::uint32_t;

/** Sentinel for "no instruction". */
inline constexpr RefId invalidRefId = 0xffffffffu;

/** Size, in bytes, of one double-precision element (the paper's unit). */
inline constexpr unsigned elementBytes = 8;

/** Size, in bytes, of one "word" for memory-traffic accounting. */
inline constexpr unsigned wordBytes = 4;

} // namespace sac

#endif // SAC_UTIL_TYPES_HH
