#include "src/util/json.hh"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace util {

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    SAC_ASSERT(type_ == Type::Object, "Json::set() on a non-object");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    SAC_ASSERT(type_ == Type::Array, "Json::push() on a non-array");
    elements_.push_back(std::move(value));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Object)
        return members_.size();
    if (type_ == Type::Array)
        return elements_.size();
    return 0;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

Json *
Json::find(const std::string &key)
{
    return const_cast<Json *>(
        static_cast<const Json *>(this)->find(key));
}

std::string
Json::quote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

/** Shortest round-trippable decimal for @p v (JSON has no NaN/Inf). */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shorter representation when it round-trips.
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    return back == v ? shorter : buf;
}

} // namespace

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string close_pad(
        static_cast<std::size_t>(indent) *
            static_cast<std::size_t>(depth),
        ' ');
    const char *nl = indent > 0 ? "\n" : "";

    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Int:
        os << int_;
        break;
      case Type::Uint:
        os << uint_;
        break;
      case Type::Double:
        os << formatDouble(double_);
        break;
      case Type::String:
        os << quote(string_);
        break;
      case Type::Array:
        if (elements_.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            os << pad;
            elements_[i].writeIndented(os, indent, depth + 1);
            if (i + 1 < elements_.size())
                os << ',';
            os << nl;
        }
        os << close_pad << ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
            os << pad << quote(members_[i].first) << ':'
               << (indent > 0 ? " " : "");
            members_[i].second.writeIndented(os, indent, depth + 1);
            if (i + 1 < members_.size())
                os << ',';
            os << nl;
        }
        os << close_pad << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

} // namespace util
} // namespace sac
