#include "src/util/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace util {

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    SAC_ASSERT(type_ == Type::Object, "Json::set() on a non-object");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    SAC_ASSERT(type_ == Type::Array, "Json::push() on a non-array");
    elements_.push_back(std::move(value));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Object)
        return members_.size();
    if (type_ == Type::Array)
        return elements_.size();
    return 0;
}

std::int64_t
Json::asInt(std::int64_t fallback) const
{
    switch (type_) {
      case Type::Int:
        return int_;
      case Type::Uint:
        return static_cast<std::int64_t>(uint_);
      case Type::Double:
        return static_cast<std::int64_t>(double_);
      default:
        return fallback;
    }
}

std::uint64_t
Json::asUint(std::uint64_t fallback) const
{
    switch (type_) {
      case Type::Int:
        return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
      case Type::Uint:
        return uint_;
      case Type::Double:
        return double_ < 0.0 ? 0
                             : static_cast<std::uint64_t>(double_);
      default:
        return fallback;
    }
}

double
Json::asDouble(double fallback) const
{
    switch (type_) {
      case Type::Int:
        return static_cast<double>(int_);
      case Type::Uint:
        return static_cast<double>(uint_);
      case Type::Double:
        return double_;
      default:
        return fallback;
    }
}

const Json &
Json::at(std::size_t i) const
{
    SAC_ASSERT(type_ == Type::Array && i < elements_.size(),
               "Json::at() out of range");
    return elements_[i];
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

Json *
Json::find(const std::string &key)
{
    return const_cast<Json *>(
        static_cast<const Json *>(this)->find(key));
}

std::string
Json::quote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

/** Shortest round-trippable decimal for @p v (JSON has no NaN/Inf). */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shorter representation when it round-trips.
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    return back == v ? shorter : buf;
}

} // namespace

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string close_pad(
        static_cast<std::size_t>(indent) *
            static_cast<std::size_t>(depth),
        ' ');
    const char *nl = indent > 0 ? "\n" : "";

    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Int:
        os << int_;
        break;
      case Type::Uint:
        os << uint_;
        break;
      case Type::Double:
        os << formatDouble(double_);
        break;
      case Type::String:
        os << quote(string_);
        break;
      case Type::Array:
        if (elements_.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            os << pad;
            elements_[i].writeIndented(os, indent, depth + 1);
            if (i + 1 < elements_.size())
                os << ',';
            os << nl;
        }
        os << close_pad << ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
            os << pad << quote(members_[i].first) << ':'
               << (indent > 0 ? " " : "");
            members_[i].second.writeIndented(os, indent, depth + 1);
            if (i + 1 < members_.size())
                os << ',';
            os << nl;
        }
        os << close_pad << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace {

/**
 * Recursive-descent JSON parser. Strict by design: the wire protocol
 * of the sweep service carries machine-built documents, so anything
 * non-standard is an error, never silently repaired.
 */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<Json>
    document()
    {
        std::optional<Json> v = value(0);
        if (!v)
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after the document");
        return v;
    }

  private:
    static constexpr int maxDepth = 64;

    std::optional<Json>
    fail(const std::string &what)
    {
        if (error_) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
        return std::nullopt;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::optional<std::string>
    stringBody()
    {
        // Called on the opening quote.
        ++pos_;
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size())
                break;
            const char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size()) {
                      fail("truncated \\u escape");
                      return std::nullopt;
                  }
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_ + i];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else {
                          fail("bad hex digit in \\u escape");
                          return std::nullopt;
                      }
                  }
                  pos_ += 4;
                  // Encode the code point as UTF-8. Surrogate pairs
                  // are not combined (the writer never emits them for
                  // the ASCII-controlled documents we exchange).
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xc0 | (cp >> 6));
                      out += static_cast<char>(0x80 | (cp & 0x3f));
                  } else {
                      out += static_cast<char>(0xe0 | (cp >> 12));
                      out += static_cast<char>(0x80 |
                                               ((cp >> 6) & 0x3f));
                      out += static_cast<char>(0x80 | (cp & 0x3f));
                  }
                  break;
              }
              default:
                fail("unknown escape sequence");
                return std::nullopt;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<Json>
    number()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() && std::isdigit(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        bool integral = true;
        if (consume('.')) {
            integral = false;
            while (pos_ < text_.size() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            return fail("malformed number");
        if (integral) {
            errno = 0;
            char *end = nullptr;
            if (tok[0] == '-') {
                const long long v =
                    std::strtoll(tok.c_str(), &end, 10);
                if (errno == 0 && end == tok.c_str() + tok.size())
                    return Json(static_cast<std::int64_t>(v));
            } else {
                const unsigned long long v =
                    std::strtoull(tok.c_str(), &end, 10);
                if (errno == 0 && end == tok.c_str() + tok.size()) {
                    if (v <= static_cast<unsigned long long>(
                                 std::numeric_limits<
                                     std::int64_t>::max()))
                        return Json(static_cast<std::int64_t>(v));
                    return Json(static_cast<std::uint64_t>(v));
                }
            }
            // Out-of-range integer: fall through to double.
        }
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number");
        return Json(v);
    }

    std::optional<Json>
    value(int depth)
    {
        if (depth > maxDepth)
            return fail("document nests too deeply");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipSpace();
            if (consume('}'))
                return obj;
            while (true) {
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != '"')
                    return fail("expected object key string");
                const auto key = stringBody();
                if (!key)
                    return std::nullopt;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':' after object key");
                auto member = value(depth + 1);
                if (!member)
                    return std::nullopt;
                obj.set(*key, std::move(*member));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipSpace();
            if (consume(']'))
                return arr;
            while (true) {
                auto element = value(depth + 1);
                if (!element)
                    return std::nullopt;
                arr.push(std::move(*element));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            const auto s = stringBody();
            if (!s)
                return std::nullopt;
            return Json(*s);
        }
        if (c == 't') {
            if (literal("true"))
                return Json(true);
            return fail("malformed literal");
        }
        if (c == 'f') {
            if (literal("false"))
                return Json(false);
            return fail("malformed literal");
        }
        if (c == 'n') {
            if (literal("null"))
                return Json();
            return fail("malformed literal");
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        return fail("unexpected character");
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Json>
Json::parse(const std::string &text, std::string *error)
{
    return Parser(text, error).document();
}

} // namespace util
} // namespace sac
