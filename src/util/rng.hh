/**
 * @file
 * Deterministic pseudo-random number generator used everywhere a random
 * choice is made (trace issue-time sampling, synthetic workload data).
 *
 * The paper stresses that "repetitive simulations performed with the
 * same trace are completely identical"; a self-contained, seeded
 * generator (xoshiro256**) guarantees the same property across
 * platforms and standard-library versions.
 */

#ifndef SAC_UTIL_RNG_HH
#define SAC_UTIL_RNG_HH

#include <cstdint>

namespace sac {
namespace util {

/**
 * xoshiro256** generator with splitmix64 seeding. Satisfies the C++
 * UniformRandomBitGenerator concept so it can also feed <random>
 * distributions, although the helpers below are preferred for
 * reproducibility.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type
    max()
    {
        return ~static_cast<result_type>(0);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }

    /** Uniform integer in [0, bound), bound > 0 (unbiased). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

  private:
    std::uint64_t state_[4];
};

} // namespace util
} // namespace sac

#endif // SAC_UTIL_RNG_HH
