#include "src/util/stats.hh"

#include <cstdio>

namespace sac {
namespace util {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

std::string
formatFixed(double x, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, x);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatFixed(fraction * 100.0, decimals) + "%";
}

} // namespace util
} // namespace sac
