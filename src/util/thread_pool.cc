#include "src/util/thread_pool.hh"

#include "src/util/logging.hh"

namespace sac {
namespace util {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::uint64_t
ThreadPool::tasksSubmitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

std::uint64_t
ThreadPool::tasksCompleted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SAC_ASSERT(!stopping_, "submit() on a stopping pool");
        queue_.push_back(std::move(fn));
        ++submitted_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return completed_ == submitted_; });
}

bool
ThreadPool::helpOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++completed_;
    }
    drained_.notify_all();
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // A packaged_task captures any exception into its future, so
        // a throwing task cannot take the worker down.
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++completed_;
        }
        drained_.notify_all();
    }
}

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        // Warn once per process: every --jobs/--workers default funnels
        // through here, and silently running single-threaded on a
        // many-core box is the kind of slowdown nobody notices.
        static const bool warned = [] {
            warn("hardware_concurrency() is unknown; defaulting to "
                 "1 worker thread (pass --jobs/--workers explicitly)");
            return true;
        }();
        (void)warned;
        return 1u;
    }
    return hw;
}

} // namespace util
} // namespace sac
