#include "src/util/distribution.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace sac {
namespace util {

DiscreteDistribution::DiscreteDistribution(std::vector<Outcome> outcomes)
    : outcomes_(std::move(outcomes))
{
    SAC_ASSERT(!outcomes_.empty(),
               "a discrete distribution needs at least one outcome");
    double total = 0.0;
    for (const auto &o : outcomes_) {
        SAC_ASSERT(o.weight >= 0.0, "negative outcome weight");
        total += o.weight;
    }
    SAC_ASSERT(total > 0.0, "total distribution weight must be positive");
    cumulative_.reserve(outcomes_.size());
    double run = 0.0;
    for (const auto &o : outcomes_) {
        run += o.weight / total;
        cumulative_.push_back(run);
    }
    cumulative_.back() = 1.0;
}

std::int64_t
DiscreteDistribution::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const auto idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     outcomes_.size() - 1)));
    return outcomes_[idx].value;
}

double
DiscreteDistribution::probability(std::size_t i) const
{
    SAC_ASSERT(i < outcomes_.size(), "outcome index out of range");
    return cumulative_[i] - (i == 0 ? 0.0 : cumulative_[i - 1]);
}

double
DiscreteDistribution::mean() const
{
    double m = 0.0;
    for (std::size_t i = 0; i < outcomes_.size(); ++i)
        m += probability(i) * static_cast<double>(outcomes_[i].value);
    return m;
}

BucketHistogram::BucketHistogram(std::vector<std::int64_t> upper_bounds,
                                 std::vector<std::string> labels)
    : bounds_(std::move(upper_bounds)), labels_(std::move(labels))
{
    SAC_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be increasing");
    SAC_ASSERT(labels_.size() == bounds_.size() + 1,
               "need one label per bucket including the overflow bucket");
    counts_.assign(bounds_.size() + 1, 0.0);
}

void
BucketHistogram::add(std::int64_t value, double weight)
{
    const auto it =
        std::upper_bound(bounds_.begin(), bounds_.end(), value);
    counts_[static_cast<std::size_t>(it - bounds_.begin())] += weight;
    total_ += weight;
}

double
BucketHistogram::fraction(std::size_t i) const
{
    SAC_ASSERT(i < counts_.size(), "bucket index out of range");
    return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

} // namespace util
} // namespace sac
