/**
 * @file
 * ASCII table printer used by every bench binary to emit the rows and
 * series of the paper's figures in a uniform, diffable format.
 */

#ifndef SAC_UTIL_TABLE_HH
#define SAC_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace sac {
namespace util {

/**
 * A rectangular table with a header row. Cells are strings; numeric
 * convenience setters format with a fixed number of decimals. Columns
 * are padded to their widest cell when printed.
 */
class Table
{
  public:
    /**
     * An empty placeholder table (no columns, prints nothing) for
     * value types that receive a real table later (e.g. SweepResult).
     */
    Table() = default;

    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append an empty row and return its index. */
    std::size_t addRow();

    /** Set cell (row, col) to a string value. */
    void set(std::size_t row, std::size_t col, std::string value);

    /** Set cell (row, col) to a fixed-point formatted number. */
    void setNumber(std::size_t row, std::size_t col, double value,
                   int decimals = 3);

    /** Append a full row of string cells (must match column count). */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rows() const { return cells_.size(); }

    /** Number of columns. */
    std::size_t cols() const { return headers_.size(); }

    /** Header of column @p col. */
    const std::string &header(std::size_t col) const;

    /** Cell contents at (row, col). */
    const std::string &cell(std::size_t row, std::size_t col) const;

    /** Render with aligned columns, header underline, trailing newline. */
    void print(std::ostream &os) const;

    /** Render to a string (used by tests). */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> cells_;
};

} // namespace util
} // namespace sac

#endif // SAC_UTIL_TABLE_HH
