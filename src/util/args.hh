/**
 * @file
 * Minimal command-line argument parser for the example applications:
 * GNU-style long options with values (--key=value or --key value),
 * boolean flags (--flag / --no-flag), and positional arguments.
 */

#ifndef SAC_UTIL_ARGS_HH
#define SAC_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace sac {
namespace util {

/** Parsed command line: options plus positionals. */
class Args
{
  public:
    /**
     * Parse @p argv (excluding the program name is fine; argv[0] is
     * skipped only when @p skip_first is true).
     *
     * Recognized forms: `--key=value`, `--key value` (when the next
     * token does not start with `--`), `--flag`, `--no-flag`, and
     * bare positionals.
     *
     * @retval false on malformed input (e.g. `--` alone); errors are
     *         retrievable via error()
     */
    bool parse(int argc, const char *const *argv,
               bool skip_first = true);

    /** Last parse error, empty when parse() succeeded. */
    const std::string &error() const { return error_; }

    /** Was --key present (with or without a value)? */
    bool has(const std::string &key) const;

    /** String value of --key, or @p fallback. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /**
     * Integer value of --key, or @p fallback; returns std::nullopt
     * when the value is present but not an integer.
     */
    std::optional<std::int64_t>
    getInt(const std::string &key, std::int64_t fallback) const;

    /**
     * Boolean value: true for `--flag` or `--flag=true/1/yes`, false
     * for `--no-flag` or `--flag=false/0/no`, @p fallback otherwise.
     */
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Positional arguments in order. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** All option keys seen (for unknown-option checking). */
    std::vector<std::string> keys() const;

    /**
     * Did --key take its value from the *following* argv token
     * (`--key value` rather than `--key=value`)? When a typed
     * accessor then rejects that value, the token was plausibly a
     * positional that a bare `--key` swallowed; callers use this to
     * report that mistake precisely instead of a generic parse error.
     */
    bool valueWasSeparateToken(const std::string &key) const;

  private:
    std::map<std::string, std::string> options_;
    std::set<std::string> separateValueKeys_;
    std::vector<std::string> positionals_;
    std::string error_;
};

} // namespace util
} // namespace sac

#endif // SAC_UTIL_ARGS_HH
