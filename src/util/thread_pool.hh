/**
 * @file
 * A minimal fixed-size work-queue thread pool used by the parallel
 * sweep executor (harness::Runner::runMatrix). Tasks are arbitrary
 * callables; submit() returns a std::future so exceptions thrown by a
 * task are captured and re-raised in the waiting thread instead of
 * terminating the worker. The destructor drains the queue and joins
 * every worker, so a pool can be created per sweep without leaking
 * threads.
 */

#ifndef SAC_UTIL_THREAD_POOL_HH
#define SAC_UTIL_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sac {
namespace util {

/** Fixed-size pool of workers draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers; 0 is clamped to 1. The pool never
     * grows or shrinks after construction.
     */
    explicit ThreadPool(unsigned threads);

    /** Finish every queued task, then join all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Tasks accepted over the pool's lifetime. */
    std::uint64_t tasksSubmitted() const;

    /** Tasks that finished running (normally or by throwing). */
    std::uint64_t tasksCompleted() const;

    /**
     * Queue @p fn for execution. The returned future yields fn's
     * result; a throwing task stores its exception in the future and
     * leaves the worker alive.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        enqueue([task] { (*task)(); });
        return result;
    }

    /** Block until every task submitted so far has completed. */
    void wait();

    /**
     * Pop and run one queued task on the calling thread. Returns
     * false when the queue is empty. This is the help-while-wait
     * primitive: a pool task that blocks on subtasks submitted to the
     * same pool calls this instead of sleeping, so nested submission
     * cannot deadlock even when every worker is parked in a wait.
     */
    bool helpOne();

    /**
     * Wait for @p result while draining queued tasks on the calling
     * thread. This is how a pool task waits for its own subtasks: a
     * bare future::get() would park the worker, and with every worker
     * parked the subtasks never run. Returns the future's value
     * (rethrowing its exception), like get().
     */
    template <typename T>
    T
    helpWait(std::future<T> &result)
    {
        using namespace std::chrono_literals;
        while (result.wait_for(0s) != std::future_status::ready) {
            // Nothing runnable: the missing task is executing on
            // another thread, so briefly sleep instead of spinning.
            if (!helpOne())
                result.wait_for(100us);
        }
        return result.get();
    }

    /**
     * Sensible default worker count for simulation sweeps: the
     * hardware concurrency, or 1 (with a one-time warning) when the
     * hardware concurrency is unknown.
     */
    static unsigned defaultThreads();

  private:
    void enqueue(std::function<void()> fn);
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;     //!< workers wait for tasks
    std::condition_variable drained_;  //!< wait() sleeps here
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    bool stopping_ = false;
};

} // namespace util
} // namespace sac

#endif // SAC_UTIL_THREAD_POOL_HH
