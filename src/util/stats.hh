/**
 * @file
 * Small statistics helpers: counters with ratio formatting and a
 * running scalar summary (mean / min / max), shared by the simulator
 * statistics and the trace profilers.
 */

#ifndef SAC_UTIL_STATS_HH
#define SAC_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <string>

namespace sac {
namespace util {

/** Running summary of a scalar sequence. */
class RunningStat
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Mean of samples (0 when empty). */
    double mean() const;

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Safe ratio: returns 0 when the denominator is 0. */
double safeRatio(double num, double den);

/** Format @p x with @p decimals digits after the point. */
std::string formatFixed(double x, int decimals);

/** Format a fraction in [0,1] as a percentage string like "12.3%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace util
} // namespace sac

#endif // SAC_UTIL_STATS_HH
