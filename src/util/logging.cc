#include "src/util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace sac {
namespace util {

void
logMessage(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    switch (level) {
      case LogLevel::Inform:
        prefix = "info: ";
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
    }
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

} // namespace util
} // namespace sac
