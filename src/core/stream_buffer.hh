/**
 * @file
 * Stream buffers (Jouppi, ISCA 1990) — the hardware-prefetching
 * related work the paper discusses in Section 5. A small set of FIFO
 * buffers each prefetches sequential physical lines behind a miss;
 * a miss whose address matches the *head* of a buffer pops it into
 * the cache in one cycle, and the buffer keeps streaming.
 *
 * The paper's critique, reproduced by this model: "the mechanism
 * does not work properly if the number of array references within
 * the loop body, that induce compulsory/capacity misses, is larger
 * than the number of stream buffers" — interleaved streams thrash
 * the buffers.
 */

#ifndef SAC_CORE_STREAM_BUFFER_HH
#define SAC_CORE_STREAM_BUFFER_HH

#include <deque>
#include <vector>

#include "src/cache/cache_array.hh"
#include "src/sim/run_stats.hh"
#include "src/sim/timing.hh"
#include "src/sim/write_buffer.hh"
#include "src/trace/trace.hh"

namespace sac {
namespace core {

/** Configuration of the stream-buffer baseline. */
struct StreamBufferConfig
{
    std::string name = "Stand.+StreamBufs";
    std::uint64_t cacheSizeBytes = 8 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;
    /** Number of stream buffers (Jouppi evaluates 1 and 4). */
    std::uint32_t numBuffers = 4;
    /** Entries per buffer. */
    std::uint32_t bufferDepth = 4;
    sim::TimingParams timing;
    std::uint32_t writeBufferEntries = 8;
};

/**
 * Trace-driven simulator of a standard cache backed by stream
 * buffers. Statistics use the shared RunStats: stream-buffer hits
 * are reported as auxHits, buffer fills as prefetchesIssued.
 */
class StreamBufferCache
{
  public:
    explicit StreamBufferCache(StreamBufferConfig cfg);

    /** Simulate one reference (issue order). */
    void access(const trace::Record &rec);

    /** Simulate a whole trace and finish(). */
    void run(const trace::Trace &t);

    /** Drain the write buffer; idempotent. */
    void finish();

    /** Statistics accumulated so far. */
    const sim::RunStats &stats() const { return stats_; }

    /** Is the line containing @p addr in the main cache? */
    bool mainContains(Addr addr) const;

    /** Does any buffer head hold the line containing @p addr? */
    bool headContains(Addr addr) const;

  private:
    /** One prefetched line waiting in a buffer. */
    struct Entry
    {
        Addr line = 0;
        Cycle readyAt = 0;
    };

    /** One FIFO stream buffer. */
    struct Buffer
    {
        std::deque<Entry> entries;
        Addr nextLine = 0;     //!< next line to prefetch
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Queue one line fill for @p buf on the shared bus. */
    void scheduleFill(Buffer &buf);

    /** Allocate (or recycle) a buffer to stream from @p line + 1. */
    void allocateBuffer(Addr line);

    /** Install @p line into the main cache, handling the victim. */
    void installLine(Addr line, bool dirty, bool write);

    void completeAccess(Cycle completion);

    StreamBufferConfig cfg_;
    cache::CacheArray main_;
    sim::WriteBuffer writeBuffer_;
    sim::RunStats stats_;
    std::vector<Buffer> buffers_;

    Cycle now_ = 0;
    Cycle procReadyAt_ = 1;
    Cycle cacheFreeAt_ = 0;
    Cycle busFreeAt_ = 0;
    std::uint64_t useCounter_ = 0;
    bool finished_ = false;
};

/** Simulate @p t under the stream-buffer baseline. */
sim::RunStats simulateStreamBuffers(const trace::Trace &t,
                                    const StreamBufferConfig &cfg);

} // namespace core
} // namespace sac

#endif // SAC_CORE_STREAM_BUFFER_HH
