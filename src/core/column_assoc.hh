/**
 * @file
 * Column-associative cache (Agarwal & Pudar, ISCA 1993) — the second
 * related-work design the paper discusses in Section 5: a
 * direct-mapped cache where a line may also reside in the set whose
 * index has the highest bit flipped. A primary-set miss probes the
 * alternate set (one extra cycle); an alternate hit swaps the two
 * lines so the hot one is found first next time.
 *
 * The paper's remark, testable with this model: "most conflict
 * misses are eliminated. However, the mechanism does not deal with
 * cache pollution."
 */

#ifndef SAC_CORE_COLUMN_ASSOC_HH
#define SAC_CORE_COLUMN_ASSOC_HH

#include "src/cache/cache_array.hh"
#include "src/sim/miss_classifier.hh"
#include "src/sim/run_stats.hh"
#include "src/sim/timing.hh"
#include "src/sim/write_buffer.hh"
#include "src/trace/trace.hh"

#include <optional>
#include <vector>

namespace sac {
namespace core {

/** Configuration of the column-associative baseline. */
struct ColumnAssocConfig
{
    std::string name = "Column-assoc";
    std::uint64_t cacheSizeBytes = 8 * 1024;
    std::uint32_t lineBytes = 32;
    /** Extra cycles for the rehash probe of the alternate set. */
    Cycle rehashProbeCycles = 1;
    sim::TimingParams timing;
    std::uint32_t writeBufferEntries = 8;
    bool classifyMisses = true;
};

/** Trace-driven simulator of a column-associative cache. */
class ColumnAssocCache
{
  public:
    explicit ColumnAssocCache(ColumnAssocConfig cfg);

    /** Simulate one reference (issue order). */
    void access(const trace::Record &rec);

    /** Simulate a whole trace and finish(). */
    void run(const trace::Trace &t);

    /** Drain the write buffer; idempotent. */
    void finish();

    /** Statistics; alternate-set hits are reported as auxHits. */
    const sim::RunStats &stats() const { return stats_; }

    /** Is @p addr's line resident (either set)? */
    bool contains(Addr addr) const;

    /** Is @p addr's line resident in its primary set? */
    bool inPrimarySet(Addr addr) const;

  private:
    std::uint32_t primarySet(Addr line) const;
    std::uint32_t alternateSet(Addr line) const;

    void installLine(Addr line, std::uint32_t set, bool write);
    void evictSlot(cache::CacheArray::LineRef slot);
    void completeAccess(Cycle completion);

    ColumnAssocConfig cfg_;
    cache::CacheArray main_; //!< direct-mapped storage
    /** Per-set rehash bit: the resident lives in its flipped set. */
    std::vector<bool> rehash_;
    sim::WriteBuffer writeBuffer_;
    std::optional<sim::MissClassifier> classifier_;
    sim::RunStats stats_;

    Cycle now_ = 0;
    Cycle procReadyAt_ = 1;
    Cycle cacheFreeAt_ = 0;
    Cycle busFreeAt_ = 0;
    bool finished_ = false;
};

/** Simulate @p t under the column-associative baseline. */
sim::RunStats simulateColumnAssoc(const trace::Trace &t,
                                  const ColumnAssocConfig &cfg);

} // namespace core
} // namespace sac

#endif // SAC_CORE_COLUMN_ASSOC_HH
