/**
 * @file
 * Configuration of the software-assisted cache simulator. Every cache
 * organization evaluated in the paper — standard, bypass, victim,
 * bounce-back, virtual lines, set-associative software control,
 * prefetching — is a point in this configuration space; the named
 * factory functions construct the exact configurations of the
 * figures.
 */

#ifndef SAC_CORE_CONFIG_HH
#define SAC_CORE_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/timing.hh"
#include "src/util/json.hh"

namespace sac {
namespace core {

/** Bypass policy for references without temporal locality (Fig 3a). */
enum class BypassMode
{
    /** No bypassing (default). */
    None,
    /**
     * Non-temporal references never allocate: only the requested
     * words travel, so spatial locality is lost entirely.
     */
    NonTemporal,
    /**
     * Non-temporal references fetch through a single-line bypass
     * buffer, recovering spatial locality within one uninterrupted
     * stream but thrashing on the interleaved accesses of real loop
     * nests.
     */
    NonTemporalBuffered,
};

/** Full description of one simulated cache organization. */
struct Config
{
    /** Display name used by benches and examples. */
    std::string name = "Stand.";

    // --- Main cache geometry -------------------------------------
    std::uint64_t cacheSizeBytes = 8 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;

    // --- Auxiliary cache (victim / bounce-back / prefetch buffer) -
    /** Number of aux lines; 0 disables the aux cache entirely. */
    std::uint32_t auxLines = 0;
    /**
     * Aux-cache associativity; 0 means fully associative. The paper
     * notes a 4-way bounce-back cache performs reasonably well.
     */
    std::uint32_t auxAssoc = 0;
    /** Victims of main-cache replacement enter the aux cache. */
    bool auxReceivesVictims = false;
    /**
     * Temporal bounce-back (Section 2.2): a line evicted from the aux
     * cache with its temporal bit set returns to the main cache
     * instead of being discarded.
     */
    bool bounceBack = false;

    // --- Spatial assistance (Section 2.1) -------------------------
    /** Fetch whole virtual lines on spatially tagged misses. */
    bool virtualLines = false;
    std::uint32_t virtualLineBytes = 64;
    /**
     * Variable-length virtual lines (paper Section 3.2 extension):
     * the fill spans 2^spatialLevel physical lines, capped by
     * virtualLineBytes.
     */
    bool variableVirtualLines = false;
    /**
     * Check residence of each physical line of the virtual block and
     * fetch only the absent ones (Section 2.1 coherence). Disabling
     * this is an ablation: the whole block is always fetched.
     */
    bool virtualLineCoherenceCheck = true;

    // --- Temporal assistance (Section 2.2) ------------------------
    /** Honor instruction temporal tags (sets per-line temporal bits). */
    bool temporalBits = false;
    /**
     * Reset a line's temporal bit when it bounces back (the paper's
     * "dynamic adjustment", Section 2.2). Disabling this is an
     * ablation: dead reusable data keeps bouncing.
     */
    bool resetTemporalBitOnBounce = true;
    /**
     * Cheaper set-associative software control (Fig 9b): LRU
     * replacement that prefers evicting non-temporal lines.
     */
    bool preferNonTemporalReplacement = false;

    // --- Bypassing (Fig 3a baselines) ------------------------------
    BypassMode bypass = BypassMode::None;

    // --- Prefetching (Section 4.4) ---------------------------------
    bool prefetch = false;
    /** Prefetch only on spatially tagged misses (software assist). */
    bool prefetchSpatialOnly = true;
    /** Maximum prefetched lines resident in the aux cache. */
    std::uint32_t maxPrefetchedInAux = 4;
    /**
     * Physical lines fetched per prefetch request. The paper keeps 1
     * (progressive prefetching) up to ~25-cycle latencies and
     * suggests larger distances beyond.
     */
    std::uint32_t prefetchDegree = 1;

    // --- Environment ----------------------------------------------
    sim::TimingParams timing;
    std::uint32_t writeBufferEntries = 8;
    /** Run the three-C classifier (adds simulation time). */
    bool classifyMisses = true;

    /** Number of physical lines in one virtual line. */
    std::uint32_t
    linesPerVirtualLine() const
    {
        return virtualLines ? virtualLineBytes / lineBytes : 1;
    }

    /**
     * Canonical serialization of every simulation-relevant field
     * (everything except the display name). Two configurations have
     * equal keys iff they simulate identically, so caches keyed on it
     * cannot alias two different setups that share a label.
     */
    std::string cacheKey() const;

    /**
     * Every field (including the display name and timing block) as a
     * JSON object, for run manifests. Field names mirror the struct.
     */
    util::Json toJson() const;

    /**
     * The first constraint this configuration violates, or nullopt
     * when it is valid. The testable core of validate().
     */
    std::optional<std::string> validationError() const;

    /** Sanity-check the configuration; fatal() on invalid setups. */
    void validate() const;

    class Builder;

    /** Start a fluent build from the Standard baseline. */
    static Builder builder();
};

/**
 * Fluent construction of a Config. Every setter returns the builder,
 * and build() validates, so an invalid combination fails loudly at
 * the construction site instead of deep inside the simulator:
 *
 *   const Config c = Config::builder()
 *                        .name("Soft.")
 *                        .auxLines(8)
 *                        .victims()
 *                        .bounceBack()
 *                        .temporalBits()
 *                        .virtualLines(64)
 *                        .build();
 */
class Config::Builder
{
  public:
    Builder &name(std::string n) { c_.name = std::move(n); return *this; }
    Builder &cacheSize(std::uint64_t bytes) { c_.cacheSizeBytes = bytes; return *this; }
    Builder &lineBytes(std::uint32_t bytes) { c_.lineBytes = bytes; return *this; }
    Builder &assoc(std::uint32_t ways) { c_.assoc = ways; return *this; }

    /** Enable an aux cache of @p lines (0 ways = fully associative). */
    Builder &auxLines(std::uint32_t lines, std::uint32_t ways = 0)
    {
        c_.auxLines = lines;
        c_.auxAssoc = ways;
        return *this;
    }

    /** Main-cache victims enter the aux cache (victim-cache mode). */
    Builder &victims(bool on = true) { c_.auxReceivesVictims = on; return *this; }

    /** Temporal bounce-back from the aux cache (Section 2.2). */
    Builder &bounceBack(bool on = true) { c_.bounceBack = on; return *this; }

    /** Virtual-line fills of @p bytes on spatially tagged misses. */
    Builder &virtualLines(std::uint32_t bytes)
    {
        c_.virtualLines = true;
        c_.virtualLineBytes = bytes;
        return *this;
    }

    Builder &noVirtualLines() { c_.virtualLines = false; return *this; }
    Builder &variableVirtualLines(bool on = true) { c_.variableVirtualLines = on; return *this; }
    Builder &virtualLineCoherenceCheck(bool on) { c_.virtualLineCoherenceCheck = on; return *this; }
    Builder &temporalBits(bool on = true) { c_.temporalBits = on; return *this; }
    Builder &resetTemporalBitOnBounce(bool on) { c_.resetTemporalBitOnBounce = on; return *this; }
    Builder &preferNonTemporalReplacement(bool on = true) { c_.preferNonTemporalReplacement = on; return *this; }
    Builder &bypass(BypassMode mode) { c_.bypass = mode; return *this; }

    /** Enable progressive prefetching through the aux cache. */
    Builder &prefetch(bool spatial_only = true)
    {
        c_.prefetch = true;
        c_.prefetchSpatialOnly = spatial_only;
        return *this;
    }

    Builder &maxPrefetchedInAux(std::uint32_t n) { c_.maxPrefetchedInAux = n; return *this; }
    Builder &prefetchDegree(std::uint32_t n) { c_.prefetchDegree = n; return *this; }
    Builder &timing(const sim::TimingParams &t) { c_.timing = t; return *this; }
    Builder &writeBufferEntries(std::uint32_t n) { c_.writeBufferEntries = n; return *this; }
    Builder &classifyMisses(bool on) { c_.classifyMisses = on; return *this; }

    /** Validate and return the finished configuration. */
    Config build() const
    {
        c_.validate();
        return c_;
    }

    /** The configuration as-is, without validation (tests only). */
    Config buildUnchecked() const { return c_; }

  private:
    Config c_;
};

inline Config::Builder
Config::builder()
{
    return Builder{};
}

/**
 * Named registry of the paper's cache organizations. Replaces the
 * hand-maintained config lists that used to be copied into every
 * bench: `presets().get("soft")` is the one source of truth, and
 * `--preset <name>` on any bench or example resolves through it.
 */
class PresetRegistry
{
  public:
    /** A named configuration factory. */
    struct Preset
    {
        std::string key;         //!< stable lookup key (CLI-friendly)
        std::string description; //!< one-line summary, for --help
        Config config;           //!< the prototype configuration
    };

    /** Look up a preset by key; fatal() listing the valid keys. */
    Config get(const std::string &key) const;

    /** Does @p key name a preset? */
    bool contains(const std::string &key) const;

    /** All preset keys, in registration (paper-figure) order. */
    std::vector<std::string> names() const;

    /** All presets, in registration order. */
    const std::vector<Preset> &all() const { return presets_; }

  private:
    friend const PresetRegistry &presets();
    PresetRegistry();

    std::vector<Preset> presets_;
};

/** The process-wide preset registry (built on first use). */
const PresetRegistry &presets();

// The one-line factory wrappers (standardConfig(), softConfig(), ...)
// are gone: every fixed paper configuration is a presets() lookup
// (core::presets().get("standard"), .get("soft"), ...). Only the
// derived variants below survive as functions — they compute a new
// configuration instead of naming a registered one.

/** Standard cache with a different physical line size (Fig 8b). */
Config standardWithLineSize(std::uint32_t line_bytes);

/** Soft. with a different virtual line size (Fig 8a). */
Config softWithVirtualLineSize(std::uint32_t virtual_line_bytes);

/** Scale a configuration to another cache size/line (Fig 9a). */
Config scaledConfig(Config base, std::uint64_t cache_bytes,
                    std::uint32_t line_bytes);

} // namespace core
} // namespace sac

#endif // SAC_CORE_CONFIG_HH
