/**
 * @file
 * Configuration of the software-assisted cache simulator. Every cache
 * organization evaluated in the paper — standard, bypass, victim,
 * bounce-back, virtual lines, set-associative software control,
 * prefetching — is a point in this configuration space; the named
 * factory functions construct the exact configurations of the
 * figures.
 */

#ifndef SAC_CORE_CONFIG_HH
#define SAC_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "src/sim/timing.hh"
#include "src/util/json.hh"

namespace sac {
namespace core {

/** Bypass policy for references without temporal locality (Fig 3a). */
enum class BypassMode
{
    /** No bypassing (default). */
    None,
    /**
     * Non-temporal references never allocate: only the requested
     * words travel, so spatial locality is lost entirely.
     */
    NonTemporal,
    /**
     * Non-temporal references fetch through a single-line bypass
     * buffer, recovering spatial locality within one uninterrupted
     * stream but thrashing on the interleaved accesses of real loop
     * nests.
     */
    NonTemporalBuffered,
};

/** Full description of one simulated cache organization. */
struct Config
{
    /** Display name used by benches and examples. */
    std::string name = "Stand.";

    // --- Main cache geometry -------------------------------------
    std::uint64_t cacheSizeBytes = 8 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;

    // --- Auxiliary cache (victim / bounce-back / prefetch buffer) -
    /** Number of aux lines; 0 disables the aux cache entirely. */
    std::uint32_t auxLines = 0;
    /**
     * Aux-cache associativity; 0 means fully associative. The paper
     * notes a 4-way bounce-back cache performs reasonably well.
     */
    std::uint32_t auxAssoc = 0;
    /** Victims of main-cache replacement enter the aux cache. */
    bool auxReceivesVictims = false;
    /**
     * Temporal bounce-back (Section 2.2): a line evicted from the aux
     * cache with its temporal bit set returns to the main cache
     * instead of being discarded.
     */
    bool bounceBack = false;

    // --- Spatial assistance (Section 2.1) -------------------------
    /** Fetch whole virtual lines on spatially tagged misses. */
    bool virtualLines = false;
    std::uint32_t virtualLineBytes = 64;
    /**
     * Variable-length virtual lines (paper Section 3.2 extension):
     * the fill spans 2^spatialLevel physical lines, capped by
     * virtualLineBytes.
     */
    bool variableVirtualLines = false;
    /**
     * Check residence of each physical line of the virtual block and
     * fetch only the absent ones (Section 2.1 coherence). Disabling
     * this is an ablation: the whole block is always fetched.
     */
    bool virtualLineCoherenceCheck = true;

    // --- Temporal assistance (Section 2.2) ------------------------
    /** Honor instruction temporal tags (sets per-line temporal bits). */
    bool temporalBits = false;
    /**
     * Reset a line's temporal bit when it bounces back (the paper's
     * "dynamic adjustment", Section 2.2). Disabling this is an
     * ablation: dead reusable data keeps bouncing.
     */
    bool resetTemporalBitOnBounce = true;
    /**
     * Cheaper set-associative software control (Fig 9b): LRU
     * replacement that prefers evicting non-temporal lines.
     */
    bool preferNonTemporalReplacement = false;

    // --- Bypassing (Fig 3a baselines) ------------------------------
    BypassMode bypass = BypassMode::None;

    // --- Prefetching (Section 4.4) ---------------------------------
    bool prefetch = false;
    /** Prefetch only on spatially tagged misses (software assist). */
    bool prefetchSpatialOnly = true;
    /** Maximum prefetched lines resident in the aux cache. */
    std::uint32_t maxPrefetchedInAux = 4;
    /**
     * Physical lines fetched per prefetch request. The paper keeps 1
     * (progressive prefetching) up to ~25-cycle latencies and
     * suggests larger distances beyond.
     */
    std::uint32_t prefetchDegree = 1;

    // --- Environment ----------------------------------------------
    sim::TimingParams timing;
    std::uint32_t writeBufferEntries = 8;
    /** Run the three-C classifier (adds simulation time). */
    bool classifyMisses = true;

    /** Number of physical lines in one virtual line. */
    std::uint32_t
    linesPerVirtualLine() const
    {
        return virtualLines ? virtualLineBytes / lineBytes : 1;
    }

    /**
     * Canonical serialization of every simulation-relevant field
     * (everything except the display name). Two configurations have
     * equal keys iff they simulate identically, so caches keyed on it
     * cannot alias two different setups that share a label.
     */
    std::string cacheKey() const;

    /**
     * Every field (including the display name and timing block) as a
     * JSON object, for run manifests. Field names mirror the struct.
     */
    util::Json toJson() const;

    /** Sanity-check the configuration; fatal() on invalid setups. */
    void validate() const;
};

/** The paper's Standard baseline: 8 KB, 32 B lines, direct-mapped. */
Config standardConfig();

/** Standard cache with a different physical line size (Fig 8b). */
Config standardConfig(std::uint32_t line_bytes);

/** Standard + victim cache of 8 lines (Fig 3b). */
Config victimConfig();

/** Full software assistance (Soft.): virtual lines + bounce-back. */
Config softConfig();

/** Software assistance for temporal locality only (Fig 6a/7). */
Config softTemporalOnlyConfig();

/** Software assistance for spatial locality only (Fig 6a/7). */
Config softSpatialOnlyConfig();

/** Soft. with a different virtual line size (Fig 8a). */
Config softConfig(std::uint32_t virtual_line_bytes);

/**
 * Soft. with variable-length virtual lines (Section 3.2 extension):
 * per-reference spatial levels choose 64..256-byte virtual lines.
 */
Config variableSoftConfig();

/** Bypassing of non-temporal references (Fig 3a). */
Config bypassConfig(bool through_buffer);

/** Plain 2-way set-associative cache (Fig 9b). */
Config twoWayConfig();

/** 2-way + victim cache (Fig 9b). */
Config twoWayVictimConfig();

/** Full software control on a 2-way cache (Fig 9b). */
Config softTwoWayConfig();

/** Simplified software control: 2-way, replacement priority only. */
Config simplifiedSoftTwoWayConfig();

/** Standard cache with hardware next-line prefetching (Fig 12). */
Config standardPrefetchConfig();

/** Soft. combined with software-assisted prefetching (Fig 12). */
Config softPrefetchConfig();

/** Scale a configuration to another cache size/line (Fig 9a). */
Config scaledConfig(Config base, std::uint64_t cache_bytes,
                    std::uint32_t line_bytes);

} // namespace core
} // namespace sac

#endif // SAC_CORE_CONFIG_HH
