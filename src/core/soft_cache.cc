#include "src/core/soft_cache.hh"

#include <algorithm>

#include "src/telemetry/set_profile.hh"
#include "src/trace/trace_source.hh"
#include "src/util/logging.hh"

namespace sac {
namespace core {

using telemetry::EventKind;

const char *
toString(FeatureSet fs)
{
    switch (fs) {
      case FeatureSet::Standard:
        return "standard";
      case FeatureSet::Victim:
        return "victim";
      case FeatureSet::Soft:
        return "soft";
      case FeatureSet::SoftPrefetch:
        return "soft-prefetch";
      case FeatureSet::General:
        return "general";
    }
    return "?";
}

FeatureSet
featureSetOf(const Config &cfg)
{
    // Bypassing interleaves with every other mechanism; leave it to
    // the general path rather than doubling the lattice.
    if (cfg.bypass != BypassMode::None)
        return FeatureSet::General;
    const bool aux = cfg.auxLines > 0;
    const bool virt = cfg.virtualLines;
    const bool pf = cfg.prefetch;
    if (!aux && !virt && !pf)
        return FeatureSet::Standard;
    if (aux && !virt && !pf)
        return FeatureSet::Victim;
    if (aux && virt && !pf)
        return FeatureSet::Soft;
    if (aux && virt && pf)
        return FeatureSet::SoftPrefetch;
    return FeatureSet::General;
}

template <bool Detail>
SoftwareAssistedCache::AccessFn
SoftwareAssistedCache::selectAccessFnImpl(FeatureSet fs)
{
    //                             MayAux MayVirtual MayPrefetch MayBypass
    switch (fs) {
      case FeatureSet::Standard:
        return &SoftwareAssistedCache::accessTmpl<Detail, false, false,
                                                  false, false>;
      case FeatureSet::Victim:
        return &SoftwareAssistedCache::accessTmpl<Detail, true, false,
                                                  false, false>;
      case FeatureSet::Soft:
        return &SoftwareAssistedCache::accessTmpl<Detail, true, true,
                                                  false, false>;
      case FeatureSet::SoftPrefetch:
        return &SoftwareAssistedCache::accessTmpl<Detail, true, true,
                                                  true, false>;
      case FeatureSet::General:
        break;
    }
    return &SoftwareAssistedCache::accessTmpl<Detail, true, true, true,
                                              true>;
}

SoftwareAssistedCache::AccessFn
SoftwareAssistedCache::selectAccessFn(FeatureSet fs, StatsMode mode)
{
    return mode == StatsMode::Detailed ? selectAccessFnImpl<true>(fs)
                                       : selectAccessFnImpl<false>(fs);
}

SoftwareAssistedCache::SoftwareAssistedCache(Config cfg,
                                             DispatchMode dispatch)
    : cfg_(std::move(cfg)),
      main_((cfg_.validate(), cfg_.cacheSizeBytes), cfg_.lineBytes,
            cfg_.assoc),
      writeBuffer_(cfg_.writeBufferEntries)
{
    if (cfg_.auxLines > 0) {
        const std::uint32_t aux_assoc =
            cfg_.auxAssoc == 0 ? cfg_.auxLines : cfg_.auxAssoc;
        aux_.emplace(static_cast<std::uint64_t>(cfg_.auxLines) *
                         cfg_.lineBytes,
                     cfg_.lineBytes, aux_assoc);
    }
    if (cfg_.classifyMisses) {
        classifier_.emplace(
            static_cast<std::uint32_t>(cfg_.cacheSizeBytes /
                                       cfg_.lineBytes),
            cfg_.lineBytes);
    }
    featureSet_ = dispatch == DispatchMode::General
                      ? FeatureSet::General
                      : featureSetOf(cfg_);
    accessFn_ = selectAccessFn(featureSet_, statsMode_);
}

void
SoftwareAssistedCache::setStatsMode(StatsMode m)
{
    if (m == statsMode_)
        return;
    statsMode_ = m;
    accessFn_ = selectAccessFn(featureSet_, statsMode_);
}

void
SoftwareAssistedCache::run(const trace::Trace &t)
{
    runBatch(t.data(), t.size());
    finish();
}

void
SoftwareAssistedCache::run(trace::TraceSource &src)
{
    std::vector<trace::Record> batch(trace::TraceSource::defaultChunkRecords);
    std::size_t n;
    while ((n = src.next(batch.data(), batch.size())) > 0)
        runBatch(batch.data(), n);
    finish();
}

template <bool Detail, bool MayAux, bool MayVirtual, bool MayPrefetch,
          bool MayBypass>
void
SoftwareAssistedCache::runBatchTmpl(const trace::Record *recs,
                                    std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        accessTmpl<Detail, MayAux, MayVirtual, MayPrefetch, MayBypass>(
            recs[i]);
#if SAC_AUDIT_ENABLED
        if constexpr (Detail) {
            if (auditor_)
                auditor_->afterAccess(*this, recs[i]);
        }
#endif
#if SAC_INTERVAL_ENABLED
        if constexpr (Detail) {
            if (interval_)
                interval_->afterAccess(stats_,
                                       writeBuffer_.occupancy());
        }
#endif
    }
}

template <bool Detail>
void
SoftwareAssistedCache::runBatchDispatch(const trace::Record *recs,
                                        std::size_t n)
{
    switch (featureSet_) {
      case FeatureSet::Standard:
        runBatchTmpl<Detail, false, false, false, false>(recs, n);
        return;
      case FeatureSet::Victim:
        runBatchTmpl<Detail, true, false, false, false>(recs, n);
        return;
      case FeatureSet::Soft:
        runBatchTmpl<Detail, true, true, false, false>(recs, n);
        return;
      case FeatureSet::SoftPrefetch:
        runBatchTmpl<Detail, true, true, true, false>(recs, n);
        return;
      case FeatureSet::General:
        break;
    }
    runBatchTmpl<Detail, true, true, true, true>(recs, n);
}

void
SoftwareAssistedCache::runBatch(const trace::Record *recs,
                                std::size_t n)
{
    if (statsMode_ == StatsMode::Detailed)
        runBatchDispatch<true>(recs, n);
    else
        runBatchDispatch<false>(recs, n);
}

template <bool Detail, bool MayAux, bool MayVirtual, bool MayPrefetch,
          bool MayBypass>
void
SoftwareAssistedCache::accessTmpl(const trace::Record &rec)
{
    SAC_ASSERT(!finished_, "access() after finish()");
    // Blocking processor: the reference issues rec.delta cycles of
    // instruction work after the previous access completed (the
    // completing cycle overlaps the first work cycle).
    now_ = procReadyAt_ + rec.delta - 1;
    if constexpr (Detail) {
        ++stats_.accesses;
        if (rec.isRead())
            ++stats_.reads;
        else
            ++stats_.writes;
        SAC_TRACE_EVENT(tracer_, EventKind::Access, now_, rec.addr,
                        rec.isWrite());
    }

    Cycle start = std::max(now_, cacheFreeAt_);
    const Addr line = main_.lineAddrOf(rec.addr);

#if SAC_INTERVAL_ENABLED
    if constexpr (Detail) {
        if (setProfiler_)
            setProfiler_->onAccess(main_.setIndexOf(line));
    }
#endif

    // Land a pending prefetch that has arrived; if this very access
    // wants the in-flight line, stall until it lands. pending_.valid
    // is only ever set by issuePrefetch, which requires cfg_.prefetch.
    if constexpr (MayPrefetch) {
        if (pending_.valid) {
            if (pending_.readyAt <= start) {
                installPendingPrefetch<Detail>();
            } else if (aux_ && pending_.line <= line &&
                       line < pending_.line + pending_.count) {
                start = pending_.readyAt;
                installPendingPrefetch<Detail>();
            }
        }
    }

    // 1. Main cache lookup.
    if (const auto way = main_.findWay(line)) {
        handleMainHit<Detail>(rec, *way, start);
        return;
    }

    // 2. Bypassing of non-temporal references (Fig 3a baselines).
    if constexpr (MayBypass) {
        if (cfg_.bypass != BypassMode::None && !rec.temporal) {
            handleBypass<Detail>(rec, start);
            return;
        }
    }

    // 3. Aux (bounce-back / victim / prefetch buffer) lookup.
    if constexpr (MayAux) {
        if (aux_) {
            if (const auto way = aux_->findWay(line)) {
                handleAuxHit<Detail, MayPrefetch>(rec, *way, start);
                return;
            }
        }
    }

    // 4. Demand miss.
    handleMiss<Detail, MayAux, MayVirtual, MayPrefetch>(rec, start);
}

template <bool Detail>
void
SoftwareAssistedCache::handleMainHit(const trace::Record &rec,
                                     std::uint32_t way, Cycle start)
{
    const std::uint32_t set = main_.setIndexOf(main_.lineAddrOf(rec.addr));
    cache::CacheArray::LineRef l = main_.line(set, way);
    main_.touch(set, way);
    if (rec.isWrite())
        l.setDirty();
    applyTemporalTag(l, rec.temporal, cfg_.temporalBits);
    l.setPrefetched(false);
    if constexpr (Detail) {
        ++stats_.mainHits;
        SAC_TRACE_EVENT(tracer_, EventKind::MainHit, start, rec.addr, 0);
        classify(rec.addr, false);
    }
    const Cycle completion = start + cfg_.timing.mainHitTime;
    complete<Detail>(completion, completion);
}

template <bool Detail, bool MayPrefetch>
void
SoftwareAssistedCache::handleAuxHit(const trace::Record &rec,
                                    std::uint32_t way, Cycle start)
{
    SAC_ASSERT(aux_, "aux hit without an aux cache");
    const Addr line = main_.lineAddrOf(rec.addr);
    const std::uint32_t aux_set = aux_->setIndexOf(line);
    cache::CacheArray::LineRef a = aux_->line(aux_set, way);
    // The prefetched bit is only ever set while installing a prefetch,
    // which requires cfg_.prefetch: compile the check out otherwise.
    const bool was_prefetched = MayPrefetch && a.prefetched();

    if constexpr (Detail) {
        ++stats_.auxHits;
        ++stats_.swaps;
        SAC_TRACE_EVENT(tracer_, EventKind::AuxHit, start, rec.addr,
                        was_prefetched);
        SAC_TRACE_EVENT(tracer_, EventKind::Swap, start, rec.addr, 0);
        if (was_prefetched) {
            ++stats_.auxPrefetchHits;
            ++stats_.prefetchesUseful;
        }
        classify(rec.addr, false);
    }

    // Swap with the resident main-cache line: the aux line moves to
    // its home set; the displaced main line takes the vacated aux
    // slot (no aux eviction happens on a swap).
    const std::uint32_t set = main_.setIndexOf(line);
    const std::uint32_t mway = main_.victimWay(set, mainPolicy());
    cache::CacheArray::LineRef m = main_.line(set, mway);
    const cache::LineState displaced = m.state();

    m.assign(a.state());
    m.setPrefetched(false);
    if (rec.isWrite())
        m.setDirty();
    applyTemporalTag(m, rec.temporal, cfg_.temporalBits);
    main_.touch(set, mway);

    if (displaced.valid &&
        aux_->setIndexOf(displaced.lineAddr) == aux_set) {
        a.assign(displaced);
        aux_->touch(aux_set, way);
    } else {
        // The displaced line cannot live in this aux set (only
        // possible with a set-associative aux cache): discard it.
        if (displaced.valid && displaced.dirty) {
            Cycle hidden = 0;
            pushWriteback<Detail>(cfg_.lineBytes, hidden);
        }
        a.clear();
    }

    const Cycle completion = start + cfg_.timing.auxHitTime;
    Cycle lock = completion + cfg_.timing.swapLockCycles;
    if constexpr (MayPrefetch) {
        if (was_prefetched) {
            // After the swap the main cache stays stalled one extra
            // cycle to check for the next prefetched line's presence.
            lock += cfg_.timing.prefetchHitExtraStall;
            issuePrefetch<Detail>(line + 1);
        }
    }
    complete<Detail>(completion, lock);
}

template <bool Detail>
void
SoftwareAssistedCache::handleBypass(const trace::Record &rec, Cycle start)
{
    const Addr line = main_.lineAddrOf(rec.addr);
    const bool buffer_hit =
        cfg_.bypass == BypassMode::NonTemporalBuffered && rec.isRead() &&
        bypassBufferValid_ && bypassBufferLine_ == line;
    if constexpr (Detail) {
        SAC_TRACE_EVENT(tracer_, EventKind::Bypass, start, rec.addr,
                        buffer_hit);
        classify(rec.addr, !buffer_hit);
    }

    if (rec.isWrite()) {
        // Non-allocating write: write-through via the write buffer.
        Cycle transfer_cost = 0;
        pushWriteback<Detail>(rec.size, transfer_cost);
        if constexpr (Detail)
            ++stats_.bypasses;
        const Cycle completion =
            start + cfg_.timing.mainHitTime + transfer_cost;
        complete<Detail>(completion, completion);
        return;
    }

    if (buffer_hit) {
        if constexpr (Detail)
            ++stats_.bypassBufferHits;
        const Cycle completion = start + cfg_.timing.mainHitTime;
        complete<Detail>(completion, completion);
        return;
    }

    if constexpr (Detail)
        ++stats_.bypasses;
    const Cycle request_sent = start + cfg_.timing.mainHitTime;
    const Cycle mem_start = std::max(request_sent, busFreeAt_);
    const std::uint64_t bytes =
        cfg_.bypass == BypassMode::NonTemporalBuffered ? cfg_.lineBytes
                                                       : rec.size;
    const Cycle data_done = mem_start + cfg_.timing.memoryLatency +
                            cfg_.timing.transferCycles(bytes);
    busFreeAt_ = data_done;
    if constexpr (Detail)
        stats_.bytesFetched += bytes;
    if (cfg_.bypass == BypassMode::NonTemporalBuffered) {
        if constexpr (Detail)
            ++stats_.linesFetched;
        bypassBufferLine_ = line;
        bypassBufferValid_ = true;
    }
    complete<Detail>(data_done, data_done);
}

template <bool Detail, bool MayAux, bool MayVirtual, bool MayPrefetch>
void
SoftwareAssistedCache::handleMiss(const trace::Record &rec, Cycle start)
{
    const Addr line = main_.lineAddrOf(rec.addr);
    if constexpr (Detail) {
        ++stats_.misses;
        classify(rec.addr, true);
#if SAC_INTERVAL_ENABLED
        if (setProfiler_)
            setProfiler_->onMiss(main_.setIndexOf(line));
#endif
    }

    // Which physical lines must be fetched? For a spatially tagged
    // miss with virtual lines enabled, the whole aligned virtual
    // block, skipping lines already resident (the pipelined, hidden
    // coherence check of Section 2.1). The scratch vector is a member
    // so the hot path allocates only on the first miss.
    std::vector<Addr> &fetch_lines = fetchScratch_;
    fetch_lines.clear();
    if (MayVirtual && cfg_.virtualLines && rec.spatial) {
        std::uint32_t n = cfg_.linesPerVirtualLine();
        if (cfg_.variableVirtualLines) {
            // Section 3.2 extension: the virtual line spans
            // 2^spatialLevel physical lines, capped by the config.
            const std::uint32_t wanted =
                1u << std::min<std::uint32_t>(rec.spatialLevel, 8);
            n = std::min(n, wanted);
        }
        const Addr block = line & ~static_cast<Addr>(n - 1);
        for (Addr l = block; l < block + n; ++l) {
            if (cfg_.virtualLineCoherenceCheck && main_.contains(l) &&
                l != line) {
                continue;
            }
            fetch_lines.push_back(l);
        }
    } else {
        fetch_lines.push_back(line);
    }
    SAC_ASSERT(!fetch_lines.empty() &&
                   std::find(fetch_lines.begin(), fetch_lines.end(),
                             line) != fetch_lines.end(),
               "the missed line must be fetched");

    const auto n_fetched = static_cast<std::uint32_t>(fetch_lines.size());
    const Cycle request_sent = start + cfg_.timing.mainHitTime;
    const Cycle mem_start = std::max(request_sent, busFreeAt_);
    const Cycle data_done =
        mem_start + cfg_.timing.missPenalty(n_fetched, cfg_.lineBytes);
    busFreeAt_ = data_done;

    if constexpr (Detail) {
        stats_.linesFetched += n_fetched;
        stats_.bytesFetched +=
            static_cast<std::uint64_t>(n_fetched) * cfg_.lineBytes;
        stats_.extraLinesFetched += n_fetched - 1;
        if (n_fetched > 1)
            ++stats_.virtualLineFills;
        SAC_TRACE_EVENT(tracer_, EventKind::Miss, start, rec.addr,
                        n_fetched);
    }

    // Install the fetched lines; victim transfers and bounce-backs
    // proceed while the miss is outstanding and only lengthen the
    // stall when they exceed the hidden budget.
    Cycle transfer_cost = 0;
    std::vector<FillTarget> &fill_targets = fillScratch_;
    fill_targets.clear();
    for (const Addr l : fetch_lines) {
        // Intra-fill checks only apply when the miss fetches more
        // than one line, which requires a virtual-line fill.
        if constexpr (MayVirtual) {
            // Bounce-back cache coherence (Section 2.2): if another
            // line of the virtual block already sits in the aux
            // cache, the fetch cannot be aborted; its main-cache
            // slot is simply not filled (tagged invalid).
            if (MayAux && l != line && aux_ && aux_->contains(l)) {
                if constexpr (Detail)
                    ++stats_.coherenceInvalidations;
                continue;
            }
            // A bounce-back triggered by an earlier fill of this
            // very miss can have re-installed a pending line
            // already; filling it again would duplicate it.
            if (l != line && main_.contains(l))
                continue;
        }
        if constexpr (Detail) {
            SAC_TRACE_EVENT(tracer_, EventKind::Fill, start,
                            l * cfg_.lineBytes, l == line);
        }
        const FillTarget target =
            insertIntoMain<Detail>(l, transfer_cost, fill_targets);
        if (l == line) {
            cache::CacheArray::LineRef m =
                main_.line(target.set, target.way);
            if (rec.isWrite())
                m.setDirty();
            applyTemporalTag(m, rec.temporal, cfg_.temporalBits);
        }
    }

    const Cycle hidden_budget = data_done - request_sent;
    const Cycle extra =
        transfer_cost > hidden_budget ? transfer_cost - hidden_budget : 0;
    const Cycle completion = data_done + extra;

    drainWriteBuffer<Detail>();
    complete<Detail>(completion, completion);

    // Software-assisted progressive prefetching (Section 4.4): fetch
    // the physical line following the (virtual) block as well.
    if constexpr (MayPrefetch) {
        if (cfg_.prefetch &&
            (!cfg_.prefetchSpatialOnly || rec.spatial)) {
            Addr last = line;
            for (const Addr l : fetch_lines)
                last = std::max(last, l);
            issuePrefetch<Detail>(last + 1);
        }
    }
}

template <bool Detail>
SoftwareAssistedCache::FillTarget
SoftwareAssistedCache::insertIntoMain(
    Addr line_addr, Cycle &transfer_cost,
    std::vector<FillTarget> &fill_targets)
{
    const std::uint32_t set = main_.setIndexOf(line_addr);
    const std::uint32_t way = main_.victimWay(set, mainPolicy());

    // Second-chance aging for the replacement-priority scheme: a
    // temporal line that was skipped in favor of a younger
    // non-temporal victim consumes its protection, so dead reusable
    // data cannot pin a way forever (the set-associative analogue of
    // the bounce-back bit reset).
    if (cfg_.preferNonTemporalReplacement) {
        const std::uint64_t chosen = main_.line(set, way).lruStamp();
        for (std::uint32_t w = 0; w < main_.assoc(); ++w) {
            cache::CacheArray::LineRef l = main_.line(set, w);
            if (w != way && l.valid() && l.temporal() &&
                l.lruStamp() < chosen) {
                l.setTemporal(false);
            }
        }
    }

    cache::CacheArray::LineRef slot = main_.line(set, way);
    const cache::LineState victim = slot.state();

    // Register the slot before handling the victim, so a bounce-back
    // triggered by this very fill sees it as a miss target.
    fill_targets.push_back({set, way});

    cache::LineState fresh;
    fresh.lineAddr = line_addr;
    fresh.valid = true;
    slot.assign(fresh);
    main_.touch(set, way);

    if (victim.valid) {
        if constexpr (Detail) {
            SAC_TRACE_EVENT(tracer_, EventKind::Evict, now_,
                            victim.lineAddr * cfg_.lineBytes,
                            victim.dirty);
#if SAC_INTERVAL_ENABLED
            if (setProfiler_)
                setProfiler_->onEviction(set);
#endif
        }
        if (aux_ && cfg_.auxReceivesVictims) {
            victimToAux<Detail>(victim, transfer_cost, fill_targets);
        } else if (victim.dirty) {
            pushWriteback<Detail>(cfg_.lineBytes, transfer_cost);
            transfer_cost += cfg_.timing.dirtyTransferCycles;
        }
    }
    return {set, way};
}

template <bool Detail>
void
SoftwareAssistedCache::victimToAux(
    const cache::LineState &victim, Cycle &transfer_cost,
    const std::vector<FillTarget> &fill_targets)
{
    SAC_ASSERT(aux_, "victimToAux without an aux cache");
    transfer_cost += cfg_.timing.dirtyTransferCycles;

    const cache::LineState aux_victim =
        aux_->insert(victim.lineAddr, cache::ReplacementPolicy::Lru);
    auto slot = aux_->find(victim.lineAddr);
    SAC_ASSERT(slot.has_value(), "freshly inserted aux line vanished");
    slot->setDirty(victim.dirty);
    slot->setTemporal(victim.temporal);

    if (!aux_victim.valid)
        return;

    if (cfg_.bounceBack && aux_victim.temporal) {
        bounceBack<Detail>(aux_victim, transfer_cost, fill_targets);
    } else if (aux_victim.dirty) {
        pushWriteback<Detail>(cfg_.lineBytes, transfer_cost);
    }
}

template <bool Detail>
void
SoftwareAssistedCache::bounceBack(
    const cache::LineState &victim, Cycle &transfer_cost,
    const std::vector<FillTarget> &fill_targets)
{
    const std::uint32_t set = main_.setIndexOf(victim.lineAddr);
    const std::uint32_t way =
        main_.victimWay(set, cache::ReplacementPolicy::Lru);

    // A bounce aimed at a slot the in-flight miss fills would be
    // overwritten anyway: cancel it so no ping-pong can occur.
    for (const auto &t : fill_targets) {
        if (t.set == set && t.way == way) {
            if constexpr (Detail) {
                ++stats_.bouncesCancelled;
                SAC_TRACE_EVENT(tracer_, EventKind::BounceCancelled,
                                now_, victim.lineAddr * cfg_.lineBytes,
                                0);
            }
            if (victim.dirty)
                pushWriteback<Detail>(cfg_.lineBytes, transfer_cost);
            return;
        }
    }

    cache::CacheArray::LineRef resident = main_.line(set, way);
    if (resident.valid() && resident.dirty() && writeBuffer_.full()) {
        // Bouncing onto a dirty line with a full write buffer is
        // aborted (Section 2.2); the victim still needs writing back.
        if constexpr (Detail) {
            ++stats_.bouncesAborted;
            SAC_TRACE_EVENT(tracer_, EventKind::BounceAborted, now_,
                            victim.lineAddr * cfg_.lineBytes, 0);
        }
        if (victim.dirty)
            pushWriteback<Detail>(cfg_.lineBytes, transfer_cost);
        return;
    }

    if (resident.valid() && resident.dirty())
        pushWriteback<Detail>(cfg_.lineBytes, transfer_cost);

#if SAC_INTERVAL_ENABLED
    if constexpr (Detail) {
        // The bounce displaces whatever the chosen way held: an
        // eviction from the profiler's point of view.
        if (setProfiler_ && resident.valid())
            setProfiler_->onEviction(set);
    }
#endif
    resident.assign(victim);
    // The "dynamic adjustment" of Section 2.2: the bit must be set
    // again by a tagged reference before the line may bounce again.
    if (cfg_.resetTemporalBitOnBounce)
        resident.setTemporal(false);
    resident.setPrefetched(false);
    main_.touch(set, way);
    transfer_cost += cfg_.timing.dirtyTransferCycles;
    if constexpr (Detail) {
        ++stats_.bounces;
        SAC_TRACE_EVENT(tracer_, EventKind::Bounce, now_,
                        victim.lineAddr * cfg_.lineBytes, 0);
    }
}

template <bool Detail>
void
SoftwareAssistedCache::pushWriteback(std::uint32_t bytes,
                                     Cycle &transfer_cost)
{
    if (writeBuffer_.full()) {
        // Forced drain on the critical path. The buffer's own stall
        // counter advances in both fidelities (it is object state the
        // warming differential compares); only the RunStats mirror is
        // fidelity-gated.
        writeBuffer_.noteFullStall();
        if constexpr (Detail)
            ++stats_.writeBufferFullStalls;
        const std::uint32_t drained = writeBuffer_.pop();
        if constexpr (Detail)
            stats_.bytesWrittenBack += drained;
        transfer_cost += cfg_.timing.transferCycles(drained);
        busFreeAt_ += cfg_.timing.transferCycles(drained);
    }
    writeBuffer_.push(bytes);
    if constexpr (Detail) {
        SAC_TRACE_EVENT(tracer_, EventKind::Writeback, now_, 0, bytes);
    }
}

template <bool Detail>
void
SoftwareAssistedCache::drainWriteBuffer()
{
    while (writeBuffer_.occupancy() > 0) {
        const std::uint32_t bytes = writeBuffer_.pop();
        if constexpr (Detail)
            stats_.bytesWrittenBack += bytes;
        busFreeAt_ += cfg_.timing.transferCycles(bytes);
    }
}

template <bool Detail>
void
SoftwareAssistedCache::issuePrefetch(Addr pf_line)
{
    if (!cfg_.prefetch || !aux_)
        return;
    const std::uint32_t degree = cfg_.prefetchDegree;

    // Software instrumentation makes prefetch-on-miss unnecessary:
    // skip requests whose lines are all already around.
    bool all_resident = true;
    for (Addr l = pf_line; l < pf_line + degree; ++l) {
        if (!main_.contains(l) && !aux_->contains(l) &&
            !(pending_.valid && pending_.line <= l &&
              l < pending_.line + pending_.count)) {
            all_resident = false;
            break;
        }
    }
    if (all_resident) {
        if constexpr (Detail)
            ++stats_.prefetchesAvoided;
        return;
    }

    if (pending_.valid) {
        // Only one progressive prefetch is outstanding; land the old
        // one now if it has arrived, otherwise drop it.
        if (pending_.readyAt <= busFreeAt_)
            installPendingPrefetch<Detail>();
        else
            pending_.valid = false;
    }
    pending_.line = pf_line;
    pending_.count = degree;
    pending_.readyAt =
        busFreeAt_ + cfg_.timing.memoryLatency +
        cfg_.timing.transferCycles(
            static_cast<std::uint64_t>(degree) * cfg_.lineBytes);
    pending_.valid = true;
    busFreeAt_ = pending_.readyAt;
    if constexpr (Detail) {
        ++stats_.prefetchesIssued;
        SAC_TRACE_EVENT(tracer_, EventKind::Prefetch, now_,
                        pf_line * cfg_.lineBytes, degree);
        stats_.bytesFetched +=
            static_cast<std::uint64_t>(degree) * cfg_.lineBytes;
        stats_.linesFetched += degree;
    }
}

template <bool Detail>
void
SoftwareAssistedCache::installPendingPrefetch()
{
    SAC_ASSERT(pending_.valid, "no pending prefetch to install");
    pending_.valid = false;
    if (!aux_)
        return;

    for (Addr l = pending_.line; l < pending_.line + pending_.count;
         ++l) {
        if (main_.contains(l) || aux_->contains(l))
            continue;

        // Resident prefetched lines enforce the limit: once it is
        // reached, a prefetched line preferably replaces another
        // prefetched line (Section 4.4). The array maintains the
        // count incrementally, so no rescan per install.
        const auto policy =
            aux_->prefetchedCount() >= cfg_.maxPrefetchedInAux
                ? cache::ReplacementPolicy::LruPreferPrefetched
                : cache::ReplacementPolicy::Lru;

        const cache::LineState aux_victim = aux_->insert(l, policy);
        auto slot = aux_->find(l);
        SAC_ASSERT(slot.has_value(),
                   "freshly installed prefetch line vanished");
        slot->setPrefetched(true);
        if constexpr (Detail) {
            SAC_TRACE_EVENT(tracer_, EventKind::PrefetchInstall, now_,
                            l * cfg_.lineBytes, 0);
        }

        if (aux_victim.valid) {
            Cycle hidden = 0; // off the critical path
            if (cfg_.bounceBack && aux_victim.temporal)
                bounceBack<Detail>(aux_victim, hidden, {});
            else if (aux_victim.dirty)
                pushWriteback<Detail>(cfg_.lineBytes, hidden);
        }
    }
}

void
SoftwareAssistedCache::classify(Addr addr, bool was_miss)
{
    if (!classifier_)
        return;
    const auto cls = classifier_->access(addr, was_miss);
    if (!cls)
        return; // hit: the shadow LRU was updated, nothing to count
    switch (*cls) {
      case sim::MissClass::Compulsory:
        ++stats_.compulsoryMisses;
        break;
      case sim::MissClass::Capacity:
        ++stats_.capacityMisses;
        break;
      case sim::MissClass::Conflict:
        ++stats_.conflictMisses;
#if SAC_INTERVAL_ENABLED
        if (setProfiler_) {
            setProfiler_->onConflict(
                main_.setIndexOf(main_.lineAddrOf(addr)));
        }
#endif
        break;
    }
}

void
SoftwareAssistedCache::applyTemporalTag(cache::CacheArray::LineRef line,
                                        bool tagged,
                                        bool temporal_bits_enabled)
{
    // The temporal bit is only ever set by a tagged reference; an
    // untagged reference leaves it unchanged (Section 2.2).
    if (temporal_bits_enabled && tagged)
        line.setTemporal(true);
}

template <bool Detail>
void
SoftwareAssistedCache::complete(Cycle completion, Cycle lock_until)
{
    procReadyAt_ = completion;
    cacheFreeAt_ = std::max(cacheFreeAt_, lock_until);
    if constexpr (Detail) {
        stats_.totalAccessCycles +=
            static_cast<double>(completion - now_);
        stats_.completionCycle =
            std::max(stats_.completionCycle, completion);
    }
}

cache::ReplacementPolicy
SoftwareAssistedCache::mainPolicy() const
{
    return cfg_.preferNonTemporalReplacement
               ? cache::ReplacementPolicy::LruPreferNonTemporal
               : cache::ReplacementPolicy::Lru;
}

void
SoftwareAssistedCache::finish()
{
    if (finished_)
        return;
    drainWriteBuffer<true>();
    stats_.writeBufferFullStalls = writeBuffer_.fullStalls();
    finished_ = true;
#if SAC_INTERVAL_ENABLED
    if (interval_ && statsMode_ == StatsMode::Detailed)
        interval_->finish(stats_, writeBuffer_.occupancy());
#endif
}

sim::ArchState
SoftwareAssistedCache::exportState() const
{
    sim::ArchState s;
    s.mainLines = main_.snapshotLines();
    s.mainLruClock = main_.lruClock();
    s.hasAux = aux_.has_value();
    if (aux_) {
        s.auxLines = aux_->snapshotLines();
        s.auxLruClock = aux_->lruClock();
    }
    s.writeBuffer = writeBuffer_.snapshot();
    s.now = now_;
    s.procReadyAt = procReadyAt_;
    s.cacheFreeAt = cacheFreeAt_;
    s.busFreeAt = busFreeAt_;
    s.bypassBufferLine = bypassBufferLine_;
    s.bypassBufferValid = bypassBufferValid_;
    s.prefetchLine = pending_.line;
    s.prefetchCount = pending_.count;
    s.prefetchReadyAt = pending_.readyAt;
    s.prefetchValid = pending_.valid;
    return s;
}

void
SoftwareAssistedCache::importState(const sim::ArchState &s)
{
    SAC_ASSERT(s.hasAux == aux_.has_value(),
               "live-point aux presence does not match the config");
    main_.restoreLines(s.mainLines, s.mainLruClock);
    if (aux_)
        aux_->restoreLines(s.auxLines, s.auxLruClock);
    writeBuffer_.restore(s.writeBuffer);
    now_ = s.now;
    procReadyAt_ = s.procReadyAt;
    cacheFreeAt_ = s.cacheFreeAt;
    busFreeAt_ = s.busFreeAt;
    bypassBufferLine_ = s.bypassBufferLine;
    bypassBufferValid_ = s.bypassBufferValid;
    pending_.line = s.prefetchLine;
    pending_.count = s.prefetchCount;
    pending_.readyAt = s.prefetchReadyAt;
    pending_.valid = s.prefetchValid;
    finished_ = false;
}

bool
SoftwareAssistedCache::mainContains(Addr addr) const
{
    return main_.contains(main_.lineAddrOf(addr));
}

bool
SoftwareAssistedCache::auxContains(Addr addr) const
{
    return aux_ && aux_->contains(main_.lineAddrOf(addr));
}

bool
SoftwareAssistedCache::mainTemporalBit(Addr addr) const
{
    const auto line = main_.lineAddrOf(addr);
    const auto way = main_.findWay(line);
    if (!way)
        return false;
    return main_.line(main_.setIndexOf(line), *way).temporal;
}

bool
SoftwareAssistedCache::auxTemporalBit(Addr addr) const
{
    if (!aux_)
        return false;
    const auto line = main_.lineAddrOf(addr);
    const auto way = aux_->findWay(line);
    if (!way)
        return false;
    return aux_->line(aux_->setIndexOf(line), *way).temporal;
}

sim::RunStats
simulateTrace(const trace::Trace &t, const Config &cfg,
              DispatchMode dispatch)
{
    SoftwareAssistedCache sim(cfg, dispatch);
    sim.run(t);
    return sim.stats();
}

sim::RunStats
simulateSource(trace::TraceSource &src, const Config &cfg,
               DispatchMode dispatch)
{
    SoftwareAssistedCache sim(cfg, dispatch);
    sim.run(src);
    return sim.stats();
}

} // namespace core
} // namespace sac
