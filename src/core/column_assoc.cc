#include "src/core/column_assoc.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace sac {
namespace core {

ColumnAssocCache::ColumnAssocCache(ColumnAssocConfig cfg)
    : cfg_(std::move(cfg)),
      main_(cfg_.cacheSizeBytes, cfg_.lineBytes, 1),
      writeBuffer_(cfg_.writeBufferEntries)
{
    SAC_ASSERT(main_.numSets() >= 2,
               "column associativity needs at least two sets");
    rehash_.assign(main_.numSets(), false);
    if (cfg_.classifyMisses) {
        classifier_.emplace(
            static_cast<std::uint32_t>(cfg_.cacheSizeBytes /
                                       cfg_.lineBytes),
            cfg_.lineBytes);
    }
}

std::uint32_t
ColumnAssocCache::primarySet(Addr line) const
{
    return static_cast<std::uint32_t>(line & (main_.numSets() - 1));
}

std::uint32_t
ColumnAssocCache::alternateSet(Addr line) const
{
    // Flip the most significant index bit (the b-th bit selects the
    // "column").
    return primarySet(line) ^ (main_.numSets() / 2);
}

void
ColumnAssocCache::run(const trace::Trace &t)
{
    for (const auto &rec : t)
        access(rec);
    finish();
}

void
ColumnAssocCache::access(const trace::Record &rec)
{
    SAC_ASSERT(!finished_, "access() after finish()");
    now_ = procReadyAt_ + rec.delta - 1;
    ++stats_.accesses;
    if (rec.isRead())
        ++stats_.reads;
    else
        ++stats_.writes;

    const Cycle start = std::max(now_, cacheFreeAt_);
    const Addr line = main_.lineAddrOf(rec.addr);
    const std::uint32_t sp = primarySet(line);
    const std::uint32_t sa = alternateSet(line);

    cache::CacheArray::LineRef p = main_.line(sp, 0);
    cache::CacheArray::LineRef a = main_.line(sa, 0);

    // First probe: the primary set.
    if (p.valid() && p.lineAddr() == line) {
        if (rec.isWrite())
            p.setDirty();
        ++stats_.mainHits;
        if (classifier_)
            classifier_->access(rec.addr, false);
        completeAccess(start + cfg_.timing.mainHitTime);
        return;
    }

    // If the primary resident is itself a rehashed alias, the second
    // probe is skipped and the alias is replaced in place — the
    // rehash bit is what stops demotion cascades from polluting
    // other sets (Agarwal & Pudar's key refinement).
    const bool primary_is_alias = p.valid() && rehash_[sp];

    // Second probe: the alternate set; a hit swaps the lines so the
    // hot one is found first next time.
    if (!primary_is_alias && a.valid() && a.lineAddr() == line &&
        rehash_[sa]) {
        const cache::LineState was_primary = p.state();
        p.assign(a.state());
        a.assign(was_primary);
        rehash_[sp] = false;
        rehash_[sa] = a.valid();
        if (rec.isWrite())
            p.setDirty();
        ++stats_.auxHits;
        ++stats_.swaps;
        if (classifier_)
            classifier_->access(rec.addr, false);
        const Cycle completion =
            start + cfg_.timing.mainHitTime + cfg_.rehashProbeCycles;
        // The swap holds the array one extra cycle.
        stats_.totalAccessCycles +=
            static_cast<double>(completion - now_);
        procReadyAt_ = completion;
        cacheFreeAt_ = std::max(cacheFreeAt_, completion + 1);
        stats_.completionCycle =
            std::max(stats_.completionCycle, completion);
        return;
    }

    // Miss: the primary resident retreats to the alternate set
    // (clobbering its occupant), the new line fills the primary set.
    ++stats_.misses;
    if (classifier_) {
        switch (classifier_->access(rec.addr, true).value()) {
          case sim::MissClass::Compulsory:
            ++stats_.compulsoryMisses;
            break;
          case sim::MissClass::Capacity:
            ++stats_.capacityMisses;
            break;
          case sim::MissClass::Conflict:
            ++stats_.conflictMisses;
            break;
        }
    }

    // The second probe is skipped when the rehash bit already says
    // the primary resident is an alias, so such misses start early.
    const Cycle request_sent =
        start + cfg_.timing.mainHitTime +
        (primary_is_alias ? 0 : cfg_.rehashProbeCycles);
    const Cycle mem_start = std::max(request_sent, busFreeAt_);
    const Cycle data_done =
        mem_start + cfg_.timing.missPenalty(1, cfg_.lineBytes);
    busFreeAt_ = data_done;
    ++stats_.linesFetched;
    stats_.bytesFetched += cfg_.lineBytes;

    if (primary_is_alias) {
        // Replace the alias in place; the alternate set is untouched.
        evictSlot(p);
    } else {
        evictSlot(a);
        if (p.valid()) {
            a.assign(p.state()); // demote the primary resident
            rehash_[sa] = true;
        }
    }
    cache::LineState fresh;
    fresh.lineAddr = line;
    fresh.valid = true;
    fresh.dirty = rec.isWrite();
    p.assign(fresh);
    rehash_[sp] = false;

    while (writeBuffer_.occupancy() > 0) {
        const auto bytes = writeBuffer_.pop();
        stats_.bytesWrittenBack += bytes;
        busFreeAt_ += cfg_.timing.transferCycles(bytes);
    }
    completeAccess(data_done);
}

void
ColumnAssocCache::evictSlot(cache::CacheArray::LineRef slot)
{
    if (!slot.valid())
        return;
    if (slot.dirty()) {
        if (writeBuffer_.full()) {
            writeBuffer_.noteFullStall();
            ++stats_.writeBufferFullStalls;
            const auto bytes = writeBuffer_.pop();
            stats_.bytesWrittenBack += bytes;
            busFreeAt_ += cfg_.timing.transferCycles(bytes);
        }
        writeBuffer_.push(cfg_.lineBytes);
    }
    slot.clear();
}

void
ColumnAssocCache::completeAccess(Cycle completion)
{
    stats_.totalAccessCycles += static_cast<double>(completion - now_);
    procReadyAt_ = completion;
    cacheFreeAt_ = std::max(cacheFreeAt_, completion);
    stats_.completionCycle =
        std::max(stats_.completionCycle, completion);
}

void
ColumnAssocCache::finish()
{
    if (finished_)
        return;
    while (writeBuffer_.occupancy() > 0)
        stats_.bytesWrittenBack += writeBuffer_.pop();
    finished_ = true;
}

bool
ColumnAssocCache::contains(Addr addr) const
{
    const Addr line = main_.lineAddrOf(addr);
    const auto &p = main_.line(primarySet(line), 0);
    const auto &a = main_.line(alternateSet(line), 0);
    return (p.valid && p.lineAddr == line) ||
           (a.valid && a.lineAddr == line);
}

bool
ColumnAssocCache::inPrimarySet(Addr addr) const
{
    const Addr line = main_.lineAddrOf(addr);
    const auto &p = main_.line(primarySet(line), 0);
    return p.valid && p.lineAddr == line;
}

sim::RunStats
simulateColumnAssoc(const trace::Trace &t,
                    const ColumnAssocConfig &cfg)
{
    ColumnAssocCache sim(cfg);
    sim.run(t);
    return sim.stats();
}

} // namespace core
} // namespace sac
