/**
 * @file
 * The software-assisted cache simulator — the paper's primary
 * contribution (Section 2) as an executable timing model.
 *
 * One class covers the whole design space of the evaluation:
 *  - a set-associative (default direct-mapped) write-back,
 *    write-allocate main cache with per-line temporal bits;
 *  - an optional auxiliary fully-associative LRU cache that acts as a
 *    victim cache, as the bounce-back cache, and as the prefetch
 *    buffer, depending on the configuration;
 *  - virtual-line fills on spatially tagged misses with pipelined
 *    coherence checks;
 *  - cache bypassing of non-temporal references (baseline);
 *  - progressive software-assisted next-line prefetching;
 *  - a bounded write buffer drained over the shared bus;
 *  - AMAT accounting and three-C miss classification.
 *
 * The model is trace-driven and blocking (a miss stalls the processor
 * until the last physical line arrives), exactly as in the paper.
 */

#ifndef SAC_CORE_SOFT_CACHE_HH
#define SAC_CORE_SOFT_CACHE_HH

#include <optional>
#include <vector>

#include "src/cache/cache_array.hh"
#include "src/core/config.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/miss_classifier.hh"
#include "src/sim/run_stats.hh"
#include "src/sim/write_buffer.hh"
#include "src/telemetry/event_trace.hh"
#include "src/telemetry/interval.hh"
#include "src/trace/trace.hh"

// CMake defines this via the SAC_AUDIT option; standalone compilations
// get the audit hooks by default (mirrors SAC_TRACE_EVENTS_ENABLED).
#ifndef SAC_AUDIT_ENABLED
#define SAC_AUDIT_ENABLED 1
#endif

namespace sac {
namespace trace {
class TraceSource;
} // namespace trace

namespace telemetry {
class SetProfiler;
} // namespace telemetry

namespace core {

class SoftwareAssistedCache;

/**
 * The common configuration lattice points served by a compile-time
 * specialized access path. Each named set compiles out the runtime
 * checks for the features it excludes; General keeps every check and
 * is bit-identical to the pre-specialization simulator.
 */
enum class FeatureSet
{
    Standard,     //!< plain cache: no aux, no virtual lines, no prefetch
    Victim,       //!< aux buffer only (victim / bounce-back)
    Soft,         //!< aux + virtual lines (the paper's soft cache)
    SoftPrefetch, //!< aux + virtual lines + progressive prefetch
    General,      //!< fully general fallback (bypass, exotic combos)
};

/** Human-readable name of a feature set. */
const char *toString(FeatureSet fs);

/**
 * Classify @p cfg into the most specialized FeatureSet whose compiled
 * path handles it exactly. Anything with bypassing or an unusual
 * feature combination falls back to General.
 */
FeatureSet featureSetOf(const Config &cfg);

/** How the simulator picks its access path. */
enum class DispatchMode
{
    Auto,    //!< featureSetOf(config): specialized when possible
    General, //!< force the general path (differential testing)
};

/**
 * Fidelity of statistics collection. Warming is the functional-
 * warming mode of the sampled engine (sim::SampledEngine): every
 * architectural state transition — cache arrays, LRU stamps, temporal
 * and prefetched bits, bounce-backs, write buffer, clocks — is
 * bit-identical to Detailed (proven by the warming-state differential
 * tests), but RunStats counters, the three-C miss classifier, event
 * tracing and audit hooks compile out of the access path, making
 * warming replay about twice as fast as full detail.
 */
enum class StatsMode
{
    Detailed, //!< full statistics (the default)
    Warming,  //!< state only: counters/classifier/hooks compiled out
};

/**
 * Post-access audit hook. When the build has SAC_AUDIT=ON the
 * simulator calls an attached auditor after every completed access so
 * it can re-derive structural invariants from the exposed state.
 * Implemented by check::Auditor; the abstract interface lives here so
 * src/core never depends on src/check.
 */
class AccessAuditor
{
  public:
    virtual ~AccessAuditor() = default;

    /** Called after every access when audit hooks are compiled in. */
    virtual void afterAccess(const SoftwareAssistedCache &cache,
                             const trace::Record &rec) = 0;
};

/** Trace-driven simulator of one cache organization. */
class SoftwareAssistedCache
{
  public:
    /**
     * Build the simulator for configuration @p cfg (validated).
     * @param dispatch Auto selects the specialized access path
     *        matching the config; General forces the fully general
     *        path (used by the differential fuzzer to prove the two
     *        never diverge)
     */
    explicit SoftwareAssistedCache(Config cfg,
                                   DispatchMode dispatch =
                                       DispatchMode::Auto);

    /** Simulate one reference. References must arrive in issue order. */
    void access(const trace::Record &rec)
    {
        (this->*accessFn_)(rec);
#if SAC_AUDIT_ENABLED
        if (auditor_ && statsMode_ == StatsMode::Detailed)
            auditor_->afterAccess(*this, rec);
#endif
#if SAC_INTERVAL_ENABLED
        if (interval_ && statsMode_ == StatsMode::Detailed)
            interval_->afterAccess(stats_,
                                   writeBuffer_.occupancy());
#endif
    }

    /** Simulate a whole trace (appends to the current state). */
    void run(const trace::Trace &t);

    /** Streamed replay: drain @p src in chunks, then finish(). */
    void run(trace::TraceSource &src);

    /**
     * Replay @p n records in the current stats mode without sealing
     * the run (no finish()); the building block of windowed replay.
     */
    void replay(const trace::Record *recs, std::size_t n)
    {
        runBatch(recs, n);
    }

    /**
     * Switch statistics fidelity mid-run (reselects the access path).
     * Architectural state carries over untouched; in Warming mode the
     * stats counters simply stop advancing.
     */
    void setStatsMode(StatsMode m);

    /** The active statistics fidelity. */
    StatsMode statsMode() const { return statsMode_; }

    // --- sim::SampledEngine's Sim concept ------------------------

    /** Replay @p n records with full statistics (a detailed window). */
    void runDetailed(const trace::Record *recs, std::size_t n)
    {
        setStatsMode(StatsMode::Detailed);
        runBatch(recs, n);
    }

    /** Replay @p n records updating state only (functional warming). */
    void runWarming(const trace::Record *recs, std::size_t n)
    {
        setStatsMode(StatsMode::Warming);
        runBatch(recs, n);
    }

    /** The access path selected at construction. */
    FeatureSet featureSet() const { return featureSet_; }

    /**
     * Final bookkeeping: drain the write buffer and seal the
     * completion cycle. Idempotent.
     */
    void finish();

    /** Statistics accumulated so far. */
    const sim::RunStats &stats() const { return stats_; }

    /** The active configuration. */
    const Config &config() const { return cfg_; }

    /**
     * Attach an event tracer: access/fill/swap/bounce/evict/prefetch
     * events are recorded into @p t with cycle stamps. Pass nullptr
     * to detach. The recording sites only exist when the build has
     * SAC_TRACE_EVENTS=ON; attaching is otherwise a no-op.
     */
    void attachTracer(telemetry::EventTracer *t) { tracer_ = t; }

    /**
     * Attach a structural invariant auditor, invoked after every
     * access. Pass nullptr to detach. The call site only exists when
     * the build has SAC_AUDIT=ON; attaching is otherwise a no-op.
     */
    void attachAuditor(AccessAuditor *a) { auditor_ = a; }

    /** Were the SAC_AUDIT hooks compiled into this build? */
    static constexpr bool auditHooksCompiledIn()
    {
        return SAC_AUDIT_ENABLED != 0;
    }

    /**
     * Attach a periodic interval recorder: every detailed-mode access
     * ticks it, and finish() flushes the trailing partial interval.
     * Pass nullptr to detach. The call sites only exist when the
     * build has SAC_INTERVAL=ON; attaching is otherwise a no-op.
     */
    void attachIntervalRecorder(telemetry::IntervalRecorder *r)
    {
        interval_ = r;
    }

    /**
     * Attach a per-set heat profiler (sized for mainArray().numSets())
     * recording access/miss/eviction/conflict per main-cache set in
     * detailed mode. Pass nullptr to detach. Shares the SAC_INTERVAL
     * compile-time gate with the interval recorder.
     */
    void attachSetProfiler(telemetry::SetProfiler *p)
    {
        setProfiler_ = p;
    }

    /** Were the SAC_INTERVAL hooks compiled into this build? */
    static constexpr bool intervalHooksCompiledIn()
    {
        return SAC_INTERVAL_ENABLED != 0;
    }

    // --- Introspection (used by tests and check::Auditor) --------

    /** The main cache array (read-only). */
    const cache::CacheArray &mainArray() const { return main_; }

    /** The aux cache array, or nullptr when the config has none. */
    const cache::CacheArray *auxArray() const
    {
        return aux_ ? &*aux_ : nullptr;
    }

    /** The write buffer (read-only). */
    const sim::WriteBuffer &writeBuffer() const { return writeBuffer_; }

    /** Is the line containing @p addr resident in the main cache? */
    bool mainContains(Addr addr) const;

    /** Is the line containing @p addr resident in the aux cache? */
    bool auxContains(Addr addr) const;

    /** Temporal bit of the main-cache line holding @p addr. */
    bool mainTemporalBit(Addr addr) const;

    /** Temporal bit of the aux-cache line holding @p addr. */
    bool auxTemporalBit(Addr addr) const;

    /** Current issue clock (cycle of the last issued reference). */
    Cycle now() const { return now_; }

    /** Cycle at which the cache becomes free. */
    Cycle cacheFreeAt() const { return cacheFreeAt_; }

    /** Cycle at which the bus becomes free. */
    Cycle busFreeAt() const { return busFreeAt_; }

    /** Cycle at which the processor resumes after the last access. */
    Cycle procReadyAt() const { return procReadyAt_; }

    /** Write-buffer occupancy. */
    std::uint32_t writeBufferOccupancy() const
    {
        return writeBuffer_.occupancy();
    }

    /** Line held by the single-line bypass buffer, if any. */
    std::optional<Addr> bypassBufferLine() const
    {
        if (!bypassBufferValid_)
            return std::nullopt;
        return bypassBufferLine_;
    }

    /** Snapshot of the in-flight progressive prefetch. */
    struct PrefetchProbe
    {
        Addr line;
        std::uint32_t count;
        Cycle readyAt;
    };

    /** The outstanding progressive prefetch, if any. */
    std::optional<PrefetchProbe> pendingPrefetch() const
    {
        if (!pending_.valid)
            return std::nullopt;
        return PrefetchProbe{pending_.line, pending_.count,
                             pending_.readyAt};
    }

    // --- Live-point checkpointing (sim::CheckpointLibrary) -------

    /**
     * Capture the complete architectural state — cache arrays with
     * LRU clocks, write buffer, timing clocks, bypass buffer and the
     * in-flight prefetch: exactly the state check::stateDifference
     * compares, plus the private LRU counters needed to continue
     * replay bit-identically. Statistics are not included (they only
     * advance during detailed windows and are reproduced by replay).
     */
    sim::ArchState exportState() const;

    /**
     * Restore a state captured by exportState() on an identically
     * configured simulator. RunStats and the miss classifier are left
     * untouched, and the run is unsealed so finish() runs again.
     */
    void importState(const sim::ArchState &s);

    /**
     * The three-C classifier's shadow state, or nullptr when
     * classification is disabled. The shadow evolves identically on
     * hits and misses — it is a pure function of the detailed address
     * stream — which is what lets parallel replay reconstruct it.
     */
    const sim::MissClassifier *classifier() const
    {
        return classifier_ ? &*classifier_ : nullptr;
    }

    /**
     * Replace the classifier's shadow state with @p c. Parallel
     * window replay seeds each worker with the state a serial run
     * would have reached at the worker's first window; a no-op when
     * classification is disabled.
     */
    void seedClassifier(const sim::MissClassifier &c)
    {
        if (classifier_)
            *classifier_ = c;
    }

  private:
    /** A main-cache slot filled by the in-flight miss. */
    struct FillTarget
    {
        std::uint32_t set;
        std::uint32_t way;
    };

    /**
     * The per-reference simulation, templated over which features MAY
     * be enabled. A true parameter keeps the runtime config check (so
     * the all-true instantiation is the general path, behaviorally
     * identical to the untemplated original); a false parameter
     * compiles the check out, which is only selected when the config
     * provably never takes that branch.
     *
     * Detail selects the statistics fidelity: false is the functional-
     * warming instantiation, which performs the same architectural
     * state transitions but compiles out every stats counter, the miss
     * classifier, and the event-trace sites.
     */
    template <bool Detail, bool MayAux, bool MayVirtual,
              bool MayPrefetch, bool MayBypass>
    void accessTmpl(const trace::Record &rec);

    /** Pointer to the instantiation matching featureSet_. */
    using AccessFn =
        void (SoftwareAssistedCache::*)(const trace::Record &);

    /** Instantiation lookup for (@p fs, @p mode) (static table). */
    static AccessFn selectAccessFn(FeatureSet fs, StatsMode mode);

    /** The accessTmpl instantiation for @p fs at fidelity @p Detail. */
    template <bool Detail>
    static AccessFn selectAccessFnImpl(FeatureSet fs);

    /**
     * Replay @p n records through the accessTmpl instantiation of the
     * template arguments directly, so the per-record call is direct
     * (inlinable) instead of through the accessFn_ member pointer.
     */
    template <bool Detail, bool MayAux, bool MayVirtual,
              bool MayPrefetch, bool MayBypass>
    void runBatchTmpl(const trace::Record *recs, std::size_t n);

    /** Dispatch once on the feature set at fidelity @p Detail. */
    template <bool Detail>
    void runBatchDispatch(const trace::Record *recs, std::size_t n);

    /** Dispatch once on mode and featureSet_, then replay @p n. */
    void runBatch(const trace::Record *recs, std::size_t n);

    /** Serve a hit in the main cache. */
    template <bool Detail>
    void handleMainHit(const trace::Record &rec, std::uint32_t way,
                       Cycle start);

    /** Serve a hit in the aux (bounce-back / victim) cache. */
    template <bool Detail, bool MayPrefetch>
    void handleAuxHit(const trace::Record &rec, std::uint32_t way,
                      Cycle start);

    /** Serve a bypassed non-temporal reference. */
    template <bool Detail>
    void handleBypass(const trace::Record &rec, Cycle start);

    /** Serve a demand miss (possibly a virtual-line fill). */
    template <bool Detail, bool MayAux, bool MayVirtual, bool MayPrefetch>
    void handleMiss(const trace::Record &rec, Cycle start);

    /**
     * Install @p line_addr into the main cache, moving the victim to
     * the aux cache or the write buffer. Returns the filled slot.
     * @param transfer_cost accumulates hidden transfer cycles
     * @param fill_targets slots already filled by this miss
     */
    template <bool Detail>
    FillTarget insertIntoMain(Addr line_addr, Cycle &transfer_cost,
                              std::vector<FillTarget> &fill_targets);

    /**
     * Move a main-cache victim into the aux cache, bouncing the aux
     * victim back to the main cache when the bounce-back mechanism is
     * active and its temporal bit is set.
     */
    template <bool Detail>
    void victimToAux(const cache::LineState &victim, Cycle &transfer_cost,
                     const std::vector<FillTarget> &fill_targets);

    /** Bounce an aux victim back into the main cache (Section 2.2). */
    template <bool Detail>
    void bounceBack(const cache::LineState &victim, Cycle &transfer_cost,
                    const std::vector<FillTarget> &fill_targets);

    /** Queue a line writeback, forcing a drain when the buffer is full. */
    template <bool Detail>
    void pushWriteback(std::uint32_t bytes, Cycle &transfer_cost);

    /** Drain the whole write buffer over the bus (post-miss). */
    template <bool Detail>
    void drainWriteBuffer();

    /** Issue a progressive next-line prefetch for @p pf_line. */
    template <bool Detail>
    void issuePrefetch(Addr pf_line);

    /** Install the pending prefetched line into the aux cache. */
    template <bool Detail>
    void installPendingPrefetch();

    /** Record a classified demand miss. */
    void classify(Addr addr, bool was_miss);

    /** Update the per-line temporal bit from the instruction tag. */
    static void applyTemporalTag(cache::CacheArray::LineRef line,
                                 bool tagged,
                                 bool temporal_bits_enabled);

    /** Finish one access: accounting and cache-busy update. */
    template <bool Detail>
    void complete(Cycle completion, Cycle lock_until);

    /** Replacement policy for main-cache fills. */
    cache::ReplacementPolicy mainPolicy() const;

    Config cfg_;
    cache::CacheArray main_;
    std::optional<cache::CacheArray> aux_;
    sim::WriteBuffer writeBuffer_;
    std::optional<sim::MissClassifier> classifier_;
    sim::RunStats stats_;

    Cycle now_ = 0;
    /** Completion cycle of the previous access (processor resumes). */
    Cycle procReadyAt_ = 1;
    Cycle cacheFreeAt_ = 0;
    Cycle busFreeAt_ = 0;

    // Single-line bypass buffer (BypassMode::NonTemporalBuffered).
    Addr bypassBufferLine_ = 0;
    bool bypassBufferValid_ = false;

    // One outstanding progressive prefetch (Section 4.4).
    struct PendingPrefetch
    {
        Addr line = 0;
        std::uint32_t count = 1;
        Cycle readyAt = 0;
        bool valid = false;
    };
    PendingPrefetch pending_;
    bool finished_ = false;

    // Per-miss scratch, members so the hot path does not allocate.
    std::vector<Addr> fetchScratch_;
    std::vector<FillTarget> fillScratch_;

    /** Access path chosen at construction (fixed for the run). */
    FeatureSet featureSet_ = FeatureSet::General;
    /** Statistics fidelity (switchable mid-run by the sampler). */
    StatsMode statsMode_ = StatsMode::Detailed;
    AccessFn accessFn_ = nullptr;

    /** Event sink; null = tracing off (the common, fast case). */
    telemetry::EventTracer *tracer_ = nullptr;

    /** Invariant auditor; null = auditing off (the common case). */
    AccessAuditor *auditor_ = nullptr;

    /** Interval snapshotter; null = interval stats off (the common case). */
    telemetry::IntervalRecorder *interval_ = nullptr;

    /** Per-set heat profiler; null = heat profiling off. */
    telemetry::SetProfiler *setProfiler_ = nullptr;
};

/** Simulate @p t under @p cfg and return the statistics. */
sim::RunStats simulateTrace(const trace::Trace &t, const Config &cfg,
                            DispatchMode dispatch = DispatchMode::Auto);

/** Simulate a streamed trace under @p cfg and return the statistics. */
sim::RunStats simulateSource(trace::TraceSource &src, const Config &cfg,
                             DispatchMode dispatch = DispatchMode::Auto);

} // namespace core
} // namespace sac

#endif // SAC_CORE_SOFT_CACHE_HH
