#include "src/core/config.hh"

#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace core {

std::string
Config::cacheKey() const
{
    std::ostringstream os;
    os << "cs=" << cacheSizeBytes << ";ls=" << lineBytes
       << ";as=" << assoc << ";aux=" << auxLines
       << ";auxa=" << auxAssoc << ";vict=" << auxReceivesVictims
       << ";bb=" << bounceBack << ";vl=" << virtualLines
       << ";vlb=" << virtualLineBytes
       << ";vvl=" << variableVirtualLines
       << ";vcc=" << virtualLineCoherenceCheck
       << ";tb=" << temporalBits
       << ";rtb=" << resetTemporalBitOnBounce
       << ";pnt=" << preferNonTemporalReplacement
       << ";byp=" << static_cast<int>(bypass) << ";pf=" << prefetch
       << ";pfs=" << prefetchSpatialOnly
       << ";pfm=" << maxPrefetchedInAux << ";pfd=" << prefetchDegree
       << ";lat=" << timing.memoryLatency
       << ";bus=" << timing.busBytesPerCycle
       << ";mht=" << timing.mainHitTime
       << ";aht=" << timing.auxHitTime
       << ";swl=" << timing.swapLockCycles
       << ";dtc=" << timing.dirtyTransferCycles
       << ";pfx=" << timing.prefetchHitExtraStall
       << ";wb=" << writeBufferEntries << ";cls=" << classifyMisses;
    return os.str();
}

util::Json
Config::toJson() const
{
    util::Json j = util::Json::object();
    j.set("name", name);
    j.set("cache_size_bytes", cacheSizeBytes);
    j.set("line_bytes", static_cast<std::uint64_t>(lineBytes));
    j.set("assoc", static_cast<std::uint64_t>(assoc));
    j.set("aux_lines", static_cast<std::uint64_t>(auxLines));
    j.set("aux_assoc", static_cast<std::uint64_t>(auxAssoc));
    j.set("aux_receives_victims", auxReceivesVictims);
    j.set("bounce_back", bounceBack);
    j.set("virtual_lines", virtualLines);
    j.set("virtual_line_bytes",
          static_cast<std::uint64_t>(virtualLineBytes));
    j.set("variable_virtual_lines", variableVirtualLines);
    j.set("virtual_line_coherence_check", virtualLineCoherenceCheck);
    j.set("temporal_bits", temporalBits);
    j.set("reset_temporal_bit_on_bounce", resetTemporalBitOnBounce);
    j.set("prefer_non_temporal_replacement",
          preferNonTemporalReplacement);
    j.set("bypass", static_cast<std::int64_t>(bypass));
    j.set("prefetch", prefetch);
    j.set("prefetch_spatial_only", prefetchSpatialOnly);
    j.set("max_prefetched_in_aux",
          static_cast<std::uint64_t>(maxPrefetchedInAux));
    j.set("prefetch_degree",
          static_cast<std::uint64_t>(prefetchDegree));
    util::Json t = util::Json::object();
    t.set("memory_latency", timing.memoryLatency);
    t.set("bus_bytes_per_cycle",
          static_cast<std::uint64_t>(timing.busBytesPerCycle));
    t.set("main_hit_time", timing.mainHitTime);
    t.set("aux_hit_time", timing.auxHitTime);
    t.set("swap_lock_cycles", timing.swapLockCycles);
    t.set("dirty_transfer_cycles", timing.dirtyTransferCycles);
    t.set("prefetch_hit_extra_stall", timing.prefetchHitExtraStall);
    j.set("timing", std::move(t));
    j.set("write_buffer_entries",
          static_cast<std::uint64_t>(writeBufferEntries));
    j.set("classify_misses", classifyMisses);
    return j;
}

void
Config::validate() const
{
    using util::fatal;
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        fatal("physical line size must be a power of two");
    if (cacheSizeBytes % (static_cast<std::uint64_t>(lineBytes) * assoc))
        fatal("cache size must be a multiple of line size * assoc");
    if (virtualLines) {
        if (virtualLineBytes < lineBytes ||
            virtualLineBytes % lineBytes != 0) {
            fatal("virtual line size must be a multiple of the "
                  "physical line size");
        }
    }
    if (auxLines > 0 && auxAssoc > 0) {
        if (auxLines % auxAssoc != 0)
            fatal("aux associativity must divide the aux line count");
        const std::uint32_t sets = auxLines / auxAssoc;
        if ((sets & (sets - 1)) != 0)
            fatal("aux set count must be a power of two");
    }
    if (variableVirtualLines && !virtualLines)
        fatal("variable virtual lines require virtual lines");
    if (prefetch && prefetchDegree == 0)
        fatal("prefetch degree must be at least 1");
    if (bounceBack && auxLines == 0)
        fatal("bounce-back requires an aux cache");
    if (bounceBack && !auxReceivesVictims)
        fatal("the bounce-back cache also acts as a victim cache");
    if (prefetch && auxLines == 0)
        fatal("prefetching uses the aux cache as a prefetch buffer");
    if (bypass != BypassMode::None && !temporalBits)
        fatal("bypassing is steered by the temporal tags");
    if (writeBufferEntries == 0)
        fatal("a write buffer is required");
    if (timing.busBytesPerCycle == 0)
        fatal("bus bandwidth must be positive");
}

Config
standardConfig()
{
    Config c;
    c.name = "Stand.";
    return c;
}

Config
standardConfig(std::uint32_t line_bytes)
{
    Config c = standardConfig();
    c.lineBytes = line_bytes;
    c.name = "Stand. (Ls=" + std::to_string(line_bytes) + ")";
    return c;
}

Config
victimConfig()
{
    Config c = standardConfig();
    c.name = "Stand.+Victim";
    c.auxLines = 8;
    c.auxReceivesVictims = true;
    return c;
}

Config
softConfig()
{
    Config c;
    c.name = "Soft.";
    c.auxLines = 8;
    c.auxReceivesVictims = true;
    c.bounceBack = true;
    c.temporalBits = true;
    c.virtualLines = true;
    c.virtualLineBytes = 64;
    return c;
}

Config
softTemporalOnlyConfig()
{
    Config c = softConfig();
    c.name = "Soft. Temp. only";
    c.virtualLines = false;
    return c;
}

Config
softSpatialOnlyConfig()
{
    Config c = softConfig();
    c.name = "Soft. Spat. only";
    c.bounceBack = false;
    c.temporalBits = false;
    return c;
}

Config
softConfig(std::uint32_t virtual_line_bytes)
{
    Config c = softConfig();
    c.virtualLineBytes = virtual_line_bytes;
    c.virtualLines = virtual_line_bytes > c.lineBytes;
    c.name = "Soft. (Vl=" + std::to_string(virtual_line_bytes) + ")";
    return c;
}

Config
variableSoftConfig()
{
    Config c = softConfig();
    c.name = "Soft. (variable Vl)";
    c.variableVirtualLines = true;
    c.virtualLineBytes = 256; // cap: level 3 = 8 lines
    return c;
}

Config
bypassConfig(bool through_buffer)
{
    Config c = standardConfig();
    c.name = through_buffer ? "Bypass buffer" : "Bypass";
    c.temporalBits = true;
    c.bypass = through_buffer ? BypassMode::NonTemporalBuffered
                              : BypassMode::NonTemporal;
    return c;
}

Config
twoWayConfig()
{
    Config c = standardConfig();
    c.name = "2-way";
    c.assoc = 2;
    return c;
}

Config
twoWayVictimConfig()
{
    Config c = victimConfig();
    c.name = "2-way+victim";
    c.assoc = 2;
    return c;
}

Config
softTwoWayConfig()
{
    Config c = softConfig();
    c.name = "Soft. 2-way";
    c.assoc = 2;
    return c;
}

Config
simplifiedSoftTwoWayConfig()
{
    Config c;
    c.name = "Simplified Soft. 2-way";
    c.assoc = 2;
    c.temporalBits = true;
    c.preferNonTemporalReplacement = true;
    c.virtualLines = true;
    c.virtualLineBytes = 64;
    return c;
}

Config
standardPrefetchConfig()
{
    Config c = standardConfig();
    c.name = "Stand.+Prefetching";
    // The prefetch buffer is the same 8-line structure, but demand
    // victims do not enter it and nothing bounces back.
    c.auxLines = 8;
    c.auxReceivesVictims = false;
    c.prefetch = true;
    c.prefetchSpatialOnly = false;
    return c;
}

Config
softPrefetchConfig()
{
    Config c = softConfig();
    c.name = "Soft.+Prefetching";
    c.prefetch = true;
    c.prefetchSpatialOnly = true;
    return c;
}

Config
scaledConfig(Config base, std::uint64_t cache_bytes,
             std::uint32_t line_bytes)
{
    base.cacheSizeBytes = cache_bytes;
    base.lineBytes = line_bytes;
    if (base.virtualLines && base.virtualLineBytes <= line_bytes)
        base.virtualLineBytes = line_bytes * 2;
    base.name += " Cs=" + std::to_string(cache_bytes / 1024) + "k";
    return base;
}

} // namespace core
} // namespace sac
