#include "src/core/config.hh"

#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace core {

std::string
Config::cacheKey() const
{
    std::ostringstream os;
    os << "cs=" << cacheSizeBytes << ";ls=" << lineBytes
       << ";as=" << assoc << ";aux=" << auxLines
       << ";auxa=" << auxAssoc << ";vict=" << auxReceivesVictims
       << ";bb=" << bounceBack << ";vl=" << virtualLines
       << ";vlb=" << virtualLineBytes
       << ";vvl=" << variableVirtualLines
       << ";vcc=" << virtualLineCoherenceCheck
       << ";tb=" << temporalBits
       << ";rtb=" << resetTemporalBitOnBounce
       << ";pnt=" << preferNonTemporalReplacement
       << ";byp=" << static_cast<int>(bypass) << ";pf=" << prefetch
       << ";pfs=" << prefetchSpatialOnly
       << ";pfm=" << maxPrefetchedInAux << ";pfd=" << prefetchDegree
       << ";lat=" << timing.memoryLatency
       << ";bus=" << timing.busBytesPerCycle
       << ";mht=" << timing.mainHitTime
       << ";aht=" << timing.auxHitTime
       << ";swl=" << timing.swapLockCycles
       << ";dtc=" << timing.dirtyTransferCycles
       << ";pfx=" << timing.prefetchHitExtraStall
       << ";wb=" << writeBufferEntries << ";cls=" << classifyMisses;
    return os.str();
}

util::Json
Config::toJson() const
{
    util::Json j = util::Json::object();
    j.set("name", name);
    j.set("cache_size_bytes", cacheSizeBytes);
    j.set("line_bytes", static_cast<std::uint64_t>(lineBytes));
    j.set("assoc", static_cast<std::uint64_t>(assoc));
    j.set("aux_lines", static_cast<std::uint64_t>(auxLines));
    j.set("aux_assoc", static_cast<std::uint64_t>(auxAssoc));
    j.set("aux_receives_victims", auxReceivesVictims);
    j.set("bounce_back", bounceBack);
    j.set("virtual_lines", virtualLines);
    j.set("virtual_line_bytes",
          static_cast<std::uint64_t>(virtualLineBytes));
    j.set("variable_virtual_lines", variableVirtualLines);
    j.set("virtual_line_coherence_check", virtualLineCoherenceCheck);
    j.set("temporal_bits", temporalBits);
    j.set("reset_temporal_bit_on_bounce", resetTemporalBitOnBounce);
    j.set("prefer_non_temporal_replacement",
          preferNonTemporalReplacement);
    j.set("bypass", static_cast<std::int64_t>(bypass));
    j.set("prefetch", prefetch);
    j.set("prefetch_spatial_only", prefetchSpatialOnly);
    j.set("max_prefetched_in_aux",
          static_cast<std::uint64_t>(maxPrefetchedInAux));
    j.set("prefetch_degree",
          static_cast<std::uint64_t>(prefetchDegree));
    util::Json t = util::Json::object();
    t.set("memory_latency", timing.memoryLatency);
    t.set("bus_bytes_per_cycle",
          static_cast<std::uint64_t>(timing.busBytesPerCycle));
    t.set("main_hit_time", timing.mainHitTime);
    t.set("aux_hit_time", timing.auxHitTime);
    t.set("swap_lock_cycles", timing.swapLockCycles);
    t.set("dirty_transfer_cycles", timing.dirtyTransferCycles);
    t.set("prefetch_hit_extra_stall", timing.prefetchHitExtraStall);
    j.set("timing", std::move(t));
    j.set("write_buffer_entries",
          static_cast<std::uint64_t>(writeBufferEntries));
    j.set("classify_misses", classifyMisses);
    return j;
}

std::optional<std::string>
Config::validationError() const
{
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        return "physical line size must be a power of two";
    if (assoc == 0)
        return "associativity must be at least 1";
    if (cacheSizeBytes % (static_cast<std::uint64_t>(lineBytes) * assoc))
        return "cache size must be a multiple of line size * assoc";
    if (virtualLines) {
        if (virtualLineBytes < lineBytes)
            return "virtual lines must be at least one physical line";
        if (virtualLineBytes % lineBytes != 0)
            return "virtual line size must be a multiple of the "
                   "physical line size";
        // The miss path aligns the virtual block with a mask, so the
        // line count per virtual line must be a power of two.
        const std::uint32_t n = virtualLineBytes / lineBytes;
        if ((n & (n - 1)) != 0)
            return "virtual line size must be a power-of-two multiple "
                   "of the physical line size";
    }
    if (auxLines > 0 && auxAssoc > 0) {
        if (auxLines % auxAssoc != 0)
            return "aux associativity must divide the aux line count";
        const std::uint32_t sets = auxLines / auxAssoc;
        if ((sets & (sets - 1)) != 0)
            return "aux set count must be a power of two";
    }
    if (variableVirtualLines && !virtualLines)
        return "variable virtual lines require virtual lines";
    if (prefetch && prefetchDegree == 0)
        return "prefetch degree must be at least 1";
    if (bounceBack && auxLines == 0)
        return "bounce-back requires an aux cache";
    if (bounceBack && !auxReceivesVictims)
        return "the bounce-back cache also acts as a victim cache";
    if (prefetch && auxLines == 0)
        return "prefetching uses the aux cache as a prefetch buffer";
    if (bypass != BypassMode::None && !temporalBits)
        return "bypassing is steered by the temporal tags";
    if (writeBufferEntries == 0)
        return "a write buffer is required";
    if (timing.busBytesPerCycle == 0)
        return "bus bandwidth must be positive";
    return std::nullopt;
}

void
Config::validate() const
{
    if (const auto err = validationError())
        util::fatal("invalid config \"", name, "\": ", *err);
}

PresetRegistry::PresetRegistry()
{
    auto add = [this](std::string key, std::string description,
                      Config config) {
        presets_.push_back(
            {std::move(key), std::move(description), std::move(config)});
    };

    // Registration order follows the paper's figures; keys are the
    // CLI-facing --preset names.
    add("standard", "8 KB direct-mapped baseline (Stand.)",
        Config::builder().name("Stand.").build());
    add("victim", "Standard + 8-line victim cache (Fig 3b)",
        Config::builder()
            .name("Stand.+Victim")
            .auxLines(8)
            .victims()
            .build());
    add("soft",
        "full software assistance: virtual lines + bounce-back",
        Config::builder()
            .name("Soft.")
            .auxLines(8)
            .victims()
            .bounceBack()
            .temporalBits()
            .virtualLines(64)
            .build());
    add("soft-temporal",
        "software assistance for temporal locality only (Fig 6a/7)",
        Config::builder()
            .name("Soft. Temp. only")
            .auxLines(8)
            .victims()
            .bounceBack()
            .temporalBits()
            .build());
    add("soft-spatial",
        "software assistance for spatial locality only (Fig 6a/7)",
        Config::builder()
            .name("Soft. Spat. only")
            .auxLines(8)
            .victims()
            .virtualLines(64)
            .build());
    add("variable",
        "Soft. with variable-length virtual lines (Section 3.2)",
        Config::builder()
            .name("Soft. (variable Vl)")
            .auxLines(8)
            .victims()
            .bounceBack()
            .temporalBits()
            .virtualLines(256) // cap: level 3 = 8 lines
            .variableVirtualLines()
            .build());
    add("bypass", "bypassing of non-temporal references (Fig 3a)",
        Config::builder()
            .name("Bypass")
            .temporalBits()
            .bypass(BypassMode::NonTemporal)
            .build());
    add("bypass-buffer",
        "bypassing through a one-line buffer (Fig 3a)",
        Config::builder()
            .name("Bypass buffer")
            .temporalBits()
            .bypass(BypassMode::NonTemporalBuffered)
            .build());
    add("2way", "plain 2-way set-associative cache (Fig 9b)",
        Config::builder().name("2-way").assoc(2).build());
    add("2way-victim", "2-way + victim cache (Fig 9b)",
        Config::builder()
            .name("2-way+victim")
            .assoc(2)
            .auxLines(8)
            .victims()
            .build());
    add("soft-2way", "full software control on a 2-way cache (Fig 9b)",
        Config::builder()
            .name("Soft. 2-way")
            .assoc(2)
            .auxLines(8)
            .victims()
            .bounceBack()
            .temporalBits()
            .virtualLines(64)
            .build());
    add("simplified-soft-2way",
        "2-way with replacement priority only (Fig 9b)",
        Config::builder()
            .name("Simplified Soft. 2-way")
            .assoc(2)
            .temporalBits()
            .preferNonTemporalReplacement()
            .virtualLines(64)
            .build());
    add("standard-prefetch",
        "standard cache with hardware next-line prefetching (Fig 12)",
        // The prefetch buffer is the same 8-line structure, but
        // demand victims do not enter it and nothing bounces back.
        Config::builder()
            .name("Stand.+Prefetching")
            .auxLines(8)
            .prefetch(/*spatial_only=*/false)
            .build());
    add("soft-prefetch",
        "Soft. + software-assisted prefetching (Fig 12)",
        Config::builder()
            .name("Soft.+Prefetching")
            .auxLines(8)
            .victims()
            .bounceBack()
            .temporalBits()
            .virtualLines(64)
            .prefetch(/*spatial_only=*/true)
            .build());
}

Config
PresetRegistry::get(const std::string &key) const
{
    for (const auto &p : presets_)
        if (p.key == key)
            return p.config;
    std::ostringstream known;
    for (const auto &p : presets_)
        known << " " << p.key;
    util::fatal("unknown preset \"", key, "\"; known presets:",
                known.str());
}

bool
PresetRegistry::contains(const std::string &key) const
{
    for (const auto &p : presets_)
        if (p.key == key)
            return true;
    return false;
}

std::vector<std::string>
PresetRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(presets_.size());
    for (const auto &p : presets_)
        out.push_back(p.key);
    return out;
}

const PresetRegistry &
presets()
{
    static const PresetRegistry registry;
    return registry;
}

// --- Derived-variant factories (presets() covers the fixed points) -

Config
standardWithLineSize(std::uint32_t line_bytes)
{
    Config c = presets().get("standard");
    c.lineBytes = line_bytes;
    c.name = "Stand. (Ls=" + std::to_string(line_bytes) + ")";
    return c;
}

Config
softWithVirtualLineSize(std::uint32_t virtual_line_bytes)
{
    Config c = presets().get("soft");
    c.virtualLineBytes = virtual_line_bytes;
    c.virtualLines = virtual_line_bytes > c.lineBytes;
    c.name = "Soft. (Vl=" + std::to_string(virtual_line_bytes) + ")";
    return c;
}

Config
scaledConfig(Config base, std::uint64_t cache_bytes,
             std::uint32_t line_bytes)
{
    base.cacheSizeBytes = cache_bytes;
    base.lineBytes = line_bytes;
    if (base.virtualLines && base.virtualLineBytes <= line_bytes)
        base.virtualLineBytes = line_bytes * 2;
    base.name += " Cs=" + std::to_string(cache_bytes / 1024) + "k";
    return base;
}

} // namespace core
} // namespace sac
