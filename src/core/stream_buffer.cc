#include "src/core/stream_buffer.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace sac {
namespace core {

StreamBufferCache::StreamBufferCache(StreamBufferConfig cfg)
    : cfg_(std::move(cfg)),
      main_(cfg_.cacheSizeBytes, cfg_.lineBytes, cfg_.assoc),
      writeBuffer_(cfg_.writeBufferEntries)
{
    SAC_ASSERT(cfg_.numBuffers > 0 && cfg_.bufferDepth > 0,
               "stream buffers need a positive count and depth");
    buffers_.resize(cfg_.numBuffers);
}

void
StreamBufferCache::run(const trace::Trace &t)
{
    for (const auto &rec : t)
        access(rec);
    finish();
}

void
StreamBufferCache::access(const trace::Record &rec)
{
    SAC_ASSERT(!finished_, "access() after finish()");
    now_ = procReadyAt_ + rec.delta - 1;
    ++stats_.accesses;
    if (rec.isRead())
        ++stats_.reads;
    else
        ++stats_.writes;

    const Cycle start = std::max(now_, cacheFreeAt_);
    const Addr line = main_.lineAddrOf(rec.addr);

    // 1. Main cache.
    if (const auto way = main_.findWay(line)) {
        const std::uint32_t set = main_.setIndexOf(line);
        main_.touch(set, *way);
        if (rec.isWrite())
            main_.line(set, *way).setDirty();
        ++stats_.mainHits;
        completeAccess(start + cfg_.timing.mainHitTime);
        return;
    }

    // 2. Stream-buffer heads. Only the head of each FIFO is
    //    comparable (Jouppi's single-way design).
    for (auto &buf : buffers_) {
        if (!buf.valid || buf.entries.empty() ||
            buf.entries.front().line != line) {
            continue;
        }
        const Entry head = buf.entries.front();
        buf.entries.pop_front();
        buf.lastUse = ++useCounter_;
        // Keep the stream rolling: refill the vacated slot.
        scheduleFill(buf);

        ++stats_.auxHits;
        ++stats_.prefetchesUseful;
        installLine(line, false, rec.isWrite());
        // The line is usable one cycle after it is ready.
        const Cycle completion =
            std::max(start, head.readyAt) + cfg_.timing.mainHitTime;
        completeAccess(completion);
        return;
    }

    // 3. Miss: fetch the line, flush the LRU buffer and restart it
    //    at the successor (prefetch-on-miss).
    ++stats_.misses;
    const Cycle request_sent = start + cfg_.timing.mainHitTime;
    const Cycle mem_start = std::max(request_sent, busFreeAt_);
    const Cycle data_done =
        mem_start + cfg_.timing.missPenalty(1, cfg_.lineBytes);
    busFreeAt_ = data_done;
    ++stats_.linesFetched;
    stats_.bytesFetched += cfg_.lineBytes;

    installLine(line, false, rec.isWrite());
    allocateBuffer(line);

    // Post-miss write-buffer drain, as in the main simulator.
    while (writeBuffer_.occupancy() > 0) {
        const auto bytes = writeBuffer_.pop();
        stats_.bytesWrittenBack += bytes;
        busFreeAt_ += cfg_.timing.transferCycles(bytes);
    }
    completeAccess(data_done);
}

void
StreamBufferCache::scheduleFill(Buffer &buf)
{
    const Cycle transfer = cfg_.timing.transferCycles(cfg_.lineBytes);
    Entry e;
    e.line = buf.nextLine++;
    e.readyAt = busFreeAt_ + cfg_.timing.memoryLatency + transfer;
    busFreeAt_ += transfer;
    buf.entries.push_back(e);
    ++stats_.prefetchesIssued;
    ++stats_.linesFetched;
    stats_.bytesFetched += cfg_.lineBytes;
}

void
StreamBufferCache::allocateBuffer(Addr line)
{
    Buffer *victim = &buffers_.front();
    for (auto &buf : buffers_) {
        if (!buf.valid) {
            victim = &buf;
            break;
        }
        if (buf.lastUse < victim->lastUse)
            victim = &buf;
    }
    victim->entries.clear();
    victim->valid = true;
    victim->nextLine = line + 1;
    victim->lastUse = ++useCounter_;
    for (std::uint32_t i = 0; i < cfg_.bufferDepth; ++i)
        scheduleFill(*victim);
}

void
StreamBufferCache::installLine(Addr line, bool dirty, bool write)
{
    const std::uint32_t set = main_.setIndexOf(line);
    const std::uint32_t way =
        main_.victimWay(set, cache::ReplacementPolicy::Lru);
    cache::CacheArray::LineRef slot = main_.line(set, way);
    if (slot.valid() && slot.dirty()) {
        if (writeBuffer_.full()) {
            writeBuffer_.noteFullStall();
            ++stats_.writeBufferFullStalls;
            const auto bytes = writeBuffer_.pop();
            stats_.bytesWrittenBack += bytes;
            busFreeAt_ += cfg_.timing.transferCycles(bytes);
        }
        writeBuffer_.push(cfg_.lineBytes);
    }
    cache::LineState fresh;
    fresh.lineAddr = line;
    fresh.valid = true;
    fresh.dirty = dirty || write;
    slot.assign(fresh);
    main_.touch(set, way);
}

void
StreamBufferCache::completeAccess(Cycle completion)
{
    stats_.totalAccessCycles += static_cast<double>(completion - now_);
    procReadyAt_ = completion;
    cacheFreeAt_ = std::max(cacheFreeAt_, completion);
    stats_.completionCycle =
        std::max(stats_.completionCycle, completion);
}

void
StreamBufferCache::finish()
{
    if (finished_)
        return;
    while (writeBuffer_.occupancy() > 0)
        stats_.bytesWrittenBack += writeBuffer_.pop();
    finished_ = true;
}

bool
StreamBufferCache::mainContains(Addr addr) const
{
    return main_.contains(main_.lineAddrOf(addr));
}

bool
StreamBufferCache::headContains(Addr addr) const
{
    const Addr line = main_.lineAddrOf(addr);
    for (const auto &buf : buffers_) {
        if (buf.valid && !buf.entries.empty() &&
            buf.entries.front().line == line) {
            return true;
        }
    }
    return false;
}

sim::RunStats
simulateStreamBuffers(const trace::Trace &t,
                      const StreamBufferConfig &cfg)
{
    StreamBufferCache sim(cfg);
    sim.run(t);
    return sim.stats();
}

} // namespace core
} // namespace sac
