#include "src/trace/timing_model.hh"

#include "src/util/logging.hh"

namespace sac {
namespace trace {

util::DiscreteDistribution
TimingModel::figure4bDistribution()
{
    // Figure 4b: the mode is at 1-2 cycles with a long tail; roughly
    // 40% at 1 cycle, 25% at 2, and decreasing mass out to >20 cycles.
    // The ">20" bucket is represented by 25 cycles.
    return util::DiscreteDistribution({
        {1, 0.40},
        {2, 0.25},
        {3, 0.12},
        {4, 0.07},
        {5, 0.05},
        {10, 0.06},
        {15, 0.02},
        {20, 0.02},
        {25, 0.01},
    });
}

TimingModel::TimingModel(std::uint64_t seed)
    : dist_(figure4bDistribution()), rng_(seed)
{
}

TimingModel::TimingModel(util::DiscreteDistribution dist,
                         std::uint64_t seed)
    : dist_(std::move(dist)), rng_(seed)
{
}

std::uint16_t
TimingModel::sampleDelta()
{
    const auto d = dist_.sample(rng_);
    SAC_ASSERT(d >= 1 && d <= 0xffff, "delta out of range");
    return static_cast<std::uint16_t>(d);
}

} // namespace trace
} // namespace sac
