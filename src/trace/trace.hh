/**
 * @file
 * An in-memory reference trace with summary metadata, the unit of
 * exchange between workload generators, profilers and simulators.
 */

#ifndef SAC_TRACE_TRACE_HH
#define SAC_TRACE_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "src/trace/record.hh"

namespace sac {
namespace trace {

/**
 * A sequence of Records plus the benchmark name they came from.
 * Records are stored in issue order; absolute issue cycles are the
 * running sum of the per-record deltas.
 */
class Trace
{
  public:
    Trace() = default;

    /** Create an empty trace for benchmark @p name. */
    explicit Trace(std::string name) : name_(std::move(name)) {}

    /** Benchmark name (e.g. "MV"). */
    const std::string &name() const { return name_; }

    /** Change the benchmark name. */
    void setName(std::string name) { name_ = std::move(name); }

    /** Append a record. */
    void push(const Record &r) { records_.push_back(r); }

    /** Number of records. */
    std::size_t size() const { return records_.size(); }

    /** True when the trace holds no records. */
    bool empty() const { return records_.empty(); }

    /** Record at index @p i. */
    const Record &operator[](std::size_t i) const { return records_[i]; }

    /** Contiguous record storage (for batched replay loops). */
    const Record *data() const { return records_.data(); }

    /** Mutable record at index @p i (used by re-tagging utilities). */
    Record &at(std::size_t i) { return records_[i]; }

    /** Begin iterator over records. */
    auto begin() const { return records_.begin(); }

    /** End iterator over records. */
    auto end() const { return records_.end(); }

    /** Reserve capacity for @p n records. */
    void reserve(std::size_t n) { records_.reserve(n); }

    /** Sum of issue-time deltas (total issue span in cycles). */
    Cycle totalIssueCycles() const;

    /** Count of records with the temporal tag set. */
    std::size_t temporalCount() const;

    /** Count of records with the spatial tag set. */
    std::size_t spatialCount() const;

    /** Count of write records. */
    std::size_t writeCount() const;

  private:
    std::string name_;
    std::vector<Record> records_;
};

} // namespace trace
} // namespace sac

#endif // SAC_TRACE_TRACE_HH
