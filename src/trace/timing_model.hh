/**
 * @file
 * The inter-reference issue-time model of the paper (Figure 4b).
 *
 * The paper measured, with the Spa tracer, the distribution of the
 * number of cycles between two consecutive load/store instructions
 * (assuming every instruction executes in one cycle), then sampled a
 * delta from that distribution for each trace entry at generation
 * time. This class reproduces that scheme with the figure's
 * approximate masses over the buckets {1,2,3,4,5,10,15,20,>20}.
 */

#ifndef SAC_TRACE_TIMING_MODEL_HH
#define SAC_TRACE_TIMING_MODEL_HH

#include <cstdint>

#include "src/util/distribution.hh"
#include "src/util/rng.hh"

namespace sac {
namespace trace {

/**
 * Samples issue-time deltas between consecutive references. The
 * default distribution follows Figure 4b; a custom distribution can be
 * supplied for sensitivity studies.
 */
class TimingModel
{
  public:
    /** Build the Figure-4b model seeded for reproducibility. */
    explicit TimingModel(std::uint64_t seed = 0xf19b4ull);

    /** Build from a custom delta distribution. */
    TimingModel(util::DiscreteDistribution dist, std::uint64_t seed);

    /** Sample the delta (>= 1 cycle) for the next trace entry. */
    std::uint16_t sampleDelta();

    /** The Figure-4b empirical distribution of issue-time deltas. */
    static util::DiscreteDistribution figure4bDistribution();

    /** Mean issue interval of the underlying distribution. */
    double meanDelta() const { return dist_.mean(); }

    /** Access the distribution (for the Fig-4b bench printout). */
    const util::DiscreteDistribution &distribution() const
    {
        return dist_;
    }

  private:
    util::DiscreteDistribution dist_;
    util::Rng rng_;
};

} // namespace trace
} // namespace sac

#endif // SAC_TRACE_TIMING_MODEL_HH
