#include "src/trace/trace.hh"

namespace sac {
namespace trace {

Cycle
Trace::totalIssueCycles() const
{
    Cycle total = 0;
    for (const auto &r : records_)
        total += r.delta;
    return total;
}

std::size_t
Trace::temporalCount() const
{
    std::size_t n = 0;
    for (const auto &r : records_)
        n += r.temporal ? 1 : 0;
    return n;
}

std::size_t
Trace::spatialCount() const
{
    std::size_t n = 0;
    for (const auto &r : records_)
        n += r.spatial ? 1 : 0;
    return n;
}

std::size_t
Trace::writeCount() const
{
    std::size_t n = 0;
    for (const auto &r : records_)
        n += r.isWrite() ? 1 : 0;
    return n;
}

} // namespace trace
} // namespace sac
