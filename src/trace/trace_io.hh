/**
 * @file
 * Binary serialization of traces so long traces can be generated once
 * and replayed by multiple experiments, exactly as the paper generated
 * traces once and simulated many configurations on them.
 *
 * Format: a fixed little-endian header (magic, version, name, count)
 * followed by packed per-record fields. The format is self-checking:
 * readers validate the magic, version and record count.
 */

#ifndef SAC_TRACE_TRACE_IO_HH
#define SAC_TRACE_TRACE_IO_HH

#include <cstddef>
#include <iosfwd>
#include <string>

#include "src/trace/trace.hh"

namespace sac {
namespace trace {

/** Serialize @p t to a binary stream. Returns false on I/O failure. */
bool writeTrace(const Trace &t, std::ostream &os);

/**
 * Incremental .sactrace decoder: validates the header on open(), then
 * hands out records batch by batch without ever holding the whole
 * trace. readTrace() and FileTraceSource are built on it.
 */
class TraceStreamReader
{
  public:
    /**
     * Parse and validate the header of @p is. The stream must outlive
     * the reader.
     * @retval false on a bad magic/version/name or I/O failure
     */
    bool open(std::istream &is);

    /** Benchmark name from the header (empty before open()). */
    const std::string &name() const { return name_; }

    /** Record count declared by the header. */
    std::uint64_t count() const { return count_; }

    /** Records not yet read. */
    std::uint64_t remaining() const { return count_ - read_; }

    /**
     * Decode up to @p max records into @p out.
     * @return records decoded; 0 at end of trace or on a malformed
     *         body (distinguish with failed())
     */
    std::size_t read(Record *out, std::size_t max);

    /**
     * Fast-forward past up to @p n records. Records are packed with a
     * fixed on-disk size, so on a seekable stream this is one bounded
     * relative seek, clamped to the records the body physically holds
     * (never past EOF); unseekable streams decode and discard.
     * @return records actually skipped. A short return with
     *         failed() == false is the clean end of the trace; with
     *         failed() == true the body is truncated or malformed
     *         (the header promised records that are not there).
     */
    std::uint64_t skip(std::uint64_t n);

    /** True when the body was malformed or truncated. */
    bool failed() const { return failed_; }

  private:
    std::istream *is_ = nullptr;
    std::string name_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    bool failed_ = false;
};

/** Serialize @p t to a file. Returns false on I/O failure. */
bool writeTraceFile(const Trace &t, const std::string &path);

/**
 * Deserialize a trace from a binary stream.
 *
 * @param is source stream
 * @param out receives the trace on success
 * @retval true on success, false on malformed input or I/O failure
 */
bool readTrace(std::istream &is, Trace &out);

/** Deserialize a trace from a file. */
bool readTraceFile(const std::string &path, Trace &out);

} // namespace trace
} // namespace sac

#endif // SAC_TRACE_TRACE_IO_HH
