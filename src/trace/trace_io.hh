/**
 * @file
 * Binary serialization of traces so long traces can be generated once
 * and replayed by multiple experiments, exactly as the paper generated
 * traces once and simulated many configurations on them.
 *
 * Format: a fixed little-endian header (magic, version, name, count)
 * followed by packed per-record fields. The format is self-checking:
 * readers validate the magic, version and record count.
 */

#ifndef SAC_TRACE_TRACE_IO_HH
#define SAC_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "src/trace/trace.hh"

namespace sac {
namespace trace {

/** Serialize @p t to a binary stream. Returns false on I/O failure. */
bool writeTrace(const Trace &t, std::ostream &os);

/** Serialize @p t to a file. Returns false on I/O failure. */
bool writeTraceFile(const Trace &t, const std::string &path);

/**
 * Deserialize a trace from a binary stream.
 *
 * @param is source stream
 * @param out receives the trace on success
 * @retval true on success, false on malformed input or I/O failure
 */
bool readTrace(std::istream &is, Trace &out);

/** Deserialize a trace from a file. */
bool readTraceFile(const std::string &path, Trace &out);

} // namespace trace
} // namespace sac

#endif // SAC_TRACE_TRACE_IO_HH
