#include "src/trace/trace_source.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace sac {
namespace trace {

std::uint64_t
TraceSource::skip(std::uint64_t n)
{
    Record scratch[256];
    std::uint64_t skipped = 0;
    while (skipped < n) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - skipped,
                                    std::size(scratch)));
        const std::size_t got = next(scratch, want);
        if (got == 0)
            break;
        skipped += got;
    }
    return skipped;
}

std::size_t
MemoryTraceSource::next(Record *out, std::size_t max)
{
    const std::size_t n = std::min(max, view_->size() - pos_);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = (*view_)[pos_ + i];
    pos_ += n;
    return n;
}

std::uint64_t
MemoryTraceSource::skip(std::uint64_t n)
{
    const std::uint64_t left = view_->size() - pos_;
    const std::uint64_t s = std::min<std::uint64_t>(n, left);
    pos_ += static_cast<std::size_t>(s);
    return s;
}

FileTraceSource::FileTraceSource(const std::string &path)
    : path_(path), is_(path, std::ios::binary)
{
    ok_ = is_ && reader_.open(is_);
}

std::size_t
FileTraceSource::next(Record *out, std::size_t max)
{
    if (!ok_)
        return 0;
    return reader_.read(out, max);
}

std::uint64_t
FileTraceSource::skip(std::uint64_t n)
{
    if (!ok_)
        return 0;
    return reader_.skip(n);
}

std::optional<std::uint64_t>
FileTraceSource::sizeHint() const
{
    if (!ok_)
        return std::nullopt;
    return reader_.count();
}

ChunkQueue::ChunkQueue(std::size_t max_chunks)
    : cap_(max_chunks == 0 ? 1 : max_chunks)
{
}

bool
ChunkQueue::push(std::vector<Record> &&chunk)
{
    std::unique_lock<std::mutex> lock(m_);
    SAC_ASSERT(!closed_, "push() on a closed ChunkQueue");
    cv_.wait(lock, [&] { return q_.size() < cap_ || aborted_; });
    if (aborted_)
        return false;
    q_.push_back(std::move(chunk));
    cv_.notify_all();
    return true;
}

void
ChunkQueue::close()
{
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    cv_.notify_all();
}

void
ChunkQueue::abort()
{
    std::lock_guard<std::mutex> lock(m_);
    aborted_ = true;
    q_.clear();
    cv_.notify_all();
}

bool
ChunkQueue::pop(std::vector<Record> &out)
{
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock,
             [&] { return !q_.empty() || closed_ || aborted_; });
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    cv_.notify_all();
    return true;
}

GeneratorTraceSource::GeneratorTraceSource(
    std::string name, std::function<void(const RecordSink &)> produce,
    std::size_t chunk_records, std::size_t max_chunks)
    : name_(std::move(name)), queue_(max_chunks)
{
    SAC_ASSERT(chunk_records > 0, "chunk size must be positive");
    producer_ = std::thread(
        [this, produce = std::move(produce), chunk_records] {
            std::vector<Record> chunk;
            chunk.reserve(chunk_records);
            bool accepted = true;
            const RecordSink sink = [&](const Record &r) {
                if (!accepted)
                    return; // consumer gone; drop the rest
                chunk.push_back(r);
                if (chunk.size() >= chunk_records) {
                    accepted = queue_.push(std::move(chunk));
                    chunk = {};
                    chunk.reserve(chunk_records);
                }
            };
            produce(sink);
            if (accepted && !chunk.empty())
                queue_.push(std::move(chunk));
            queue_.close();
        });
}

GeneratorTraceSource::~GeneratorTraceSource()
{
    queue_.abort();
    producer_.join();
}

std::size_t
GeneratorTraceSource::next(Record *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max) {
        if (pos_ == chunk_.size()) {
            pos_ = 0;
            chunk_.clear();
            if (!queue_.pop(chunk_))
                break; // stream ended
            if (chunk_.empty())
                continue;
        }
        const std::size_t take = std::min(max - n, chunk_.size() - pos_);
        for (std::size_t i = 0; i < take; ++i)
            out[n + i] = chunk_[pos_ + i];
        n += take;
        pos_ += take;
    }
    return n;
}

Trace
drainToTrace(TraceSource &src)
{
    Trace t(src.name());
    if (const auto hint = src.sizeHint())
        t.reserve(static_cast<std::size_t>(*hint));
    std::vector<Record> batch(TraceSource::defaultChunkRecords);
    while (const std::size_t n = src.next(batch.data(), batch.size())) {
        for (std::size_t i = 0; i < n; ++i)
            t.push(batch[i]);
    }
    return t;
}

} // namespace trace
} // namespace sac
