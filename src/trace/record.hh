/**
 * @file
 * The memory-reference trace entry produced by the instrumented
 * workloads and consumed by the cache simulators and profilers.
 *
 * An entry mirrors the paper's source-level trace call
 * `trace(reference, read/write, temporal, spatial)` (Figure 5) plus the
 * issue-time delta sampled from the Figure-4b distribution at trace
 * *generation* time, so that repeated simulations of the same trace are
 * identical.
 */

#ifndef SAC_TRACE_RECORD_HH
#define SAC_TRACE_RECORD_HH

#include <cstdint>

#include "src/util/types.hh"

namespace sac {
namespace trace {

/** Kind of memory access. */
enum class AccessType : std::uint8_t { Read = 1, Write = 2 };

/** One traced memory reference. */
struct Record
{
    /** Byte address of the referenced datum. */
    Addr addr = 0;
    /** Static reference (load/store instruction) identifier. */
    RefId ref = invalidRefId;
    /** Cycles elapsed since the previous reference was issued. */
    std::uint16_t delta = 1;
    /** Access size in bytes (8 for double-precision data). */
    std::uint8_t size = elementBytes;
    /** Read or write. */
    AccessType type = AccessType::Read;
    /** Software tag: reference exhibits temporal locality. */
    bool temporal = false;
    /** Software tag: reference exhibits spatial locality. */
    bool spatial = false;
    /**
     * Spatial-locality level for the variable-virtual-line extension
     * (paper Section 3.2): the virtual line spans 2^level physical
     * lines. 0 when the reference is not spatial; plain spatial
     * references carry level 1.
     */
    std::uint8_t spatialLevel = 0;

    bool isRead() const { return type == AccessType::Read; }
    bool isWrite() const { return type == AccessType::Write; }

    bool
    operator==(const Record &o) const
    {
        return addr == o.addr && ref == o.ref && delta == o.delta &&
               size == o.size && type == o.type &&
               temporal == o.temporal && spatial == o.spatial &&
               spatialLevel == o.spatialLevel;
    }
};

} // namespace trace
} // namespace sac

#endif // SAC_TRACE_RECORD_HH
