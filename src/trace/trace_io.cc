#include "src/trace/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>

namespace sac {
namespace trace {

namespace {

constexpr std::uint32_t traceMagic = 0x53414354; // "SACT"
constexpr std::uint32_t traceVersion = 2;

/** On-disk bytes of one packed record, matching writeTrace(): addr,
    ref, delta, size, type, tags, spatialLevel. */
constexpr std::uint64_t recordDiskBytes =
    sizeof(Addr) + sizeof(RefId) + sizeof(std::uint16_t) +
    4 * sizeof(std::uint8_t);

/**
 * Bytes left in @p is from the current position, or nullopt when the
 * stream is not seekable. Unseekable (pipe-fed) streams are left
 * readable: a failed probe seek would otherwise set failbit and
 * poison every subsequent sequential read, so any fail state the
 * probe itself caused is cleared and the position restored before
 * reporting "unknown".
 */
std::optional<std::uint64_t>
remainingBytes(std::istream &is)
{
    if (!is)
        return std::nullopt;
    const auto here = is.tellg();
    if (here == std::istream::pos_type(-1)) {
        is.clear();
        return std::nullopt;
    }
    is.seekg(0, std::ios::end);
    if (!is) {
        // Streams that can tell but not seek (single-direction
        // filters) land here: un-poison and stay at the old position.
        is.clear();
        is.seekg(here);
        is.clear();
        return std::nullopt;
    }
    const auto end = is.tellg();
    is.seekg(here);
    if (end == std::istream::pos_type(-1) || end < here)
        return std::nullopt;
    return static_cast<std::uint64_t>(end - here);
}

template <typename T>
void
writeScalar(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
readScalar(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

} // namespace

bool
writeTrace(const Trace &t, std::ostream &os)
{
    writeScalar(os, traceMagic);
    writeScalar(os, traceVersion);
    const auto name_len = static_cast<std::uint32_t>(t.name().size());
    writeScalar(os, name_len);
    os.write(t.name().data(), name_len);
    writeScalar(os, static_cast<std::uint64_t>(t.size()));
    for (const auto &r : t) {
        writeScalar(os, r.addr);
        writeScalar(os, r.ref);
        writeScalar(os, r.delta);
        writeScalar(os, r.size);
        writeScalar(os, static_cast<std::uint8_t>(r.type));
        const std::uint8_t tags = static_cast<std::uint8_t>(
            (r.temporal ? 1u : 0u) | (r.spatial ? 2u : 0u));
        writeScalar(os, tags);
        writeScalar(os, r.spatialLevel);
    }
    return static_cast<bool>(os);
}

bool
writeTraceFile(const Trace &t, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeTrace(t, os);
}

bool
TraceStreamReader::open(std::istream &is)
{
    is_ = nullptr;
    failed_ = false;
    read_ = 0;
    std::uint32_t magic = 0, version = 0, name_len = 0;
    if (!readScalar(is, magic) || magic != traceMagic)
        return false;
    if (!readScalar(is, version) || version != traceVersion)
        return false;
    if (!readScalar(is, name_len) || name_len > (1u << 20))
        return false;
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        return false;
    if (!readScalar(is, count_))
        return false;
    name_ = std::move(name);
    is_ = &is;
    return true;
}

std::size_t
TraceStreamReader::read(Record *out, std::size_t max)
{
    if (!is_ || failed_)
        return 0;
    std::size_t n = 0;
    while (n < max && read_ < count_) {
        Record r;
        std::uint8_t type = 0, tags = 0;
        if (!readScalar(*is_, r.addr) || !readScalar(*is_, r.ref) ||
            !readScalar(*is_, r.delta) || !readScalar(*is_, r.size) ||
            !readScalar(*is_, type) || !readScalar(*is_, tags) ||
            !readScalar(*is_, r.spatialLevel)) {
            failed_ = true;
            return 0;
        }
        if (type != 1 && type != 2) {
            failed_ = true;
            return 0;
        }
        r.type = static_cast<AccessType>(type);
        r.temporal = (tags & 1u) != 0;
        r.spatial = (tags & 2u) != 0;
        out[n++] = r;
        ++read_;
    }
    return n;
}

std::uint64_t
TraceStreamReader::skip(std::uint64_t n)
{
    if (!is_ || failed_)
        return 0;
    const std::uint64_t want = std::min(n, remaining());
    if (want == 0)
        return 0;
    if (const auto bytes = remainingBytes(*is_)) {
        // Seekable: clamp to the whole records physically present
        // before seeking. A file stream happily seeks past EOF, so
        // trusting the header count would claim records a truncated
        // body does not hold and only surface on the next read.
        const std::uint64_t present = *bytes / recordDiskBytes;
        const std::uint64_t s = std::min(want, present);
        if (s < want)
            failed_ = true; // header promises more than the body holds
        if (s == 0)
            return 0;
        is_->seekg(static_cast<std::streamoff>(s * recordDiskBytes),
                   std::ios::cur);
        if (!*is_) {
            failed_ = true;
            return 0;
        }
        read_ += s;
        return s;
    }
    // Unseekable (pipe-fed) stream: decode and discard. read() keeps
    // the truncation accounting honest (failed() on a short body).
    Record scratch[256];
    std::uint64_t skipped = 0;
    while (skipped < want) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(want - skipped,
                                    sizeof(scratch) /
                                        sizeof(scratch[0])));
        const std::size_t got = read(scratch, chunk);
        if (got == 0)
            break;
        skipped += got;
    }
    return skipped;
}

bool
readTrace(std::istream &is, Trace &out)
{
    TraceStreamReader reader;
    if (!reader.open(is))
        return false;

    // A corrupt header can carry an absurd count; bound it by the
    // bytes actually left in the stream so a 16-byte file cannot
    // demand a multi-GB reservation before the first record parses.
    std::uint64_t reservation = reader.count();
    if (const auto remaining = remainingBytes(is)) {
        if (reader.count() > *remaining / recordDiskBytes)
            return false;
    } else {
        // Unseekable stream: cap the up-front reservation and let
        // push() grow as records actually arrive (truncation is then
        // caught by the per-record reads below).
        reservation = std::min<std::uint64_t>(reader.count(), 1u << 16);
    }

    Trace t(reader.name());
    t.reserve(reservation);
    Record batch[512];
    while (reader.remaining() > 0) {
        const std::size_t n =
            reader.read(batch, sizeof(batch) / sizeof(batch[0]));
        if (n == 0)
            return false; // truncated or malformed body
        for (std::size_t i = 0; i < n; ++i)
            t.push(batch[i]);
    }
    out = std::move(t);
    return true;
}

bool
readTraceFile(const std::string &path, Trace &out)
{
    std::ifstream is(path, std::ios::binary);
    return is && readTrace(is, out);
}

} // namespace trace
} // namespace sac
