#include "src/trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace sac {
namespace trace {

namespace {

constexpr std::uint32_t traceMagic = 0x53414354; // "SACT"
constexpr std::uint32_t traceVersion = 2;

template <typename T>
void
writeScalar(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
readScalar(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

} // namespace

bool
writeTrace(const Trace &t, std::ostream &os)
{
    writeScalar(os, traceMagic);
    writeScalar(os, traceVersion);
    const auto name_len = static_cast<std::uint32_t>(t.name().size());
    writeScalar(os, name_len);
    os.write(t.name().data(), name_len);
    writeScalar(os, static_cast<std::uint64_t>(t.size()));
    for (const auto &r : t) {
        writeScalar(os, r.addr);
        writeScalar(os, r.ref);
        writeScalar(os, r.delta);
        writeScalar(os, r.size);
        writeScalar(os, static_cast<std::uint8_t>(r.type));
        const std::uint8_t tags = static_cast<std::uint8_t>(
            (r.temporal ? 1u : 0u) | (r.spatial ? 2u : 0u));
        writeScalar(os, tags);
        writeScalar(os, r.spatialLevel);
    }
    return static_cast<bool>(os);
}

bool
writeTraceFile(const Trace &t, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeTrace(t, os);
}

bool
readTrace(std::istream &is, Trace &out)
{
    std::uint32_t magic = 0, version = 0, name_len = 0;
    if (!readScalar(is, magic) || magic != traceMagic)
        return false;
    if (!readScalar(is, version) || version != traceVersion)
        return false;
    if (!readScalar(is, name_len) || name_len > (1u << 20))
        return false;
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        return false;
    std::uint64_t count = 0;
    if (!readScalar(is, count))
        return false;

    Trace t(name);
    t.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Record r;
        std::uint8_t type = 0, tags = 0;
        if (!readScalar(is, r.addr) || !readScalar(is, r.ref) ||
            !readScalar(is, r.delta) || !readScalar(is, r.size) ||
            !readScalar(is, type) || !readScalar(is, tags) ||
            !readScalar(is, r.spatialLevel)) {
            return false;
        }
        if (type != 1 && type != 2)
            return false;
        r.type = static_cast<AccessType>(type);
        r.temporal = (tags & 1u) != 0;
        r.spatial = (tags & 2u) != 0;
        t.push(r);
    }
    out = std::move(t);
    return true;
}

bool
readTraceFile(const std::string &path, Trace &out)
{
    std::ifstream is(path, std::ios::binary);
    return is && readTrace(is, out);
}

} // namespace trace
} // namespace sac
