/**
 * @file
 * Pull-based streaming trace sources: the simulation engine consumes
 * records in bounded chunks instead of materializing whole traces, so
 * peak memory of a sweep is independent of trace length.
 *
 * A TraceSource yields batches of records in issue order. Adapters
 * exist for the three producers in the tree:
 *  - MemoryTraceSource: an in-memory trace::Trace (view or owned);
 *  - FileTraceSource: a .sactrace file, decoded incrementally;
 *  - GeneratorTraceSource: a producer callback (e.g. the loop-nest
 *    interpreter) run on a background thread, bridged through a
 *    bounded ChunkQueue for backpressure.
 *
 * Sources are single-consumer and not thread-safe; the thread-safe
 * piece is the ChunkQueue, which is a bounded SPSC channel.
 */

#ifndef SAC_TRACE_TRACE_SOURCE_HH
#define SAC_TRACE_TRACE_SOURCE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/trace/trace.hh"
#include "src/trace/trace_io.hh"

namespace sac {
namespace trace {

/** Push-side callback: receives one record at a time, in issue order. */
using RecordSink = std::function<void(const Record &)>;

/** A pull-based, single-consumer stream of trace records. */
class TraceSource
{
  public:
    /** Default batch size used by chunked replay loops. */
    static constexpr std::size_t defaultChunkRecords = 4096;

    virtual ~TraceSource() = default;

    /**
     * Copy up to @p max records into @p out.
     * @return the number of records written; 0 means end of stream
     *         (a source never returns 0 before its end)
     */
    virtual std::size_t next(Record *out, std::size_t max) = 0;

    /**
     * Fast-forward past up to @p n records without delivering them
     * (the sampled engine's skip phase). The base implementation
     * decodes into a scratch buffer and discards; sources with random
     * access override it with a position bump.
     * @return records actually skipped. A short return means the
     *         stream produced no more records: failed() distinguishes
     *         the clean end of the trace (false) from a mid-stream
     *         decode error such as a truncated body (true), so
     *         callers never mistake lost records for a short trace.
     */
    virtual std::uint64_t skip(std::uint64_t n);

    /**
     * Did the stream end with a mid-stream error (truncated or
     * malformed body) rather than a clean end of trace? In-memory and
     * generated sources cannot fail; decoding sources override this.
     */
    virtual bool failed() const { return false; }

    /** Benchmark name of the underlying trace. */
    virtual const std::string &name() const = 0;

    /** Total record count when known up front (for reservations). */
    virtual std::optional<std::uint64_t> sizeHint() const
    {
        return std::nullopt;
    }

    /**
     * An independent source over the same record stream, positioned
     * at the first record — the handle parallel window replay hands
     * each worker so every shard seeks its own slice. Returns nullptr
     * when the stream cannot be re-opened (e.g. a one-shot generator);
     * callers must fall back to serial consumption. A clone of a view
     * source shares the viewed trace, which must outlive the clone.
     */
    virtual std::unique_ptr<TraceSource> clone() const
    {
        return nullptr;
    }
};

/**
 * Adapter over an in-memory Trace. The view constructor does not copy
 * the records; the caller keeps the trace alive. The owning
 * constructor moves the trace in.
 */
class MemoryTraceSource : public TraceSource
{
  public:
    /** Non-owning view of @p t (which must outlive the source). */
    explicit MemoryTraceSource(const Trace &t) : view_(&t) {}

    /** Owning adapter: the trace is moved into the source. */
    explicit MemoryTraceSource(Trace &&t)
        : owned_(std::move(t)), view_(&owned_)
    {
    }

    std::size_t next(Record *out, std::size_t max) override;

    /** O(1) fast-forward: a position bump, no copying. */
    std::uint64_t skip(std::uint64_t n) override;

    const std::string &name() const override { return view_->name(); }
    std::optional<std::uint64_t> sizeHint() const override
    {
        return view_->size();
    }

    /** Rewind to the first record. */
    void reset() { pos_ = 0; }

    /**
     * A fresh view over the same trace, rewound to record 0. The
     * clone of an owning source views the original's storage, so the
     * source being cloned must outlive its clones.
     */
    std::unique_ptr<TraceSource> clone() const override
    {
        return std::make_unique<MemoryTraceSource>(*view_);
    }

  private:
    Trace owned_;
    const Trace *view_;
    std::size_t pos_ = 0;
};

/**
 * Adapter over a .sactrace file, decoding records incrementally (the
 * file is never loaded whole). Check ok() after construction; a
 * malformed or truncated body makes next() return 0 early with
 * failed() set.
 */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path);

    /** Did the file open with a valid header? */
    bool ok() const { return ok_; }

    /** Did decoding fail mid-stream (malformed or truncated body)? */
    bool failed() const override { return reader_.failed(); }

    std::size_t next(Record *out, std::size_t max) override;

    /**
     * Seek-based fast-forward (fixed on-disk record size), clamped to
     * the records the body physically holds: a truncated file yields
     * a short return with failed() set, never a phantom skip past
     * EOF.
     */
    std::uint64_t skip(std::uint64_t n) override;

    const std::string &name() const override { return reader_.name(); }
    std::optional<std::uint64_t> sizeHint() const override;

    /** Re-open the file from the top (own stream, own position). */
    std::unique_ptr<TraceSource> clone() const override
    {
        auto copy = std::make_unique<FileTraceSource>(path_);
        return copy->ok() ? std::move(copy) : nullptr;
    }

  private:
    std::string path_;
    std::ifstream is_;
    TraceStreamReader reader_;
    bool ok_ = false;
};

/**
 * Bounded SPSC channel of record chunks. push() blocks while the
 * queue is at capacity (backpressure on the producer); pop() blocks
 * until a chunk or close() arrives. abort() unsticks a blocked
 * producer by discarding further chunks, for consumers that stop
 * early.
 */
class ChunkQueue
{
  public:
    /** @param max_chunks capacity in chunks (>= 1) */
    explicit ChunkQueue(std::size_t max_chunks = 4);

    /**
     * Enqueue @p chunk, blocking while the queue is full.
     * @return false when the queue was aborted (chunk discarded)
     */
    bool push(std::vector<Record> &&chunk);

    /** Producer is done; pop() drains then returns false. */
    void close();

    /** Discard current and future chunks; unblocks push() and pop(). */
    void abort();

    /**
     * Dequeue the next chunk into @p out (contents replaced).
     * @return false when the queue is closed/aborted and drained
     */
    bool pop(std::vector<Record> &out);

  private:
    std::mutex m_;
    std::condition_variable cv_;
    std::deque<std::vector<Record>> q_;
    std::size_t cap_;
    bool closed_ = false;
    bool aborted_ = false;
};

/**
 * Adapter that runs a producer callback on a background thread and
 * streams its records through a bounded ChunkQueue — the loop-nest
 * generator adapter. Generation overlaps consumption; memory is
 * bounded by the queue capacity. If the source is destroyed before
 * the stream is drained, the producer's remaining output is discarded
 * and the thread joined.
 */
class GeneratorTraceSource : public TraceSource
{
  public:
    /**
     * @param name benchmark name reported by name()
     * @param produce called once on the background thread; must emit
     *        every record into the provided sink and return
     * @param chunk_records producer-side chunking granularity
     * @param max_chunks queue capacity (backpressure bound)
     */
    GeneratorTraceSource(std::string name,
                         std::function<void(const RecordSink &)> produce,
                         std::size_t chunk_records = defaultChunkRecords,
                         std::size_t max_chunks = 4);

    ~GeneratorTraceSource() override;

    std::size_t next(Record *out, std::size_t max) override;
    const std::string &name() const override { return name_; }

  private:
    std::string name_;
    ChunkQueue queue_;
    std::thread producer_;
    std::vector<Record> chunk_;
    std::size_t pos_ = 0;
};

/**
 * Drain @p src into an in-memory Trace (the inverse adapter, mostly
 * for tests and tools).
 */
Trace drainToTrace(TraceSource &src);

} // namespace trace
} // namespace sac

#endif // SAC_TRACE_TRACE_SOURCE_HH
