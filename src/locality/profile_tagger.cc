#include "src/locality/profile_tagger.hh"

#include <cstdlib>
#include <unordered_map>

#include "src/util/logging.hh"

namespace sac {
namespace locality {

namespace {

/** Live stream state of one static reference. */
struct StreamState
{
    Addr minAddr = 0;
    Addr maxAddr = 0;
    Addr lastAddr = 0;
    bool live = false;
};

std::uint8_t
levelOfSpan(double span_bytes)
{
    if (span_bytes >= 256.0)
        return 3;
    if (span_bytes >= 128.0)
        return 2;
    return 1;
}

} // namespace

ProfileResult
profileTags(const trace::Trace &t, const ProfileTaggerParams &params)
{
    // Find the static reference count.
    RefId max_ref = 0;
    for (const auto &r : t)
        max_ref = std::max(max_ref, r.ref);
    const std::size_t ref_count = t.empty() ? 0 : max_ref + 1;

    ProfileResult result;
    result.profiles.assign(ref_count, RefProfile{});
    result.tags.assign(ref_count, loopnest::Tags{});
    if (t.empty())
        return result;

    // Pass: per-datum last touch (index + owning reference) for
    // temporal profiling, and per-reference stride/stream state for
    // spatial profiling.
    struct LastTouch
    {
        std::uint64_t index;
        RefId ref;
    };
    std::unordered_map<Addr, LastTouch> last_touch;
    last_touch.reserve(1 << 16);
    std::vector<StreamState> streams(ref_count);

    auto close_stream = [&](RefId ref, StreamState &s) {
        if (!s.live)
            return;
        result.profiles[ref].streamSpanSum += static_cast<double>(
            s.maxAddr - s.minAddr + elementBytes);
        ++result.profiles[ref].streams;
        s.live = false;
    };

    for (std::uint64_t i = 0; i < t.size(); ++i) {
        const auto &r = t[i];
        RefProfile &p = result.profiles[r.ref];
        ++p.accesses;

        // Temporal: credit the *previous* toucher of this datum when
        // we arrive within the exploitable window.
        const Addr datum = r.addr / elementBytes;
        const auto it = last_touch.find(datum);
        if (it != last_touch.end()) {
            if (i - it->second.index <= params.maxReuseDistance)
                ++result.profiles[it->second.ref].reusedSoon;
            it->second = {i, r.ref};
        } else {
            last_touch.emplace(datum, LastTouch{i, r.ref});
        }

        // Spatial: consecutive-access strides of this reference.
        StreamState &s = streams[r.ref];
        if (s.live) {
            ++p.pairs;
            const std::uint64_t stride = static_cast<std::uint64_t>(
                std::llabs(static_cast<std::int64_t>(r.addr) -
                           static_cast<std::int64_t>(s.lastAddr)));
            if (stride <= params.maxStrideBytes) {
                ++p.spatialPairs;
                s.minAddr = std::min(s.minAddr, r.addr);
                s.maxAddr = std::max(s.maxAddr, r.addr);
            } else {
                close_stream(r.ref, s);
            }
        }
        if (!s.live) {
            s.live = true;
            s.minAddr = s.maxAddr = r.addr;
        }
        s.lastAddr = r.addr;
    }
    for (RefId ref = 0; ref < streams.size(); ++ref)
        close_stream(ref, streams[ref]);

    // Decide the tags.
    for (std::size_t ref = 0; ref < ref_count; ++ref) {
        const RefProfile &p = result.profiles[ref];
        if (p.accesses == 0)
            continue;
        loopnest::Tags tag;
        tag.temporal = p.reuseFraction() >= params.minReuseFraction;
        tag.spatial = p.pairs > 0 &&
                      p.strideFraction() >= params.minStrideFraction;
        tag.spatialLevel =
            tag.spatial ? levelOfSpan(p.meanStreamSpan()) : 0;
        result.tags[ref] = tag;
    }
    return result;
}

trace::Trace
retagFromProfile(const trace::Trace &t,
                 const ProfileTaggerParams &params)
{
    const ProfileResult profile = profileTags(t, params);
    trace::Trace out(t.name());
    out.reserve(t.size());
    for (const auto &r : t) {
        trace::Record copy = r;
        const auto &tag = profile.tags[r.ref];
        copy.temporal = tag.temporal;
        copy.spatial = tag.spatial;
        copy.spatialLevel = tag.spatialLevel;
        out.push(copy);
    }
    return out;
}

} // namespace locality
} // namespace sac
