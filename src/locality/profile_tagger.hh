/**
 * @file
 * Profile-based tagging: derive the temporal/spatial tags of every
 * static reference from a trace's *observed* behavior instead of
 * compile-time analysis.
 *
 * This answers the question behind the paper's Figure 10a ("if most
 * references can be instrumented ... significant further performance
 * improvements could be obtained") as an upper bound: the profiler
 * sees through CALL-poisoned loops, indirect subscripts and aliased
 * subscripts — everything the Section-2.3 analysis must give up on —
 * at the cost of needing a profiling run, as profile-guided
 * compilers do.
 */

#ifndef SAC_LOCALITY_PROFILE_TAGGER_HH
#define SAC_LOCALITY_PROFILE_TAGGER_HH

#include <cstdint>
#include <vector>

#include "src/loopnest/generator.hh"
#include "src/trace/trace.hh"

namespace sac {
namespace locality {

/** Thresholds of the profile-based tagger. */
struct ProfileTaggerParams
{
    /**
     * A touch of a datum counts as exploitable reuse when the next
     * touch follows within this many references (the paper estimates
     * a ~2500-reference line lifetime in an 8-KB cache).
     */
    std::uint64_t maxReuseDistance = 2500;
    /**
     * Tag a reference temporal when at least this fraction of the
     * data it touches is re-touched within the window.
     */
    double minReuseFraction = 0.3;
    /**
     * A consecutive access pair of one instruction is spatial when
     * its stride is at most this many bytes (one physical line).
     */
    std::uint64_t maxStrideBytes = 32;
    /** Tag spatial when this fraction of pairs is within a line. */
    double minStrideFraction = 0.5;
};

/** Per-reference profile counters (exposed for tests and tooling). */
struct RefProfile
{
    std::uint64_t accesses = 0;
    std::uint64_t reusedSoon = 0;   //!< touches re-touched in window
    std::uint64_t spatialPairs = 0; //!< consecutive in-line strides
    std::uint64_t pairs = 0;        //!< consecutive access pairs
    double streamSpanSum = 0.0;     //!< accumulated stream spans
    std::uint64_t streams = 0;

    double
    reuseFraction() const
    {
        return accesses ? static_cast<double>(reusedSoon) / accesses
                        : 0.0;
    }

    double
    strideFraction() const
    {
        return pairs ? static_cast<double>(spatialPairs) / pairs : 0.0;
    }

    double
    meanStreamSpan() const
    {
        return streams ? streamSpanSum / streams : 0.0;
    }
};

/** Result of profiling a trace. */
struct ProfileResult
{
    /** Tags per static reference, indexed by RefId. */
    loopnest::TagVector tags;
    /** Raw counters per static reference. */
    std::vector<RefProfile> profiles;
};

/** Profile @p t and derive tags for every static reference in it. */
ProfileResult profileTags(const trace::Trace &t,
                          const ProfileTaggerParams &params = {});

/** Copy of @p t re-tagged with profile-derived tags. */
trace::Trace retagFromProfile(const trace::Trace &t,
                              const ProfileTaggerParams &params = {});

} // namespace locality
} // namespace sac

#endif // SAC_LOCALITY_PROFILE_TAGGER_HH
