/**
 * @file
 * The paper's Section-2.3 locality analysis: elementary compile-time
 * tagging of array references with temporal and spatial bits.
 *
 * Rules implemented (deliberately as simple as the paper's):
 *  - spatial: the innermost enclosing loop variable moves the
 *    reference only through the contiguous (leading) subscript, with a
 *    known constant coefficient of magnitude < 4 elements (32 bytes of
 *    doubles). Movement through a non-leading subscript means a
 *    parametric address stride, so the reference is not tagged.
 *  - temporal (self): some enclosing loop variable has a zero
 *    coefficient in every subscript — the reference is invariant with
 *    respect to that loop, so that loop carries its reuse.
 *  - temporal (group): two references to the same array in the same
 *    loop body are "uniformly generated" — identical coefficients in
 *    every subscript, constants possibly differing. All members of
 *    such a group are tagged temporal; only the lexicographically
 *    leading member (the one touching new data first) keeps its
 *    spatial tag, as in the paper's Figure 5 where B(J,I+1) is
 *    temporal+spatial but B(J,I) is temporal only.
 *  - a CALL in a loop body clears both tags on every reference inside
 *    that loop (no interprocedural analysis).
 *  - references with indirect subscripts, or outside any loop, are
 *    not analyzable and stay untagged.
 *  - user directives (Section 4.1) override the computed tags.
 */

#ifndef SAC_LOCALITY_ANALYZER_HH
#define SAC_LOCALITY_ANALYZER_HH

#include <cstddef>

#include "src/loopnest/generator.hh"
#include "src/loopnest/program.hh"

namespace sac {
namespace locality {

/** Summary counters of one analysis run. */
struct AnalysisStats
{
    std::size_t totalRefs = 0;
    std::size_t temporalRefs = 0;
    std::size_t spatialRefs = 0;
    std::size_t poisonedRefs = 0;   //!< cleared because of a CALL
    std::size_t indirectRefs = 0;   //!< unanalyzable indirect subscripts
    std::size_t outsideLoopRefs = 0;
    std::size_t groupMembers = 0;   //!< refs in uniformly generated groups
    std::size_t userOverrides = 0;
};

/** Result of analyzing a program. */
struct AnalysisResult
{
    loopnest::TagVector tags;
    AnalysisStats stats;
};

/**
 * Analyze a finalized program and compute the software tags of every
 * static reference (array references, indirect-subscript loads and
 * indirect-bound loads alike).
 */
AnalysisResult analyze(const loopnest::Program &program);

/**
 * The spatial-coefficient threshold in elements: a leading-dimension
 * stride below this is considered spatial (4 doubles = one 32-byte
 * physical line).
 */
inline constexpr std::int64_t spatialCoefficientLimit = 4;

/**
 * Self-temporal reuse is only credited when the carrying (invariant)
 * loop lies within this many innermost levels of the reference's
 * nest — the "localized iteration space" approximation of Wolf & Lam
 * (the paper's reference [30]): reuse carried by an outer time loop
 * sweeps the whole working set between touches and is not cacheable.
 */
inline constexpr std::size_t temporalDepthLimit = 2;

} // namespace locality
} // namespace sac

#endif // SAC_LOCALITY_ANALYZER_HH
