#include "src/locality/analyzer.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "src/util/logging.hh"

namespace sac {
namespace locality {

namespace {

using loopnest::AffineExpr;
using loopnest::ArrayId;
using loopnest::ArrayRef;
using loopnest::Bound;
using loopnest::Loop;
using loopnest::Program;
using loopnest::Stmt;
using loopnest::Subscript;
using loopnest::Tags;
using loopnest::VarId;

/** Everything the analysis needs to know about one static reference. */
struct RefInfo
{
    RefId ref = invalidRefId;
    ArrayId array = 0;
    /** Affine parts of the subscripts (empty for indirect loads' 1-D
     *  subscript convention: exactly one entry, the index expr). */
    std::vector<AffineExpr> subs;
    /** Enclosing loop variables, outermost first. */
    std::vector<VarId> loops;
    /**
     * Per enclosing loop: true when a deeper open loop's bounds
     * depend on this variable, so invariance with respect to it does
     * not imply reuse (e.g. A(j2) inside DO j2 = D(j1)..D(j1+1)-1 is
     * not reused across j1).
     */
    std::vector<bool> invarianceBlocked;
    /** Identity of the innermost enclosing loop (grouping scope). */
    const Loop *scope = nullptr;
    /** Constant trip count of the innermost loop, if computable. */
    std::optional<std::int64_t> innerTrip;
    bool hasIndirectSub = false;
    bool poisoned = false;
    std::optional<bool> userTemporal;
    std::optional<bool> userSpatial;
};

/** Collects RefInfo for every reference in lexical order. */
class Collector
{
  public:
    explicit Collector(const Program &program) : program_(program)
    {
        (void)program_;
    }

    std::vector<RefInfo>
    collect()
    {
        walkStmts(program_.statements(), false);
        return std::move(refs_);
    }

  private:
    void
    walkStmts(const std::vector<Stmt> &stmts, bool poisoned)
    {
        for (const auto &s : stmts) {
            if (s.isLoop()) {
                walkLoop(s.loop(), poisoned);
            } else if (s.isRef()) {
                addRef(s.ref(), poisoned);
            } else if (s.isConditional()) {
                // Compilers tag guarded references as if they always
                // execute; a CALL inside the guard still poisons.
                const auto &body = s.conditional().body;
                const bool body_poisoned =
                    poisoned ||
                    std::any_of(body.begin(), body.end(),
                                [](const Stmt &st) {
                                    return st.isCall();
                                });
                walkStmts(body, body_poisoned);
            }
        }
    }

    void
    walkLoop(const Loop &l, bool poisoned)
    {
        // Bounds are evaluated in the enclosing context, before the
        // loop variable exists.
        addBound(l.lo, poisoned);
        addBound(l.hi, poisoned);

        const bool body_poisoned =
            poisoned ||
            std::any_of(l.body.begin(), l.body.end(),
                        [](const Stmt &s) { return s.isCall(); });

        // Variables this loop's bounds depend on cannot carry reuse
        // for anything inside this loop.
        std::vector<std::size_t> marked;
        for (const VarId u : boundVars(l)) {
            for (std::size_t d = 0; d < loopStack_.size(); ++d) {
                if (loopStack_[d] == u) {
                    ++blockMark_[d];
                    marked.push_back(d);
                }
            }
        }

        loopStack_.push_back(l.var);
        blockMark_.push_back(0);
        scopeStack_.push_back(&l);
        tripStack_.push_back(constantTrip(l));
        walkStmts(l.body, body_poisoned);
        tripStack_.pop_back();
        scopeStack_.pop_back();
        blockMark_.pop_back();
        loopStack_.pop_back();

        for (const auto d : marked)
            --blockMark_[d];
    }

    /** Constant trip count of a loop, when its bounds are constant. */
    static std::optional<std::int64_t>
    constantTrip(const Loop &l)
    {
        if (l.lo.indirect || l.hi.indirect ||
            !l.lo.affine.isConstant() || !l.hi.affine.isConstant() ||
            l.step == 0) {
            return std::nullopt;
        }
        const std::int64_t span =
            l.hi.affine.constant() - l.lo.affine.constant();
        const std::int64_t trips = span / l.step + 1;
        return trips > 0 ? std::optional(trips) : std::optional(0L);
    }

    /** Variables appearing in a loop's bound expressions. */
    static std::vector<VarId>
    boundVars(const Loop &l)
    {
        std::vector<VarId> vars;
        auto collect = [&vars](const Bound &b) {
            for (const auto &t : b.affine.terms())
                vars.push_back(t.var);
            if (b.indirect)
                for (const auto &t : b.indirect->index.terms())
                    vars.push_back(t.var);
        };
        collect(l.lo);
        collect(l.hi);
        return vars;
    }

    /** Snapshot of the currently blocked stack depths. */
    std::vector<bool>
    blockedSnapshot() const
    {
        std::vector<bool> blocked(loopStack_.size());
        for (std::size_t d = 0; d < loopStack_.size(); ++d)
            blocked[d] = blockMark_[d] > 0;
        return blocked;
    }

    void
    addBound(const Bound &b, bool poisoned)
    {
        if (!b.indirect)
            return;
        RefInfo info;
        info.ref = b.indirect->ref;
        info.array = b.indirect->array;
        info.subs = {b.indirect->index};
        info.loops = loopStack_;
        info.invarianceBlocked = blockedSnapshot();
        info.scope = scopeStack_.empty() ? nullptr : scopeStack_.back();
        info.innerTrip =
            tripStack_.empty() ? std::nullopt : tripStack_.back();
        info.poisoned = poisoned;
        refs_.push_back(std::move(info));
    }

    void
    addRef(const ArrayRef &r, bool poisoned)
    {
        // Indirect-subscript loads are references of their own.
        for (const auto &sub : r.subs) {
            if (!sub.indirect)
                continue;
            RefInfo load;
            load.ref = sub.indirect->ref;
            load.array = sub.indirect->array;
            load.subs = {sub.indirect->index};
            load.loops = loopStack_;
            load.invarianceBlocked = blockedSnapshot();
            load.scope =
                scopeStack_.empty() ? nullptr : scopeStack_.back();
            load.innerTrip =
                tripStack_.empty() ? std::nullopt : tripStack_.back();
            load.poisoned = poisoned;
            refs_.push_back(std::move(load));
        }

        RefInfo info;
        info.ref = r.ref;
        info.array = r.array;
        info.loops = loopStack_;
        info.invarianceBlocked = blockedSnapshot();
        info.scope = scopeStack_.empty() ? nullptr : scopeStack_.back();
        info.innerTrip =
            tripStack_.empty() ? std::nullopt : tripStack_.back();
        info.poisoned = poisoned;
        info.userTemporal = r.userTemporal;
        info.userSpatial = r.userSpatial;
        for (const auto &sub : r.subs) {
            info.subs.push_back(sub.affine);
            if (sub.indirect)
                info.hasIndirectSub = true;
        }
        refs_.push_back(std::move(info));
    }

    const Program &program_;
    std::vector<RefInfo> refs_;
    std::vector<VarId> loopStack_;
    std::vector<int> blockMark_;
    std::vector<const Loop *> scopeStack_;
    std::vector<std::optional<std::int64_t>> tripStack_;
};

/** Is the reference invariant with respect to some enclosing loop? */
bool
hasSelfTemporalDependence(const RefInfo &r)
{
    // Only the innermost temporalDepthLimit loops can carry
    // exploitable (localized) reuse.
    const std::size_t first =
        r.loops.size() > temporalDepthLimit
            ? r.loops.size() - temporalDepthLimit
            : 0;
    for (std::size_t d = first; d < r.loops.size(); ++d) {
        const VarId v = r.loops[d];
        if (d < r.invarianceBlocked.size() && r.invarianceBlocked[d])
            continue; // inner trip space depends on v: no reuse
        bool invariant = true;
        for (const auto &sub : r.subs) {
            if (sub.coeffOf(v) != 0) {
                invariant = false;
                break;
            }
        }
        if (invariant)
            return true;
    }
    return false;
}

/** Paper rule: movement only through the leading subscript, |c| < 4. */
bool
hasSpatialLocality(const RefInfo &r)
{
    if (r.loops.empty() || r.subs.empty())
        return false;
    const VarId innermost = r.loops.back();
    for (std::size_t d = 1; d < r.subs.size(); ++d) {
        if (r.subs[d].coeffOf(innermost) != 0)
            return false; // parametric address stride
    }
    return std::llabs(r.subs[0].coeffOf(innermost)) <
           spatialCoefficientLimit;
}

/**
 * Spatial level for the variable-virtual-line extension: estimate
 * the stream span of the innermost loop and grade it so the virtual
 * line covers 2^level physical lines (level 1 = 64 B ... level 3 =
 * 256 B). Falls back to level 1 when the trip count is unknown.
 */
std::uint8_t
spatialLevelOf(const RefInfo &r)
{
    const VarId innermost = r.loops.back();
    const std::int64_t stride =
        std::llabs(r.subs[0].coeffOf(innermost)) * 8;
    if (stride == 0 || !r.innerTrip)
        return 1;
    const std::int64_t bytes = *r.innerTrip * stride;
    if (bytes >= 256)
        return 3;
    if (bytes >= 128)
        return 2;
    return 1;
}

/** Are two references uniformly generated (same coefficients)? */
bool
uniformlyGenerated(const RefInfo &a, const RefInfo &b)
{
    if (a.array != b.array || a.subs.size() != b.subs.size())
        return false;
    for (std::size_t d = 0; d < a.subs.size(); ++d)
        if (!a.subs[d].sameCoefficients(b.subs[d]))
            return false;
    return true;
}

/**
 * Compare subscript-constant vectors, most significant subscript last
 * (column-major). Returns <0, 0, >0 like a three-way comparison.
 */
int
compareConstants(const RefInfo &a, const RefInfo &b)
{
    for (std::size_t d = a.subs.size(); d-- > 0;) {
        const auto ca = a.subs[d].constant();
        const auto cb = b.subs[d].constant();
        if (ca != cb)
            return ca < cb ? -1 : 1;
    }
    return 0;
}

} // namespace

AnalysisResult
analyze(const Program &program)
{
    SAC_ASSERT(program.finalized(),
               "the program must be finalized before analysis");

    Collector collector(program);
    const std::vector<RefInfo> refs = collector.collect();

    AnalysisResult result;
    result.tags.assign(program.refCount(), Tags{});
    result.stats.totalRefs = refs.size();

    // Pass 1: per-reference self analysis.
    std::vector<Tags> computed(refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const RefInfo &r = refs[i];
        if (r.poisoned) {
            ++result.stats.poisonedRefs;
            continue;
        }
        if (r.loops.empty()) {
            ++result.stats.outsideLoopRefs;
            continue;
        }
        if (r.hasIndirectSub) {
            ++result.stats.indirectRefs;
            continue;
        }
        computed[i].spatial = hasSpatialLocality(r);
        if (computed[i].spatial)
            computed[i].spatialLevel = spatialLevelOf(r);
        computed[i].temporal = hasSelfTemporalDependence(r);
    }

    // Pass 2: uniformly generated groups within the same loop body.
    // Group by (scope, array, rank); compare coefficients pairwise.
    std::map<std::tuple<const Loop *, ArrayId, std::size_t>,
             std::vector<std::size_t>>
        buckets;
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const RefInfo &r = refs[i];
        if (r.poisoned || r.loops.empty() || r.hasIndirectSub)
            continue;
        buckets[{r.scope, r.array, r.subs.size()}].push_back(i);
    }
    for (const auto &[key, members] : buckets) {
        (void)key;
        if (members.size() < 2)
            continue;
        // Partition the bucket into uniformly generated groups.
        std::vector<bool> assigned(members.size(), false);
        for (std::size_t a = 0; a < members.size(); ++a) {
            if (assigned[a])
                continue;
            std::vector<std::size_t> group{members[a]};
            assigned[a] = true;
            for (std::size_t b = a + 1; b < members.size(); ++b) {
                if (!assigned[b] &&
                    uniformlyGenerated(refs[members[a]],
                                       refs[members[b]])) {
                    group.push_back(members[b]);
                    assigned[b] = true;
                }
            }
            if (group.size() < 2)
                continue;
            result.stats.groupMembers += group.size();
            // Every member exhibits a group temporal dependence.
            for (const auto idx : group)
                computed[idx].temporal = true;
            // Only leading members keep the spatial tag.
            std::size_t leader = group[0];
            for (const auto idx : group)
                if (compareConstants(refs[idx], refs[leader]) > 0)
                    leader = idx;
            for (const auto idx : group) {
                if (compareConstants(refs[idx], refs[leader]) < 0) {
                    computed[idx].spatial = false;
                    computed[idx].spatialLevel = 0;
                }
            }
        }
    }

    // Pass 3: user directives and final write-out.
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const RefInfo &r = refs[i];
        Tags t = computed[i];
        if (r.userTemporal) {
            t.temporal = *r.userTemporal;
            ++result.stats.userOverrides;
        }
        if (r.userSpatial) {
            t.spatial = *r.userSpatial;
            t.spatialLevel =
                t.spatial ? std::max<std::uint8_t>(t.spatialLevel, 1)
                          : 0;
            ++result.stats.userOverrides;
        }
        SAC_ASSERT(r.ref < result.tags.size(), "reference id out of range");
        result.tags[r.ref] = t;
        result.stats.temporalRefs += t.temporal ? 1 : 0;
        result.stats.spatialRefs += t.spatial ? 1 : 0;
    }
    return result;
}

} // namespace locality
} // namespace sac
