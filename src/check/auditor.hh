/**
 * @file
 * Structural invariant auditor for the software-assisted cache. A
 * check::Auditor attached to a core::SoftwareAssistedCache re-derives,
 * after every access, the invariants the simulator must preserve by
 * construction (Section 3.2's safety claim: software tags steer
 * performance, never correctness):
 *
 *  - no physical line resident in both the main and the bounce-back
 *    (aux) cache at once;
 *  - per-set consistency of the LRU state: every valid line maps to
 *    the set it sits in, no set holds the same line twice, and valid
 *    lines in a set carry distinct LRU stamps;
 *  - temporal-bit lifecycle: no temporal (or prefetched) bits when the
 *    configuration has the mechanism disabled;
 *  - write-buffer occupancy never exceeds its capacity;
 *  - traffic conservation: bytes_fetched equals the sum of fill sizes,
 *    and writeback bytes are whole lines when nothing bypasses;
 *  - counter sanity: accesses partition exactly into main/aux hits,
 *    misses and bypasses; miss classes partition misses; the access
 *    counter and completion cycle are monotone.
 *
 * Violations are counted in a telemetry::CounterRegistry group
 * ("audit.violation.<kind>") and either abort with a panic carrying
 * the offending cycle and address (OnViolation::Panic, the default)
 * or are recorded for inspection (OnViolation::Record, used by the
 * fuzzer and by tests).
 *
 * The per-access hook only exists when the build has SAC_AUDIT=ON
 * (Debug and sanitizer builds by default); in release builds the call
 * site compiles out entirely and attaching an auditor is a no-op.
 */

#ifndef SAC_CHECK_AUDITOR_HH
#define SAC_CHECK_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/cache_array.hh"
#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/sim/run_stats.hh"
#include "src/telemetry/counter_registry.hh"

namespace sac {
namespace check {

/** One detected invariant violation. */
struct Violation
{
    std::string kind;    //!< counter suffix, e.g. "duplicate_line"
    std::string message; //!< human-readable description
    Cycle cycle = 0;     //!< issue clock when detected
    Addr addr = 0;       //!< offending (line) address when known
};

/** Post-access structural invariant checker (one per simulator). */
class Auditor : public core::AccessAuditor
{
  public:
    /** What to do when an invariant does not hold. */
    enum class OnViolation { Panic, Record };

    explicit Auditor(OnViolation mode = OnViolation::Panic);

    /** Were the SAC_AUDIT hooks compiled into this build? */
    static bool hooksCompiledIn()
    {
        return core::SoftwareAssistedCache::auditHooksCompiledIn();
    }

    /** Per-access hook invoked by the simulator (SAC_AUDIT=ON only). */
    void afterAccess(const core::SoftwareAssistedCache &cache,
                     const trace::Record &rec) override;

    /** Run every structural check once against @p cache. */
    void auditNow(const core::SoftwareAssistedCache &cache);

    /**
     * Structural audit of a (main, aux) array pair under @p cfg.
     * Exposed so tests can audit deliberately corrupted arrays
     * directly. @p aux may be nullptr.
     */
    void auditArrays(const cache::CacheArray &main,
                     const cache::CacheArray *aux,
                     const core::Config &cfg, Cycle cycle);

    /** Counter-partition and traffic-conservation audit of @p stats. */
    void auditStats(const sim::RunStats &stats, const core::Config &cfg,
                    Cycle cycle);

    /** Violations recorded so far (OnViolation::Record only). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Total violations across all kinds. */
    std::uint64_t violationCount() const
    {
        return counters_.total("audit.violation");
    }

    /** Accesses audited through afterAccess(). */
    std::uint64_t accessesAudited() const { return audited_; }

    /** Per-kind violation counters ("audit.violation.<kind>"). */
    const telemetry::CounterRegistry &counters() const
    {
        return counters_;
    }

  private:
    void report(const char *kind, Cycle cycle, Addr addr,
                const std::string &message);

    OnViolation mode_;
    telemetry::CounterRegistry counters_;
    std::vector<Violation> violations_;
    std::uint64_t audited_ = 0;

    // Monotonicity state, valid for the one simulator this auditor is
    // attached to.
    std::uint64_t lastAccesses_ = 0;
    Cycle lastCompletion_ = 0;
    Cycle lastBusFree_ = 0;
};

/**
 * Bit-for-bit architectural state comparison of two simulators, the
 * proof obligation of the functional-warming mode: a warming replay
 * and a detailed replay of the same prefix must be indistinguishable
 * in every piece of state that can influence future behavior — cache
 * arrays (addresses, valid/dirty/temporal/prefetched bits, LRU
 * stamps), write-buffer occupancy and history, the clocks, the bypass
 * buffer and the in-flight prefetch.
 *
 * @return empty string when identical, else a description of the
 *         first difference found (for test failure messages)
 */
std::string stateDifference(const core::SoftwareAssistedCache &a,
                            const core::SoftwareAssistedCache &b);

/** Convenience wrapper: is every architectural state bit equal? */
inline bool
structurallyIdentical(const core::SoftwareAssistedCache &a,
                      const core::SoftwareAssistedCache &b)
{
    return stateDifference(a, b).empty();
}

} // namespace check
} // namespace sac

#endif // SAC_CHECK_AUDITOR_HH
