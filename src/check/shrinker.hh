/**
 * @file
 * Trace minimizer for fuzz failures: given a failing trace and a
 * predicate ("does this trace still fail?"), greedily shrink it to a
 * minimal reproduction — chunk bisection first (halving granularity,
 * ddmin style), then a per-record drop sweep to a fixed point — under
 * a bounded probe budget. The repro is written as a trace file via
 * trace::writeTraceFile together with the one-line fuzz_replay
 * command that replays it.
 */

#ifndef SAC_CHECK_SHRINKER_HH
#define SAC_CHECK_SHRINKER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "src/trace/trace.hh"

namespace sac {
namespace check {

/** Greedy ddmin-style trace minimizer. */
class Shrinker
{
  public:
    /** Returns true when the candidate trace still fails. */
    using Predicate = std::function<bool(const trace::Trace &)>;

    /** Result of one minimization. */
    struct Result
    {
        trace::Trace trace;          //!< the minimized repro
        std::size_t originalSize = 0;
        std::size_t probes = 0;      //!< predicate evaluations spent
        bool budgetExhausted = false;
    };

    explicit Shrinker(std::size_t max_probes = 2000)
        : maxProbes_(max_probes)
    {
    }

    /**
     * Minimize @p failing while @p still_fails holds. The input must
     * itself fail; the returned trace always fails.
     */
    Result minimize(const trace::Trace &failing,
                    const Predicate &still_fails) const;

  private:
    std::size_t maxProbes_;
};

/** A written reproduction: the trace file plus its replay command. */
struct Repro
{
    std::string path;
    std::string command; //!< one-line fuzz_replay invocation
};

/**
 * Write @p t under @p dir (created if missing) as
 * fuzz-repro-<seed>.sactrace and compose the replay command line.
 * Returns nullopt when the file cannot be written.
 */
std::optional<Repro> writeRepro(const trace::Trace &t,
                                std::uint64_t case_seed,
                                const std::string &dir);

} // namespace check
} // namespace sac

#endif // SAC_CHECK_SHRINKER_HH
