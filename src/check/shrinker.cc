#include "src/check/shrinker.hh"

#include <filesystem>
#include <sstream>

#include "src/trace/trace_io.hh"
#include "src/util/logging.hh"

namespace sac {
namespace check {

namespace {

/** Copy of @p t without the records in [begin, end). */
trace::Trace
without(const trace::Trace &t, std::size_t begin, std::size_t end)
{
    trace::Trace out(t.name());
    out.reserve(t.size() - (end - begin));
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (i < begin || i >= end)
            out.push(t[i]);
    }
    return out;
}

} // namespace

Shrinker::Result
Shrinker::minimize(const trace::Trace &failing,
                   const Predicate &still_fails) const
{
    Result res;
    res.originalSize = failing.size();
    res.trace = failing;
    SAC_ASSERT(still_fails(failing),
               "minimize() needs a failing input trace");

    const auto probe = [&](const trace::Trace &candidate) {
        ++res.probes;
        return still_fails(candidate);
    };
    const auto budget_left = [&] {
        if (res.probes < maxProbes_)
            return true;
        res.budgetExhausted = true;
        return false;
    };

    // Phase 1: chunk bisection. Try dropping aligned chunks, halving
    // the chunk size whenever a full pass removes nothing.
    std::size_t chunk = res.trace.size() / 2;
    while (chunk >= 1 && budget_left()) {
        bool removed = false;
        std::size_t start = 0;
        while (start < res.trace.size() && budget_left()) {
            const std::size_t end =
                std::min(start + chunk, res.trace.size());
            trace::Trace candidate = without(res.trace, start, end);
            if (candidate.size() < res.trace.size() &&
                probe(candidate)) {
                res.trace = std::move(candidate);
                removed = true;
                // The records after `start` shifted down; retry the
                // same position.
            } else {
                start = end;
            }
        }
        if (!removed)
            chunk /= 2;
        else
            chunk = std::min(chunk, res.trace.size() / 2);
        if (chunk == 0)
            break;
    }

    // Phase 2: per-record drop sweep to a fixed point.
    bool progress = true;
    while (progress && budget_left()) {
        progress = false;
        for (std::size_t i = res.trace.size(); i-- > 0;) {
            if (!budget_left())
                break;
            if (res.trace.size() == 1)
                break;
            trace::Trace candidate = without(res.trace, i, i + 1);
            if (probe(candidate)) {
                res.trace = std::move(candidate);
                progress = true;
            }
        }
    }
    return res;
}

std::optional<Repro>
writeRepro(const trace::Trace &t, std::uint64_t case_seed,
           const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return std::nullopt;

    std::ostringstream seed;
    seed << "0x" << std::hex << case_seed;

    const std::string path =
        dir + "/fuzz-repro-" + seed.str() + ".sactrace";
    if (!trace::writeTraceFile(t, path))
        return std::nullopt;

    Repro r;
    r.path = path;
    r.command = "build/examples/fuzz_replay --case " + seed.str() +
                " --trace " + path;
    return r;
}

} // namespace check
} // namespace sac
