/**
 * @file
 * Differential trace fuzzer: a seeded generator of adversarial traces
 * and configurations, replayed through both the timing simulator
 * (core::SoftwareAssistedCache, with a check::Auditor attached when
 * the build has SAC_AUDIT=ON) and the naive oracle
 * (sim::ReferenceModel), diffing every functional counter.
 *
 * Trace shapes target the mechanisms most likely to disagree:
 * set-aliasing address ladders (conflict and bounce-back pressure),
 * virtual-line boundary straddles (coherence-check edge cases),
 * write bursts against aliasing dirty lines (write-buffer pressure),
 * random scatter, and hot temporal sets — optionally post-processed
 * with analysis::corruptTags to model mis-analyzed references.
 * Configurations are drawn from the core::Config flag lattice
 * restricted to what sim::ReferenceModel::supports().
 *
 * Everything is derived deterministically from one 64-bit case seed,
 * so a failure reproduces from the seed alone (see tools/fuzz_replay,
 * built from examples/fuzz_replay.cpp).
 */

#ifndef SAC_CHECK_TRACE_FUZZER_HH
#define SAC_CHECK_TRACE_FUZZER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "src/core/config.hh"
#include "src/sim/reference_model.hh"
#include "src/trace/trace.hh"
#include "src/util/rng.hh"

namespace sac {
namespace check {

/** One fuzz case: an adversarial (config, trace) pair plus its seed. */
struct FuzzCase
{
    std::uint64_t seed = 0; //!< fully reproduces config and trace
    core::Config config;
    trace::Trace trace;
};

/** Outcome of replaying one case through simulator and oracle. */
struct CaseOutcome
{
    bool diverged = false;
    std::string divergence; //!< describeDivergence() report
    bool dispatchDiverged = false; //!< specialized vs general path
    std::string dispatchDivergence;
    std::uint64_t auditViolations = 0;
    std::string firstAuditViolation;
    sim::ReferenceCounts expected; //!< oracle counters
    sim::ReferenceCounts got;      //!< simulator counters

    bool ok() const
    {
        return !diverged && !dispatchDiverged && auditViolations == 0;
    }
};

/**
 * Test-only fault-injection hook: perturbs the simulator-side
 * counters before the diff, letting tests prove the fuzzer catches,
 * shrinks and replays a real divergence.
 */
using CountsCorruption =
    std::function<void(const trace::Trace &, sim::ReferenceCounts &)>;

/**
 * Replay @p t under @p cfg through both models and diff the counters.
 * The simulator side runs twice — once with its auto-selected
 * feature-specialized access path and once with dispatch forced to
 * the general path — and the two full RunStats must be identical
 * (dispatchDiverged reports any mismatch). @p cfg must satisfy
 * sim::ReferenceModel::supports(). When the build has SAC_AUDIT=ON a
 * Record-mode Auditor rides along and its violations are reported in
 * the outcome.
 */
CaseOutcome runCase(const trace::Trace &t, const core::Config &cfg,
                    const CountsCorruption &corrupt = {});

/** Convenience overload for a generated case. */
CaseOutcome runCase(const FuzzCase &c,
                    const CountsCorruption &corrupt = {});

/** Deterministic generator of adversarial fuzz cases. */
class TraceFuzzer
{
  public:
    /** Seed of the fixed CI budget; chosen once, never rotated. */
    static constexpr std::uint64_t defaultMasterSeed = 0x5acf0022;

    explicit TraceFuzzer(std::uint64_t master_seed = defaultMasterSeed)
        : masterSeed_(master_seed)
    {
    }

    std::uint64_t masterSeed() const { return masterSeed_; }

    /** Case seed of sweep index @p index (splitmix64 of the master). */
    std::uint64_t caseSeed(std::uint64_t index) const;

    /** Generate the case at sweep index @p index. */
    FuzzCase makeCase(std::uint64_t index) const
    {
        return caseFromSeed(caseSeed(index));
    }

    /** Rebuild a case from its seed alone (replay entry point). */
    static FuzzCase caseFromSeed(std::uint64_t case_seed);

    /** Draw an oracle-supported configuration from the flag lattice. */
    static core::Config fuzzConfig(util::Rng &rng);

    /** Draw an adversarial trace shaped for @p cfg. */
    static trace::Trace fuzzTrace(util::Rng &rng,
                                  const core::Config &cfg);

  private:
    std::uint64_t masterSeed_;
};

} // namespace check
} // namespace sac

#endif // SAC_CHECK_TRACE_FUZZER_HH
