#include "src/check/trace_fuzzer.hh"

#include <array>

#include "src/analysis/tag_transform.hh"
#include "src/check/auditor.hh"
#include "src/core/soft_cache.hh"
#include "src/util/logging.hh"

namespace sac {
namespace check {

namespace {

/** splitmix64 step: decorrelates sequential sweep indices. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Append one record with the fuzzer's common fields drawn. */
void
pushRecord(trace::Trace &t, util::Rng &rng, Addr addr, bool write,
           bool temporal, bool spatial, std::uint8_t spatial_level)
{
    trace::Record r;
    r.addr = addr;
    r.ref = static_cast<RefId>(rng.nextBelow(64));
    r.delta = static_cast<std::uint16_t>(1 + rng.nextBelow(8));
    r.size = static_cast<std::uint8_t>(rng.nextBool(0.8) ? 8 : 4);
    r.type = write ? trace::AccessType::Write : trace::AccessType::Read;
    r.temporal = temporal;
    r.spatial = spatial;
    r.spatialLevel = spatial ? spatial_level : 0;
    t.push(r);
}

} // namespace

std::uint64_t
TraceFuzzer::caseSeed(std::uint64_t index) const
{
    return splitmix64(masterSeed_ + index * 0x9e3779b97f4a7c15ull);
}

core::Config
TraceFuzzer::fuzzConfig(util::Rng &rng)
{
    core::Config cfg = core::presets().get("standard");
    cfg.name = "fuzz";

    // The oracle's scope (ReferenceModel::supports): direct-mapped
    // main cache, no bypassing, no prefetching, fully-associative aux.
    cfg.assoc = 1;
    cfg.bypass = core::BypassMode::None;
    cfg.prefetch = false;
    cfg.auxAssoc = 0;

    constexpr std::array<std::uint64_t, 3> sizes = {1024, 4096, 8192};
    constexpr std::array<std::uint32_t, 3> lines = {16, 32, 64};
    constexpr std::array<std::uint32_t, 6> aux = {0, 1, 2, 4, 8, 32};
    constexpr std::array<std::uint32_t, 5> wbuf = {1, 2, 3, 8, 64};

    cfg.cacheSizeBytes = sizes[rng.nextBelow(sizes.size())];
    cfg.lineBytes = lines[rng.nextBelow(lines.size())];
    cfg.auxLines = aux[rng.nextBelow(aux.size())];
    cfg.writeBufferEntries = wbuf[rng.nextBelow(wbuf.size())];

    if (cfg.auxLines > 0) {
        cfg.auxReceivesVictims = rng.nextBool(0.8);
        cfg.bounceBack = cfg.auxReceivesVictims && rng.nextBool(0.7);
    }
    cfg.temporalBits = rng.nextBool(0.7);
    cfg.resetTemporalBitOnBounce = rng.nextBool(0.8);
    cfg.virtualLines = rng.nextBool(0.7);
    if (cfg.virtualLines) {
        // 2, 4 or 8 physical lines per virtual line.
        cfg.virtualLineBytes =
            cfg.lineBytes * (2u << rng.nextBelow(3));
        cfg.variableVirtualLines = rng.nextBool(0.4);
    }
    cfg.virtualLineCoherenceCheck = rng.nextBool(0.8);
    cfg.classifyMisses = rng.nextBool(0.25);

    cfg.validate();
    SAC_ASSERT(sim::ReferenceModel::supports(cfg),
               "fuzzed configuration left the oracle's scope");
    return cfg;
}

trace::Trace
TraceFuzzer::fuzzTrace(util::Rng &rng, const core::Config &cfg)
{
    trace::Trace t("fuzz");
    const std::uint64_t target = 64 + rng.nextBelow(448);
    t.reserve(target + 64);

    while (t.size() < target) {
        switch (rng.nextBelow(5)) {
          case 0: {
            // Set-aliasing ladder: lines exactly one main-cache image
            // apart thrash a single set and stress victim/bounce-back
            // traffic.
            const Addr base = 0x200000 +
                              rng.nextBelow(64) * cfg.lineBytes;
            const std::uint64_t rungs = 2 + rng.nextBelow(6);
            const std::uint64_t reps = 2 + rng.nextBelow(12);
            for (std::uint64_t i = 0; i < reps; ++i) {
                const Addr addr =
                    base + (i % rungs) * cfg.cacheSizeBytes;
                pushRecord(t, rng, addr, rng.nextBool(0.3),
                           rng.nextBool(0.6), rng.nextBool(0.2),
                           static_cast<std::uint8_t>(
                               1 + rng.nextBelow(3)));
            }
            break;
          }
          case 1: {
            // Virtual-line boundary straddle: walk addresses across a
            // virtual-line boundary with spatial tags, exercising the
            // pipelined coherence checks and level capping.
            const std::uint32_t vbytes =
                cfg.virtualLines ? cfg.virtualLineBytes
                                 : cfg.lineBytes * 2;
            const Addr block =
                0x300000 + rng.nextBelow(1 << 10) * vbytes;
            const std::uint64_t steps = 3 + rng.nextBelow(8);
            for (std::uint64_t i = 0; i < steps; ++i) {
                const std::int64_t off =
                    rng.nextInRange(-3, 3) *
                    static_cast<std::int64_t>(elementBytes);
                const Addr addr = static_cast<Addr>(
                    static_cast<std::int64_t>(block + vbytes) + off);
                pushRecord(t, rng, addr, rng.nextBool(0.2), false, true,
                           static_cast<std::uint8_t>(rng.nextBelow(10)));
            }
            break;
          }
          case 2: {
            // Write burst over aliasing dirty lines: maximum write
            // buffer pressure, including forced drains when full.
            const Addr base =
                0x400000 + rng.nextBelow(32) * cfg.lineBytes;
            const std::uint64_t burst = 4 + rng.nextBelow(24);
            for (std::uint64_t i = 0; i < burst; ++i) {
                const Addr addr =
                    base + (i % 3) * cfg.cacheSizeBytes +
                    rng.nextBelow(4) * elementBytes;
                pushRecord(t, rng, addr, true, rng.nextBool(0.4),
                           rng.nextBool(0.2), 1);
            }
            break;
          }
          case 3: {
            // Random scatter inside a 4 MB window.
            const std::uint64_t n = 4 + rng.nextBelow(16);
            for (std::uint64_t i = 0; i < n; ++i) {
                const Addr addr = rng.nextBelow(1ull << 22) &
                                  ~static_cast<Addr>(3);
                pushRecord(t, rng, addr, rng.nextBool(0.4),
                           rng.nextBool(0.5), rng.nextBool(0.5),
                           static_cast<std::uint8_t>(
                               1 + rng.nextBelow(4)));
            }
            break;
          }
          default: {
            // Hot temporal set: repeated touches of a few lines.
            const Addr base =
                0x500000 + rng.nextBelow(128) * cfg.lineBytes;
            const std::uint64_t n = 4 + rng.nextBelow(16);
            for (std::uint64_t i = 0; i < n; ++i) {
                const Addr addr =
                    base + rng.nextBelow(4) * cfg.lineBytes +
                    rng.nextBelow(4) * elementBytes;
                pushRecord(t, rng, addr, rng.nextBool(0.25), true,
                           false, 0);
            }
            break;
          }
        }
    }

    // Model mis-analyzed references: corrupt the tags of a random
    // fraction of static references (the paper's safety claim must
    // hold for wrong tags too).
    if (rng.nextBool(0.33))
        t = analysis::corruptTags(t, rng.nextDouble() * 0.6,
                                  rng.next());
    return t;
}

FuzzCase
TraceFuzzer::caseFromSeed(std::uint64_t case_seed)
{
    util::Rng rng(case_seed);
    FuzzCase c;
    c.seed = case_seed;
    c.config = fuzzConfig(rng);
    c.trace = fuzzTrace(rng, c.config);
    return c;
}

CaseOutcome
runCase(const trace::Trace &t, const core::Config &cfg,
        const CountsCorruption &corrupt)
{
    SAC_ASSERT(sim::ReferenceModel::supports(cfg),
               "runCase needs an oracle-supported configuration");
    CaseOutcome out;

    core::SoftwareAssistedCache sim(cfg);
    Auditor auditor(Auditor::OnViolation::Record);
    sim.attachAuditor(&auditor);
    sim.run(t);
    out.got = sim::countsOf(sim.stats());
    if (corrupt)
        corrupt(t, out.got);

    // Replay through the general (unspecialized) access path as well:
    // the compile-time feature dispatch must be a pure code motion,
    // so every counter — timing included — has to come out identical.
    core::SoftwareAssistedCache general(cfg,
                                        core::DispatchMode::General);
    general.run(t);
    if (!(general.stats() == sim.stats())) {
        out.dispatchDiverged = true;
        const std::string counter_diff = sim::describeDivergence(
            sim::countsOf(general.stats()), sim::countsOf(sim.stats()));
        out.dispatchDivergence =
            "specialized path " + std::string(toString(sim.featureSet())) +
            " disagrees with general path" +
            (counter_diff.empty() ? std::string(" (timing fields only)")
                                  : ": " + counter_diff);
    }

    out.expected = sim::referenceCounts(t, cfg);
    if (!(out.expected == out.got)) {
        out.diverged = true;
        out.divergence = sim::describeDivergence(out.expected, out.got);
    }
    out.auditViolations = auditor.violations().size();
    if (!auditor.violations().empty()) {
        const Violation &v = auditor.violations().front();
        out.firstAuditViolation = v.kind + ": " + v.message;
    }
    return out;
}

CaseOutcome
runCase(const FuzzCase &c, const CountsCorruption &corrupt)
{
    return runCase(c.trace, c.config, corrupt);
}

} // namespace check
} // namespace sac
