#include "src/check/auditor.hh"

#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace check {

namespace {

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

Auditor::Auditor(OnViolation mode) : mode_(mode) {}

void
Auditor::report(const char *kind, Cycle cycle, Addr addr,
                const std::string &message)
{
    ++counters_.counter(std::string("audit.violation.") + kind,
                        "structural invariant violations");
    if (mode_ == OnViolation::Panic) {
        util::panic("audit violation '", kind, "' at cycle ", cycle,
                    " addr ", hexAddr(addr), ": ", message);
    }
    violations_.push_back({kind, message, cycle, addr});
}

void
Auditor::auditArrays(const cache::CacheArray &main,
                     const cache::CacheArray *aux,
                     const core::Config &cfg, Cycle cycle)
{
    const auto audit_one = [&](const cache::CacheArray &arr,
                               const char *which) {
        for (std::uint32_t set = 0; set < arr.numSets(); ++set) {
            for (std::uint32_t way = 0; way < arr.assoc(); ++way) {
                const cache::LineState &l = arr.line(set, way);
                if (!l.valid)
                    continue;
                if (arr.setIndexOf(l.lineAddr) != set) {
                    report("set_mismatch", cycle, l.lineAddr,
                           util::detail::format(
                               which, " line ", hexAddr(l.lineAddr),
                               " sits in set ", set, " but maps to set ",
                               arr.setIndexOf(l.lineAddr)));
                }
                if (!cfg.temporalBits && l.temporal) {
                    report("temporal_without_tags", cycle, l.lineAddr,
                           util::detail::format(
                               which, " line ", hexAddr(l.lineAddr),
                               " has a temporal bit but the config has "
                               "temporalBits off"));
                }
                if (!cfg.prefetch && l.prefetched) {
                    report("prefetched_without_prefetch", cycle,
                           l.lineAddr,
                           util::detail::format(
                               which, " line ", hexAddr(l.lineAddr),
                               " is marked prefetched but the config "
                               "has prefetch off"));
                }
                for (std::uint32_t other = way + 1; other < arr.assoc();
                     ++other) {
                    const cache::LineState &o = arr.line(set, other);
                    if (!o.valid)
                        continue;
                    if (o.lineAddr == l.lineAddr) {
                        report("duplicate_way", cycle, l.lineAddr,
                               util::detail::format(
                                   which, " set ", set, " holds line ",
                                   hexAddr(l.lineAddr), " in ways ", way,
                                   " and ", other));
                    }
                    if (o.lruStamp == l.lruStamp) {
                        report("lru_stamp_clash", cycle, l.lineAddr,
                               util::detail::format(
                                   which, " set ", set, " ways ", way,
                                   " and ", other,
                                   " share LRU stamp ", l.lruStamp));
                    }
                }
            }
        }
    };

    audit_one(main, "main");
    if (aux != nullptr) {
        audit_one(*aux, "aux");
        if (aux->validCount() > cfg.auxLines) {
            report("aux_overflow", cycle, 0,
                   util::detail::format("aux cache holds ",
                                        aux->validCount(),
                                        " valid lines, capacity ",
                                        cfg.auxLines));
        }
        // The flagship bounce-back invariant: a physical line lives in
        // the main cache or the aux cache, never both (a swap moves,
        // it does not copy).
        for (std::uint32_t set = 0; set < aux->numSets(); ++set) {
            for (std::uint32_t way = 0; way < aux->assoc(); ++way) {
                const cache::LineState &l = aux->line(set, way);
                if (l.valid && main.contains(l.lineAddr)) {
                    report("duplicate_line", cycle, l.lineAddr,
                           util::detail::format(
                               "line ", hexAddr(l.lineAddr),
                               " is resident in both the main and the "
                               "aux cache"));
                }
            }
        }
    }
}

void
Auditor::auditStats(const sim::RunStats &stats, const core::Config &cfg,
                    Cycle cycle)
{
    const std::uint64_t served = stats.mainHits + stats.auxHits +
                                 stats.misses + stats.bypasses +
                                 stats.bypassBufferHits;
    if (served != stats.accesses) {
        report("access_accounting", cycle, 0,
               util::detail::format(
                   "hits+misses+bypasses = ", served, " but accesses = ",
                   stats.accesses));
    }
    if (stats.reads + stats.writes != stats.accesses) {
        report("access_accounting", cycle, 0,
               util::detail::format("reads+writes = ",
                                    stats.reads + stats.writes,
                                    " but accesses = ", stats.accesses));
    }
    if (cfg.classifyMisses) {
        const std::uint64_t classified = stats.compulsoryMisses +
                                         stats.capacityMisses +
                                         stats.conflictMisses;
        if (classified != stats.misses) {
            report("miss_class_accounting", cycle, 0,
                   util::detail::format("miss classes sum to ",
                                        classified, " but misses = ",
                                        stats.misses));
        }
    }

    // Traffic conservation: every fetched byte belongs to a fetched
    // physical line. Unbuffered non-temporal bypasses fetch partial
    // lines, so only a lower bound holds there.
    const std::uint64_t line_bytes =
        stats.linesFetched * cfg.lineBytes;
    const bool partial_fetches = cfg.bypass == core::BypassMode::NonTemporal;
    if (partial_fetches ? stats.bytesFetched < line_bytes
                        : stats.bytesFetched != line_bytes) {
        report("traffic_mismatch", cycle, 0,
               util::detail::format(
                   "bytes_fetched = ", stats.bytesFetched, " but ",
                   stats.linesFetched, " fetched lines account for ",
                   line_bytes, " bytes"));
    }
    // Writebacks drain whole lines unless bypassed writes enqueue
    // partial (write-through) entries.
    if (cfg.bypass == core::BypassMode::None &&
        stats.bytesWrittenBack % cfg.lineBytes != 0) {
        report("traffic_mismatch", cycle, 0,
               util::detail::format("bytes_written_back = ",
                                    stats.bytesWrittenBack,
                                    " is not a whole number of ",
                                    cfg.lineBytes, "-byte lines"));
    }
}

void
Auditor::auditNow(const core::SoftwareAssistedCache &cache)
{
    const core::Config &cfg = cache.config();
    const Cycle cycle = cache.now();

    auditArrays(cache.mainArray(), cache.auxArray(), cfg, cycle);
    auditStats(cache.stats(), cfg, cycle);

    if (cache.writeBufferOccupancy() > cfg.writeBufferEntries) {
        report("write_buffer_overflow", cycle, 0,
               util::detail::format("write buffer holds ",
                                    cache.writeBufferOccupancy(),
                                    " entries, capacity ",
                                    cfg.writeBufferEntries));
    }
}

void
Auditor::afterAccess(const core::SoftwareAssistedCache &cache,
                     const trace::Record &rec)
{
    ++audited_;
    auditNow(cache);

    const sim::RunStats &stats = cache.stats();
    const Cycle cycle = cache.now();
    if (stats.accesses != lastAccesses_ + 1) {
        report("access_counter_skip", cycle, rec.addr,
               util::detail::format("access counter moved ",
                                    lastAccesses_, " -> ",
                                    stats.accesses,
                                    " across one access"));
    }
    if (stats.completionCycle < lastCompletion_) {
        report("clock_regression", cycle, rec.addr,
               util::detail::format("completion cycle moved backwards ",
                                    lastCompletion_, " -> ",
                                    stats.completionCycle));
    }
    if (cache.busFreeAt() < lastBusFree_) {
        report("clock_regression", cycle, rec.addr,
               util::detail::format("bus-free cycle moved backwards ",
                                    lastBusFree_, " -> ",
                                    cache.busFreeAt()));
    }
    lastAccesses_ = stats.accesses;
    lastCompletion_ = stats.completionCycle;
    lastBusFree_ = cache.busFreeAt();
}

} // namespace check
} // namespace sac
