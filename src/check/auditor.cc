#include "src/check/auditor.hh"

#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace check {

namespace {

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

Auditor::Auditor(OnViolation mode) : mode_(mode) {}

void
Auditor::report(const char *kind, Cycle cycle, Addr addr,
                const std::string &message)
{
    ++counters_.counter(std::string("audit.violation.") + kind,
                        "structural invariant violations");
    if (mode_ == OnViolation::Panic) {
        util::panic("audit violation '", kind, "' at cycle ", cycle,
                    " addr ", hexAddr(addr), ": ", message);
    }
    violations_.push_back({kind, message, cycle, addr});
}

void
Auditor::auditArrays(const cache::CacheArray &main,
                     const cache::CacheArray *aux,
                     const core::Config &cfg, Cycle cycle)
{
    const auto audit_one = [&](const cache::CacheArray &arr,
                               const char *which) {
        for (std::uint32_t set = 0; set < arr.numSets(); ++set) {
            for (std::uint32_t way = 0; way < arr.assoc(); ++way) {
                const cache::LineState &l = arr.line(set, way);
                if (!l.valid)
                    continue;
                if (arr.setIndexOf(l.lineAddr) != set) {
                    report("set_mismatch", cycle, l.lineAddr,
                           util::detail::format(
                               which, " line ", hexAddr(l.lineAddr),
                               " sits in set ", set, " but maps to set ",
                               arr.setIndexOf(l.lineAddr)));
                }
                if (!cfg.temporalBits && l.temporal) {
                    report("temporal_without_tags", cycle, l.lineAddr,
                           util::detail::format(
                               which, " line ", hexAddr(l.lineAddr),
                               " has a temporal bit but the config has "
                               "temporalBits off"));
                }
                if (!cfg.prefetch && l.prefetched) {
                    report("prefetched_without_prefetch", cycle,
                           l.lineAddr,
                           util::detail::format(
                               which, " line ", hexAddr(l.lineAddr),
                               " is marked prefetched but the config "
                               "has prefetch off"));
                }
                for (std::uint32_t other = way + 1; other < arr.assoc();
                     ++other) {
                    const cache::LineState &o = arr.line(set, other);
                    if (!o.valid)
                        continue;
                    if (o.lineAddr == l.lineAddr) {
                        report("duplicate_way", cycle, l.lineAddr,
                               util::detail::format(
                                   which, " set ", set, " holds line ",
                                   hexAddr(l.lineAddr), " in ways ", way,
                                   " and ", other));
                    }
                    if (o.lruStamp == l.lruStamp) {
                        report("lru_stamp_clash", cycle, l.lineAddr,
                               util::detail::format(
                                   which, " set ", set, " ways ", way,
                                   " and ", other,
                                   " share LRU stamp ", l.lruStamp));
                    }
                }
            }
        }
    };

    audit_one(main, "main");
    if (aux != nullptr) {
        audit_one(*aux, "aux");
        if (aux->validCount() > cfg.auxLines) {
            report("aux_overflow", cycle, 0,
                   util::detail::format("aux cache holds ",
                                        aux->validCount(),
                                        " valid lines, capacity ",
                                        cfg.auxLines));
        }
        // The flagship bounce-back invariant: a physical line lives in
        // the main cache or the aux cache, never both (a swap moves,
        // it does not copy).
        for (std::uint32_t set = 0; set < aux->numSets(); ++set) {
            for (std::uint32_t way = 0; way < aux->assoc(); ++way) {
                const cache::LineState &l = aux->line(set, way);
                if (l.valid && main.contains(l.lineAddr)) {
                    report("duplicate_line", cycle, l.lineAddr,
                           util::detail::format(
                               "line ", hexAddr(l.lineAddr),
                               " is resident in both the main and the "
                               "aux cache"));
                }
            }
        }
    }
}

void
Auditor::auditStats(const sim::RunStats &stats, const core::Config &cfg,
                    Cycle cycle)
{
    const std::uint64_t served = stats.mainHits + stats.auxHits +
                                 stats.misses + stats.bypasses +
                                 stats.bypassBufferHits;
    if (served != stats.accesses) {
        report("access_accounting", cycle, 0,
               util::detail::format(
                   "hits+misses+bypasses = ", served, " but accesses = ",
                   stats.accesses));
    }
    if (stats.reads + stats.writes != stats.accesses) {
        report("access_accounting", cycle, 0,
               util::detail::format("reads+writes = ",
                                    stats.reads + stats.writes,
                                    " but accesses = ", stats.accesses));
    }
    if (cfg.classifyMisses) {
        const std::uint64_t classified = stats.compulsoryMisses +
                                         stats.capacityMisses +
                                         stats.conflictMisses;
        if (classified != stats.misses) {
            report("miss_class_accounting", cycle, 0,
                   util::detail::format("miss classes sum to ",
                                        classified, " but misses = ",
                                        stats.misses));
        }
    }

    // Traffic conservation: every fetched byte belongs to a fetched
    // physical line. Unbuffered non-temporal bypasses fetch partial
    // lines, so only a lower bound holds there.
    const std::uint64_t line_bytes =
        stats.linesFetched * cfg.lineBytes;
    const bool partial_fetches = cfg.bypass == core::BypassMode::NonTemporal;
    if (partial_fetches ? stats.bytesFetched < line_bytes
                        : stats.bytesFetched != line_bytes) {
        report("traffic_mismatch", cycle, 0,
               util::detail::format(
                   "bytes_fetched = ", stats.bytesFetched, " but ",
                   stats.linesFetched, " fetched lines account for ",
                   line_bytes, " bytes"));
    }
    // Writebacks drain whole lines unless bypassed writes enqueue
    // partial (write-through) entries.
    if (cfg.bypass == core::BypassMode::None &&
        stats.bytesWrittenBack % cfg.lineBytes != 0) {
        report("traffic_mismatch", cycle, 0,
               util::detail::format("bytes_written_back = ",
                                    stats.bytesWrittenBack,
                                    " is not a whole number of ",
                                    cfg.lineBytes, "-byte lines"));
    }
}

void
Auditor::auditNow(const core::SoftwareAssistedCache &cache)
{
    const core::Config &cfg = cache.config();
    const Cycle cycle = cache.now();

    auditArrays(cache.mainArray(), cache.auxArray(), cfg, cycle);
    auditStats(cache.stats(), cfg, cycle);

    if (cache.writeBufferOccupancy() > cfg.writeBufferEntries) {
        report("write_buffer_overflow", cycle, 0,
               util::detail::format("write buffer holds ",
                                    cache.writeBufferOccupancy(),
                                    " entries, capacity ",
                                    cfg.writeBufferEntries));
    }
}

void
Auditor::afterAccess(const core::SoftwareAssistedCache &cache,
                     const trace::Record &rec)
{
    ++audited_;
    auditNow(cache);

    const sim::RunStats &stats = cache.stats();
    const Cycle cycle = cache.now();
    if (stats.accesses != lastAccesses_ + 1) {
        report("access_counter_skip", cycle, rec.addr,
               util::detail::format("access counter moved ",
                                    lastAccesses_, " -> ",
                                    stats.accesses,
                                    " across one access"));
    }
    if (stats.completionCycle < lastCompletion_) {
        report("clock_regression", cycle, rec.addr,
               util::detail::format("completion cycle moved backwards ",
                                    lastCompletion_, " -> ",
                                    stats.completionCycle));
    }
    if (cache.busFreeAt() < lastBusFree_) {
        report("clock_regression", cycle, rec.addr,
               util::detail::format("bus-free cycle moved backwards ",
                                    lastBusFree_, " -> ",
                                    cache.busFreeAt()));
    }
    lastAccesses_ = stats.accesses;
    lastCompletion_ = stats.completionCycle;
    lastBusFree_ = cache.busFreeAt();
}

namespace {

/** Compare two cache arrays line by line; empty string when equal. */
std::string
arrayDifference(const char *which, const cache::CacheArray &a,
                const cache::CacheArray &b)
{
    if (a.numSets() != b.numSets() || a.assoc() != b.assoc()) {
        return util::detail::format(which, " geometry differs: ",
                                    a.numSets(), "x", a.assoc(), " vs ",
                                    b.numSets(), "x", b.assoc());
    }
    for (std::uint32_t s = 0; s < a.numSets(); ++s) {
        for (std::uint32_t w = 0; w < a.assoc(); ++w) {
            const cache::LineState la = a.line(s, w);
            const cache::LineState lb = b.line(s, w);
            if (la.valid != lb.valid || la.lineAddr != lb.lineAddr ||
                la.dirty != lb.dirty || la.temporal != lb.temporal ||
                la.prefetched != lb.prefetched ||
                la.lruStamp != lb.lruStamp) {
                return util::detail::format(
                    which, " line [set ", s, " way ", w,
                    "] differs: addr ", la.lineAddr, "/", lb.lineAddr,
                    " valid ", la.valid, "/", lb.valid, " dirty ",
                    la.dirty, "/", lb.dirty, " temporal ", la.temporal,
                    "/", lb.temporal, " prefetched ", la.prefetched,
                    "/", lb.prefetched, " lru ", la.lruStamp, "/",
                    lb.lruStamp);
            }
        }
    }
    return {};
}

} // namespace

std::string
stateDifference(const core::SoftwareAssistedCache &a,
                const core::SoftwareAssistedCache &b)
{
    if (std::string d = arrayDifference("main", a.mainArray(),
                                        b.mainArray());
        !d.empty()) {
        return d;
    }
    const cache::CacheArray *aux_a = a.auxArray();
    const cache::CacheArray *aux_b = b.auxArray();
    if ((aux_a == nullptr) != (aux_b == nullptr))
        return "one simulator has an aux cache, the other does not";
    if (aux_a) {
        if (std::string d = arrayDifference("aux", *aux_a, *aux_b);
            !d.empty()) {
            return d;
        }
    }

    const sim::WriteBuffer &wa = a.writeBuffer();
    const sim::WriteBuffer &wb = b.writeBuffer();
    if (wa.occupancy() != wb.occupancy() ||
        wa.totalBytesPushed() != wb.totalBytesPushed() ||
        wa.fullStalls() != wb.fullStalls()) {
        return util::detail::format(
            "write buffer differs: occupancy ", wa.occupancy(), "/",
            wb.occupancy(), " bytes pushed ", wa.totalBytesPushed(),
            "/", wb.totalBytesPushed(), " full stalls ",
            wa.fullStalls(), "/", wb.fullStalls());
    }

    if (a.now() != b.now() || a.procReadyAt() != b.procReadyAt() ||
        a.cacheFreeAt() != b.cacheFreeAt() ||
        a.busFreeAt() != b.busFreeAt()) {
        return util::detail::format(
            "clocks differ: now ", a.now(), "/", b.now(),
            " proc-ready ", a.procReadyAt(), "/", b.procReadyAt(),
            " cache-free ", a.cacheFreeAt(), "/", b.cacheFreeAt(),
            " bus-free ", a.busFreeAt(), "/", b.busFreeAt());
    }

    const auto bypass_a = a.bypassBufferLine();
    const auto bypass_b = b.bypassBufferLine();
    if (bypass_a != bypass_b) {
        return util::detail::format(
            "bypass buffer differs: ",
            bypass_a ? util::detail::format("line ", *bypass_a)
                     : std::string("empty"),
            " vs ",
            bypass_b ? util::detail::format("line ", *bypass_b)
                     : std::string("empty"));
    }

    const auto pf_a = a.pendingPrefetch();
    const auto pf_b = b.pendingPrefetch();
    if (pf_a.has_value() != pf_b.has_value()) {
        return "one simulator has an in-flight prefetch, the other "
               "does not";
    }
    if (pf_a &&
        (pf_a->line != pf_b->line || pf_a->count != pf_b->count ||
         pf_a->readyAt != pf_b->readyAt)) {
        return util::detail::format(
            "pending prefetch differs: line ", pf_a->line, "/",
            pf_b->line, " count ", pf_a->count, "/", pf_b->count,
            " ready ", pf_a->readyAt, "/", pf_b->readyAt);
    }
    return {};
}

} // namespace check
} // namespace sac
