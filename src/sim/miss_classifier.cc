#include "src/sim/miss_classifier.hh"

#include "src/util/logging.hh"

namespace sac {
namespace sim {

MissClassifier::MissClassifier(std::uint32_t capacity_lines,
                               std::uint32_t line_bytes)
    : capacityLines_(capacity_lines)
{
    SAC_ASSERT(capacity_lines > 0, "classifier needs capacity");
    SAC_ASSERT(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
               "line size must be a power of two");
    shift_ = 0;
    while ((1u << shift_) < line_bytes)
        ++shift_;
}

std::optional<MissClass>
MissClassifier::access(Addr byte_addr, bool was_miss)
{
    const Addr line = lineOf(byte_addr);

    const bool first_touch = seen_.insert(line).second;

    // Shadow fully-associative LRU lookup + update.
    bool shadow_hit = false;
    const auto it = where_.find(line);
    if (it != where_.end()) {
        shadow_hit = true;
        lru_.erase(it->second);
    }
    lru_.push_front(line);
    where_[line] = lru_.begin();
    if (lru_.size() > capacityLines_) {
        where_.erase(lru_.back());
        lru_.pop_back();
    }

    if (!was_miss)
        return std::nullopt; // hits have no miss class

    if (first_touch)
        return MissClass::Compulsory;
    if (!shadow_hit)
        return MissClass::Capacity;
    return MissClass::Conflict;
}

} // namespace sim
} // namespace sac
