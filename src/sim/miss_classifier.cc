#include "src/sim/miss_classifier.hh"

#include "src/util/logging.hh"

namespace sac {
namespace sim {

namespace {

/** splitmix64 finalizer: a full-avalanche mix for table probing. */
inline std::size_t
mixLine(Addr line)
{
    std::uint64_t x = line;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
}

} // namespace

MissClassifier::MissClassifier(std::uint32_t capacity_lines,
                               std::uint32_t line_bytes)
    : capacityLines_(capacity_lines)
{
    SAC_ASSERT(capacity_lines > 0, "classifier needs capacity");
    SAC_ASSERT(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
               "line size must be a power of two");
    shift_ = 0;
    while ((1u << shift_) < line_bytes)
        ++shift_;
    table_.resize(1024);
    mask_ = table_.size() - 1;
    nodes_.reserve(capacityLines_);
}

std::size_t
MissClassifier::find(Addr line) const
{
    std::size_t i = mixLine(line) & mask_;
    while (!(table_[i].used && table_[i].line == line))
        i = (i + 1) & mask_;
    return i;
}

std::size_t
MissClassifier::findOrInsert(Addr line, bool &inserted)
{
    std::size_t i = mixLine(line) & mask_;
    while (table_[i].used) {
        if (table_[i].line == line) {
            inserted = false;
            return i;
        }
        i = (i + 1) & mask_;
    }
    inserted = true;
    ++seenCount_;
    if (seenCount_ * 4 > table_.size() * 3) {
        grow();
        i = mixLine(line) & mask_;
        while (table_[i].used)
            i = (i + 1) & mask_;
    }
    table_[i].used = true;
    table_[i].line = line;
    table_[i].node = npos;
    return i;
}

void
MissClassifier::grow()
{
    std::vector<Slot> old;
    old.swap(table_);
    table_.resize(old.size() * 2);
    mask_ = table_.size() - 1;
    for (const Slot &s : old) {
        if (!s.used)
            continue;
        std::size_t i = mixLine(s.line) & mask_;
        while (table_[i].used)
            i = (i + 1) & mask_;
        table_[i] = s;
    }
}

void
MissClassifier::linkFront(std::uint32_t n)
{
    nodes_[n].prev = npos;
    nodes_[n].next = head_;
    if (head_ != npos)
        nodes_[head_].prev = n;
    head_ = n;
    if (tail_ == npos)
        tail_ = n;
}

void
MissClassifier::unlink(std::uint32_t n)
{
    const Node &node = nodes_[n];
    if (node.prev != npos)
        nodes_[node.prev].next = node.next;
    else
        head_ = node.next;
    if (node.next != npos)
        nodes_[node.next].prev = node.prev;
    else
        tail_ = node.prev;
}

std::optional<MissClass>
MissClassifier::access(Addr byte_addr, bool was_miss)
{
    const Addr line = lineOf(byte_addr);

    bool first_touch = false;
    const std::size_t slot = findOrInsert(line, first_touch);

    // Shadow fully-associative LRU lookup + update.
    const bool shadow_hit = table_[slot].node != npos;
    if (shadow_hit) {
        const std::uint32_t n = table_[slot].node;
        if (head_ != n) {
            unlink(n);
            linkFront(n);
        }
    } else {
        std::uint32_t n;
        if (nodes_.size() < capacityLines_) {
            n = static_cast<std::uint32_t>(nodes_.size());
            nodes_.emplace_back();
        } else {
            // Evict the least recently used shadow line; its table
            // entry stays (it has been seen) with no LRU node.
            n = tail_;
            table_[find(nodes_[n].line)].node = npos;
            unlink(n);
        }
        nodes_[n].line = line;
        table_[slot].node = n;
        linkFront(n);
    }

    if (!was_miss)
        return std::nullopt; // hits have no miss class

    if (first_touch)
        return MissClass::Compulsory;
    if (!shadow_hit)
        return MissClass::Capacity;
    return MissClass::Conflict;
}

} // namespace sim
} // namespace sac
