/**
 * @file
 * Single-pass Mattson stack-distance profiler: one traversal of a
 * trace yields the exact LRU miss count of every cache geometry in a
 * lattice of set counts x associativities x line sizes, instead of
 * one full replay per configuration.
 *
 * The classical result (Mattson et al., 1970): under LRU an A-way
 * set-associative cache with bit-selected indexing hits a reference
 * iff the referenced line is among the A most recently used lines of
 * its set. Tracking, per set, the recency order of the lines mapped
 * to it therefore answers "hit or miss?" for every associativity at
 * once; configurations sharing a (line size, set count) pair share
 * one recency structure, and a size x assoc sweep collapses to a
 * handful of structures updated in a single pass.
 *
 * The recency structure is the compressed-bucket variant: per-set
 * intrusive LRU lists truncated at the largest associativity any
 * lattice point asks of that (line, sets) pair, over a flat
 * open-addressing hash of line -> list node (the sim::MissClassifier
 * idiom). A line evicted from the truncated list keeps its hash entry
 * with a "seen but deep" marker, so distances beyond the cap and
 * compulsory first touches stay distinguishable while the per-access
 * cost stays O(cap) worst case and O(1) amortized.
 *
 * Scope: the engine models exactly what the simulator's Standard
 * feature path does to the main array — one physical line per access,
 * LRU with invalid-way preference, bit-selected sets — so its miss
 * counts are bit-identical to core::simulateTrace for standard
 * configurations (the StackDifferential tests prove this). Timing
 * (AMAT) is not modeled: a stack pass yields counts, not cycles.
 *
 * Layering: like the rest of sac_sim, this header never names a
 * sac_core symbol; the harness maps core::Config points onto
 * StackPoint and back.
 */

#ifndef SAC_SIM_STACK_ENGINE_HH
#define SAC_SIM_STACK_ENGINE_HH

#include <cstdint>
#include <vector>

#include "src/trace/record.hh"
#include "src/util/types.hh"

namespace sac {

namespace trace {
class TraceSource;
}

namespace sim {

/** One LRU cache geometry answered by a stack pass. */
struct StackPoint
{
    std::uint64_t cacheSizeBytes = 8 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;

    /** Number of sets (cacheSizeBytes / (lineBytes * assoc)). */
    std::uint64_t
    sets() const
    {
        return cacheSizeBytes /
               (static_cast<std::uint64_t>(lineBytes) * assoc);
    }

    /**
     * Can a stack pass answer this point? Requires the bit-selection
     * geometry of cache::CacheArray: power-of-two line size and set
     * count, size a multiple of line * assoc.
     */
    bool wellFormed() const;
};

/**
 * Single-pass exact-LRU profiler over a lattice of StackPoints.
 *
 * Build it from every point of the sweep, feed the trace once (run()
 * or repeated feed() calls), then query missCount() per point. Points
 * sharing (lineBytes, sets) share one internal profiler; the pass
 * cost scales with the number of distinct (lineBytes, sets) pairs,
 * not with the number of lattice points.
 *
 * Not thread-safe; single consumer, like the sources it drains.
 */
class StackDistanceEngine
{
  public:
    /** @param points the lattice; every point must be wellFormed() */
    explicit StackDistanceEngine(const std::vector<StackPoint> &points);

    /**
     * A set-sharded slice of the pass: this engine profiles only the
     * sets with index % @p shards == @p shard (per profiler, in its
     * own set space) and ignores every other record. Per-set LRU
     * stacks never interact, so @p shards engines fed the same stream
     * and absorb()ed together yield exactly the unsharded counts —
     * the decomposition behind the parallel stack pass. The stream
     * counters (accesses/reads/writes) are whole-stream on every
     * shard, which absorb() checks.
     */
    StackDistanceEngine(const std::vector<StackPoint> &points,
                        unsigned shard, unsigned shards);

    ~StackDistanceEngine();
    StackDistanceEngine(StackDistanceEngine &&) noexcept;
    StackDistanceEngine &operator=(StackDistanceEngine &&) noexcept;

    /** Profile @p n records (appends to the current pass). */
    void feed(const trace::Record *recs, std::size_t n);

    /**
     * Drain @p src in chunks through feed().
     * @return records consumed
     */
    std::uint64_t run(trace::TraceSource &src);

    /** Records profiled so far. */
    std::uint64_t accesses() const { return accesses_; }

    /** Read records profiled so far. */
    std::uint64_t reads() const { return reads_; }

    /** Write records profiled so far. */
    std::uint64_t writes() const { return writes_; }

    /** Is @p p covered by this engine's lattice? */
    bool covers(const StackPoint &p) const;

    /**
     * Exact LRU demand-miss count of @p p over everything fed so far.
     * @p p must be covered.
     */
    std::uint64_t missCount(const StackPoint &p) const;

    /** missCount() / accesses() (0 when nothing was fed). */
    double missRatio(const StackPoint &p) const;

    /**
     * Distinct lines touched at @p p's line granularity — the
     * compulsory-miss count of every point sharing that line size.
     */
    std::uint64_t touchedLines(std::uint32_t line_bytes) const;

    /** This engine's shard index (0 when unsharded). */
    unsigned shard() const { return shard_; }

    /** Total shards the pass was split into (1 when unsharded). */
    unsigned shards() const { return shards_; }

    /**
     * Fold @p other's histograms into this engine: per matching
     * profiler, the compulsory / deep / depth counts and touched-line
     * tallies sum. Both engines must be slices of the same pass —
     * same lattice, same shard count, both fed the identical full
     * stream (asserted via the stream counters). After absorbing
     * every other shard, this engine answers missCount()/
     * touchedLines() exactly as one unsharded pass would.
     */
    void absorb(const StackDistanceEngine &other);

  private:
    class Profiler;

    /** The profiler covering (@p line_bytes, @p sets), or nullptr. */
    const Profiler *profilerOf(std::uint32_t line_bytes,
                               std::uint64_t sets) const;

    std::vector<Profiler> profilers_;
    std::uint64_t accesses_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    unsigned shard_ = 0;
    unsigned shards_ = 1;
};

} // namespace sim
} // namespace sac

#endif // SAC_SIM_STACK_ENGINE_HH
