/**
 * @file
 * Statistics of one simulation run: the counters behind every metric
 * the paper reports (AMAT, miss ratio, hit repartition, memory
 * traffic, miss classes, mechanism-specific event counts).
 */

#ifndef SAC_SIM_RUN_STATS_HH
#define SAC_SIM_RUN_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/util/types.hh"

namespace sac {

namespace telemetry {
class CounterRegistry;
}

namespace sim {

/** All counters accumulated during one trace simulation. */
struct RunStats
{
    // Access counts.
    std::uint64_t accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    // Hit/miss breakdown.
    std::uint64_t mainHits = 0;
    std::uint64_t auxHits = 0;          //!< bounce-back / victim hits
    std::uint64_t auxPrefetchHits = 0;  //!< aux hits on prefetched lines
    std::uint64_t misses = 0;           //!< demand fetches from memory
    std::uint64_t bypasses = 0;         //!< accesses served by bypass
    std::uint64_t bypassBufferHits = 0;

    // Miss classes (demand misses only).
    std::uint64_t compulsoryMisses = 0;
    std::uint64_t capacityMisses = 0;
    std::uint64_t conflictMisses = 0;

    // Traffic.
    std::uint64_t linesFetched = 0;     //!< physical lines from memory
    std::uint64_t bytesFetched = 0;     //!< demand + prefetch fetch bytes
    std::uint64_t bytesWrittenBack = 0; //!< write-buffer drain bytes

    // Mechanism events.
    std::uint64_t virtualLineFills = 0; //!< misses that fetched > 1 line
    std::uint64_t extraLinesFetched = 0;//!< lines beyond the missed one
    std::uint64_t swaps = 0;            //!< aux hit swaps
    std::uint64_t bounces = 0;          //!< temporal bounce-backs done
    std::uint64_t bouncesCancelled = 0; //!< aimed at a miss fill target
    std::uint64_t bouncesAborted = 0;   //!< dirty target, full buffer
    std::uint64_t coherenceInvalidations = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0; //!< prefetched lines demanded
    std::uint64_t prefetchesAvoided = 0;//!< target already resident
    std::uint64_t writeBufferFullStalls = 0;

    // Time.
    double totalAccessCycles = 0.0; //!< sum of per-access latencies
    Cycle completionCycle = 0;      //!< cycle the last access finished

    /** Average memory access time in cycles. */
    double amat() const;

    /** Fraction of accesses that went to memory. */
    double missRatio() const;

    /** Fraction of accesses that hit (main or aux or bypass buffer). */
    double hitRatio() const;

    /** Fraction of hits served by the main cache. */
    double mainHitShare() const;

    /** Fraction of hits served by the aux (bounce-back) cache. */
    double auxHitShare() const;

    /** 4-byte words fetched from memory per access (Figure 7a). */
    double wordsFetchedPerAccess() const;

    /** Print a human-readable summary. */
    void print(std::ostream &os) const;

    /**
     * Exact component-wise equality, timing fields included. The
     * streaming engine and the specialized dispatch paths must be
     * bit-identical to the materialized general path, not merely
     * close, so tests compare whole RunStats objects.
     */
    bool operator==(const RunStats &) const = default;

    /**
     * Merge the counters of another run: every event count and the
     * cycle total accumulate; the completion cycle is the maximum
     * (runs are independent, not concatenated). Used by the sweep
     * aggregation path to fold per-cell stats into suite totals.
     */
    RunStats &operator+=(const RunStats &o);

    /**
     * Register every counter into @p reg under dotted telemetry
     * names ("cache.main.hits", "bounce.aborted", ...) prefixed by
     * @p prefix, with descriptions, and set the registered values
     * from this run. The same names always map to the same fields,
     * so registry totals and legacy fields agree exactly (tested by
     * telemetry_test).
     */
    void registerInto(telemetry::CounterRegistry &reg,
                      const std::string &prefix = "") const;

    /**
     * Invoke @p f(name, description, value) for every uint64 counter
     * in registerInto() registration order with the same dotted names
     * (totalAccessCycles, being a double, is not enumerated).
     * Header-only so layers that must not link sac_sim — the interval
     * engine in sac_telemetry — can walk the counter schema;
     * registerInto() is implemented on top of it, which keeps the two
     * enumerations identical by construction.
     */
    template <typename F>
    void forEachCounter(F &&f) const;
};

template <typename F>
void
RunStats::forEachCounter(F &&f) const
{
    f("access.total", "memory references simulated", accesses);
    f("access.reads", "read references", reads);
    f("access.writes", "write references", writes);
    f("cache.main.hits", "hits served by the main cache", mainHits);
    f("cache.aux.hits",
      "hits served by the aux (bounce-back / victim) cache", auxHits);
    f("cache.aux.prefetch_hits", "aux hits on prefetched lines",
      auxPrefetchHits);
    f("cache.miss.total", "demand fetches from memory", misses);
    f("cache.miss.compulsory", "compulsory (cold) misses",
      compulsoryMisses);
    f("cache.miss.capacity", "capacity misses", capacityMisses);
    f("cache.miss.conflict", "conflict misses", conflictMisses);
    f("bypass.total", "accesses served by bypass", bypasses);
    f("bypass.buffer_hits", "hits in the one-line bypass buffer",
      bypassBufferHits);
    f("traffic.lines_fetched", "physical lines from memory",
      linesFetched);
    f("traffic.bytes_fetched", "demand + prefetch fetch bytes",
      bytesFetched);
    f("traffic.bytes_written_back", "write-buffer drain bytes",
      bytesWrittenBack);
    f("vline.fills", "misses that fetched more than one line",
      virtualLineFills);
    f("vline.extra_lines", "lines fetched beyond the missed one",
      extraLinesFetched);
    f("swap.total", "aux hit swaps", swaps);
    f("bounce.done", "temporal bounce-backs performed", bounces);
    f("bounce.cancelled",
      "bounces aimed at an in-flight miss fill target",
      bouncesCancelled);
    f("bounce.aborted",
      "bounces onto a dirty line with a full write buffer",
      bouncesAborted);
    f("coherence.invalidations",
      "virtual-line fills skipped for aux-resident lines",
      coherenceInvalidations);
    f("prefetch.issued", "prefetch requests issued", prefetchesIssued);
    f("prefetch.useful", "prefetched lines that were demanded",
      prefetchesUseful);
    f("prefetch.avoided",
      "prefetches skipped because the target was resident",
      prefetchesAvoided);
    f("write_buffer.full_stalls",
      "stalls forced by a full write buffer", writeBufferFullStalls);
    f("time.completion_cycle", "cycle the last access finished",
      static_cast<std::uint64_t>(completionCycle));
}

/** Stream the print() summary. */
std::ostream &operator<<(std::ostream &os, const RunStats &s);

/** Component-wise sum (operator+= on a copy). */
RunStats operator+(RunStats a, const RunStats &b);

} // namespace sim
} // namespace sac

#endif // SAC_SIM_RUN_STATS_HH
