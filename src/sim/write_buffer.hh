/**
 * @file
 * A bounded write buffer. Victim lines displaced by fills and
 * bounce-backs are transferred here and drained to memory over the
 * bus. The simulator drains the buffer opportunistically after each
 * demand fetch; a push into a full buffer forces a drain that costs
 * bus time on the critical path.
 */

#ifndef SAC_SIM_WRITE_BUFFER_HH
#define SAC_SIM_WRITE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "src/util/types.hh"

namespace sac {
namespace sim {

/**
 * Occupancy model of the write buffer. Entry contents are not needed
 * by the timing model, only counts and sizes.
 */
class WriteBuffer
{
  public:
    /** @param capacity maximum number of pending entries (> 0) */
    explicit WriteBuffer(std::uint32_t capacity);

    /** Maximum number of entries. */
    std::uint32_t capacity() const { return capacity_; }

    /** Current number of pending entries. */
    std::uint32_t occupancy() const { return occupancy_; }

    /** True when no further entry can be accepted. */
    bool full() const { return occupancy_ >= capacity_; }

    /** True when the buffer holds no entries. */
    bool empty() const { return occupancy_ == 0; }

    /**
     * Queue one writeback of @p bytes. The caller must have made room
     * (drain) beforehand; pushing into a full buffer panics.
     */
    void push(std::uint32_t bytes);

    /**
     * Remove the oldest entry, returning its size in bytes. Popping an
     * empty buffer panics.
     */
    std::uint32_t pop();

    /** Drain every entry, returning the total bytes drained. */
    std::uint64_t drainAll();

    /** Total bytes ever pushed (memory write traffic). */
    std::uint64_t totalBytesPushed() const { return totalBytes_; }

    /** Number of pushes that found the buffer full beforehand. */
    std::uint64_t fullStalls() const { return fullStalls_; }

    /** Record that a push had to wait for a forced drain. */
    void noteFullStall() { ++fullStalls_; }

    /** Checkpoint image: occupancy, counters and FIFO contents. */
    struct Snapshot
    {
        /** Pending entry sizes, oldest first. */
        std::vector<std::uint32_t> pendingBytes;
        std::uint64_t totalBytesPushed = 0;
        std::uint64_t fullStalls = 0;
    };

    /** Capture the buffer's architectural state. */
    Snapshot snapshot() const;

    /**
     * Restore a snapshot taken on a buffer of the same capacity. The
     * ring head is normalized to 0; only FIFO order is architectural.
     */
    void restore(const Snapshot &s);

  private:
    std::uint32_t capacity_;
    std::uint32_t occupancy_ = 0;
    std::uint32_t pendingBytes_[64] = {};
    std::uint32_t head_ = 0;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t fullStalls_ = 0;
};

} // namespace sim
} // namespace sac

#endif // SAC_SIM_WRITE_BUFFER_HH
