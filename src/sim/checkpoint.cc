#include "src/sim/checkpoint.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <type_traits>

namespace sac {
namespace sim {

namespace {

constexpr std::uint64_t fnvOffset = 14695981039346656037ull;
constexpr std::uint64_t fnvPrime = 1099511628211ull;

/** Append one scalar's bytes to the growing payload. */
template <typename T>
void
putScalar(std::string &out, T v)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "serialized scalars must be trivially copyable");
    char bytes[sizeof(T)];
    std::memcpy(bytes, &v, sizeof(T));
    out.append(bytes, sizeof(T));
}

/**
 * Bounds-checked reader over an in-memory payload. Every get sets
 * ok = false instead of reading past the end, so a truncated or
 * length-corrupted payload parses to a clean failure, never a crash.
 */
struct Cursor
{
    const char *data;
    std::size_t size;
    std::size_t pos = 0;
    bool ok = true;

    template <typename T>
    T
    get()
    {
        T v{};
        if (!ok || size - pos < sizeof(T)) {
            ok = false;
            return v;
        }
        std::memcpy(&v, data + pos, sizeof(T));
        pos += sizeof(T);
        return v;
    }

    std::string
    getString(std::size_t n)
    {
        if (!ok || size - pos < n) {
            ok = false;
            return {};
        }
        std::string s(data + pos, n);
        pos += n;
        return s;
    }
};

void
putLine(std::string &out, const cache::LineState &l)
{
    putScalar<Addr>(out, l.lineAddr);
    std::uint8_t flags = 0;
    if (l.valid)
        flags |= 1u << 0;
    if (l.dirty)
        flags |= 1u << 1;
    if (l.temporal)
        flags |= 1u << 2;
    if (l.prefetched)
        flags |= 1u << 3;
    putScalar<std::uint8_t>(out, flags);
    putScalar<std::uint64_t>(out, l.lruStamp);
}

cache::LineState
getLine(Cursor &c)
{
    cache::LineState l;
    l.lineAddr = c.get<Addr>();
    const std::uint8_t flags = c.get<std::uint8_t>();
    l.valid = (flags & (1u << 0)) != 0;
    l.dirty = (flags & (1u << 1)) != 0;
    l.temporal = (flags & (1u << 2)) != 0;
    l.prefetched = (flags & (1u << 3)) != 0;
    l.lruStamp = c.get<std::uint64_t>();
    return l;
}

void
putLines(std::string &out, const std::vector<cache::LineState> &lines)
{
    putScalar<std::uint64_t>(out, lines.size());
    for (const auto &l : lines)
        putLine(out, l);
}

std::vector<cache::LineState>
getLines(Cursor &c)
{
    const std::uint64_t n = c.get<std::uint64_t>();
    // A line entry is at least 17 payload bytes; reject counts the
    // remaining payload cannot possibly hold before reserving.
    if (!c.ok || n > (c.size - c.pos) / 17) {
        c.ok = false;
        return {};
    }
    std::vector<cache::LineState> lines;
    lines.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && c.ok; ++i)
        lines.push_back(getLine(c));
    return lines;
}

void
putState(std::string &out, const ArchState &s)
{
    putLines(out, s.mainLines);
    putScalar<std::uint64_t>(out, s.mainLruClock);
    putScalar<std::uint8_t>(out, s.hasAux ? 1 : 0);
    putLines(out, s.auxLines);
    putScalar<std::uint64_t>(out, s.auxLruClock);
    putScalar<std::uint32_t>(
        out, static_cast<std::uint32_t>(s.writeBuffer.pendingBytes.size()));
    for (const std::uint32_t b : s.writeBuffer.pendingBytes)
        putScalar<std::uint32_t>(out, b);
    putScalar<std::uint64_t>(out, s.writeBuffer.totalBytesPushed);
    putScalar<std::uint64_t>(out, s.writeBuffer.fullStalls);
    putScalar<Cycle>(out, s.now);
    putScalar<Cycle>(out, s.procReadyAt);
    putScalar<Cycle>(out, s.cacheFreeAt);
    putScalar<Cycle>(out, s.busFreeAt);
    putScalar<std::uint8_t>(out, s.bypassBufferValid ? 1 : 0);
    putScalar<Addr>(out, s.bypassBufferLine);
    putScalar<std::uint8_t>(out, s.prefetchValid ? 1 : 0);
    putScalar<Addr>(out, s.prefetchLine);
    putScalar<std::uint32_t>(out, s.prefetchCount);
    putScalar<Cycle>(out, s.prefetchReadyAt);
}

ArchState
getState(Cursor &c)
{
    ArchState s;
    s.mainLines = getLines(c);
    s.mainLruClock = c.get<std::uint64_t>();
    s.hasAux = c.get<std::uint8_t>() != 0;
    s.auxLines = getLines(c);
    s.auxLruClock = c.get<std::uint64_t>();
    const std::uint32_t wb = c.get<std::uint32_t>();
    if (!c.ok || wb > 64) {
        c.ok = false;
        return s;
    }
    s.writeBuffer.pendingBytes.reserve(wb);
    for (std::uint32_t i = 0; i < wb && c.ok; ++i)
        s.writeBuffer.pendingBytes.push_back(c.get<std::uint32_t>());
    s.writeBuffer.totalBytesPushed = c.get<std::uint64_t>();
    s.writeBuffer.fullStalls = c.get<std::uint64_t>();
    s.now = c.get<Cycle>();
    s.procReadyAt = c.get<Cycle>();
    s.cacheFreeAt = c.get<Cycle>();
    s.busFreeAt = c.get<Cycle>();
    s.bypassBufferValid = c.get<std::uint8_t>() != 0;
    s.bypassBufferLine = c.get<Addr>();
    s.prefetchValid = c.get<std::uint8_t>() != 0;
    s.prefetchLine = c.get<Addr>();
    s.prefetchCount = c.get<std::uint32_t>();
    s.prefetchReadyAt = c.get<Cycle>();
    return s;
}

/** Keep [A-Za-z0-9._-]; anything else becomes '_'. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name.empty() ? std::string("trace") : name;
    for (char &ch : out) {
        const bool keep = (ch >= 'a' && ch <= 'z') ||
                          (ch >= 'A' && ch <= 'Z') ||
                          (ch >= '0' && ch <= '9') || ch == '.' ||
                          ch == '_' || ch == '-';
        if (!keep)
            ch = '_';
    }
    return out;
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    std::uint64_t h = seed;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

std::uint64_t
hashTrace(const trace::Trace &t)
{
    // Hash field by field (not struct bytes) so padding never leaks
    // into the identity.
    std::uint64_t h = fnvOffset;
    auto mix = [&h](const void *p, std::size_t n) {
        h = fnv1a(p, n, h);
    };
    const std::uint64_t count = t.size();
    mix(&count, sizeof(count));
    for (const trace::Record &r : t) {
        mix(&r.addr, sizeof(r.addr));
        mix(&r.ref, sizeof(r.ref));
        mix(&r.delta, sizeof(r.delta));
        mix(&r.size, sizeof(r.size));
        const std::uint8_t type = static_cast<std::uint8_t>(r.type);
        mix(&type, sizeof(type));
        const std::uint8_t tags =
            static_cast<std::uint8_t>((r.temporal ? 1 : 0) |
                                      (r.spatial ? 2 : 0));
        mix(&tags, sizeof(tags));
        mix(&r.spatialLevel, sizeof(r.spatialLevel));
    }
    return h;
}

std::string
CheckpointLibrary::pathFor(const std::string &dir,
                           const std::string &trace_name,
                           const CheckpointKey &key)
{
    const std::uint64_t cfg_hash =
        fnv1a(key.configKey.data(), key.configKey.size());
    std::ostringstream os;
    os << dir << '/' << "cfg-" << std::hex << cfg_hash << std::dec
       << '/' << sanitizeName(trace_name) << "-w" << key.window << "-s"
       << key.stride << "-u" << key.warmup << ".saclp";
    return os.str();
}

CheckpointLibrary::LoadResult
CheckpointLibrary::load(const std::string &path, const CheckpointKey &key)
{
    states_.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return LoadResult::Missing;

    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string file = raw.str();

    Cursor header{file.data(), file.size()};
    const std::uint32_t magic = header.get<std::uint32_t>();
    const std::uint32_t version = header.get<std::uint32_t>();
    const std::uint64_t checksum = header.get<std::uint64_t>();
    if (!header.ok || magic != formatMagic || version != formatVersion)
        return LoadResult::Stale;

    const char *payload = file.data() + header.pos;
    const std::size_t payload_size = file.size() - header.pos;
    if (fnv1a(payload, payload_size) != checksum)
        return LoadResult::Stale;

    Cursor c{payload, payload_size};
    const std::uint64_t trace_hash = c.get<std::uint64_t>();
    const std::uint32_t key_len = c.get<std::uint32_t>();
    if (!c.ok || key_len > (1u << 16))
        return LoadResult::Stale;
    const std::string config_key = c.getString(key_len);
    const std::uint64_t window = c.get<std::uint64_t>();
    const std::uint64_t stride = c.get<std::uint64_t>();
    const std::uint64_t warmup = c.get<std::uint64_t>();
    if (!c.ok)
        return LoadResult::Stale;
    if (trace_hash != key.traceHash || config_key != key.configKey ||
        window != key.window || stride != key.stride ||
        warmup != key.warmup)
        return LoadResult::Stale;

    const std::uint64_t count = c.get<std::uint64_t>();
    std::vector<ArchState> states;
    for (std::uint64_t i = 0; i < count && c.ok; ++i)
        states.push_back(getState(c));
    if (!c.ok || states.size() != count || c.pos != c.size)
        return LoadResult::Stale;

    states_ = std::move(states);
    loadedBytes_ = file.size();
    return LoadResult::Hit;
}

std::uint64_t
CheckpointLibrary::save(const std::string &path,
                        const CheckpointKey &key) const
{
    std::string payload;
    putScalar<std::uint64_t>(payload, key.traceHash);
    putScalar<std::uint32_t>(
        payload, static_cast<std::uint32_t>(key.configKey.size()));
    payload.append(key.configKey);
    putScalar<std::uint64_t>(payload, key.window);
    putScalar<std::uint64_t>(payload, key.stride);
    putScalar<std::uint64_t>(payload, key.warmup);
    putScalar<std::uint64_t>(payload, states_.size());
    for (const ArchState &s : states_)
        putState(payload, s);

    std::string file;
    file.reserve(16 + payload.size());
    putScalar<std::uint32_t>(file, formatMagic);
    putScalar<std::uint32_t>(file, formatVersion);
    putScalar<std::uint64_t>(file,
                             fnv1a(payload.data(), payload.size()));
    file.append(payload);

    std::error_code ec;
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return 0;
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out)
        return 0;
    return file.size();
}

} // namespace sim
} // namespace sac
