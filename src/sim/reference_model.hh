/**
 * @file
 * An independent reference model of the software-assisted cache: a
 * deliberately naive, single-threaded, timing-free replay of a trace
 * through a textbook implementation of the paper's direct-mapped main
 * cache with victim / bounce-back aux cache and virtual-line fills.
 *
 * It shares no code with core::SoftwareAssistedCache — the main cache
 * is a plain array of lines, the aux cache an explicit LRU list, the
 * write buffer a counter — and exists solely as a differential oracle:
 * the functional counters (hits, misses, traffic) it produces must
 * match the simulator's exactly on any supported configuration, which
 * is what makes results from the parallel sweep executor trustworthy.
 */

#ifndef SAC_SIM_REFERENCE_MODEL_HH
#define SAC_SIM_REFERENCE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/config.hh"
#include "src/sim/run_stats.hh"
#include "src/trace/trace.hh"

namespace sac {
namespace sim {

/**
 * The functional (timing-free) counters both models must agree on.
 */
struct ReferenceCounts
{
    std::uint64_t accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t mainHits = 0;
    std::uint64_t auxHits = 0;
    std::uint64_t misses = 0;
    std::uint64_t swaps = 0;
    std::uint64_t bounces = 0;
    std::uint64_t bouncesCancelled = 0;
    std::uint64_t bouncesAborted = 0;
    std::uint64_t coherenceInvalidations = 0;
    std::uint64_t virtualLineFills = 0;
    std::uint64_t extraLinesFetched = 0;
    std::uint64_t linesFetched = 0;
    std::uint64_t bytesFetched = 0;
    std::uint64_t bytesWrittenBack = 0;

    bool operator==(const ReferenceCounts &) const = default;
};

/** Project a simulator result onto the comparable counters. */
ReferenceCounts countsOf(const RunStats &s);

/**
 * Human-readable field-by-field divergence report; empty when
 * @p expected == @p got.
 */
std::string describeDivergence(const ReferenceCounts &expected,
                               const ReferenceCounts &got);

/**
 * The naive reference cache model. Supported configurations are
 * direct-mapped main caches without bypassing or prefetching and with
 * a fully-associative aux cache (or none); supports() reports
 * eligibility, constructing an unsupported configuration is fatal.
 */
class ReferenceModel
{
  public:
    explicit ReferenceModel(const core::Config &cfg);

    /** Can this configuration be replayed by the reference model? */
    static bool supports(const core::Config &cfg);

    /** Replay one reference. */
    void access(const trace::Record &rec);

    /** Replay a whole trace (appends to the current state). */
    void run(const trace::Trace &t);

    /** Counters accumulated so far. */
    const ReferenceCounts &counts() const { return counts_; }

  private:
    /** One cache line; the obvious representation. */
    struct Line
    {
        Addr lineAddr = 0;
        bool valid = false;
        bool dirty = false;
        bool temporal = false;
    };

    Addr lineOf(Addr byte_addr) const;
    std::uint64_t setOf(Addr line_addr) const;
    bool mainContains(Addr line_addr) const;
    bool auxContains(Addr line_addr) const;

    void handleMiss(const trace::Record &rec, Addr line);
    /** Install one fetched line; returns its set index. */
    std::uint64_t installIntoMain(Addr line_addr,
                                  std::vector<std::uint64_t> &fill_sets);
    void victimToAux(const Line &victim,
                     const std::vector<std::uint64_t> &fill_sets);
    void bounceBack(const Line &victim,
                    const std::vector<std::uint64_t> &fill_sets);
    void pushWriteback();

    core::Config cfg_;
    std::uint64_t numSets_;
    std::uint32_t lineShift_;
    std::vector<Line> main_;  //!< one line per set (direct-mapped)
    std::vector<Line> aux_;   //!< LRU order: front oldest, back newest
    std::uint32_t wbufOccupancy_ = 0;
    ReferenceCounts counts_;
};

/** Replay @p t under @p cfg and return the reference counters. */
ReferenceCounts referenceCounts(const trace::Trace &t,
                                const core::Config &cfg);

} // namespace sim
} // namespace sac

#endif // SAC_SIM_REFERENCE_MODEL_HH
