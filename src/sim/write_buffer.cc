#include "src/sim/write_buffer.hh"

#include "src/util/logging.hh"

namespace sac {
namespace sim {

WriteBuffer::WriteBuffer(std::uint32_t capacity) : capacity_(capacity)
{
    SAC_ASSERT(capacity > 0 && capacity <= 64,
               "write buffer capacity must be in [1, 64]");
}

void
WriteBuffer::push(std::uint32_t bytes)
{
    SAC_ASSERT(!full(), "push into a full write buffer");
    pendingBytes_[(head_ + occupancy_) % capacity_] = bytes;
    ++occupancy_;
    totalBytes_ += bytes;
}

std::uint32_t
WriteBuffer::pop()
{
    SAC_ASSERT(!empty(), "pop from an empty write buffer");
    const std::uint32_t bytes = pendingBytes_[head_];
    head_ = (head_ + 1) % capacity_;
    --occupancy_;
    return bytes;
}

std::uint64_t
WriteBuffer::drainAll()
{
    std::uint64_t total = 0;
    while (!empty())
        total += pop();
    return total;
}

} // namespace sim
} // namespace sac
