#include "src/sim/write_buffer.hh"

#include "src/util/logging.hh"

namespace sac {
namespace sim {

WriteBuffer::WriteBuffer(std::uint32_t capacity) : capacity_(capacity)
{
    SAC_ASSERT(capacity > 0 && capacity <= 64,
               "write buffer capacity must be in [1, 64]");
}

void
WriteBuffer::push(std::uint32_t bytes)
{
    SAC_ASSERT(!full(), "push into a full write buffer");
    pendingBytes_[(head_ + occupancy_) % capacity_] = bytes;
    ++occupancy_;
    totalBytes_ += bytes;
}

std::uint32_t
WriteBuffer::pop()
{
    SAC_ASSERT(!empty(), "pop from an empty write buffer");
    const std::uint32_t bytes = pendingBytes_[head_];
    head_ = (head_ + 1) % capacity_;
    --occupancy_;
    return bytes;
}

WriteBuffer::Snapshot
WriteBuffer::snapshot() const
{
    Snapshot s;
    s.pendingBytes.reserve(occupancy_);
    for (std::uint32_t i = 0; i < occupancy_; ++i)
        s.pendingBytes.push_back(pendingBytes_[(head_ + i) % capacity_]);
    s.totalBytesPushed = totalBytes_;
    s.fullStalls = fullStalls_;
    return s;
}

void
WriteBuffer::restore(const Snapshot &s)
{
    SAC_ASSERT(s.pendingBytes.size() <= capacity_,
               "write buffer snapshot exceeds capacity");
    head_ = 0;
    occupancy_ = static_cast<std::uint32_t>(s.pendingBytes.size());
    for (std::uint32_t i = 0; i < occupancy_; ++i)
        pendingBytes_[i] = s.pendingBytes[i];
    totalBytes_ = s.totalBytesPushed;
    fullStalls_ = s.fullStalls;
}

std::uint64_t
WriteBuffer::drainAll()
{
    std::uint64_t total = 0;
    while (!empty())
        total += pop();
    return total;
}

} // namespace sim
} // namespace sac
