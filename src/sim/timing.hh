/**
 * @file
 * Timing parameters of the simulated memory hierarchy, following the
 * paper's Section 3.1 defaults: 20-cycle memory latency, 16-byte bus,
 * 1-cycle direct-mapped main cache, 3-cycle bounce-back cache.
 */

#ifndef SAC_SIM_TIMING_HH
#define SAC_SIM_TIMING_HH

#include <cstdint>

#include "src/util/types.hh"

namespace sac {
namespace sim {

/** All latency/bandwidth knobs of the simulated hierarchy. */
struct TimingParams
{
    /** Main-memory access latency, in cycles (paper default: 20). */
    Cycle memoryLatency = 20;
    /** Bus bandwidth in bytes per cycle (paper default: 16). */
    std::uint32_t busBytesPerCycle = 16;
    /** Main cache hit time (direct-mapped, on-chip: 1 cycle). */
    Cycle mainHitTime = 1;
    /**
     * Bounce-back / victim cache access time. The paper argues the
     * hit/miss answer of the main cache arrives in the second cycle
     * and selects a conservative 3 cycles.
     */
    Cycle auxHitTime = 3;
    /** Extra cycles both caches stay locked after a swap. */
    Cycle swapLockCycles = 2;
    /** Cycles to transfer one dirty line to the write buffer. */
    Cycle dirtyTransferCycles = 2;
    /** Extra main-cache stall after a hit on a prefetched aux line. */
    Cycle prefetchHitExtraStall = 1;

    /** Bus cycles needed to move @p bytes. */
    Cycle
    transferCycles(std::uint64_t bytes) const
    {
        return (bytes + busBytesPerCycle - 1) / busBytesPerCycle;
    }

    /**
     * Demand miss penalty for fetching @p n physical lines of
     * @p line_bytes each: tlat + n*LS/wb (paper, Section 2.1).
     */
    Cycle
    missPenalty(std::uint32_t n, std::uint32_t line_bytes) const
    {
        return memoryLatency +
               transferCycles(static_cast<std::uint64_t>(n) * line_bytes);
    }
};

} // namespace sim
} // namespace sac

#endif // SAC_SIM_TIMING_HH
