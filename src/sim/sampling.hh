/**
 * @file
 * SMARTS-style statistical sampling of trace simulations: instead of
 * simulating every record at full fidelity, the sampled engine
 * measures U detailed windows of W records at a stride of S records,
 * functionally warms the cache state for a bounded number of records
 * before each window, and fast-forwards (skips) the rest. Per-window
 * miss ratio / AMAT / traffic samples feed a running mean/variance
 * from which CLT confidence intervals are derived, so every estimate
 * is reported together with its own +/- error bound.
 *
 * The pieces:
 *  - SampleStats: Welford-accumulated scalar samples with
 *    confidence-interval math (normal quantiles, half-width,
 *    relative error);
 *  - SamplingOptions: window/stride/warmup geometry plus confidence
 *    and an optional adaptive stopping rule, with Config-style
 *    validationError();
 *  - SampleReport: the per-metric SampleStats, the record accounting
 *    and the exact-fallback flag of one sampled run;
 *  - SampledEngine: drives any trace::TraceSource through a simulator
 *    that models the DetailSim concept (core::SoftwareAssistedCache
 *    with its warming-specialized access path).
 *
 * The engine is a template over the simulator so src/sim never links
 * against src/core (sac_core links sac_sim; the reverse edge would be
 * a cycle). The concept a simulator must model:
 *
 *   void runDetailed(const trace::Record *recs, std::size_t n);
 *   void runWarming(const trace::Record *recs, std::size_t n);
 *   const sim::RunStats &stats() const;
 *   void finish();
 *
 * Warming must update all architectural state (arrays, LRU, temporal
 * bits, write buffer, clocks) exactly as the detailed path does —
 * bit-for-bit, proven by the warming-state differential tests — while
 * statistics collection is compiled out.
 */

#ifndef SAC_SIM_SAMPLING_HH
#define SAC_SIM_SAMPLING_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/checkpoint.hh"
#include "src/sim/miss_classifier.hh"
#include "src/sim/run_stats.hh"
#include "src/trace/record.hh"
#include "src/trace/trace_source.hh"
#include "src/util/thread_pool.hh"
#include "src/util/types.hh"

namespace sac {
namespace sim {

/**
 * Two-sided normal quantile for a confidence level in (0, 1): the z
 * with P(|N(0,1)| <= z) = confidence (1.96 for 95%, 2.576 for 99%).
 */
double confidenceZ(double confidence);

/** Format "mean +/-half" with @p decimals digits (table cells). */
std::string formatWithCi(double mean, double half_width, int decimals);

/**
 * Running scalar sample accumulator (Welford) with CLT interval math.
 * One instance per sampled metric; samples are per-window means of
 * equal-sized windows, so their average equals the aggregate ratio.
 */
class SampleStats
{
  public:
    /** Record one per-window sample. */
    void add(double x);

    /** Number of windows sampled. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /**
     * CLT half-width of the two-sided confidence interval:
     * z * sqrt(variance / n). Infinite when fewer than 2 samples
     * (one window says nothing about its own error).
     */
    double halfWidth(double confidence) const;

    /**
     * Half-width relative to |mean|: the adaptive stopping metric.
     * Infinite when the half-width is unknown; 0 when the half-width
     * is 0 (a constant sequence estimates itself exactly). A zero
     * mean with nonzero half-width is infinite.
     */
    double relativeError(double confidence) const;

    /**
     * Bit-exact accumulator equality (count, mean, m2) — the
     * differential tests' definition of "same samples in the same
     * order", which is what the parallel replay merge guarantees.
     */
    bool operator==(const SampleStats &) const = default;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0; //!< sum of squared deviations (Welford)
};

/** Geometry and stopping rule of one sampled run. */
struct SamplingOptions
{
    /** Detailed records per measurement window. */
    std::uint64_t window = 1024;

    /** Records from one window start to the next (period). */
    std::uint64_t stride = 16384;

    /**
     * Records functionally warmed immediately before each window;
     * the first stride - window - warmup records of each period are
     * skipped outright (fast-forward). Clamped to stride - window, so
     * any value >= that (e.g. the stride itself) disables skipping
     * entirely: pure SMARTS functional warming.
     */
    std::uint64_t warmup = 4096;

    /** Two-sided confidence level of the reported intervals. */
    double confidence = 0.95;

    /**
     * Adaptive mode: when > 0, stop sampling (and skip the rest of
     * the stream) once the miss-ratio estimate's relative error at
     * the configured confidence reaches this target and at least
     * minWindows windows were measured.
     */
    double targetRelativeError = 0.0;

    /** Windows required before the adaptive rule may stop. */
    std::uint64_t minWindows = 8;

    /** Hard cap on measured windows; 0 = unlimited. */
    std::uint64_t maxWindows = 0;

    /**
     * The first constraint this geometry violates, or nullopt when it
     * is valid (the Config::validationError() convention).
     */
    std::optional<std::string> validationError() const;

    /** fatal() on an invalid geometry (mirrors Config::validate). */
    void validate() const;
};

/** Everything one sampled run produced. */
struct SampleReport
{
    /** Per-window miss-ratio samples. */
    SampleStats missRatio;
    /** Per-window AMAT (cycles per access) samples. */
    SampleStats amat;
    /** Per-window memory-traffic samples (4-byte words / access). */
    SampleStats wordsPerAccess;

    /** Confidence level the intervals below are quoted at. */
    double confidence = 0.95;

    /** Complete measurement windows taken. */
    std::uint64_t windows = 0;

    // Record accounting: total = detailed + warmed + skipped.
    std::uint64_t recordsTotal = 0;
    std::uint64_t recordsDetailed = 0;
    std::uint64_t recordsWarmed = 0;
    std::uint64_t recordsSkipped = 0;

    /**
     * True when every record was simulated at full detail (nothing
     * warmed or skipped): the estimates are exact, not statistical,
     * and their half-widths are 0. Short streams fall back to this.
     */
    bool exact = false;

    /**
     * Cumulative simulator statistics over the detailed records (the
     * full-run statistics when exact).
     */
    RunStats detailed;

    /** Point estimate of the miss ratio. */
    double missRatioEstimate() const
    {
        return exact ? detailed.missRatio() : missRatio.mean();
    }

    /** Point estimate of the AMAT. */
    double amatEstimate() const
    {
        return exact ? detailed.amat() : amat.mean();
    }

    /** Point estimate of words fetched per access. */
    double wordsPerAccessEstimate() const
    {
        return exact ? detailed.wordsFetchedPerAccess()
                     : wordsPerAccess.mean();
    }

    /** Half-width of @p s at the report's confidence (0 when exact). */
    double halfWidthOf(const SampleStats &s) const
    {
        return exact ? 0.0 : s.halfWidth(confidence);
    }

    /** Bit-exact report equality (every field, RunStats included). */
    bool operator==(const SampleReport &) const = default;
};

/**
 * What the parallel replay path actually did — exposed so the harness
 * can account intra-trace parallelism (the parallel.* counters)
 * without re-deriving the partitioning.
 */
struct ParallelReplayStats
{
    /** Did the parallel path run (false = serial fallback)? */
    bool parallel = false;
    /** Detailed windows replayed concurrently. */
    std::uint64_t windows = 0;
    /** Worker shards the windows were partitioned over. */
    std::uint64_t workers = 0;
    /** Nanoseconds spent in the ordered merge of worker results. */
    std::uint64_t mergeNanos = 0;
};

/**
 * The windowed sampler. Stateless apart from its options; run() may
 * be called any number of times (each call is one independent sampled
 * replay).
 */
class SampledEngine
{
  public:
    using Options = SamplingOptions;

    /** @param opt validated on construction (fatal on bad geometry) */
    explicit SampledEngine(Options opt) : opt_(opt) { opt_.validate(); }

    const Options &options() const { return opt_; }

    /**
     * Drain @p src through @p sim: each period of opt.stride records
     * starts with opt.window detailed records (one sample), then
     * skips, then functionally warms opt.warmup records leading into
     * the next window. Ends when the source does (or early, in
     * adaptive mode, once the target error is met — the remainder of
     * the stream is then skipped without simulation). Calls
     * sim.finish() before returning.
     */
    template <class Sim>
    SampleReport
    run(trace::TraceSource &src, Sim &sim) const
    {
        SampleReport rep;
        rep.confidence = opt_.confidence;

        const std::uint64_t gap = opt_.stride - opt_.window;
        const std::uint64_t warm = std::min(opt_.warmup, gap);
        const std::uint64_t skip = gap - warm;

        std::vector<trace::Record> buf(
            std::min<std::uint64_t>(trace::TraceSource::defaultChunkRecords,
                                    opt_.window));
        RunStats prev; // stats snapshot at the last window boundary
        bool more = true;
        bool stopped_early = false;

        while (more) {
            // 1. Detailed measurement window.
            std::uint64_t got = 0;
            while (got < opt_.window) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(buf.size(),
                                            opt_.window - got));
                const std::size_t n = src.next(buf.data(), want);
                if (n == 0) {
                    more = false;
                    break;
                }
                sim.runDetailed(buf.data(), n);
                got += n;
            }
            rep.recordsDetailed += got;
            if (got == opt_.window) {
                // One complete window: sample the stats delta.
                const RunStats &cur = sim.stats();
                const double acc = static_cast<double>(
                    cur.accesses - prev.accesses);
                const double misses = static_cast<double>(
                    cur.misses - prev.misses);
                const double cycles =
                    cur.totalAccessCycles - prev.totalAccessCycles;
                const double words =
                    static_cast<double>(cur.bytesFetched -
                                        prev.bytesFetched) /
                    wordBytes;
                rep.missRatio.add(misses / acc);
                rep.amat.add(cycles / acc);
                rep.wordsPerAccess.add(words / acc);
                ++rep.windows;
                prev = cur;

                const bool capped = opt_.maxWindows > 0 &&
                                    rep.windows >= opt_.maxWindows;
                const bool converged =
                    opt_.targetRelativeError > 0.0 &&
                    rep.windows >= opt_.minWindows &&
                    rep.missRatio.relativeError(opt_.confidence) <=
                        opt_.targetRelativeError;
                if (more && (capped || converged)) {
                    // Enough windows: fast-forward the rest.
                    rep.recordsSkipped += drainSkip(src);
                    stopped_early = true;
                    break;
                }
            }
            if (!more)
                break;

            // 2. Fast-forward the dead part of the period.
            if (skip > 0) {
                const std::uint64_t s = src.skip(skip);
                rep.recordsSkipped += s;
                if (s < skip)
                    more = false;
            }

            // 3. Functional warming into the next window.
            std::uint64_t warmed = 0;
            while (more && warmed < warm) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(buf.size(), warm - warmed));
                const std::size_t n = src.next(buf.data(), want);
                if (n == 0) {
                    more = false;
                    break;
                }
                sim.runWarming(buf.data(), n);
                warmed += n;
            }
            rep.recordsWarmed += warmed;
            // The warmed records moved architectural state but not
            // the statistics; resnapshot so the next window's delta
            // covers exactly its own records.
            prev = sim.stats();
        }

        sim.finish();
        rep.recordsTotal = rep.recordsDetailed + rep.recordsWarmed +
                           rep.recordsSkipped;
        rep.exact = !stopped_early && rep.recordsWarmed == 0 &&
                    rep.recordsSkipped == 0;
        rep.detailed = sim.stats();
        return rep;
    }

    /**
     * True when this geometry benefits from a checkpoint library: a
     * gap of warm/skip records exists between windows. When stride ==
     * window every record is simulated in full detail anyway (the
     * exact fallback), so there is no warming to persist and callers
     * should run() directly.
     */
    bool checkpointable() const { return opt_.stride > opt_.window; }

    /**
     * One warming pass that fills @p lib with the live-point at the
     * start of every detailed window, mirroring run()'s replay/skip
     * pattern exactly: window-position records and warmup records are
     * replayed in warming mode (architecturally bit-identical to the
     * detailed path), skip-position records are skipped. The sim must
     * be freshly constructed. The builder never stops early — it has
     * no statistics to converge on — so the library covers every
     * window any later run() or runCheckpointed() can reach,
     * including adaptive runs that stop sooner. Requires the extended
     * Sim concept: ArchState exportState() const.
     */
    template <class Sim>
    void
    buildLibrary(trace::TraceSource &src, Sim &sim,
                 CheckpointLibrary &lib) const
    {
        lib.clear();
        const std::uint64_t gap = opt_.stride - opt_.window;
        const std::uint64_t warm = std::min(opt_.warmup, gap);
        const std::uint64_t skip = gap - warm;

        std::vector<trace::Record> buf(
            std::min<std::uint64_t>(trace::TraceSource::defaultChunkRecords,
                                    opt_.window));
        bool more = true;
        while (more) {
            // Live-point at this window's start (the first one is the
            // fresh simulator; restoring it is what makes window 0
            // identical between the warmed and checkpointed runs).
            lib.append(sim.exportState());

            // 1. The window position, replayed in warming mode.
            std::uint64_t got = 0;
            while (got < opt_.window) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(buf.size(),
                                            opt_.window - got));
                const std::size_t n = src.next(buf.data(), want);
                if (n == 0) {
                    more = false;
                    break;
                }
                sim.runWarming(buf.data(), n);
                got += n;
            }
            if (!more)
                break;

            // 2. The dead part of the period never touches state.
            if (skip > 0) {
                const std::uint64_t s = src.skip(skip);
                if (s < skip)
                    more = false;
            }

            // 3. Functional warming into the next window.
            std::uint64_t warmed = 0;
            while (more && warmed < warm) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(buf.size(), warm - warmed));
                const std::size_t n = src.next(buf.data(), want);
                if (n == 0) {
                    more = false;
                    break;
                }
                sim.runWarming(buf.data(), n);
                warmed += n;
            }
            if (!more) {
                // Stream ended inside the gap: the warmed run's state
                // at finish() includes these trailing warm records,
                // which the checkpointed run fast-forwards past. A
                // trailing live-point closes that hole (restored by
                // runCheckpointed when its gap skip comes up short).
                lib.append(sim.exportState());
                break;
            }
        }
    }

    /**
     * run() with the functional warming replaced by live-point
     * restores: before detailed window k the simulator's architectural
     * state is overwritten with checkpoint k, and the whole inter-
     * window gap (skip + warmup) is fast-forwarded without touching
     * the simulator. Statistics advance only inside detailed windows
     * in both paths, so the resulting RunStats (and every per-window
     * sample) are bit-identical to run() over the same source — at
     * warming cost zero. @p lib must have loaded as Hit for the
     * matching key (or been built by buildLibrary over the same
     * source). Requires the extended Sim concept:
     * void importState(const ArchState &).
     */
    template <class Sim>
    SampleReport
    runCheckpointed(trace::TraceSource &src, Sim &sim,
                    const CheckpointLibrary &lib) const
    {
        SampleReport rep;
        rep.confidence = opt_.confidence;

        const std::uint64_t gap = opt_.stride - opt_.window;

        std::vector<trace::Record> buf(
            std::min<std::uint64_t>(trace::TraceSource::defaultChunkRecords,
                                    opt_.window));
        RunStats prev; // stats snapshot at the last window boundary
        bool more = true;
        bool stopped_early = false;
        std::size_t window_index = 0;

        while (more) {
            // Restore the live-point for this window. buildLibrary
            // appends one checkpoint per window it enters, so a
            // matching library always covers us; an exhausted library
            // (defensive) ends the run like an exhausted stream.
            const ArchState *cp = lib.checkpointAt(window_index);
            if (!cp)
                break;
            sim.importState(*cp);
            ++window_index;

            // 1. Detailed measurement window (identical to run()).
            std::uint64_t got = 0;
            while (got < opt_.window) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(buf.size(),
                                            opt_.window - got));
                const std::size_t n = src.next(buf.data(), want);
                if (n == 0) {
                    more = false;
                    break;
                }
                sim.runDetailed(buf.data(), n);
                got += n;
            }
            rep.recordsDetailed += got;
            if (got == opt_.window) {
                const RunStats &cur = sim.stats();
                const double acc = static_cast<double>(
                    cur.accesses - prev.accesses);
                const double misses = static_cast<double>(
                    cur.misses - prev.misses);
                const double cycles =
                    cur.totalAccessCycles - prev.totalAccessCycles;
                const double words =
                    static_cast<double>(cur.bytesFetched -
                                        prev.bytesFetched) /
                    wordBytes;
                rep.missRatio.add(misses / acc);
                rep.amat.add(cycles / acc);
                rep.wordsPerAccess.add(words / acc);
                ++rep.windows;
                prev = cur;

                const bool capped = opt_.maxWindows > 0 &&
                                    rep.windows >= opt_.maxWindows;
                const bool converged =
                    opt_.targetRelativeError > 0.0 &&
                    rep.windows >= opt_.minWindows &&
                    rep.missRatio.relativeError(opt_.confidence) <=
                        opt_.targetRelativeError;
                if (more && (capped || converged)) {
                    rep.recordsSkipped += drainSkip(src);
                    stopped_early = true;
                    break;
                }
            }
            if (!more)
                break;

            // 2. Fast-forward the whole gap: the next live-point
            // replaces functional warming, so warm-position records
            // are skipped too (recordsWarmed stays 0).
            if (gap > 0) {
                const std::uint64_t s = src.skip(gap);
                rep.recordsSkipped += s;
                if (s < gap) {
                    more = false;
                    // The stream ended inside the gap: adopt the
                    // builder's trailing live-point so finish() seals
                    // the same architectural state (write buffer,
                    // clocks) the warmed run reached through the
                    // trailing warm records.
                    if (const ArchState *tail =
                            lib.checkpointAt(window_index))
                        sim.importState(*tail);
                }
            }
            prev = sim.stats();
        }

        sim.finish();
        rep.recordsTotal = rep.recordsDetailed + rep.recordsWarmed +
                           rep.recordsSkipped;
        rep.exact = !stopped_early && rep.recordsWarmed == 0 &&
                    rep.recordsSkipped == 0;
        rep.detailed = sim.stats();
        return rep;
    }

    /**
     * runCheckpointed() fanned out over @p workers pool shards. The
     * library makes every detailed window state-independent — window k
     * is a pure function of (checkpoint k, the window's records) — so
     * the windows are partitioned into contiguous per-worker batches,
     * each worker replays its batch on a private simulator from
     * @p make_sim over a private src.clone(), and the per-window
     * results are merged in window order. The merge is bit-identical
     * to the serial path by construction:
     *
     *  - every RunStats counter is an exact integer (the cycle total
     *    is a double summing integer latencies, far below 2^53), so
     *    summing per-worker stats in worker order reproduces the
     *    serial totals exactly; the completion cycle merges by max,
     *    which equals the serial run's final (largest) value because
     *    checkpoint clocks advance monotonically with window index;
     *  - the per-window sample triples are computed from identical
     *    operands (same restored state, same records) and re-fed into
     *    Welford accumulation in global window order, so every mean,
     *    m2 and confidence interval matches to the last bit;
     *  - the two pieces of whole-stream state that summation cannot
     *    reproduce are handled explicitly: the three-C classifier is
     *    re-seeded per worker from a cheap address-only shadow
     *    pre-pass (its state is a pure function of the detailed
     *    address stream), and writeBufferFullStalls — which finish()
     *    overwrites with the write buffer's checkpoint-restored
     *    absolute counter — is taken from the last worker alone.
     *
     * The last worker additionally replicates the serial tail: the
     * trailing partial window, the builder's trailing live-point on a
     * short gap skip, and the one finish() of the run. The original
     * @p src is consumed only on the serial fallback path — taken for
     * adaptive geometries (the stopping rule is inherently
     * sequential), unknown stream lengths, un-clonable sources, or
     * fewer than two full windows — so a failed parallel attempt can
     * always re-run serially on the pristine source. @p out, when
     * given, reports what actually happened.
     */
    template <class SimFactory>
    SampleReport
    runCheckpointedParallel(trace::TraceSource &src,
                            SimFactory &&make_sim,
                            const CheckpointLibrary &lib,
                            util::ThreadPool &pool, unsigned workers,
                            ParallelReplayStats *out = nullptr) const
    {
        const auto serial = [&]() {
            auto sim = make_sim();
            return runCheckpointed(src, sim, lib);
        };
        if (out)
            *out = ParallelReplayStats{};

        const std::uint64_t W = opt_.window;
        const std::uint64_t S = opt_.stride;
        const auto hint = src.sizeHint();
        if (workers <= 1 || S <= W || !hint ||
            opt_.targetRelativeError > 0.0)
            return serial();

        const std::uint64_t N = *hint;
        // Full windows the stream holds; the plan honors maxWindows
        // exactly as the serial loop does (cap, then drain the rest
        // as skipped records with the early-stop flag set).
        const std::uint64_t full =
            N >= W ? (N - W) / S + 1 : 0;
        const bool capped =
            opt_.maxWindows > 0 && full >= opt_.maxWindows;
        const std::uint64_t planned = capped ? opt_.maxWindows : full;
        // The uncapped tail needs checkpoint `full` (the next-window
        // or trailing live-point); a library built over this source
        // always has it, but a foreign prefix falls back to serial.
        if (planned < 2 ||
            lib.size() < (capped ? planned : full + 1))
            return serial();
        if (workers > planned)
            workers = static_cast<unsigned>(planned);

        auto first_clone = src.clone();
        if (!first_clone)
            return serial();

        const std::uint64_t gap = S - W;
        const std::uint64_t base = planned / workers;
        const std::uint64_t extra = planned % workers;
        std::vector<std::uint64_t> begins(workers);
        for (unsigned w = 0, next = 0; w < workers; ++w) {
            begins[w] = next;
            next += static_cast<unsigned>(base) +
                    (w < extra ? 1u : 0u);
        }

        // The three-C classifier is whole-stream shadow state that is
        // deliberately absent from ArchState: the serial replay
        // reproduces it by feeding the detailed windows in order on
        // one simulator. Its evolution is a pure function of the
        // detailed *address* stream (hits and misses mutate the
        // seen-set and shadow LRU identically), so a classifier-only
        // pre-pass over the windows reconstructs, at a small fraction
        // of full replay cost, the exact state a serial run holds
        // when each worker's first window begins. Simulators that do
        // not expose the classifier hooks cannot make that guarantee,
        // so they replay serially.
        using Sim = std::decay_t<decltype(make_sim())>;
        constexpr bool seedable =
            requires(Sim &s, const MissClassifier &c) {
                { s.classifier() };
                { s.seedClassifier(c) };
            };
        if constexpr (!seedable)
            return serial();

        std::vector<MissClassifier> seeds;
        {
            auto probe = make_sim();
            const MissClassifier *fresh = probe.classifier();
            if (fresh && workers > 1) {
                auto pre = src.clone();
                if (!pre)
                    return serial();
                MissClassifier shadow = *fresh;
                seeds.reserve(workers - 1);
                std::vector<trace::Record> buf(
                    static_cast<std::size_t>(std::min<std::uint64_t>(
                        trace::TraceSource::defaultChunkRecords, W)));
                for (std::uint64_t k = 0; k < planned; ++k) {
                    while (seeds.size() + 1 < workers &&
                           begins[seeds.size() + 1] == k)
                        seeds.push_back(shadow);
                    if (seeds.size() + 1 == workers)
                        break; // the last batch needs no snapshot
                    std::uint64_t got = 0;
                    while (got < W) {
                        const std::size_t n = pre->next(
                            buf.data(),
                            static_cast<std::size_t>(
                                std::min<std::uint64_t>(buf.size(),
                                                        W - got)));
                        if (n == 0)
                            return serial(); // short stream
                        for (std::size_t i = 0; i < n; ++i)
                            shadow.access(buf[i].addr, false);
                        got += n;
                    }
                    if (k + 1 < planned && pre->skip(gap) != gap)
                        return serial();
                }
            }
        }

        struct WindowSample
        {
            double missRatio, amat, words;
        };
        struct WorkerResult
        {
            bool ok = false;
            std::uint64_t detailed = 0;
            RunStats stats;
            std::vector<WindowSample> samples;
        };
        std::vector<WorkerResult> results(workers);

        const auto replay = [&](std::unique_ptr<trace::TraceSource>
                                    own,
                                std::uint64_t begin, std::uint64_t end,
                                const MissClassifier *seed,
                                WorkerResult &res) {
            if (!own || own->skip(begin * S) != begin * S)
                return;
            auto sim = make_sim();
            if (seed)
                sim.seedClassifier(*seed);
            std::vector<trace::Record> buf(static_cast<std::size_t>(
                std::min<std::uint64_t>(
                    trace::TraceSource::defaultChunkRecords, W)));
            RunStats prev;
            for (std::uint64_t k = begin; k < end; ++k) {
                sim.importState(*lib.checkpointAt(
                    static_cast<std::size_t>(k)));
                std::uint64_t got = 0;
                while (got < W) {
                    const std::size_t want =
                        static_cast<std::size_t>(
                            std::min<std::uint64_t>(buf.size(),
                                                    W - got));
                    const std::size_t n =
                        own->next(buf.data(), want);
                    if (n == 0)
                        return; // short stream: planned from a lie
                    sim.runDetailed(buf.data(), n);
                    got += n;
                }
                res.detailed += W;
                const RunStats &cur = sim.stats();
                const double acc = static_cast<double>(
                    cur.accesses - prev.accesses);
                const double misses = static_cast<double>(
                    cur.misses - prev.misses);
                const double cycles =
                    cur.totalAccessCycles - prev.totalAccessCycles;
                const double words =
                    static_cast<double>(cur.bytesFetched -
                                        prev.bytesFetched) /
                    wordBytes;
                res.samples.push_back(
                    {misses / acc, cycles / acc, words / acc});
                prev = cur;
                if (k + 1 < end && own->skip(gap) != gap)
                    return;
            }
            if (end == planned && !capped) {
                // Serial tail: fast-forward the last gap; a short
                // skip adopts the builder's trailing live-point,
                // otherwise the next live-point fronts the trailing
                // partial (possibly empty) window.
                const std::uint64_t s = own->skip(gap);
                const ArchState *next = lib.checkpointAt(
                    static_cast<std::size_t>(full));
                if (s < gap) {
                    sim.importState(*next);
                } else {
                    sim.importState(*next);
                    std::uint64_t got = 0;
                    for (;;) {
                        const std::size_t want =
                            static_cast<std::size_t>(
                                std::min<std::uint64_t>(
                                    buf.size(), W - got));
                        if (want == 0)
                            break;
                        const std::size_t n =
                            own->next(buf.data(), want);
                        if (n == 0)
                            break;
                        sim.runDetailed(buf.data(), n);
                        got += n;
                    }
                    res.detailed += got;
                }
            }
            if (end == planned) {
                // The run's one finish(), exactly where the serial
                // loop seals: its write-buffer drain lands in this
                // worker's (the last) stats segment.
                sim.finish();
                res.stats = sim.stats();
            } else {
                // Snapshot before sealing: intermediate workers have
                // no serial-path finish, but the simulator is sealed
                // for destruction after the copy.
                res.stats = sim.stats();
                sim.finish();
            }
            res.ok = true;
        };

        std::vector<std::future<void>> futures;
        futures.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            const std::uint64_t begin = begins[w];
            const std::uint64_t end =
                w + 1 < workers ? begins[w + 1] : planned;
            const MissClassifier *seed =
                w > 0 && !seeds.empty() ? &seeds[w - 1] : nullptr;
            auto own = w == 0 ? std::move(first_clone) : src.clone();
            futures.push_back(pool.submit(
                [&replay, own = std::move(own), begin, end, seed,
                 &res = results[w]]() mutable {
                    replay(std::move(own), begin, end, seed, res);
                }));
        }
        // Help-wait: this may itself be running on a pool task (a
        // sweep cell), and a plain get() with every worker parked
        // would deadlock the pool.
        for (auto &f : futures)
            pool.helpWait(f);

        for (const auto &res : results) {
            if (!res.ok)
                return serial(); // src untouched: clean re-run
        }

        const auto merge_start = std::chrono::steady_clock::now();
        SampleReport rep;
        rep.confidence = opt_.confidence;
        RunStats total;
        for (std::size_t i = 0; i < results.size(); ++i) {
            RunStats stats = results[i].stats;
            // finish() REPLACES writeBufferFullStalls with the write
            // buffer's absolute counter, which importState restores
            // from the live-point (it carries the builder's count up
            // to that window). The serial run therefore reports
            // lib(last checkpoint) + tail stalls — exactly the last
            // worker's post-finish value. Intermediate workers never
            // reach that overwrite, so their incremental counts are
            // noise the serial path discards: drop them.
            if (i + 1 < results.size())
                stats.writeBufferFullStalls = 0;
            const auto &res = results[i];
            total += stats;
            for (const auto &s : res.samples) {
                rep.missRatio.add(s.missRatio);
                rep.amat.add(s.amat);
                rep.wordsPerAccess.add(s.words);
                ++rep.windows;
            }
            rep.recordsDetailed += res.detailed;
        }
        rep.recordsWarmed = 0;
        rep.recordsSkipped = N - rep.recordsDetailed;
        rep.recordsTotal = N;
        rep.exact = !capped && rep.recordsSkipped == 0;
        rep.detailed = total;
        const auto merge_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - merge_start)
                .count();
        if (out) {
            out->parallel = true;
            out->windows = rep.windows;
            out->workers = workers;
            out->mergeNanos = static_cast<std::uint64_t>(merge_ns);
        }
        return rep;
    }

  private:
    /** Skip the rest of @p src; returns the records discarded. */
    static std::uint64_t drainSkip(trace::TraceSource &src);

    Options opt_;
};

} // namespace sim
} // namespace sac

#endif // SAC_SIM_SAMPLING_HH
