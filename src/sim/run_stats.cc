#include "src/sim/run_stats.hh"

#include <ostream>

#include "src/util/stats.hh"

namespace sac {
namespace sim {

double
RunStats::amat() const
{
    return util::safeRatio(totalAccessCycles,
                           static_cast<double>(accesses));
}

double
RunStats::missRatio() const
{
    return util::safeRatio(static_cast<double>(misses + bypasses),
                           static_cast<double>(accesses));
}

double
RunStats::hitRatio() const
{
    return util::safeRatio(
        static_cast<double>(mainHits + auxHits + bypassBufferHits),
        static_cast<double>(accesses));
}

double
RunStats::mainHitShare() const
{
    return util::safeRatio(static_cast<double>(mainHits),
                           static_cast<double>(mainHits + auxHits));
}

double
RunStats::auxHitShare() const
{
    return util::safeRatio(static_cast<double>(auxHits),
                           static_cast<double>(mainHits + auxHits));
}

double
RunStats::wordsFetchedPerAccess() const
{
    return util::safeRatio(
        static_cast<double>(bytesFetched) / wordBytes,
        static_cast<double>(accesses));
}

void
RunStats::print(std::ostream &os) const
{
    os << "accesses            " << accesses << " (" << reads
       << " reads, " << writes << " writes)\n"
       << "AMAT                " << util::formatFixed(amat(), 3)
       << " cycles\n"
       << "miss ratio          " << util::formatFixed(missRatio(), 4)
       << "\n"
       << "main hits           " << mainHits << "\n"
       << "aux hits            " << auxHits << " (" << auxPrefetchHits
       << " on prefetched lines)\n"
       << "misses              " << misses << " [compulsory "
       << compulsoryMisses << ", capacity " << capacityMisses
       << ", conflict " << conflictMisses << "]\n"
       << "bypasses            " << bypasses << " (buffer hits "
       << bypassBufferHits << ")\n"
       << "lines fetched       " << linesFetched << " ("
       << extraLinesFetched << " extra via virtual lines)\n"
       << "words/access        "
       << util::formatFixed(wordsFetchedPerAccess(), 3) << "\n"
       << "written back        " << bytesWrittenBack << " bytes\n"
       << "swaps               " << swaps << "\n"
       << "bounce-backs        " << bounces << " (cancelled "
       << bouncesCancelled << ", aborted " << bouncesAborted << ")\n"
       << "invalidations       " << coherenceInvalidations << "\n"
       << "prefetches          " << prefetchesIssued << " issued, "
       << prefetchesUseful << " useful, " << prefetchesAvoided
       << " avoided\n"
       << "completion cycle    " << completionCycle << "\n";
}

} // namespace sim
} // namespace sac
