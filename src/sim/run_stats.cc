#include "src/sim/run_stats.hh"

#include <algorithm>
#include <ostream>

#include "src/telemetry/counter_registry.hh"
#include "src/util/stats.hh"

namespace sac {
namespace sim {

double
RunStats::amat() const
{
    return util::safeRatio(totalAccessCycles,
                           static_cast<double>(accesses));
}

double
RunStats::missRatio() const
{
    return util::safeRatio(static_cast<double>(misses + bypasses),
                           static_cast<double>(accesses));
}

double
RunStats::hitRatio() const
{
    return util::safeRatio(
        static_cast<double>(mainHits + auxHits + bypassBufferHits),
        static_cast<double>(accesses));
}

double
RunStats::mainHitShare() const
{
    return util::safeRatio(static_cast<double>(mainHits),
                           static_cast<double>(mainHits + auxHits));
}

double
RunStats::auxHitShare() const
{
    return util::safeRatio(static_cast<double>(auxHits),
                           static_cast<double>(mainHits + auxHits));
}

double
RunStats::wordsFetchedPerAccess() const
{
    return util::safeRatio(
        static_cast<double>(bytesFetched) / wordBytes,
        static_cast<double>(accesses));
}

void
RunStats::print(std::ostream &os) const
{
    os << "accesses            " << accesses << " (" << reads
       << " reads, " << writes << " writes)\n"
       << "AMAT                " << util::formatFixed(amat(), 3)
       << " cycles\n"
       << "miss ratio          " << util::formatFixed(missRatio(), 4)
       << "\n"
       << "main hits           " << mainHits << "\n"
       << "aux hits            " << auxHits << " (" << auxPrefetchHits
       << " on prefetched lines)\n"
       << "misses              " << misses << " [compulsory "
       << compulsoryMisses << ", capacity " << capacityMisses
       << ", conflict " << conflictMisses << "]\n"
       << "bypasses            " << bypasses << " (buffer hits "
       << bypassBufferHits << ")\n"
       << "lines fetched       " << linesFetched << " ("
       << extraLinesFetched << " extra via virtual lines)\n"
       << "words/access        "
       << util::formatFixed(wordsFetchedPerAccess(), 3) << "\n"
       << "written back        " << bytesWrittenBack << " bytes\n"
       << "swaps               " << swaps << "\n"
       << "bounce-backs        " << bounces << " (cancelled "
       << bouncesCancelled << ", aborted " << bouncesAborted << ")\n"
       << "invalidations       " << coherenceInvalidations << "\n"
       << "prefetches          " << prefetchesIssued << " issued, "
       << prefetchesUseful << " useful, " << prefetchesAvoided
       << " avoided\n"
       << "completion cycle    " << completionCycle << "\n";
}

RunStats &
RunStats::operator+=(const RunStats &o)
{
    accesses += o.accesses;
    reads += o.reads;
    writes += o.writes;
    mainHits += o.mainHits;
    auxHits += o.auxHits;
    auxPrefetchHits += o.auxPrefetchHits;
    misses += o.misses;
    bypasses += o.bypasses;
    bypassBufferHits += o.bypassBufferHits;
    compulsoryMisses += o.compulsoryMisses;
    capacityMisses += o.capacityMisses;
    conflictMisses += o.conflictMisses;
    linesFetched += o.linesFetched;
    bytesFetched += o.bytesFetched;
    bytesWrittenBack += o.bytesWrittenBack;
    virtualLineFills += o.virtualLineFills;
    extraLinesFetched += o.extraLinesFetched;
    swaps += o.swaps;
    bounces += o.bounces;
    bouncesCancelled += o.bouncesCancelled;
    bouncesAborted += o.bouncesAborted;
    coherenceInvalidations += o.coherenceInvalidations;
    prefetchesIssued += o.prefetchesIssued;
    prefetchesUseful += o.prefetchesUseful;
    prefetchesAvoided += o.prefetchesAvoided;
    writeBufferFullStalls += o.writeBufferFullStalls;
    totalAccessCycles += o.totalAccessCycles;
    completionCycle = std::max(completionCycle, o.completionCycle);
    return *this;
}

void
RunStats::registerInto(telemetry::CounterRegistry &reg,
                       const std::string &prefix) const
{
    forEachCounter([&](const char *name, const char *desc,
                       std::uint64_t value) {
        reg.counter(prefix + name, desc).value = value;
    });
}

std::ostream &
operator<<(std::ostream &os, const RunStats &s)
{
    s.print(os);
    return os;
}

RunStats
operator+(RunStats a, const RunStats &b)
{
    a += b;
    return a;
}

} // namespace sim
} // namespace sac
