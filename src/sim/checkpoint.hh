/**
 * @file
 * SimFlex-style live-points for the sampled engine: persist the
 * architectural cache state at every sample-window boundary so
 * re-runs restore it instead of paying SMARTS functional warming
 * again.
 *
 * The pieces:
 *  - ArchState: the complete architectural state of one simulator at
 *    a window boundary — exactly the world check::stateDifference
 *    compares (cache arrays with LRU stamps and flag bits, write
 *    buffer, clocks, bypass buffer, in-flight prefetch) plus the
 *    private LRU clocks needed to continue replay bit-identically;
 *  - CheckpointKey: the identity a library is valid for. Checkpoint
 *    state depends on the sampling geometry, not just (trace,
 *    config): skipped records never touch architectural state, so a
 *    library built for one window/stride/warmup triple is wrong for
 *    any other. The key is therefore (trace content hash,
 *    Config::cacheKey(), geometry, format version);
 *  - CheckpointLibrary: the in-memory sequence of per-window states
 *    with versioned, checksummed `.saclp` file I/O. Any mismatch —
 *    bad magic, version bump, checksum failure, truncation, stale
 *    trace hash, foreign config, different geometry — loads as
 *    Stale/Missing, never as a wrong restore; callers then warm once
 *    and rewrite the file.
 *
 * Layering: this lives in src/sim and speaks cache::LineState
 * (sac_sim links sac_cache; the edge is acyclic — sac_cache links
 * only sac_util). It never names core symbols: the simulator plugs in
 * through the SampledEngine template concept's exportState() /
 * importState() methods.
 */

#ifndef SAC_SIM_CHECKPOINT_HH
#define SAC_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/cache_array.hh"
#include "src/sim/write_buffer.hh"
#include "src/trace/trace.hh"
#include "src/util/types.hh"

namespace sac {
namespace sim {

/**
 * The architectural state of one simulator at a sample-window
 * boundary. Statistics (RunStats, the miss classifier) are
 * deliberately absent: they advance only during detailed windows, so
 * a restored run reproduces them by replaying the same windows.
 */
struct ArchState
{
    /** Main array slots in set-major order plus its LRU clock. */
    std::vector<cache::LineState> mainLines;
    std::uint64_t mainLruClock = 0;

    /** Aux (victim / bounce-back / prefetch) array, when configured. */
    bool hasAux = false;
    std::vector<cache::LineState> auxLines;
    std::uint64_t auxLruClock = 0;

    WriteBuffer::Snapshot writeBuffer;

    // Timing clocks.
    Cycle now = 0;
    Cycle procReadyAt = 1;
    Cycle cacheFreeAt = 0;
    Cycle busFreeAt = 0;

    // Single-line bypass buffer.
    Addr bypassBufferLine = 0;
    bool bypassBufferValid = false;

    // One outstanding progressive prefetch.
    Addr prefetchLine = 0;
    std::uint32_t prefetchCount = 1;
    Cycle prefetchReadyAt = 0;
    bool prefetchValid = false;
};

/**
 * Identity a checkpoint library is valid for. Every field must match
 * on load or the library is stale: restoring state built from a
 * different trace, configuration or sampling geometry would be
 * silently wrong, which is the one failure mode this subsystem must
 * never have.
 */
struct CheckpointKey
{
    /** hashTrace() of the source trace (content, not name). */
    std::uint64_t traceHash = 0;
    /** Config::cacheKey() of the simulated configuration. */
    std::string configKey;
    /** SamplingOptions geometry the library was built for. */
    std::uint64_t window = 0;
    std::uint64_t stride = 0;
    std::uint64_t warmup = 0;
};

/**
 * FNV-1a content hash over every record field of @p t. Regenerating a
 * trace with a different seed changes the hash and invalidates any
 * library built from the old contents; the trace name does not
 * participate.
 */
std::uint64_t hashTrace(const trace::Trace &t);

/** FNV-1a over a byte string (exposed for key/path derivation). */
std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t seed = 14695981039346656037ull);

/**
 * A sequence of per-window live-points with `.saclp` persistence.
 * Checkpoint k is the architectural state at the start of detailed
 * window k; SampledEngine::buildLibrary fills one and
 * SampledEngine::runCheckpointed consumes any prefix of it.
 */
class CheckpointLibrary
{
  public:
    /** Outcome of load(): only Hit may be restored from. */
    enum class LoadResult
    {
        Hit,     //!< file read, verified, and key-matched
        Missing, //!< no file at the path
        Stale,   //!< file exists but fails verification or the key
    };

    /** First bytes of every `.saclp` file ("SACL"). */
    static constexpr std::uint32_t formatMagic = 0x5341434cu;

    /** Bump on any layout change; old files then load as Stale. */
    static constexpr std::uint32_t formatVersion = 1;

    /**
     * Canonical library path: `<dir>/cfg-<hex>/<trace>-w<W>-s<S>-
     * u<U>.saclp`, the config-family directory named by the FNV-1a
     * hash of Config::cacheKey() (the key itself is too long and too
     * punctuated for a path component) and the file named by the
     * trace plus the sampling geometry. @p trace_name is sanitized to
     * [A-Za-z0-9._-].
     */
    static std::string pathFor(const std::string &dir,
                               const std::string &trace_name,
                               const CheckpointKey &key);

    /** Drop every checkpoint. */
    void clear() { states_.clear(); }

    /** Number of checkpoints held. */
    std::size_t size() const { return states_.size(); }

    /** True when no checkpoints are held. */
    bool empty() const { return states_.empty(); }

    /** Append the live-point for the next window boundary. */
    void append(ArchState s) { states_.push_back(std::move(s)); }

    /** Checkpoint for window @p k, or nullptr past the end. */
    const ArchState *checkpointAt(std::size_t k) const
    {
        return k < states_.size() ? &states_[k] : nullptr;
    }

    /**
     * Read and verify a `.saclp` file. On anything but Hit the
     * library is left empty; a Hit replaces the current contents.
     * Verification order: magic, version, checksum over the whole
     * payload (catches truncation and corruption), then the key.
     */
    LoadResult load(const std::string &path, const CheckpointKey &key);

    /**
     * Write the library for @p key, creating parent directories.
     * Returns the bytes written, or 0 on I/O failure.
     */
    std::uint64_t save(const std::string &path,
                       const CheckpointKey &key) const;

    /** Bytes read by the last load() that returned Hit. */
    std::uint64_t loadedBytes() const { return loadedBytes_; }

  private:
    std::vector<ArchState> states_;
    std::uint64_t loadedBytes_ = 0;
};

} // namespace sim
} // namespace sac

#endif // SAC_SIM_CHECKPOINT_HH
