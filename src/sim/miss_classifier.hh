/**
 * @file
 * The classical three-C miss classifier: a miss is *compulsory* on the
 * first touch of a line, *capacity* when a fully-associative LRU cache
 * of equal size would also have missed, and *conflict* otherwise. The
 * shadow LRU is updated on every access, hit or miss.
 *
 * The classifier sits on the simulator's per-access hot path, so the
 * shadow state is a single flat open-addressing hash table (line ->
 * seen + LRU-node index) plus an intrusive doubly-linked LRU list
 * over a fixed node pool: one probe sequence per access and no
 * allocation in steady state, where the textbook
 * unordered_map/std::list version dominated the whole simulation.
 */

#ifndef SAC_SIM_MISS_CLASSIFIER_HH
#define SAC_SIM_MISS_CLASSIFIER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/types.hh"

namespace sac {
namespace sim {

/** Kind of cache miss, per the classical three-C model. */
enum class MissClass { Compulsory, Capacity, Conflict };

/**
 * Tracks the shadow state needed to classify misses at physical-line
 * granularity.
 */
class MissClassifier
{
  public:
    /**
     * @param capacity_lines number of lines a fully-associative cache
     *        of the modeled capacity would hold
     * @param line_bytes physical line size (power of two)
     */
    MissClassifier(std::uint32_t capacity_lines,
                   std::uint32_t line_bytes);

    /**
     * Record an access to @p byte_addr and, when @p was_miss, return
     * its class; a hit updates the shadow LRU and returns nullopt so
     * it can never be mistaken for a classified miss. Must be called
     * for every demand access in order.
     */
    std::optional<MissClass> access(Addr byte_addr, bool was_miss);

    /** Number of distinct lines ever touched. */
    std::size_t touchedLines() const { return seenCount_; }

  private:
    /** No LRU node: the line was touched but has since been evicted. */
    static constexpr std::uint32_t npos = 0xffffffffu;

    /** One table slot: a touched line and its LRU residence. */
    struct Slot
    {
        Addr line = 0;
        std::uint32_t node = npos;
        bool used = false;
    };

    /** One pool entry of the intrusive LRU list. */
    struct Node
    {
        Addr line = 0;
        std::uint32_t prev = npos;
        std::uint32_t next = npos;
    };

    Addr lineOf(Addr byte_addr) const { return byte_addr >> shift_; }

    /**
     * Slot of @p line, inserting an unused slot when absent (may
     * rehash). @p inserted reports a first touch.
     */
    std::size_t findOrInsert(Addr line, bool &inserted);

    /** Slot of @p line, which must be present. */
    std::size_t find(Addr line) const;

    void grow();
    void linkFront(std::uint32_t n);
    void unlink(std::uint32_t n);

    std::uint32_t capacityLines_;
    std::uint32_t shift_;
    std::vector<Slot> table_; //!< power-of-two open addressing
    std::size_t mask_ = 0;
    std::size_t seenCount_ = 0;
    std::vector<Node> nodes_; //!< LRU pool, grown up to capacityLines_
    std::uint32_t head_ = npos; //!< most recently used
    std::uint32_t tail_ = npos; //!< least recently used
};

} // namespace sim
} // namespace sac

#endif // SAC_SIM_MISS_CLASSIFIER_HH
