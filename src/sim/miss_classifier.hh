/**
 * @file
 * The classical three-C miss classifier: a miss is *compulsory* on the
 * first touch of a line, *capacity* when a fully-associative LRU cache
 * of equal size would also have missed, and *conflict* otherwise. The
 * shadow LRU is updated on every access, hit or miss.
 */

#ifndef SAC_SIM_MISS_CLASSIFIER_HH
#define SAC_SIM_MISS_CLASSIFIER_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/util/types.hh"

namespace sac {
namespace sim {

/** Kind of cache miss, per the classical three-C model. */
enum class MissClass { Compulsory, Capacity, Conflict };

/**
 * Tracks the shadow state needed to classify misses at physical-line
 * granularity.
 */
class MissClassifier
{
  public:
    /**
     * @param capacity_lines number of lines a fully-associative cache
     *        of the modeled capacity would hold
     * @param line_bytes physical line size (power of two)
     */
    MissClassifier(std::uint32_t capacity_lines,
                   std::uint32_t line_bytes);

    /**
     * Record an access to @p byte_addr and, when @p was_miss, return
     * its class; a hit updates the shadow LRU and returns nullopt so
     * it can never be mistaken for a classified miss. Must be called
     * for every demand access in order.
     */
    std::optional<MissClass> access(Addr byte_addr, bool was_miss);

    /** Number of distinct lines ever touched. */
    std::size_t touchedLines() const { return seen_.size(); }

  private:
    Addr lineOf(Addr byte_addr) const { return byte_addr >> shift_; }

    std::uint32_t capacityLines_;
    std::uint32_t shift_;
    std::unordered_set<Addr> seen_;
    /** LRU order, most recent at front. */
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> where_;
};

} // namespace sim
} // namespace sac

#endif // SAC_SIM_MISS_CLASSIFIER_HH
