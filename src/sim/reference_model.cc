#include "src/sim/reference_model.hh"

#include <algorithm>
#include <sstream>

#include "src/util/logging.hh"

namespace sac {
namespace sim {

ReferenceCounts
countsOf(const RunStats &s)
{
    ReferenceCounts c;
    c.accesses = s.accesses;
    c.reads = s.reads;
    c.writes = s.writes;
    c.mainHits = s.mainHits;
    c.auxHits = s.auxHits;
    c.misses = s.misses;
    c.swaps = s.swaps;
    c.bounces = s.bounces;
    c.bouncesCancelled = s.bouncesCancelled;
    c.bouncesAborted = s.bouncesAborted;
    c.coherenceInvalidations = s.coherenceInvalidations;
    c.virtualLineFills = s.virtualLineFills;
    c.extraLinesFetched = s.extraLinesFetched;
    c.linesFetched = s.linesFetched;
    c.bytesFetched = s.bytesFetched;
    c.bytesWrittenBack = s.bytesWrittenBack;
    return c;
}

std::string
describeDivergence(const ReferenceCounts &expected,
                   const ReferenceCounts &got)
{
    std::ostringstream os;
    const auto field = [&](const char *name, std::uint64_t e,
                           std::uint64_t g) {
        if (e != g)
            os << name << ": reference=" << e << " simulator=" << g
               << "\n";
    };
    field("accesses", expected.accesses, got.accesses);
    field("reads", expected.reads, got.reads);
    field("writes", expected.writes, got.writes);
    field("mainHits", expected.mainHits, got.mainHits);
    field("auxHits", expected.auxHits, got.auxHits);
    field("misses", expected.misses, got.misses);
    field("swaps", expected.swaps, got.swaps);
    field("bounces", expected.bounces, got.bounces);
    field("bouncesCancelled", expected.bouncesCancelled,
          got.bouncesCancelled);
    field("bouncesAborted", expected.bouncesAborted,
          got.bouncesAborted);
    field("coherenceInvalidations", expected.coherenceInvalidations,
          got.coherenceInvalidations);
    field("virtualLineFills", expected.virtualLineFills,
          got.virtualLineFills);
    field("extraLinesFetched", expected.extraLinesFetched,
          got.extraLinesFetched);
    field("linesFetched", expected.linesFetched, got.linesFetched);
    field("bytesFetched", expected.bytesFetched, got.bytesFetched);
    field("bytesWrittenBack", expected.bytesWrittenBack,
          got.bytesWrittenBack);
    return os.str();
}

bool
ReferenceModel::supports(const core::Config &cfg)
{
    return cfg.assoc == 1 && cfg.bypass == core::BypassMode::None &&
           !cfg.prefetch && (cfg.auxLines == 0 || cfg.auxAssoc == 0);
}

ReferenceModel::ReferenceModel(const core::Config &cfg) : cfg_(cfg)
{
    SAC_ASSERT(supports(cfg_),
               "configuration outside the reference model's scope");
    numSets_ = cfg_.cacheSizeBytes / cfg_.lineBytes;
    SAC_ASSERT(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
               "set count must be a power of two");
    lineShift_ = 0;
    while ((1u << lineShift_) < cfg_.lineBytes)
        ++lineShift_;
    main_.assign(numSets_, Line{});
    aux_.reserve(cfg_.auxLines);
}

Addr
ReferenceModel::lineOf(Addr byte_addr) const
{
    return byte_addr >> lineShift_;
}

std::uint64_t
ReferenceModel::setOf(Addr line_addr) const
{
    return line_addr & (numSets_ - 1);
}

bool
ReferenceModel::mainContains(Addr line_addr) const
{
    const Line &l = main_[setOf(line_addr)];
    return l.valid && l.lineAddr == line_addr;
}

bool
ReferenceModel::auxContains(Addr line_addr) const
{
    return std::any_of(aux_.begin(), aux_.end(), [&](const Line &l) {
        return l.valid && l.lineAddr == line_addr;
    });
}

void
ReferenceModel::run(const trace::Trace &t)
{
    for (const auto &rec : t)
        access(rec);
}

void
ReferenceModel::access(const trace::Record &rec)
{
    ++counts_.accesses;
    if (rec.isRead())
        ++counts_.reads;
    else
        ++counts_.writes;

    const Addr line = lineOf(rec.addr);

    // Main cache lookup.
    if (mainContains(line)) {
        Line &l = main_[setOf(line)];
        if (rec.isWrite())
            l.dirty = true;
        if (cfg_.temporalBits && rec.temporal)
            l.temporal = true;
        ++counts_.mainHits;
        return;
    }

    // Aux cache lookup: a hit swaps the aux line with the resident
    // main line of its home set.
    const auto aux_it =
        std::find_if(aux_.begin(), aux_.end(), [&](const Line &l) {
            return l.valid && l.lineAddr == line;
        });
    if (aux_it != aux_.end()) {
        ++counts_.auxHits;
        ++counts_.swaps;
        Line incoming = *aux_it;
        aux_.erase(aux_it);

        Line &slot = main_[setOf(line)];
        const Line displaced = slot;
        slot = incoming;
        if (rec.isWrite())
            slot.dirty = true;
        if (cfg_.temporalBits && rec.temporal)
            slot.temporal = true;

        // The displaced main line takes the vacated aux slot and
        // becomes most recently used.
        if (displaced.valid)
            aux_.push_back(displaced);
        return;
    }

    handleMiss(rec, line);
}

void
ReferenceModel::handleMiss(const trace::Record &rec, Addr line)
{
    ++counts_.misses;

    // Lines of the (virtual) block to fetch, skipping lines that the
    // coherence check finds already resident.
    std::vector<Addr> fetch_lines;
    if (cfg_.virtualLines && rec.spatial) {
        std::uint32_t n = cfg_.linesPerVirtualLine();
        if (cfg_.variableVirtualLines) {
            const std::uint32_t wanted =
                1u << std::min<std::uint32_t>(rec.spatialLevel, 8);
            n = std::min(n, wanted);
        }
        const Addr block = line & ~static_cast<Addr>(n - 1);
        for (Addr l = block; l < block + n; ++l) {
            if (cfg_.virtualLineCoherenceCheck && mainContains(l) &&
                l != line) {
                continue;
            }
            fetch_lines.push_back(l);
        }
    } else {
        fetch_lines.push_back(line);
    }

    const auto n_fetched =
        static_cast<std::uint64_t>(fetch_lines.size());
    counts_.linesFetched += n_fetched;
    counts_.bytesFetched += n_fetched * cfg_.lineBytes;
    counts_.extraLinesFetched += n_fetched - 1;
    if (n_fetched > 1)
        ++counts_.virtualLineFills;

    std::vector<std::uint64_t> fill_sets;
    fill_sets.reserve(fetch_lines.size());
    for (const Addr l : fetch_lines) {
        // A sibling line already held by the aux cache invalidates
        // its slot of the fill instead of duplicating the line.
        if (l != line && auxContains(l)) {
            ++counts_.coherenceInvalidations;
            continue;
        }
        // A bounce-back triggered by an earlier fill of this miss can
        // have re-installed the line already.
        if (l != line && mainContains(l))
            continue;
        const std::uint64_t set = installIntoMain(l, fill_sets);
        if (l == line) {
            Line &m = main_[set];
            if (rec.isWrite())
                m.dirty = true;
            if (cfg_.temporalBits && rec.temporal)
                m.temporal = true;
        }
    }

    // The simulator drains the write buffer after every demand miss.
    wbufOccupancy_ = 0;
}

std::uint64_t
ReferenceModel::installIntoMain(Addr line_addr,
                                std::vector<std::uint64_t> &fill_sets)
{
    const std::uint64_t set = setOf(line_addr);
    const Line victim = main_[set];

    // Register the slot before handling the victim so a bounce-back
    // triggered by this very fill treats it as a miss target.
    fill_sets.push_back(set);

    main_[set] = Line{line_addr, true, false, false};

    if (victim.valid) {
        if (cfg_.auxLines > 0 && cfg_.auxReceivesVictims)
            victimToAux(victim, fill_sets);
        else if (victim.dirty)
            pushWriteback();
    }
    return set;
}

void
ReferenceModel::victimToAux(const Line &victim,
                            const std::vector<std::uint64_t> &fill_sets)
{
    Line evicted;
    if (aux_.size() >= cfg_.auxLines) {
        evicted = aux_.front(); // least recently used
        aux_.erase(aux_.begin());
    }
    aux_.push_back(victim); // most recently used

    if (!evicted.valid)
        return;
    if (cfg_.bounceBack && evicted.temporal)
        bounceBack(evicted, fill_sets);
    else if (evicted.dirty)
        pushWriteback();
}

void
ReferenceModel::bounceBack(const Line &victim,
                           const std::vector<std::uint64_t> &fill_sets)
{
    const std::uint64_t set = setOf(victim.lineAddr);

    // A bounce aimed at a slot the in-flight miss fills is cancelled.
    if (std::find(fill_sets.begin(), fill_sets.end(), set) !=
        fill_sets.end()) {
        ++counts_.bouncesCancelled;
        if (victim.dirty)
            pushWriteback();
        return;
    }

    Line &resident = main_[set];
    if (resident.valid && resident.dirty &&
        wbufOccupancy_ >= cfg_.writeBufferEntries) {
        // Bouncing onto a dirty line with a full write buffer is
        // aborted; the victim still needs writing back.
        ++counts_.bouncesAborted;
        if (victim.dirty)
            pushWriteback();
        return;
    }

    if (resident.valid && resident.dirty)
        pushWriteback();

    resident = victim;
    if (cfg_.resetTemporalBitOnBounce)
        resident.temporal = false;
    ++counts_.bounces;
}

void
ReferenceModel::pushWriteback()
{
    // The bounded buffer forces a drain of its oldest entry when a
    // push finds it full; every entry is eventually drained, so the
    // writeback traffic is simply counted at push time.
    if (wbufOccupancy_ >= cfg_.writeBufferEntries)
        --wbufOccupancy_;
    ++wbufOccupancy_;
    counts_.bytesWrittenBack += cfg_.lineBytes;
}

ReferenceCounts
referenceCounts(const trace::Trace &t, const core::Config &cfg)
{
    ReferenceModel model(cfg);
    model.run(t);
    return model.counts();
}

} // namespace sim
} // namespace sac
