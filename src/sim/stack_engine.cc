#include "src/sim/stack_engine.hh"

#include <algorithm>

#include "src/trace/trace_source.hh"
#include "src/util/logging.hh"

namespace sac {
namespace sim {

namespace {

inline bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** splitmix64 finalizer: a full-avalanche mix for table probing. */
inline std::size_t
mixLine(Addr line)
{
    std::uint64_t x = line;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
}

} // namespace

bool
StackPoint::wellFormed() const
{
    if (!isPowerOfTwo(lineBytes) || assoc == 0)
        return false;
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(lineBytes) * assoc;
    if (cacheSizeBytes == 0 || cacheSizeBytes % way_bytes != 0)
        return false;
    return isPowerOfTwo(cacheSizeBytes / way_bytes);
}

/**
 * The recency tracker of one (lineBytes, sets) pair: per-set
 * intrusive LRU lists truncated at the deepest associativity any
 * lattice point needs, over a flat open-addressing hash of
 * line -> node. A hit at list position d (1-based from the MRU end)
 * lands in depthCount_[d]; first touches are compulsory, touches of
 * lines evicted past the cap are "deep" (distance > cap), and both
 * miss at every tracked associativity.
 */
class StackDistanceEngine::Profiler
{
  public:
    Profiler(std::uint32_t line_bytes, std::uint64_t sets,
             std::uint32_t max_assoc)
        : lineBytes_(line_bytes),
          sets_(sets),
          maxAssoc_(max_assoc),
          setMask_(sets - 1),
          depthCount_(static_cast<std::size_t>(max_assoc) + 1, 0),
          head_(static_cast<std::size_t>(sets), npos),
          tail_(static_cast<std::size_t>(sets), npos),
          length_(static_cast<std::size_t>(sets), 0)
    {
        SAC_ASSERT(isPowerOfTwo(line_bytes),
                   "line size must be a power of two");
        SAC_ASSERT(isPowerOfTwo(sets),
                   "set count must be a power of two");
        SAC_ASSERT(max_assoc >= 1, "need at least one way");
        shift_ = 0;
        while ((1ull << shift_) < line_bytes)
            ++shift_;
        table_.resize(1024);
        mask_ = table_.size() - 1;
    }

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint64_t sets() const { return sets_; }
    std::uint32_t maxAssoc() const { return maxAssoc_; }
    std::uint64_t touched() const { return touched_; }

    /** Raise the tracked depth (pre-pass only: nothing fed yet). */
    void
    widen(std::uint32_t max_assoc)
    {
        SAC_ASSERT(touched_ == 0, "widen() after feeding");
        if (max_assoc > maxAssoc_) {
            maxAssoc_ = max_assoc;
            depthCount_.assign(
                static_cast<std::size_t>(max_assoc) + 1, 0);
        }
    }

    /**
     * Restrict this profiler to the sets with index % @p shards ==
     * @p shard (pre-pass only). Sets outside the shard are ignored
     * entirely, so the per-set lists and the line table hold only the
     * shard's share of the footprint.
     */
    void
    restrictToShard(unsigned shard, unsigned shards)
    {
        SAC_ASSERT(touched_ == 0, "restrictToShard() after feeding");
        SAC_ASSERT(shards >= 1 && shard < shards,
                   "shard index outside the shard count");
        shard_ = shard;
        shards_ = shards;
    }

    /**
     * Sum @p o's histograms into this profiler. Valid only between
     * shards of one pass over one stream: disjoint sets mean the
     * counts are independent tallies of disjoint access subsets.
     */
    void
    absorb(const Profiler &o)
    {
        SAC_ASSERT(lineBytes_ == o.lineBytes_ && sets_ == o.sets_ &&
                       maxAssoc_ == o.maxAssoc_,
                   "absorb() across different profiler geometries");
        compulsory_ += o.compulsory_;
        deep_ += o.deep_;
        touched_ += o.touched_;
        for (std::size_t d = 0; d < depthCount_.size(); ++d)
            depthCount_[d] += o.depthCount_[d];
    }

    void
    access(Addr byte_addr)
    {
        const Addr line = byte_addr >> shift_;
        // Sharded pass: sets outside this slice belong to another
        // worker's profiler; skipping them here is the whole
        // decomposition (per-set stacks never interact).
        if (shards_ > 1 && (line & setMask_) % shards_ != shard_)
            return;
        bool inserted = false;
        const std::size_t slot = findOrInsert(line, inserted);
        if (inserted) {
            ++compulsory_;
            table_[slot].node = pushFront(line);
            return;
        }
        const std::uint32_t n = table_[slot].node;
        if (n == npos) {
            // Seen before, but evicted past the tracked depth: the
            // stack distance exceeds maxAssoc_, a miss at every
            // associativity this profiler answers.
            ++deep_;
            table_[slot].node = pushFront(line);
            return;
        }
        // Resident within the top maxAssoc_: its 1-based position in
        // the set's list is the stack distance.
        const std::uint64_t set = line & setMask_;
        std::uint32_t depth = 1;
        for (std::uint32_t cur = head_[set]; cur != n;
             cur = nodes_[cur].next)
            ++depth;
        ++depthCount_[depth];
        moveToFront(n, set);
    }

    /** Misses of an @p assoc-way cache (assoc <= maxAssoc()). */
    std::uint64_t
    missCount(std::uint32_t assoc) const
    {
        SAC_ASSERT(assoc >= 1 && assoc <= maxAssoc_,
                   "associativity outside the tracked depth");
        std::uint64_t misses = compulsory_ + deep_;
        for (std::uint32_t d = assoc + 1; d <= maxAssoc_; ++d)
            misses += depthCount_[d];
        return misses;
    }

  private:
    static constexpr std::uint32_t npos = 0xffffffffu;

    /** One table slot: a touched line and its list residence. */
    struct Slot
    {
        Addr line = 0;
        std::uint32_t node = npos;
        bool used = false;
    };

    /** One pool entry of a per-set intrusive LRU list. */
    struct Node
    {
        Addr line = 0;
        std::uint32_t prev = npos;
        std::uint32_t next = npos;
    };

    std::size_t
    findOrInsert(Addr line, bool &inserted)
    {
        std::size_t i = mixLine(line) & mask_;
        while (table_[i].used) {
            if (table_[i].line == line) {
                inserted = false;
                return i;
            }
            i = (i + 1) & mask_;
        }
        inserted = true;
        ++touched_;
        if (touched_ * 4 > table_.size() * 3) {
            grow();
            i = mixLine(line) & mask_;
            while (table_[i].used)
                i = (i + 1) & mask_;
        }
        table_[i].used = true;
        table_[i].line = line;
        table_[i].node = npos;
        return i;
    }

    std::size_t
    find(Addr line) const
    {
        std::size_t i = mixLine(line) & mask_;
        while (!(table_[i].used && table_[i].line == line))
            i = (i + 1) & mask_;
        return i;
    }

    void
    grow()
    {
        std::vector<Slot> old;
        old.swap(table_);
        table_.resize(old.size() * 2);
        mask_ = table_.size() - 1;
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            std::size_t i = mixLine(s.line) & mask_;
            while (table_[i].used)
                i = (i + 1) & mask_;
            table_[i] = s;
        }
    }

    /**
     * Put @p line at the MRU end of its set, evicting the set's LRU
     * node past the cap when the list is full (the evicted line keeps
     * its hash entry, marked deep). Returns the node used.
     */
    std::uint32_t
    pushFront(Addr line)
    {
        const std::uint64_t set = line & setMask_;
        std::uint32_t n;
        if (length_[set] == maxAssoc_) {
            n = tail_[set];
            table_[find(nodes_[n].line)].node = npos;
            unlink(n, set);
        } else {
            n = static_cast<std::uint32_t>(nodes_.size());
            nodes_.push_back({});
            ++length_[set];
        }
        nodes_[n].line = line;
        linkFront(n, set);
        return n;
    }

    void
    moveToFront(std::uint32_t n, std::uint64_t set)
    {
        if (head_[set] == n)
            return;
        unlink(n, set);
        linkFront(n, set);
    }

    void
    linkFront(std::uint32_t n, std::uint64_t set)
    {
        nodes_[n].prev = npos;
        nodes_[n].next = head_[set];
        if (head_[set] != npos)
            nodes_[head_[set]].prev = n;
        head_[set] = n;
        if (tail_[set] == npos)
            tail_[set] = n;
    }

    void
    unlink(std::uint32_t n, std::uint64_t set)
    {
        const std::uint32_t p = nodes_[n].prev;
        const std::uint32_t x = nodes_[n].next;
        if (p != npos)
            nodes_[p].next = x;
        else
            head_[set] = x;
        if (x != npos)
            nodes_[x].prev = p;
        else
            tail_[set] = p;
    }

    std::uint32_t lineBytes_;
    std::uint64_t sets_;
    std::uint32_t maxAssoc_;
    std::uint64_t setMask_;
    std::uint32_t shift_ = 0;

    std::vector<Slot> table_; //!< power-of-two open addressing
    std::size_t mask_ = 0;
    std::vector<Node> nodes_; //!< shared pool; <= sets * maxAssoc
    std::vector<std::uint64_t> depthCount_; //!< hits at distance d
    std::uint64_t compulsory_ = 0;          //!< first touches
    std::uint64_t deep_ = 0; //!< reuses at distance > maxAssoc_
    std::uint64_t touched_ = 0;

    // Per-set truncated LRU lists over the node pool.
    std::vector<std::uint32_t> head_;
    std::vector<std::uint32_t> tail_;
    std::vector<std::uint32_t> length_;

    // Set-shard slice (restrictToShard); 0-of-1 profiles every set.
    unsigned shard_ = 0;
    unsigned shards_ = 1;
};

StackDistanceEngine::StackDistanceEngine(
    const std::vector<StackPoint> &points)
{
    SAC_ASSERT(!points.empty(), "a stack pass needs lattice points");
    for (const StackPoint &p : points) {
        SAC_ASSERT(p.wellFormed(),
                   "stack lattice point is not a power-of-two LRU "
                   "geometry");
        Profiler *existing = nullptr;
        for (Profiler &prof : profilers_) {
            if (prof.lineBytes() == p.lineBytes &&
                prof.sets() == p.sets()) {
                existing = &prof;
                break;
            }
        }
        if (existing)
            existing->widen(p.assoc);
        else
            profilers_.emplace_back(p.lineBytes, p.sets(), p.assoc);
    }
}

StackDistanceEngine::StackDistanceEngine(
    const std::vector<StackPoint> &points, unsigned shard,
    unsigned shards)
    : StackDistanceEngine(points)
{
    SAC_ASSERT(shards >= 1 && shard < shards,
               "shard index outside the shard count");
    shard_ = shard;
    shards_ = shards;
    for (Profiler &prof : profilers_)
        prof.restrictToShard(shard, shards);
}

void
StackDistanceEngine::absorb(const StackDistanceEngine &other)
{
    SAC_ASSERT(shards_ == other.shards_,
               "absorb() across different shard counts");
    SAC_ASSERT(accesses_ == other.accesses_ &&
                   reads_ == other.reads_ &&
                   writes_ == other.writes_,
               "absorb() of shards fed different streams");
    SAC_ASSERT(profilers_.size() == other.profilers_.size(),
               "absorb() across different lattices");
    for (std::size_t i = 0; i < profilers_.size(); ++i)
        profilers_[i].absorb(other.profilers_[i]);
}

StackDistanceEngine::~StackDistanceEngine() = default;
StackDistanceEngine::StackDistanceEngine(StackDistanceEngine &&) noexcept =
    default;
StackDistanceEngine &
StackDistanceEngine::operator=(StackDistanceEngine &&) noexcept = default;

void
StackDistanceEngine::feed(const trace::Record *recs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const trace::Record &rec = recs[i];
        ++accesses_;
        if (rec.isRead())
            ++reads_;
        else
            ++writes_;
        for (Profiler &prof : profilers_)
            prof.access(rec.addr);
    }
}

std::uint64_t
StackDistanceEngine::run(trace::TraceSource &src)
{
    std::vector<trace::Record> buf(
        trace::TraceSource::defaultChunkRecords);
    std::uint64_t total = 0;
    while (const std::size_t n = src.next(buf.data(), buf.size())) {
        feed(buf.data(), n);
        total += n;
    }
    return total;
}

const StackDistanceEngine::Profiler *
StackDistanceEngine::profilerOf(std::uint32_t line_bytes,
                                std::uint64_t sets) const
{
    for (const Profiler &prof : profilers_) {
        if (prof.lineBytes() == line_bytes && prof.sets() == sets)
            return &prof;
    }
    return nullptr;
}

bool
StackDistanceEngine::covers(const StackPoint &p) const
{
    if (!p.wellFormed())
        return false;
    const Profiler *prof = profilerOf(p.lineBytes, p.sets());
    return prof && p.assoc <= prof->maxAssoc();
}

std::uint64_t
StackDistanceEngine::missCount(const StackPoint &p) const
{
    const Profiler *prof = profilerOf(p.lineBytes, p.sets());
    SAC_ASSERT(prof && p.assoc <= prof->maxAssoc(),
               "point is not covered by this stack pass");
    return prof->missCount(p.assoc);
}

double
StackDistanceEngine::missRatio(const StackPoint &p) const
{
    return accesses_ > 0 ? static_cast<double>(missCount(p)) /
                               static_cast<double>(accesses_)
                         : 0.0;
}

std::uint64_t
StackDistanceEngine::touchedLines(std::uint32_t line_bytes) const
{
    for (const Profiler &prof : profilers_) {
        if (prof.lineBytes() == line_bytes)
            return prof.touched();
    }
    SAC_ASSERT(false, "no profiler at this line granularity");
    return 0;
}

} // namespace sim
} // namespace sac
