#include "src/sim/sampling.hh"

#include <cmath>
#include <sstream>

#include "src/util/logging.hh"
#include "src/util/stats.hh"

namespace sac {
namespace sim {

double
confidenceZ(double confidence)
{
    SAC_ASSERT(confidence > 0.0 && confidence < 1.0,
               "confidence level must be in (0, 1)");
    // Two-sided: z = Phi^-1((1 + confidence) / 2), via the
    // Beasley-Springer-Moro rational approximation of the normal
    // quantile (|error| < 3e-9 over the range sampling uses).
    const double p = (1.0 + confidence) / 2.0;

    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};

    const double p_low = 0.02425;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
                 a[4]) * r + a[5]) * q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
                 b[4]) * r + 1.0);
    }
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
              c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

std::string
formatWithCi(double mean, double half_width, int decimals)
{
    std::ostringstream os;
    os << util::formatFixed(mean, decimals) << " ±";
    if (std::isinf(half_width))
        os << "inf";
    else
        os << util::formatFixed(half_width, decimals);
    return os.str();
}

void
SampleStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
SampleStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

double
SampleStats::halfWidth(double confidence) const
{
    if (n_ < 2)
        return std::numeric_limits<double>::infinity();
    return confidenceZ(confidence) *
           std::sqrt(variance() / static_cast<double>(n_));
}

double
SampleStats::relativeError(double confidence) const
{
    const double half = halfWidth(confidence);
    if (half == 0.0)
        return 0.0;
    if (std::isinf(half) || mean() == 0.0)
        return std::numeric_limits<double>::infinity();
    return half / std::abs(mean());
}

std::optional<std::string>
SamplingOptions::validationError() const
{
    if (window == 0)
        return "sample window must be at least 1 record";
    if (stride < window)
        return "sample stride must be at least the window (stride " +
               std::to_string(stride) + " < window " +
               std::to_string(window) + ")";
    if (!(confidence > 0.0 && confidence < 1.0))
        return "sample confidence must be strictly between 0 and 1";
    if (targetRelativeError < 0.0)
        return "target relative error must be non-negative";
    if (targetRelativeError > 0.0 && minWindows < 2)
        return "adaptive sampling needs at least 2 windows to "
               "estimate its error";
    if (maxWindows > 0 && targetRelativeError > 0.0 &&
        maxWindows < minWindows)
        return "max windows must be at least min windows";
    return std::nullopt;
}

void
SamplingOptions::validate() const
{
    if (const auto err = validationError())
        util::fatal("invalid sampling options: ", *err);
}

std::uint64_t
SampledEngine::drainSkip(trace::TraceSource &src)
{
    std::uint64_t total = 0;
    for (;;) {
        const std::uint64_t n =
            src.skip(std::numeric_limits<std::uint64_t>::max());
        total += n;
        if (n == 0)
            return total;
    }
}

} // namespace sim
} // namespace sac
