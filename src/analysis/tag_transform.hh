/**
 * @file
 * Trace tag transformations: strip or corrupt the software tags of a
 * trace without touching addresses or timing. Used to study the
 * paper's safety claim ("software-assisted caches perform better
 * than standard caches in any case") when the compiler information
 * is absent or wrong.
 *
 * Corruption operates per *static* reference (RefId): a mis-analyzed
 * instruction is wrong on every dynamic instance, which is how real
 * compiler errors behave.
 */

#ifndef SAC_ANALYSIS_TAG_TRANSFORM_HH
#define SAC_ANALYSIS_TAG_TRANSFORM_HH

#include <cstdint>

#include "src/trace/trace.hh"

namespace sac {
namespace analysis {

/** Copy of @p t with every tag cleared (no software assistance). */
trace::Trace stripAllTags(const trace::Trace &t);

/** Copy of @p t with temporal tags cleared, spatial kept. */
trace::Trace stripTemporalTags(const trace::Trace &t);

/** Copy of @p t with spatial tags cleared, temporal kept. */
trace::Trace stripSpatialTags(const trace::Trace &t);

/**
 * Copy of @p t where a random fraction of static references has both
 * tags inverted (temporal toggled; spatial toggled with level 1 when
 * turned on).
 *
 * @param t source trace
 * @param flip_fraction probability that a static reference's tags
 *        are inverted (0 = identical copy, 1 = all inverted)
 * @param seed RNG seed; the same seed flips the same references
 */
trace::Trace corruptTags(const trace::Trace &t, double flip_fraction,
                         std::uint64_t seed = 0xbadull);

} // namespace analysis
} // namespace sac

#endif // SAC_ANALYSIS_TAG_TRANSFORM_HH
