#include "src/analysis/reuse_profiler.hh"

#include <unordered_map>

#include "src/util/logging.hh"

namespace sac {
namespace analysis {

const char *
reuseBucketLabel(ReuseBucket b)
{
    switch (b) {
      case ReuseBucket::NoReuse:
        return "No reuse";
      case ReuseBucket::UpTo100:
        return "1 - 10^2";
      case ReuseBucket::UpTo1k:
        return "10^2 - 10^3";
      case ReuseBucket::UpTo10k:
        return "10^3 - 10^4";
      case ReuseBucket::Beyond10k:
        return "> 10^4";
      case ReuseBucket::Count:
        break;
    }
    util::panic("invalid reuse bucket");
}

double
ReuseProfile::fraction(ReuseBucket b) const
{
    const auto i = static_cast<std::size_t>(b);
    return total == 0
               ? 0.0
               : static_cast<double>(counts[i]) /
                     static_cast<double>(total);
}

ReuseProfile
profileReuse(const trace::Trace &t, std::uint32_t granularity_bytes)
{
    SAC_ASSERT(granularity_bytes > 0, "granularity must be positive");

    // lastUse[datum] = index of the most recent reference to it.
    std::unordered_map<Addr, std::uint64_t> last_use;
    last_use.reserve(1 << 16);

    ReuseProfile profile;
    profile.total = t.size();

    auto bucket_of = [](std::uint64_t d) {
        if (d <= 100)
            return ReuseBucket::UpTo100;
        if (d <= 1000)
            return ReuseBucket::UpTo1k;
        if (d <= 10000)
            return ReuseBucket::UpTo10k;
        return ReuseBucket::Beyond10k;
    };

    double reuse_sum = 0.0;
    std::uint64_t reuse_count = 0;

    for (std::uint64_t i = 0; i < t.size(); ++i) {
        const Addr datum = t[i].addr / granularity_bytes;
        const auto it = last_use.find(datum);
        if (it != last_use.end()) {
            // Attribute the (forward) distance to the previous touch.
            const std::uint64_t d = i - it->second;
            ++profile.counts[static_cast<std::size_t>(bucket_of(d))];
            reuse_sum += static_cast<double>(d);
            ++reuse_count;
            it->second = i;
        } else {
            last_use.emplace(datum, i);
        }
    }

    // Every datum's final touch is never reused.
    profile.counts[static_cast<std::size_t>(ReuseBucket::NoReuse)] +=
        last_use.size();
    profile.meanReuseDistance =
        reuse_count == 0 ? 0.0
                         : reuse_sum / static_cast<double>(reuse_count);
    return profile;
}

} // namespace analysis
} // namespace sac
