#include "src/analysis/tag_transform.hh"

#include <unordered_map>

#include "src/util/logging.hh"
#include "src/util/rng.hh"

namespace sac {
namespace analysis {

namespace {

template <typename Mutator>
trace::Trace
mapRecords(const trace::Trace &t, Mutator mutate)
{
    trace::Trace out(t.name());
    out.reserve(t.size());
    for (const auto &r : t) {
        trace::Record copy = r;
        mutate(copy);
        out.push(copy);
    }
    return out;
}

} // namespace

trace::Trace
stripAllTags(const trace::Trace &t)
{
    return mapRecords(t, [](trace::Record &r) {
        r.temporal = false;
        r.spatial = false;
        r.spatialLevel = 0;
    });
}

trace::Trace
stripTemporalTags(const trace::Trace &t)
{
    return mapRecords(t,
                      [](trace::Record &r) { r.temporal = false; });
}

trace::Trace
stripSpatialTags(const trace::Trace &t)
{
    return mapRecords(t, [](trace::Record &r) {
        r.spatial = false;
        r.spatialLevel = 0;
    });
}

trace::Trace
corruptTags(const trace::Trace &t, double flip_fraction,
            std::uint64_t seed)
{
    SAC_ASSERT(flip_fraction >= 0.0 && flip_fraction <= 1.0,
               "flip fraction must be in [0, 1]");
    util::Rng rng(seed);
    std::unordered_map<RefId, bool> flip;
    return mapRecords(t, [&](trace::Record &r) {
        auto it = flip.find(r.ref);
        if (it == flip.end())
            it = flip.emplace(r.ref, rng.nextBool(flip_fraction))
                     .first;
        if (!it->second)
            return;
        r.temporal = !r.temporal;
        r.spatial = !r.spatial;
        r.spatialLevel = r.spatial ? 1 : 0;
    });
}

} // namespace analysis
} // namespace sac
