/**
 * @file
 * Tag statistics over a trace (paper Figure 4a): the fraction of
 * trace entries in each of the four temporal x spatial categories.
 */

#ifndef SAC_ANALYSIS_TAG_STATS_HH
#define SAC_ANALYSIS_TAG_STATS_HH

#include <cstdint>

#include "src/trace/trace.hh"

namespace sac {
namespace analysis {

/** Counts of trace entries per software-tag category. */
struct TagStats
{
    std::uint64_t noTemporalNoSpatial = 0;
    std::uint64_t noTemporalSpatial = 0;
    std::uint64_t temporalNoSpatial = 0;
    std::uint64_t temporalSpatial = 0;
    std::uint64_t total = 0;

    double
    fractionNoTemporalNoSpatial() const
    {
        return total ? static_cast<double>(noTemporalNoSpatial) / total
                     : 0.0;
    }

    double
    fractionNoTemporalSpatial() const
    {
        return total ? static_cast<double>(noTemporalSpatial) / total
                     : 0.0;
    }

    double
    fractionTemporalNoSpatial() const
    {
        return total ? static_cast<double>(temporalNoSpatial) / total
                     : 0.0;
    }

    double
    fractionTemporalSpatial() const
    {
        return total ? static_cast<double>(temporalSpatial) / total
                     : 0.0;
    }

    /** Fraction with the temporal tag set (either spatial state). */
    double
    fractionTemporal() const
    {
        return total ? static_cast<double>(temporalNoSpatial +
                                           temporalSpatial) /
                           total
                     : 0.0;
    }

    /** Fraction with the spatial tag set (either temporal state). */
    double
    fractionSpatial() const
    {
        return total ? static_cast<double>(noTemporalSpatial +
                                           temporalSpatial) /
                           total
                     : 0.0;
    }
};

/** Compute the tag distribution of @p t. */
TagStats computeTagStats(const trace::Trace &t);

} // namespace analysis
} // namespace sac

#endif // SAC_ANALYSIS_TAG_STATS_HH
