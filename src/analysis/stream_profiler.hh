/**
 * @file
 * Vector-length profiling (paper Figure 1b): the length, in bytes, of
 * the address streams issued by each static load/store instruction.
 *
 * Following the paper's footnote, a vector sequence terminates when
 * the instruction has not been used for more than 500 references, or
 * when the stride exceeds 32 bytes (the spatial locality would not be
 * exploitable with a 32-byte line). Each reference contributes to the
 * bucket of the stream it belongs to, giving the "distribution of
 * references among these vector lengths".
 */

#ifndef SAC_ANALYSIS_STREAM_PROFILER_HH
#define SAC_ANALYSIS_STREAM_PROFILER_HH

#include <array>
#include <cstdint>

#include "src/trace/trace.hh"

namespace sac {
namespace analysis {

/** The paper's six vector-length buckets (bytes). */
enum class VectorBucket : std::size_t
{
    UpTo32 = 0, //!< <= 32 bytes
    UpTo64,     //!< 32 < len <= 64
    UpTo128,
    UpTo256,
    UpTo512,
    Beyond512,  //!< > 512 bytes
    Count
};

/** Label of a vector-length bucket, as in Figure 1b's legend. */
const char *vectorBucketLabel(VectorBucket b);

/** Distribution of references among vector-length buckets. */
struct StreamProfile
{
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  VectorBucket::Count)>
        counts{};
    std::uint64_t total = 0;
    std::uint64_t streams = 0;       //!< number of streams observed
    double meanStreamBytes = 0.0;    //!< mean stream span in bytes

    /** Fraction of references in bucket @p b. */
    double fraction(VectorBucket b) const;
};

/** Parameters of stream detection (paper footnote 1 defaults). */
struct StreamParams
{
    /** A stream ends after this many references of instruction silence. */
    std::uint64_t maxGapRefs = 500;
    /** A stream ends when the stride exceeds this many bytes. */
    std::uint64_t maxStrideBytes = 32;
};

/** Profile the per-instruction reference streams of @p t. */
StreamProfile profileStreams(const trace::Trace &t,
                             const StreamParams &params = {});

} // namespace analysis
} // namespace sac

#endif // SAC_ANALYSIS_STREAM_PROFILER_HH
