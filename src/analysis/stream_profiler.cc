#include "src/analysis/stream_profiler.hh"

#include <cstdlib>
#include <unordered_map>

#include "src/util/logging.hh"

namespace sac {
namespace analysis {

const char *
vectorBucketLabel(VectorBucket b)
{
    switch (b) {
      case VectorBucket::UpTo32:
        return "<= 32 bytes";
      case VectorBucket::UpTo64:
        return "32 - 64 bytes";
      case VectorBucket::UpTo128:
        return "64 - 128 bytes";
      case VectorBucket::UpTo256:
        return "128 - 256 bytes";
      case VectorBucket::UpTo512:
        return "256 - 512 bytes";
      case VectorBucket::Beyond512:
        return "> 512 bytes";
      case VectorBucket::Count:
        break;
    }
    util::panic("invalid vector bucket");
}

double
StreamProfile::fraction(VectorBucket b) const
{
    const auto i = static_cast<std::size_t>(b);
    return total == 0
               ? 0.0
               : static_cast<double>(counts[i]) /
                     static_cast<double>(total);
}

namespace {

VectorBucket
bucketOf(std::uint64_t bytes)
{
    if (bytes <= 32)
        return VectorBucket::UpTo32;
    if (bytes <= 64)
        return VectorBucket::UpTo64;
    if (bytes <= 128)
        return VectorBucket::UpTo128;
    if (bytes <= 256)
        return VectorBucket::UpTo256;
    if (bytes <= 512)
        return VectorBucket::UpTo512;
    return VectorBucket::Beyond512;
}

/** Live state of one instruction's current stream. */
struct Stream
{
    Addr minAddr = 0;
    Addr maxAddr = 0;
    Addr lastAddr = 0;
    std::uint64_t lastIndex = 0;
    std::uint64_t refs = 0;
    std::uint32_t lastSize = 8;
};

} // namespace

StreamProfile
profileStreams(const trace::Trace &t, const StreamParams &params)
{
    std::unordered_map<RefId, Stream> live;
    StreamProfile profile;
    profile.total = t.size();

    double span_sum = 0.0;

    auto close = [&](const Stream &s) {
        const std::uint64_t span = s.maxAddr - s.minAddr + s.lastSize;
        profile.counts[static_cast<std::size_t>(bucketOf(span))] +=
            s.refs;
        span_sum += static_cast<double>(span);
        ++profile.streams;
    };

    for (std::uint64_t i = 0; i < t.size(); ++i) {
        const auto &r = t[i];
        auto [it, fresh] = live.try_emplace(r.ref);
        Stream &s = it->second;
        if (!fresh) {
            const std::uint64_t gap = i - s.lastIndex;
            const std::uint64_t stride = static_cast<std::uint64_t>(
                std::llabs(static_cast<std::int64_t>(r.addr) -
                           static_cast<std::int64_t>(s.lastAddr)));
            if (gap > params.maxGapRefs ||
                stride > params.maxStrideBytes) {
                close(s);
                s = Stream{};
                fresh = true;
            }
        }
        if (fresh) {
            s.minAddr = s.maxAddr = r.addr;
        } else {
            s.minAddr = std::min(s.minAddr, r.addr);
            s.maxAddr = std::max(s.maxAddr, r.addr);
        }
        s.lastAddr = r.addr;
        s.lastIndex = i;
        s.lastSize = r.size;
        ++s.refs;
    }

    for (const auto &[ref, s] : live) {
        (void)ref;
        close(s);
    }
    profile.meanStreamBytes =
        profile.streams == 0
            ? 0.0
            : span_sum / static_cast<double>(profile.streams);
    return profile;
}

} // namespace analysis
} // namespace sac
