/**
 * @file
 * Reuse-distance profiling (paper Figure 1a): for every reference,
 * the number of references since the same datum was last touched.
 * References to data never touched again fall in the "no reuse"
 * bucket; the paper buckets the rest as 1-10^2, 10^2-10^3, 10^3-10^4
 * and > 10^4 references.
 */

#ifndef SAC_ANALYSIS_REUSE_PROFILER_HH
#define SAC_ANALYSIS_REUSE_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>

#include "src/trace/trace.hh"

namespace sac {
namespace analysis {

/** The paper's five reuse-distance buckets. */
enum class ReuseBucket : std::size_t
{
    NoReuse = 0,   //!< data referenced only once (never reused after)
    UpTo100,       //!< 1 .. 10^2 references
    UpTo1k,        //!< 10^2 .. 10^3
    UpTo10k,       //!< 10^3 .. 10^4
    Beyond10k,     //!< > 10^4
    Count
};

/** Label of a reuse bucket, as in Figure 1a's legend. */
const char *reuseBucketLabel(ReuseBucket b);

/** Distribution of references among reuse-distance buckets. */
struct ReuseProfile
{
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  ReuseBucket::Count)>
        counts{};
    std::uint64_t total = 0;

    /** Fraction of references in bucket @p b. */
    double fraction(ReuseBucket b) const;

    /** Mean reuse distance over references that are reused. */
    double meanReuseDistance = 0.0;
};

/**
 * Profile the reuse distances of @p t at @p granularity_bytes
 * (default: one double-precision element, the paper's unit).
 *
 * A reference's distance is measured *forward*: the count of
 * references until the same datum is touched again; the final touch
 * of each datum counts as "no reuse", matching the figure where "0
 * corresponds to data referenced only once".
 */
ReuseProfile profileReuse(const trace::Trace &t,
                          std::uint32_t granularity_bytes = 8);

} // namespace analysis
} // namespace sac

#endif // SAC_ANALYSIS_REUSE_PROFILER_HH
