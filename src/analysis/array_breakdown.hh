/**
 * @file
 * Per-array trace attribution: the paper's reasoning is per-array
 * ("elements of X bounce back ... mostly flushing elements of A"),
 * so this tool splits a trace's references, tags and reuse behavior
 * by the program array each address belongs to.
 */

#ifndef SAC_ANALYSIS_ARRAY_BREAKDOWN_HH
#define SAC_ANALYSIS_ARRAY_BREAKDOWN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/loopnest/program.hh"
#include "src/trace/trace.hh"
#include "src/util/table.hh"

namespace sac {
namespace analysis {

/** Byte range [begin, end) of one named array. */
struct ArrayRange
{
    std::string name;
    Addr begin = 0;
    Addr end = 0;
};

/** Ranges of every array of a finalized program. */
std::vector<ArrayRange> arrayRanges(const loopnest::Program &program);

/** Aggregated per-array trace statistics. */
struct ArrayStats
{
    std::string name;
    std::uint64_t refs = 0;
    std::uint64_t writes = 0;
    std::uint64_t temporalTagged = 0;
    std::uint64_t spatialTagged = 0;
    /** Touches re-touched within the reuse window. */
    std::uint64_t reusedSoon = 0;

    double
    shareOf(std::uint64_t total) const
    {
        return total ? static_cast<double>(refs) / total : 0.0;
    }

    double
    temporalFraction() const
    {
        return refs ? static_cast<double>(temporalTagged) / refs : 0.0;
    }

    double
    spatialFraction() const
    {
        return refs ? static_cast<double>(spatialTagged) / refs : 0.0;
    }

    double
    reuseFraction() const
    {
        return refs ? static_cast<double>(reusedSoon) / refs : 0.0;
    }
};

/**
 * Attribute @p t's references to @p ranges. Addresses outside every
 * range are collected under the name "(other)". Reuse is measured at
 * element granularity with a forward window of @p reuse_window
 * references.
 *
 * @pre ranges must be non-overlapping
 */
std::vector<ArrayStats>
breakdownByArray(const trace::Trace &t,
                 const std::vector<ArrayRange> &ranges,
                 std::uint64_t reuse_window = 2500);

/** Render a breakdown as a table (share/tag/reuse fractions). */
util::Table breakdownTable(const std::vector<ArrayStats> &stats,
                           std::uint64_t total_refs);

} // namespace analysis
} // namespace sac

#endif // SAC_ANALYSIS_ARRAY_BREAKDOWN_HH
