#include "src/analysis/tag_stats.hh"

namespace sac {
namespace analysis {

TagStats
computeTagStats(const trace::Trace &t)
{
    TagStats s;
    s.total = t.size();
    for (const auto &r : t) {
        if (r.temporal && r.spatial)
            ++s.temporalSpatial;
        else if (r.temporal)
            ++s.temporalNoSpatial;
        else if (r.spatial)
            ++s.noTemporalSpatial;
        else
            ++s.noTemporalNoSpatial;
    }
    return s;
}

} // namespace analysis
} // namespace sac
