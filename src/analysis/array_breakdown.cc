#include "src/analysis/array_breakdown.hh"

#include <algorithm>
#include <unordered_map>

#include "src/util/logging.hh"

namespace sac {
namespace analysis {

std::vector<ArrayRange>
arrayRanges(const loopnest::Program &program)
{
    SAC_ASSERT(program.finalized(),
               "array ranges need a finalized program");
    std::vector<ArrayRange> out;
    out.reserve(program.arrayCount());
    for (std::size_t a = 0; a < program.arrayCount(); ++a) {
        const auto &decl =
            program.array(static_cast<loopnest::ArrayId>(a));
        ArrayRange r;
        r.name = decl.name;
        r.begin = *decl.base;
        r.end = *decl.base + static_cast<Addr>(decl.sizeBytes());
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<ArrayStats>
breakdownByArray(const trace::Trace &t,
                 const std::vector<ArrayRange> &ranges,
                 std::uint64_t reuse_window)
{
    // Sort ranges by base for binary search; keep original order for
    // the report.
    std::vector<std::size_t> order(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return ranges[a].begin < ranges[b].begin;
              });

    std::vector<ArrayStats> stats(ranges.size() + 1);
    for (std::size_t i = 0; i < ranges.size(); ++i)
        stats[i].name = ranges[i].name;
    stats.back().name = "(other)";

    auto index_of = [&](Addr addr) -> std::size_t {
        // Last range whose begin <= addr.
        auto it = std::upper_bound(
            order.begin(), order.end(), addr,
            [&](Addr a, std::size_t idx) {
                return a < ranges[idx].begin;
            });
        if (it == order.begin())
            return ranges.size();
        const std::size_t idx = *(it - 1);
        return addr < ranges[idx].end ? idx : ranges.size();
    };

    // Per-datum last touch for the reuse window, attributed to the
    // owning array of the earlier touch.
    struct LastTouch
    {
        std::uint64_t index;
        std::size_t array;
    };
    std::unordered_map<Addr, LastTouch> last;
    last.reserve(1 << 16);

    for (std::uint64_t i = 0; i < t.size(); ++i) {
        const auto &r = t[i];
        const std::size_t idx = index_of(r.addr);
        ArrayStats &s = stats[idx];
        ++s.refs;
        s.writes += r.isWrite() ? 1 : 0;
        s.temporalTagged += r.temporal ? 1 : 0;
        s.spatialTagged += r.spatial ? 1 : 0;

        const Addr datum = r.addr / elementBytes;
        const auto it = last.find(datum);
        if (it != last.end()) {
            if (i - it->second.index <= reuse_window)
                ++stats[it->second.array].reusedSoon;
            it->second = {i, idx};
        } else {
            last.emplace(datum, LastTouch{i, idx});
        }
    }
    return stats;
}

util::Table
breakdownTable(const std::vector<ArrayStats> &stats,
               std::uint64_t total_refs)
{
    util::Table table({"Array", "refs", "share", "writes",
                       "temporal", "spatial", "reused<=win"});
    for (const auto &s : stats) {
        if (s.refs == 0)
            continue;
        const auto row = table.addRow();
        table.set(row, 0, s.name);
        table.set(row, 1, std::to_string(s.refs));
        table.setNumber(row, 2, s.shareOf(total_refs), 3);
        table.set(row, 3, std::to_string(s.writes));
        table.setNumber(row, 4, s.temporalFraction(), 3);
        table.setNumber(row, 5, s.spatialFraction(), 3);
        table.setNumber(row, 6, s.reuseFraction(), 3);
    }
    return table;
}

} // namespace analysis
} // namespace sac
