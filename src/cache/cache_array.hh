/**
 * @file
 * Generic set-associative cache storage with the per-line state the
 * software-assisted design needs: valid, dirty, the temporal bit
 * (Section 2.2) and the prefetched bit (Section 4.4). The array holds
 * state only — all timing, bounce-back and virtual-line policy lives
 * in the simulators built on top (src/core).
 */

#ifndef SAC_CACHE_CACHE_ARRAY_HH
#define SAC_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/types.hh"

namespace sac {
namespace cache {

/** State of one physical cache line. */
struct LineState
{
    /** Line address (byte address >> log2(lineBytes)); meaningful only
     *  when valid. */
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;
    /** Temporal bit, set by accesses whose instruction is tagged. */
    bool temporal = false;
    /** Line was brought in by the prefetcher and not yet demanded. */
    bool prefetched = false;
    /** LRU stamp: larger is more recently used. */
    std::uint64_t lruStamp = 0;
};

/** Victim-selection policy within a set. */
enum class ReplacementPolicy
{
    /** Plain least-recently-used. */
    Lru,
    /**
     * Prefer evicting lines without the temporal bit (the paper's
     * cheaper software control for set-associative caches, Fig 9b):
     * LRU among non-temporal lines; fall back to LRU over all lines.
     */
    LruPreferNonTemporal,
    /**
     * Prefer evicting prefetched lines (used by the bounce-back cache
     * when it doubles as a prefetch buffer, Section 4.4): LRU among
     * prefetched lines first, then plain LRU.
     */
    LruPreferPrefetched,
};

/**
 * A set-associative array of physical lines. A direct-mapped cache is
 * assoc == 1; a fully-associative buffer is sets == 1.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity; must be sets * assoc * line
     * @param line_bytes physical line size (power of two)
     * @param assoc associativity (>= 1)
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
               std::uint32_t assoc);

    /** Line size in bytes. */
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Number of sets. */
    std::uint32_t numSets() const { return sets_; }

    /** Associativity. */
    std::uint32_t assoc() const { return assoc_; }

    /** Total capacity in bytes. */
    std::uint64_t sizeBytes() const;

    /** Line address of a byte address. */
    Addr lineAddrOf(Addr byte_addr) const
    {
        return byte_addr >> lineShift_;
    }

    /** First byte address of a line address. */
    Addr byteAddrOf(Addr line_addr) const
    {
        return line_addr << lineShift_;
    }

    /** Set index of a line address. */
    std::uint32_t setIndexOf(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(line_addr & (sets_ - 1));
    }

    /**
     * Find the way holding @p line_addr.
     * @retval way index when present, std::nullopt on miss
     */
    std::optional<std::uint32_t> findWay(Addr line_addr) const;

    /** True when @p line_addr is resident. */
    bool contains(Addr line_addr) const
    {
        return findWay(line_addr).has_value();
    }

    /** Access a line's state by (set, way). */
    LineState &line(std::uint32_t set, std::uint32_t way);

    /** Access a line's state by (set, way), read-only. */
    const LineState &line(std::uint32_t set, std::uint32_t way) const;

    /** State of the resident line for @p line_addr, if any. */
    LineState *find(Addr line_addr);

    /** Mark (set, way) most recently used. */
    void touch(std::uint32_t set, std::uint32_t way);

    /**
     * Choose a victim way in @p set under @p policy. Invalid ways are
     * always preferred.
     */
    std::uint32_t victimWay(std::uint32_t set,
                            ReplacementPolicy policy) const;

    /**
     * Install @p line_addr into (set computed from the address, way
     * from @p policy), returning the previous contents of the slot.
     * The installed line is valid, clean, non-temporal,
     * non-prefetched and most recently used.
     *
     * @return the evicted line state (valid == false if none)
     */
    LineState insert(Addr line_addr, ReplacementPolicy policy);

    /** Invalidate @p line_addr if present; returns the old state. */
    std::optional<LineState> invalidate(Addr line_addr);

    /** Invalidate every line. */
    void reset();

    /** Count of currently valid lines. */
    std::uint32_t validCount() const;

  private:
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;
    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::vector<LineState> lines_; // sets_ * assoc_, set-major
    std::uint64_t stampCounter_ = 0;
};

} // namespace cache
} // namespace sac

#endif // SAC_CACHE_CACHE_ARRAY_HH
