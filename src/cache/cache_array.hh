/**
 * @file
 * Generic set-associative cache storage with the per-line state the
 * software-assisted design needs: valid, dirty, the temporal bit
 * (Section 2.2) and the prefetched bit (Section 4.4). The array holds
 * state only — all timing, bounce-back and virtual-line policy lives
 * in the simulators built on top (src/core).
 *
 * Storage is structure-of-arrays: tags, flag bits and LRU stamps live
 * in separate vectors so the hot residency probe (findWay) touches
 * exactly 8 bytes per way instead of a whole line-state struct. The
 * AoS LineState struct remains the exchange type — snapshots,
 * victims and full-state installs — and every mutation goes through
 * the LineRef proxy so the tag vector and the derived prefetched-line
 * count can never fall out of sync with the flags.
 */

#ifndef SAC_CACHE_CACHE_ARRAY_HH
#define SAC_CACHE_CACHE_ARRAY_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/types.hh"

namespace sac {
namespace cache {

/** Snapshot of one physical cache line (the SoA exchange type). */
struct LineState
{
    /** Line address (byte address >> log2(lineBytes)); meaningful only
     *  when valid. */
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;
    /** Temporal bit, set by accesses whose instruction is tagged. */
    bool temporal = false;
    /** Line was brought in by the prefetcher and not yet demanded. */
    bool prefetched = false;
    /** LRU stamp: larger is more recently used. */
    std::uint64_t lruStamp = 0;
};

/** Victim-selection policy within a set. */
enum class ReplacementPolicy
{
    /** Plain least-recently-used. */
    Lru,
    /**
     * Prefer evicting lines without the temporal bit (the paper's
     * cheaper software control for set-associative caches, Fig 9b):
     * LRU among non-temporal lines; fall back to LRU over all lines.
     */
    LruPreferNonTemporal,
    /**
     * Prefer evicting prefetched lines (used by the bounce-back cache
     * when it doubles as a prefetch buffer, Section 4.4): LRU among
     * prefetched lines first, then plain LRU.
     */
    LruPreferPrefetched,
};

/**
 * A set-associative array of physical lines. A direct-mapped cache is
 * assoc == 1; a fully-associative buffer is sets == 1.
 */
class CacheArray
{
  public:
    /**
     * Mutable view of one (set, way) slot. All writes funnel through
     * the owning array so the SoA columns stay consistent. Copies are
     * cheap (pointer + index) and stay valid for the array's lifetime;
     * they view the slot, not the line, so an eviction re-targets
     * them to the new occupant.
     */
    class LineRef
    {
      public:
        Addr lineAddr() const { return arr_->tags_[idx_]; }
        bool valid() const { return arr_->flagged(idx_, kValid); }
        bool dirty() const { return arr_->flagged(idx_, kDirty); }
        bool temporal() const { return arr_->flagged(idx_, kTemporal); }
        bool prefetched() const
        {
            return arr_->flagged(idx_, kPrefetched);
        }
        std::uint64_t lruStamp() const { return arr_->stamps_[idx_]; }

        void setDirty(bool v = true) { arr_->setFlag(idx_, kDirty, v); }
        void setTemporal(bool v = true)
        {
            arr_->setFlag(idx_, kTemporal, v);
        }
        void setPrefetched(bool v = true)
        {
            arr_->setPrefetched(idx_, v);
        }

        /** Materialize the slot as an AoS snapshot. */
        LineState state() const { return arr_->stateAt(idx_); }

        /** Install a full line state (tag, flags and stamp). */
        void assign(const LineState &s) { arr_->assignAt(idx_, s); }

        /** Invalidate the slot. */
        void clear() { arr_->clearAt(idx_); }

      private:
        friend class CacheArray;
        LineRef(CacheArray &a, std::size_t i) : arr_(&a), idx_(i) {}

        CacheArray *arr_;
        std::size_t idx_;
    };

    /**
     * @param size_bytes total capacity; must be sets * assoc * line
     * @param line_bytes physical line size (power of two)
     * @param assoc associativity (>= 1)
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
               std::uint32_t assoc);

    /** Line size in bytes. */
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Number of sets. */
    std::uint32_t numSets() const { return sets_; }

    /** Associativity. */
    std::uint32_t assoc() const { return assoc_; }

    /** Total capacity in bytes. */
    std::uint64_t sizeBytes() const;

    /** Line address of a byte address. */
    Addr lineAddrOf(Addr byte_addr) const
    {
        return byte_addr >> lineShift_;
    }

    /** First byte address of a line address. */
    Addr byteAddrOf(Addr line_addr) const
    {
        return line_addr << lineShift_;
    }

    /** Set index of a line address. */
    std::uint32_t setIndexOf(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(line_addr & (sets_ - 1));
    }

    /**
     * Find the way holding @p line_addr. Scans only the packed tag
     * column; invalid ways hold a sentinel tag that cannot match a
     * real line address.
     * @retval way index when present, std::nullopt on miss
     */
    std::optional<std::uint32_t>
    findWay(Addr line_addr) const
    {
        const Addr *t = &tags_[static_cast<std::size_t>(line_addr &
                                                        (sets_ - 1)) *
                               assoc_];
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (t[w] == line_addr)
                return w;
        }
        return std::nullopt;
    }

    /** True when @p line_addr is resident. */
    bool contains(Addr line_addr) const
    {
        return findWay(line_addr).has_value();
    }

    /** Mutable view of the slot at (set, way). */
    LineRef line(std::uint32_t set, std::uint32_t way);

    /** Snapshot of the slot at (set, way). */
    LineState line(std::uint32_t set, std::uint32_t way) const;

    /** Mutable view of the resident line for @p line_addr, if any. */
    std::optional<LineRef> find(Addr line_addr);

    /** Mark (set, way) most recently used. */
    void touch(std::uint32_t set, std::uint32_t way);

    /**
     * Choose a victim way in @p set under @p policy. Invalid ways are
     * always preferred.
     */
    std::uint32_t victimWay(std::uint32_t set,
                            ReplacementPolicy policy) const;

    /**
     * Install @p line_addr into (set computed from the address, way
     * from @p policy), returning the previous contents of the slot.
     * The installed line is valid, clean, non-temporal,
     * non-prefetched and most recently used.
     *
     * @return the evicted line state (valid == false if none)
     */
    LineState insert(Addr line_addr, ReplacementPolicy policy);

    /** Invalidate @p line_addr if present; returns the old state. */
    std::optional<LineState> invalidate(Addr line_addr);

    /** Invalidate every line. */
    void reset();

    /** Count of currently valid lines. */
    std::uint32_t validCount() const;

    /**
     * Snapshot every slot in set-major order (sets * assoc entries).
     * Together with lruClock() this captures the array's complete
     * architectural state for checkpointing.
     */
    std::vector<LineState> snapshotLines() const;

    /** Monotonic LRU stamp source; pair with snapshotLines(). */
    std::uint64_t lruClock() const { return stampCounter_; }

    /**
     * Restore a snapshotLines() image onto an identically shaped
     * array. @p lines must hold exactly sets * assoc entries in
     * set-major order; @p lru_clock reseeds the stamp counter so
     * later touches keep strictly increasing stamps.
     */
    void restoreLines(const std::vector<LineState> &lines,
                      std::uint64_t lru_clock);

    /**
     * Count of resident lines with the prefetched bit, maintained
     * incrementally (the prefetch-budget check of Section 4.4 used to
     * rescan the whole array per install).
     */
    std::uint32_t prefetchedCount() const { return prefetchedCount_; }

  private:
    friend class LineRef;

    /** Flag bits packed into one byte per line. */
    static constexpr std::uint8_t kValid = 1u << 0;
    static constexpr std::uint8_t kDirty = 1u << 1;
    static constexpr std::uint8_t kTemporal = 1u << 2;
    static constexpr std::uint8_t kPrefetched = 1u << 3;

    /** Tag stored in empty ways; no real line address equals it. */
    static constexpr Addr invalidTag = ~static_cast<Addr>(0);

    std::size_t flatIndex(std::uint32_t set, std::uint32_t way) const;
    bool flagged(std::size_t idx, std::uint8_t bit) const
    {
        return (flags_[idx] & bit) != 0;
    }
    void setFlag(std::size_t idx, std::uint8_t bit, bool v);
    void setPrefetched(std::size_t idx, bool v);
    LineState stateAt(std::size_t idx) const;
    void assignAt(std::size_t idx, const LineState &s);
    void clearAt(std::size_t idx);

    std::uint32_t lineBytes_;
    std::uint32_t lineShift_;
    std::uint32_t sets_;
    std::uint32_t assoc_;
    // SoA columns, sets_ * assoc_ entries each, set-major.
    std::vector<Addr> tags_;           //!< line addr, or invalidTag
    std::vector<std::uint8_t> flags_;  //!< kValid|kDirty|... bits
    std::vector<std::uint64_t> stamps_; //!< LRU stamps
    std::uint64_t stampCounter_ = 0;
    std::uint32_t prefetchedCount_ = 0;
};

} // namespace cache
} // namespace sac

#endif // SAC_CACHE_CACHE_ARRAY_HH
