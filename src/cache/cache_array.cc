#include "src/cache/cache_array.hh"

#include "src/util/logging.hh"

namespace sac {
namespace cache {

namespace {

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

std::uint32_t
log2u(std::uint64_t x)
{
    std::uint32_t n = 0;
    while ((1ull << n) < x)
        ++n;
    return n;
}

} // namespace

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t assoc)
    : lineBytes_(line_bytes), assoc_(assoc)
{
    SAC_ASSERT(isPowerOfTwo(line_bytes), "line size must be a power of 2");
    SAC_ASSERT(assoc >= 1, "associativity must be at least 1");
    SAC_ASSERT(size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                             assoc) == 0,
               "capacity must be a multiple of line size * assoc");
    lineShift_ = log2u(line_bytes);
    const std::uint64_t sets =
        size_bytes / (static_cast<std::uint64_t>(line_bytes) * assoc);
    SAC_ASSERT(isPowerOfTwo(sets), "set count must be a power of 2");
    sets_ = static_cast<std::uint32_t>(sets);
    lines_.assign(static_cast<std::size_t>(sets_) * assoc_, LineState{});
}

std::uint64_t
CacheArray::sizeBytes() const
{
    return static_cast<std::uint64_t>(sets_) * assoc_ * lineBytes_;
}

std::optional<std::uint32_t>
CacheArray::findWay(Addr line_addr) const
{
    const std::uint32_t set = setIndexOf(line_addr);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        const LineState &l = line(set, w);
        if (l.valid && l.lineAddr == line_addr)
            return w;
    }
    return std::nullopt;
}

LineState &
CacheArray::line(std::uint32_t set, std::uint32_t way)
{
    SAC_ASSERT(set < sets_ && way < assoc_, "set/way out of range");
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
}

const LineState &
CacheArray::line(std::uint32_t set, std::uint32_t way) const
{
    SAC_ASSERT(set < sets_ && way < assoc_, "set/way out of range");
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
}

LineState *
CacheArray::find(Addr line_addr)
{
    const auto way = findWay(line_addr);
    if (!way)
        return nullptr;
    return &line(setIndexOf(line_addr), *way);
}

void
CacheArray::touch(std::uint32_t set, std::uint32_t way)
{
    line(set, way).lruStamp = ++stampCounter_;
}

std::uint32_t
CacheArray::victimWay(std::uint32_t set, ReplacementPolicy policy) const
{
    // Invalid ways are free slots: always use them first.
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (!line(set, w).valid)
            return w;

    auto lru_among = [&](auto predicate) -> std::optional<std::uint32_t> {
        std::optional<std::uint32_t> best;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const LineState &l = line(set, w);
            if (!predicate(l))
                continue;
            if (!best || l.lruStamp < line(set, *best).lruStamp)
                best = w;
        }
        return best;
    };

    switch (policy) {
      case ReplacementPolicy::LruPreferNonTemporal:
        if (const auto w =
                lru_among([](const LineState &l) { return !l.temporal; }))
            return *w;
        break;
      case ReplacementPolicy::LruPreferPrefetched:
        if (const auto w = lru_among(
                [](const LineState &l) { return l.prefetched; }))
            return *w;
        break;
      case ReplacementPolicy::Lru:
        break;
    }
    return *lru_among([](const LineState &) { return true; });
}

LineState
CacheArray::insert(Addr line_addr, ReplacementPolicy policy)
{
    const std::uint32_t set = setIndexOf(line_addr);
    const std::uint32_t way = victimWay(set, policy);
    LineState &slot = line(set, way);
    const LineState evicted = slot;
    slot = LineState{};
    slot.lineAddr = line_addr;
    slot.valid = true;
    slot.lruStamp = ++stampCounter_;
    return evicted;
}

std::optional<LineState>
CacheArray::invalidate(Addr line_addr)
{
    LineState *l = find(line_addr);
    if (!l)
        return std::nullopt;
    const LineState old = *l;
    *l = LineState{};
    return old;
}

void
CacheArray::reset()
{
    for (auto &l : lines_)
        l = LineState{};
    stampCounter_ = 0;
}

std::uint32_t
CacheArray::validCount() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_)
        n += l.valid ? 1 : 0;
    return n;
}

} // namespace cache
} // namespace sac
