#include "src/cache/cache_array.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace sac {
namespace cache {

namespace {

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

std::uint32_t
log2u(std::uint64_t x)
{
    std::uint32_t n = 0;
    while ((1ull << n) < x)
        ++n;
    return n;
}

} // namespace

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t assoc)
    : lineBytes_(line_bytes), assoc_(assoc)
{
    SAC_ASSERT(isPowerOfTwo(line_bytes), "line size must be a power of 2");
    SAC_ASSERT(assoc >= 1, "associativity must be at least 1");
    SAC_ASSERT(size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                             assoc) == 0,
               "capacity must be a multiple of line size * assoc");
    lineShift_ = log2u(line_bytes);
    const std::uint64_t sets =
        size_bytes / (static_cast<std::uint64_t>(line_bytes) * assoc);
    SAC_ASSERT(isPowerOfTwo(sets), "set count must be a power of 2");
    sets_ = static_cast<std::uint32_t>(sets);
    const std::size_t n = static_cast<std::size_t>(sets_) * assoc_;
    tags_.assign(n, invalidTag);
    flags_.assign(n, 0);
    stamps_.assign(n, 0);
}

std::uint64_t
CacheArray::sizeBytes() const
{
    return static_cast<std::uint64_t>(sets_) * assoc_ * lineBytes_;
}

std::size_t
CacheArray::flatIndex(std::uint32_t set, std::uint32_t way) const
{
    SAC_ASSERT(set < sets_ && way < assoc_, "set/way out of range");
    return static_cast<std::size_t>(set) * assoc_ + way;
}

void
CacheArray::setFlag(std::size_t idx, std::uint8_t bit, bool v)
{
    if (v)
        flags_[idx] |= bit;
    else
        flags_[idx] &= static_cast<std::uint8_t>(~bit);
}

void
CacheArray::setPrefetched(std::size_t idx, bool v)
{
    const bool was = flagged(idx, kPrefetched);
    if (was == v)
        return;
    setFlag(idx, kPrefetched, v);
    if (v)
        ++prefetchedCount_;
    else
        --prefetchedCount_;
}

LineState
CacheArray::stateAt(std::size_t idx) const
{
    LineState s;
    s.valid = flagged(idx, kValid);
    s.lineAddr = s.valid ? tags_[idx] : 0;
    s.dirty = flagged(idx, kDirty);
    s.temporal = flagged(idx, kTemporal);
    s.prefetched = flagged(idx, kPrefetched);
    s.lruStamp = stamps_[idx];
    return s;
}

void
CacheArray::assignAt(std::size_t idx, const LineState &s)
{
    setPrefetched(idx, s.prefetched);
    std::uint8_t f = flags_[idx] & kPrefetched;
    if (s.valid)
        f |= kValid;
    if (s.dirty)
        f |= kDirty;
    if (s.temporal)
        f |= kTemporal;
    flags_[idx] = f;
    tags_[idx] = s.valid ? s.lineAddr : invalidTag;
    stamps_[idx] = s.lruStamp;
}

void
CacheArray::clearAt(std::size_t idx)
{
    setPrefetched(idx, false);
    flags_[idx] = 0;
    tags_[idx] = invalidTag;
    stamps_[idx] = 0;
}

CacheArray::LineRef
CacheArray::line(std::uint32_t set, std::uint32_t way)
{
    return LineRef(*this, flatIndex(set, way));
}

LineState
CacheArray::line(std::uint32_t set, std::uint32_t way) const
{
    return stateAt(flatIndex(set, way));
}

std::optional<CacheArray::LineRef>
CacheArray::find(Addr line_addr)
{
    const auto way = findWay(line_addr);
    if (!way)
        return std::nullopt;
    return line(setIndexOf(line_addr), *way);
}

void
CacheArray::touch(std::uint32_t set, std::uint32_t way)
{
    stamps_[flatIndex(set, way)] = ++stampCounter_;
}

std::uint32_t
CacheArray::victimWay(std::uint32_t set, ReplacementPolicy policy) const
{
    // Invalid ways are free slots: always use them first.
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (!flagged(base + w, kValid))
            return w;

    auto lru_among = [&](auto predicate) -> std::optional<std::uint32_t> {
        std::optional<std::uint32_t> best;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (!predicate(flags_[base + w]))
                continue;
            if (!best || stamps_[base + w] < stamps_[base + *best])
                best = w;
        }
        return best;
    };

    switch (policy) {
      case ReplacementPolicy::LruPreferNonTemporal:
        if (const auto w = lru_among([](std::uint8_t f) {
                return (f & kTemporal) == 0;
            }))
            return *w;
        break;
      case ReplacementPolicy::LruPreferPrefetched:
        if (const auto w = lru_among([](std::uint8_t f) {
                return (f & kPrefetched) != 0;
            }))
            return *w;
        break;
      case ReplacementPolicy::Lru:
        break;
    }
    return *lru_among([](std::uint8_t) { return true; });
}

LineState
CacheArray::insert(Addr line_addr, ReplacementPolicy policy)
{
    const std::uint32_t set = setIndexOf(line_addr);
    const std::uint32_t way = victimWay(set, policy);
    const std::size_t idx = flatIndex(set, way);
    const LineState evicted = stateAt(idx);
    setPrefetched(idx, false);
    flags_[idx] = kValid;
    tags_[idx] = line_addr;
    stamps_[idx] = ++stampCounter_;
    return evicted;
}

std::optional<LineState>
CacheArray::invalidate(Addr line_addr)
{
    auto l = find(line_addr);
    if (!l)
        return std::nullopt;
    const LineState old = l->state();
    l->clear();
    return old;
}

void
CacheArray::reset()
{
    std::fill(tags_.begin(), tags_.end(), invalidTag);
    std::fill(flags_.begin(), flags_.end(), 0);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    stampCounter_ = 0;
    prefetchedCount_ = 0;
}

std::vector<LineState>
CacheArray::snapshotLines() const
{
    const std::size_t n = static_cast<std::size_t>(sets_) * assoc_;
    std::vector<LineState> lines;
    lines.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        lines.push_back(stateAt(i));
    return lines;
}

void
CacheArray::restoreLines(const std::vector<LineState> &lines,
                         std::uint64_t lru_clock)
{
    const std::size_t n = static_cast<std::size_t>(sets_) * assoc_;
    SAC_ASSERT(lines.size() == n,
               "restoreLines snapshot shape does not match the array");
    // assignAt funnels through setPrefetched so prefetchedCount_
    // tracks the restored flags incrementally.
    for (std::size_t i = 0; i < n; ++i)
        assignAt(i, lines[i]);
    stampCounter_ = lru_clock;
}

std::uint32_t
CacheArray::validCount() const
{
    std::uint32_t n = 0;
    for (const auto f : flags_)
        n += (f & kValid) ? 1 : 0;
    return n;
}

} // namespace cache
} // namespace sac
