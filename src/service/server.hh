/**
 * @file
 * The sweep service core: a long-running server accepting framed JSON
 * requests (src/service/protocol.hh) on a Unix-domain socket, a
 * bounded priority admission queue feeding the shared ThreadPool, and
 * ONE harness::Runner shared by every request — concurrent clients
 * with overlapping lattices share trace generation, exact cells,
 * stack passes, sampled replays and checkpoint-library builds through
 * the runner's once-latched caches.
 *
 * The sacd binary (examples/sacd.cpp) is a thin shell around this
 * class: parse flags, install signal handlers, start(), wait, drain.
 * Tests drive the same class in-process on a temporary socket.
 */

#ifndef SAC_SERVICE_SERVER_HH
#define SAC_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/experiment.hh"
#include "src/service/protocol.hh"
#include "src/telemetry/counter_registry.hh"
#include "src/util/thread_pool.hh"

namespace sac {
namespace service {

/** Deployment knobs of one SweepServer. */
struct ServerOptions
{
    std::string socketPath; //!< Unix socket to bind (required)
    /** Concurrent sweep executors (0 = ThreadPool default). */
    unsigned workers = 0;
    /**
     * Admission bound: submits beyond this many queued-or-active
     * sweeps are rejected ("queue full"). 0 rejects every submit.
     */
    std::size_t maxQueue = 8;
};

/**
 * The sweep daemon core. start() binds the socket and spawns the
 * accept loop; every connection carries one request frame. Submits
 * pass admission control, enter the priority queue, and execute on
 * the shared pool; manifest frames stream back to the client as cells
 * finish. drain() (or a "shutdown" request) stops accepting new work,
 * finishes everything already admitted, and releases the socket —
 * clients connected mid-drain get their full response before the
 * server exits.
 *
 * Thread safety: the public interface may be called from any thread;
 * internal state is guarded by one mutex, and sweep execution shares
 * the Runner's own synchronization.
 */
class SweepServer
{
  public:
    explicit SweepServer(ServerOptions options);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /**
     * Bind the socket and start serving. False (with a diagnostic on
     * stderr) when the socket cannot be created or bound.
     */
    bool start();

    /**
     * Graceful drain: reject new submits, finish every admitted
     * sweep, flush and close every connection, join all threads, and
     * remove the socket file. Idempotent.
     */
    void drain();

    /** Has a client's "shutdown" request asked the server to stop? */
    bool shutdownRequested() const
    {
        return shutdownRequested_.load();
    }

    /**
     * Block until shutdownRequested() (at most @p timeout_ms when
     * positive). True when a shutdown was requested.
     */
    bool waitForShutdown(int timeout_ms = 0);

    /** The shared runner (tests assert its cache-sharing counters). */
    harness::Runner &runner() { return runner_; }

    /**
     * Snapshot of the service counters (request.accepted, .rejected,
     * .queued, .active, .completed) merged with the runner's
     * stack.pass.* and checkpoint.* counters.
     */
    telemetry::CounterRegistry metricsSnapshot() const;

    /** metricsSnapshot() in Prometheus text exposition ("sacd_..."). */
    std::string prometheusText() const;

  private:
    /** One admitted sweep: request plus its client connection. */
    struct Job
    {
        std::uint64_t id = 0;
        int priority = 0;
        harness::SweepRequest request;
        /** Connection fd; the executor writes response frames here. */
        int fd = -1;
        /** Serializes frame writes against other threads. */
        std::shared_ptr<std::mutex> writeMutex;
    };

    void acceptLoop();
    void handleConnection(int fd);
    void handleSubmit(int fd, const SweepSpec &spec,
                      std::shared_ptr<std::mutex> write_mutex);
    /** Pop and run the highest-priority queued job (pool task). */
    void runOneJob();
    std::string statusResponse() const;

    ServerOptions options_;
    harness::Runner runner_;
    std::unique_ptr<util::ThreadPool> pool_;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdownRequested_{false};
    bool started_ = false;
    bool drained_ = false;

    mutable std::mutex mutex_;
    std::condition_variable idle_;     //!< drain waits for jobs == 0
    std::condition_variable shutdown_; //!< waitForShutdown sleeps here
    std::vector<Job> queue_;           //!< pending, best-first pop
    std::uint64_t nextId_ = 1;
    std::size_t active_ = 0;  //!< jobs currently executing
    std::size_t pending_ = 0; //!< queued + active (admission gauge)
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace service
} // namespace sac

#endif // SAC_SERVICE_SERVER_HH
