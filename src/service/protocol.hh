/**
 * @file
 * Wire protocol of the sweep service (sacd): length-prefixed JSON
 * frames over a Unix-domain stream socket, and the parsing of client
 * requests into harness::SweepRequest values.
 *
 * Framing: every message is one JSON document preceded by a 4-byte
 * big-endian payload length. A connection carries exactly one request
 * frame from the client followed by one or more response frames from
 * the server (submit streams a "manifest" frame per finished sweep
 * cell before its final "done" frame), then closes.
 *
 * Request documents:
 *   {"verb": "submit", "workloads": ["MV", ...],
 *    "presets": ["standard", ...], "metric": "miss-ratio",
 *    "engine": "auto", "priority": 0, "jobs": 2, "intra_jobs": 0,
 *    "sampling": {"window": W, "stride": S, "warmup": U},
 *    "checkpoint_dir": "...", "manifest_dir": "..."}
 *   {"verb": "status"} | {"verb": "metrics"} | {"verb": "shutdown"}
 *
 * Response frames are objects with a "type" member: "accepted",
 * "manifest" (file + document bytes), "done" (table + cell count),
 * "status", "metrics" (Prometheus text), "error".
 */

#ifndef SAC_SERVICE_PROTOCOL_HH
#define SAC_SERVICE_PROTOCOL_HH

#include <optional>
#include <string>
#include <vector>

#include "src/harness/sweep.hh"
#include "src/util/json.hh"

namespace sac {
namespace service {

/** Maximum accepted frame payload (defends the 4-byte length). */
inline constexpr std::size_t maxFrameBytes = 64 * 1024 * 1024;

/**
 * Write one frame (4-byte big-endian length + @p payload) to @p fd,
 * retrying short writes. False on any I/O error (EPIPE included —
 * the caller treats a vanished client as cancellation, not a crash).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Read one frame from @p fd into @p payload, retrying short reads.
 * False on EOF, I/O error, or a length above maxFrameBytes.
 */
bool readFrame(int fd, std::string &payload);

/** The request verbs a connection may open with. */
enum class Verb
{
    Submit,
    Status,
    Metrics,
    Shutdown,
};

/**
 * One parsed submit body, still symbolic: workloads and presets are
 * names (resolved against the registries by toSweepRequest(), never
 * while parsing, so a bad name is a client error instead of a fatal).
 */
struct SweepSpec
{
    std::vector<std::string> workloads;
    std::vector<std::string> presets;
    std::string metric = "miss-ratio";
    harness::EngineSelect engine = harness::EngineSelect::Auto;
    int priority = 0;  //!< higher runs sooner
    unsigned jobs = 1; //!< per-request worker hint (server clamps)
    /** Intra-trace workers per cell; 0 = auto (server clamps). */
    unsigned intraJobs = 0;
    sim::SamplingOptions sampling;
    std::string checkpointDir;
    /** Server-side manifest directory; empty = stream only. */
    std::string manifestDir;
};

/** A parsed request frame: the verb plus, for Submit, its spec. */
struct Request
{
    Verb verb = Verb::Status;
    SweepSpec spec;
};

/**
 * Parse one request document. Returns nullopt with a diagnostic in
 * @p error on malformed JSON, an unknown verb, or a submit body with
 * missing/mistyped members.
 */
std::optional<Request> parseRequest(const std::string &payload,
                                    std::string *error);

/**
 * The metric named by @p name ("miss-ratio", "amat", "words",
 * "main-hit-share", "aux-hit-share"); nullopt for unknown names.
 */
std::optional<harness::Metric>
metricFromName(const std::string &name);

/**
 * Resolve @p spec against the benchmark and preset registries into a
 * runnable SweepRequest (telemetry members are left default — the
 * server wires its own sink). Returns nullopt with a diagnostic on an
 * unknown workload, preset or metric, or a spec whose resolved
 * request fails SweepRequest::validationError().
 */
std::optional<harness::SweepRequest>
toSweepRequest(const SweepSpec &spec, std::string *error);

// --- Response builders (documents, not yet framed) ------------------

/** {"type":"error","error":msg} */
std::string errorResponse(const std::string &message);

/** {"type":"accepted","id":id,"queued":queued} */
std::string acceptedResponse(std::uint64_t id, std::size_t queued);

/** {"type":"manifest","file":file,"document":bytes} */
std::string manifestResponse(const std::string &file,
                             const std::string &document);

/** {"type":"done","id":id,"cells":cells,"table":table} */
std::string doneResponse(std::uint64_t id, std::size_t cells,
                         const std::string &table);

} // namespace service
} // namespace sac

#endif // SAC_SERVICE_PROTOCOL_HH
