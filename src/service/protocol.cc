#include "src/service/protocol.hh"

#include <cerrno>
#include <cstdint>
#include <unistd.h>

#include "src/workloads/workloads.hh"

namespace sac {
namespace service {

namespace {

bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readAll(int fd, char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::read(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-message
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > maxFrameBytes)
        return false;
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    const unsigned char header[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    return writeAll(fd, reinterpret_cast<const char *>(header), 4) &&
           writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string &payload)
{
    unsigned char header[4];
    if (!readAll(fd, reinterpret_cast<char *>(header), 4))
        return false;
    const std::uint32_t len =
        (static_cast<std::uint32_t>(header[0]) << 24) |
        (static_cast<std::uint32_t>(header[1]) << 16) |
        (static_cast<std::uint32_t>(header[2]) << 8) |
        static_cast<std::uint32_t>(header[3]);
    if (len > maxFrameBytes)
        return false;
    payload.resize(len);
    return len == 0 || readAll(fd, payload.data(), len);
}

std::optional<harness::Metric>
metricFromName(const std::string &name)
{
    if (name == "miss-ratio")
        return harness::missRatioMetric();
    if (name == "amat")
        return harness::amatMetric();
    if (name == "words")
        return harness::wordsPerAccessMetric();
    if (name == "main-hit-share")
        return harness::mainHitShareMetric();
    if (name == "aux-hit-share")
        return harness::auxHitShareMetric();
    return std::nullopt;
}

namespace {

/** Set @p error and return nullopt (terse parse-failure helper). */
std::optional<Request>
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return std::nullopt;
}

std::optional<std::vector<std::string>>
stringList(const util::Json &doc, const std::string &key,
           std::string *error)
{
    const util::Json *list = doc.find(key);
    if (list == nullptr || !list->isArray() || list->size() == 0) {
        if (error != nullptr)
            *error = "submit needs a non-empty \"" + key + "\" array";
        return std::nullopt;
    }
    std::vector<std::string> out;
    out.reserve(list->size());
    for (const util::Json &e : list->elements()) {
        if (!e.isString()) {
            if (error != nullptr)
                *error = "\"" + key + "\" entries must be strings";
            return std::nullopt;
        }
        out.push_back(e.asString());
    }
    return out;
}

} // namespace

std::optional<Request>
parseRequest(const std::string &payload, std::string *error)
{
    std::string parse_error;
    const auto doc = util::Json::parse(payload, &parse_error);
    if (!doc)
        return fail(error, "malformed request: " + parse_error);
    if (!doc->isObject())
        return fail(error, "request must be a JSON object");
    const util::Json *verb = doc->find("verb");
    if (verb == nullptr || !verb->isString())
        return fail(error, "request needs a string \"verb\"");

    Request req;
    const std::string v = verb->asString();
    if (v == "status") {
        req.verb = Verb::Status;
        return req;
    }
    if (v == "metrics") {
        req.verb = Verb::Metrics;
        return req;
    }
    if (v == "shutdown") {
        req.verb = Verb::Shutdown;
        return req;
    }
    if (v != "submit")
        return fail(error, "unknown verb \"" + v + "\"");

    req.verb = Verb::Submit;
    const auto workloads = stringList(*doc, "workloads", error);
    if (!workloads)
        return std::nullopt;
    req.spec.workloads = *workloads;
    const auto presets = stringList(*doc, "presets", error);
    if (!presets)
        return std::nullopt;
    req.spec.presets = *presets;

    if (const util::Json *m = doc->find("metric")) {
        if (!m->isString())
            return fail(error, "\"metric\" must be a string");
        req.spec.metric = m->asString();
    }
    if (const util::Json *e = doc->find("engine")) {
        if (!e->isString())
            return fail(error, "\"engine\" must be a string");
        const auto engine =
            harness::engineSelectFromName(e->asString());
        if (!engine)
            return fail(error,
                        "unknown engine \"" + e->asString() + "\"");
        req.spec.engine = *engine;
    }
    if (const util::Json *p = doc->find("priority")) {
        if (!p->isNumber())
            return fail(error, "\"priority\" must be a number");
        req.spec.priority = static_cast<int>(p->asInt());
    }
    if (const util::Json *j = doc->find("jobs")) {
        if (!j->isNumber())
            return fail(error, "\"jobs\" must be a number");
        const std::uint64_t jobs = j->asUint(1);
        req.spec.jobs = jobs == 0 ? 1u : static_cast<unsigned>(jobs);
    }
    if (const util::Json *j = doc->find("intra_jobs")) {
        if (!j->isNumber())
            return fail(error, "\"intra_jobs\" must be a number");
        req.spec.intraJobs = static_cast<unsigned>(j->asUint(0));
    }
    if (const util::Json *s = doc->find("sampling")) {
        if (!s->isObject())
            return fail(error, "\"sampling\" must be an object");
        if (const util::Json *w = s->find("window"))
            req.spec.sampling.window = w->asUint();
        if (const util::Json *st = s->find("stride"))
            req.spec.sampling.stride = st->asUint();
        if (const util::Json *wu = s->find("warmup"))
            req.spec.sampling.warmup = wu->asUint();
    }
    if (const util::Json *d = doc->find("checkpoint_dir")) {
        if (!d->isString())
            return fail(error, "\"checkpoint_dir\" must be a string");
        req.spec.checkpointDir = d->asString();
    }
    if (const util::Json *d = doc->find("manifest_dir")) {
        if (!d->isString())
            return fail(error, "\"manifest_dir\" must be a string");
        req.spec.manifestDir = d->asString();
    }
    return req;
}

std::optional<harness::SweepRequest>
toSweepRequest(const SweepSpec &spec, std::string *error)
{
    auto bail = [error](const std::string &message)
        -> std::optional<harness::SweepRequest> {
        if (error != nullptr)
            *error = message;
        return std::nullopt;
    };

    harness::SweepRequest req;
    const auto &known = workloads::paperBenchmarks();
    for (const auto &name : spec.workloads) {
        bool found = false;
        for (const auto &b : known)
            found = found || b.name == name;
        if (!found)
            return bail("unknown workload \"" + name + "\"");
        req.workloads.push_back(
            {name,
             [name] { return workloads::makeBenchmarkTrace(name); },
             [name](const trace::RecordSink &sink) {
                 workloads::streamBenchmarkTrace(name, sink);
             }});
    }
    for (const auto &key : spec.presets) {
        if (!core::presets().contains(key))
            return bail("unknown preset \"" + key + "\"");
        req.configs.push_back(core::presets().get(key));
    }
    const auto metric = metricFromName(spec.metric);
    if (!metric)
        return bail("unknown metric \"" + spec.metric + "\"");
    req.metric = *metric;
    req.engine = spec.engine;
    req.jobs = spec.jobs;
    req.intraJobs = spec.intraJobs;
    req.sampling = spec.sampling;
    req.checkpointDir = spec.checkpointDir;
    req.telemetry.manifestDir = spec.manifestDir;
    if (const auto err = req.validationError())
        return bail("invalid sweep: " + *err);
    return req;
}

std::string
errorResponse(const std::string &message)
{
    util::Json doc = util::Json::object();
    doc.set("type", "error");
    doc.set("error", message);
    return doc.dump(0);
}

std::string
acceptedResponse(std::uint64_t id, std::size_t queued)
{
    util::Json doc = util::Json::object();
    doc.set("type", "accepted");
    doc.set("id", id);
    doc.set("queued", static_cast<std::uint64_t>(queued));
    return doc.dump(0);
}

std::string
manifestResponse(const std::string &file, const std::string &document)
{
    util::Json doc = util::Json::object();
    doc.set("type", "manifest");
    doc.set("file", file);
    doc.set("document", document);
    return doc.dump(0);
}

std::string
doneResponse(std::uint64_t id, std::size_t cells,
             const std::string &table)
{
    util::Json doc = util::Json::object();
    doc.set("type", "done");
    doc.set("id", id);
    doc.set("cells", static_cast<std::uint64_t>(cells));
    doc.set("table", table);
    return doc.dump(0);
}

} // namespace service
} // namespace sac
