#include "src/service/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/util/logging.hh"

namespace sac {
namespace service {

SweepServer::SweepServer(ServerOptions options)
    : options_(std::move(options))
{
}

SweepServer::~SweepServer()
{
    drain();
}

bool
SweepServer::start()
{
    SAC_ASSERT(!started_, "SweepServer::start() called twice");
    sockaddr_un addr{};
    if (options_.socketPath.empty() ||
        options_.socketPath.size() >= sizeof(addr.sun_path)) {
        std::cerr << "sacd: invalid socket path '"
                  << options_.socketPath << "'\n";
        return false;
    }
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        std::cerr << "sacd: socket: " << std::strerror(errno) << "\n";
        return false;
    }
    ::unlink(options_.socketPath.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        std::cerr << "sacd: bind/listen '" << options_.socketPath
                  << "': " << std::strerror(errno) << "\n";
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    const unsigned workers =
        options_.workers > 0 ? options_.workers
                             : util::ThreadPool::defaultThreads();
    pool_ = std::make_unique<util::ThreadPool>(workers);
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
SweepServer::acceptLoop()
{
    std::vector<std::thread> handlers;
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 50);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handlers.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
    for (auto &t : handlers)
        t.join();
}

void
SweepServer::handleConnection(int fd)
{
    std::string payload;
    if (!readFrame(fd, payload)) {
        ::close(fd);
        return;
    }
    std::string error;
    const auto request = parseRequest(payload, &error);
    if (!request) {
        writeFrame(fd, errorResponse(error));
        ::close(fd);
        return;
    }
    switch (request->verb) {
    case Verb::Status:
        writeFrame(fd, statusResponse());
        ::close(fd);
        return;
    case Verb::Metrics: {
        util::Json doc = util::Json::object();
        doc.set("type", "metrics");
        doc.set("prometheus", prometheusText());
        writeFrame(fd, doc.dump(0));
        ::close(fd);
        return;
    }
    case Verb::Shutdown: {
        util::Json doc = util::Json::object();
        doc.set("type", "shutdown");
        doc.set("draining", true);
        writeFrame(fd, doc.dump(0));
        ::close(fd);
        {
            // Lock so a concurrent waitForShutdown() between its
            // predicate check and its sleep cannot miss the notify.
            std::lock_guard<std::mutex> lock(mutex_);
            shutdownRequested_.store(true);
        }
        shutdown_.notify_all();
        return;
    }
    case Verb::Submit:
        handleSubmit(fd, request->spec,
                     std::make_shared<std::mutex>());
        return;
    }
}

void
SweepServer::handleSubmit(int fd, const SweepSpec &spec,
                          std::shared_ptr<std::mutex> write_mutex)
{
    std::string error;
    auto sweep = toSweepRequest(spec, &error);
    if (!sweep) {
        writeFrame(fd, errorResponse(error));
        ::close(fd);
        return;
    }
    // Inner sweep parallelism rides the executor's thread, so cap the
    // per-request fan-out at the machine instead of trusting clients.
    sweep->jobs = std::min(sweep->jobs,
                           util::ThreadPool::defaultThreads());
    // 0 stays 0 (auto). Explicit values tolerate modest
    // oversubscription — replay correctness never depends on the
    // worker count, and differential runs on small hosts deliberately
    // ask for more workers than cores — but a wire-supplied thread
    // count must still be bounded.
    sweep->intraJobs = std::min(
        sweep->intraJobs,
        std::max(8u, util::ThreadPool::defaultThreads()));

    Job job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_.load() || pending_ >= options_.maxQueue) {
            ++rejected_;
            writeFrame(fd, errorResponse("queue full"));
            ::close(fd);
            return;
        }
        job.id = nextId_++;
        job.priority = spec.priority;
        job.request = std::move(*sweep);
        job.fd = fd;
        job.writeMutex = std::move(write_mutex);
        ++accepted_;
        ++pending_;
        writeFrame(fd, acceptedResponse(job.id, queue_.size()));
        queue_.push_back(std::move(job));
    }
    pool_->submit([this] { runOneJob(); });
}

void
SweepServer::runOneJob()
{
    Job job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SAC_ASSERT(!queue_.empty(),
                   "sweep executor woke with an empty queue");
        // Best job now: highest priority, oldest within a priority.
        auto best = queue_.begin();
        for (auto it = std::next(queue_.begin()); it != queue_.end();
             ++it) {
            if (it->priority > best->priority ||
                (it->priority == best->priority &&
                 it->id < best->id))
                best = it;
        }
        job = std::move(*best);
        queue_.erase(best);
        ++active_;
    }

    // Stream each manifest to the client as its cell finishes. A
    // client that vanished mid-sweep just stops receiving frames —
    // the sweep completes anyway (its cells stay latched for peers).
    auto client_alive = std::make_shared<std::atomic<bool>>(true);
    job.request.telemetry.sink =
        [fd = job.fd, wm = job.writeMutex, client_alive](
            const std::string &file, const std::string &document) {
            if (!client_alive->load())
                return;
            std::lock_guard<std::mutex> lock(*wm);
            if (!writeFrame(fd, manifestResponse(file, document)))
                client_alive->store(false);
        };

    const harness::SweepResult result = runner_.run(job.request);
    {
        std::lock_guard<std::mutex> lock(*job.writeMutex);
        if (client_alive->load())
            writeFrame(job.fd,
                       doneResponse(job.id, result.cells.size(),
                                    result.table.toString()));
    }
    ::close(job.fd);

    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    --pending_;
    ++completed_;
    idle_.notify_all();
}

void
SweepServer::drain()
{
    if (!started_ || drained_)
        return;
    drained_ = true;
    stopping_.store(true);
    // The accept loop notices stopping_ within one poll tick, joins
    // its connection handlers, and returns; admitted sweeps keep
    // their pool workers until the queue is empty.
    acceptThread_.join();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return pending_ == 0; });
    }
    pool_->wait();
    pool_.reset();
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(options_.socketPath.c_str());
}

bool
SweepServer::waitForShutdown(int timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto requested = [this] {
        return shutdownRequested_.load();
    };
    if (timeout_ms > 0) {
        shutdown_.wait_for(lock,
                           std::chrono::milliseconds(timeout_ms),
                           requested);
    } else {
        shutdown_.wait(lock, requested);
    }
    return shutdownRequested_.load();
}

std::string
SweepServer::statusResponse() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    util::Json doc = util::Json::object();
    doc.set("type", "status");
    doc.set("accepted", accepted_);
    doc.set("rejected", rejected_);
    doc.set("completed", completed_);
    doc.set("queued",
            static_cast<std::uint64_t>(pending_ - active_));
    doc.set("active", static_cast<std::uint64_t>(active_));
    doc.set("draining", stopping_.load());
    return doc.dump(0);
}

telemetry::CounterRegistry
SweepServer::metricsSnapshot() const
{
    telemetry::CounterRegistry reg;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        reg.counter("request.accepted",
                    "submits admitted to the sweep queue") +=
            accepted_;
        reg.counter("request.rejected",
                    "submits refused by admission control") +=
            rejected_;
        reg.counter("request.completed", "sweeps finished") +=
            completed_;
        reg.counter("request.queued",
                    "sweeps admitted but not yet executing") +=
            pending_ - active_;
        reg.counter("request.active", "sweeps executing right now") +=
            active_;
    }
    for (const char *name :
         {"stack.pass.traversals", "stack.pass.records",
          "stack.pass.cells", "stack.pass.cached_cells",
          "stack.pass.fallback_cells"}) {
        reg.counter(name, "shared runner stack-engine counter") +=
            runner_.stackCounter(name);
    }
    for (const char *name : {"checkpoint.hits", "checkpoint.misses",
                             "checkpoint.stale", "checkpoint.bytes"}) {
        reg.counter(name, "shared runner checkpoint counter") +=
            runner_.checkpointCounter(name);
    }
    for (const char *name : {"parallel.windows", "parallel.shards",
                             "parallel.merge_ns"}) {
        reg.counter(name,
                    "shared runner intra-trace parallelism counter") +=
            runner_.parallelCounter(name);
    }
    return reg;
}

std::string
SweepServer::prometheusText() const
{
    return metricsSnapshot().toPrometheus("sacd");
}

} // namespace service
} // namespace sac
