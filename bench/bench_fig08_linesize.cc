/**
 * @file
 * Figure 8 reproduction: influence of line size. 8a — AMAT of the
 * software-assisted cache for virtual line sizes of 32..256 bytes;
 * 8b — AMAT of standard caches with physical lines of 32..256 bytes
 * against the full mechanism.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 8", "Virtual (8a) vs physical (8b) "
                                   "line size, AMAT");

    std::cout << "\nFigure 8a: influence of the virtual line size "
                 "(AMAT)\n\n";
    bench::suiteTable({core::softWithVirtualLineSize(32), core::softWithVirtualLineSize(64),
                       core::softWithVirtualLineSize(128), core::softWithVirtualLineSize(256)},
                      bench::amatOf)
        .print(std::cout);

    std::cout << "\nFigure 8b: influence of the physical line size "
                 "(AMAT)\n\n";
    bench::suiteTable({core::standardWithLineSize(32), core::standardWithLineSize(64),
                       core::standardWithLineSize(128),
                       core::standardWithLineSize(256), core::presets().get("soft")},
                      bench::amatOf)
        .print(std::cout);

    std::cout << "\nPaper shape check: large virtual lines are far "
                 "better tolerated than large\nphysical lines; a "
                 "64-byte virtual line usually beats a 64-byte (or "
                 "larger)\nphysical line in an 8-KB cache.\n";
    return 0;
}
