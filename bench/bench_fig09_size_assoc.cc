/**
 * @file
 * Figure 9 reproduction: influence of cache size and associativity.
 * 9a — percentage of misses removed by software assistance for 8-KB
 * (32-byte lines) through 64-KB (64-byte lines) caches; 9b — AMAT of
 * 2-way caches with and without (simplified) software control.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 9",
                       "Cache size (9a) and set-associativity (9b)");

    struct SizePoint
    {
        std::uint64_t bytes;
        std::uint32_t line;
        const char *label;
    };
    const SizePoint points[] = {
        {8 * 1024, 32, "Cs=8k,Ls=32"},
        {16 * 1024, 64, "Cs=16k,Ls=64"},
        {32 * 1024, 64, "Cs=32k,Ls=64"},
        {64 * 1024, 64, "Cs=64k,Ls=64"},
    };

    std::cout << "\nFigure 9a: % of misses removed by software "
                 "control\n\n";
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &pt : points)
        headers.push_back(pt.label);
    util::Table table(std::move(headers));
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto row = table.addRow();
        table.set(row, 0, b.name);
        for (std::size_t c = 0; c < std::size(points); ++c) {
            const auto stand = bench::cachedRun(
                b.name, core::scaledConfig(core::presets().get("standard"),
                                           points[c].bytes,
                                           points[c].line));
            const auto soft = bench::cachedRun(
                b.name, core::scaledConfig(core::presets().get("soft"),
                                           points[c].bytes,
                                           points[c].line));
            const double removed =
                stand.misses == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(soft.misses) /
                                         static_cast<double>(
                                             stand.misses));
            table.setNumber(row, c + 1, removed, 1);
        }
    }
    table.print(std::cout);

    std::cout << "\nFigure 9 lattice: standard-cache miss ratio, "
                 "size x associativity\n(served by one stack-distance "
                 "pass per benchmark, DESIGN.md §11)\n\n";
    std::vector<core::Config> lattice;
    for (const std::uint64_t kb : {4, 8, 16, 32}) {
        for (const std::uint32_t ways : {1u, 2u}) {
            core::Config cfg = core::scaledConfig(
                core::presets().get("standard"), kb * 1024, 32);
            cfg.assoc = ways;
            cfg.name += "/" + std::to_string(ways) + "w";
            cfg.validate();
            lattice.push_back(std::move(cfg));
        }
    }
    bench::suiteTable(lattice, harness::missRatioMetric())
        .print(std::cout);

    std::cout << "\nFigure 9b: software control for set-associative "
                 "caches (AMAT)\n\n";
    bench::suiteTable(
        bench::presetConfigs({"2way", "2way-victim", "soft-2way",
                              "simplified-soft-2way"}),
        bench::amatOf)
        .print(std::cout);

    std::cout << "\nPaper shape check: larger caches still benefit, "
                 "but less (working sets fit);\nvictim caching is "
                 "mostly redundant with 2-way associativity; the "
                 "cheap\nreplacement-priority variant performs close to "
                 "the full 2-way mechanism.\n";
    return 0;
}
