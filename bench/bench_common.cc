#include "bench_common.hh"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <set>
#include <utility>

#include "src/harness/experiment.hh"
#include "src/harness/sweep.hh"
#include "src/util/thread_pool.hh"

namespace sac {
namespace bench {

namespace {

harness::BenchOptions &
optionsSetting()
{
    // Benches that skip initBench() still get a sensible job count.
    static harness::BenchOptions value = [] {
        harness::BenchOptions o;
        o.jobs = util::ThreadPool::defaultThreads();
        return o;
    }();
    return value;
}

/** Cells already written this process, keyed (workload, cacheKey). */
std::set<std::pair<std::string, std::string>> &
emittedCells()
{
    static std::set<std::pair<std::string, std::string>> cells;
    return cells;
}

harness::Runner &
runner()
{
    static harness::Runner instance;
    return instance;
}

harness::Workload
workloadOf(const std::string &name)
{
    const std::uint64_t seed = options().traceSeed;
    return {name,
            [name, seed] {
                return workloads::makeBenchmarkTrace(name, seed);
            },
            [name, seed](const trace::RecordSink &sink) {
                workloads::streamBenchmarkTrace(name, sink, seed);
            }};
}

} // namespace

void
initBench(int argc, const char *const *argv)
{
    optionsSetting() = harness::BenchOptions::parse(argc, argv);
}

const harness::BenchOptions &
options()
{
    return optionsSetting();
}

unsigned
jobs()
{
    return options().jobs;
}

const std::string &
emitJsonDir()
{
    return options().emitJsonDir;
}

namespace {

bool
isRegisteredBenchmark(const std::string &name)
{
    for (const auto &b : workloads::paperBenchmarks()) {
        if (b.name == name)
            return true;
    }
    return false;
}

void
writeCell(const std::string &workload, const core::Config &cfg,
          const trace::Trace *t, const sim::RunStats &stats,
          double sim_seconds)
{
    const std::string &dir = emitJsonDir();
    if (dir.empty())
        return;
    if (!emittedCells().emplace(workload, cfg.cacheKey()).second)
        return;
    const harness::BenchOptions &o = options();
    const bool instrument = o.interval > 0 || o.heatmap;
    // Suite sweeps emit by workload name only; registered benchmarks
    // resolve through the trace cache so they get instrumented too.
    if (instrument && t == nullptr && isRegisteredBenchmark(workload))
        t = &benchmarkTrace(workload);
    std::string path;
    if (instrument && t != nullptr) {
        const harness::InstrumentOptions io{o.interval, o.heatmap};
        path = harness::writeInstrumentedCellManifest(
            dir, workload, cfg, *t, stats, io, sim_seconds);
    } else {
        path = harness::writeCellManifest(dir, workload, cfg, stats,
                                          sim_seconds);
    }
    if (path.empty()) {
        std::cerr << "failed to write run manifest under '" << dir
                  << "'\n";
        std::exit(1);
    }
}

} // namespace

void
emitCellManifest(const std::string &workload, const core::Config &cfg,
                 const sim::RunStats &stats, double sim_seconds)
{
    writeCell(workload, cfg, nullptr, stats, sim_seconds);
}

void
emitCellManifest(const std::string &workload, const core::Config &cfg,
                 const trace::Trace &t, const sim::RunStats &stats,
                 double sim_seconds)
{
    writeCell(workload, cfg, &t, stats, sim_seconds);
}

sim::RunStats
runCell(const trace::Trace &t, const core::Config &cfg,
        const std::string &workload)
{
    const auto t0 = std::chrono::steady_clock::now();
    const sim::RunStats stats = core::simulateTrace(t, cfg);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const std::string &name = workload.empty() ? t.name() : workload;
    emitCellManifest(name, cfg, t, stats, seconds);
    return stats;
}

double
amatOf(const sim::RunStats &s)
{
    return s.amat();
}

double
missRatioOf(const sim::RunStats &s)
{
    return s.missRatio();
}

double
wordsOf(const sim::RunStats &s)
{
    return s.wordsFetchedPerAccess();
}

const trace::Trace &
benchmarkTrace(const std::string &name)
{
    return runner().traceOf(workloadOf(name));
}

const sim::RunStats &
cachedRun(const std::string &bench_name, const core::Config &cfg)
{
    const auto &cell = runner().cell(workloadOf(bench_name), cfg);
    emitCellManifest(bench_name, cfg, cell.stats, cell.simSeconds);
    return cell.stats;
}

std::vector<core::Config>
presetConfigs(const std::vector<std::string> &keys)
{
    std::vector<core::Config> out;
    out.reserve(keys.size());
    for (const auto &key : keys)
        out.push_back(core::presets().get(key));
    return out;
}

util::Table
suiteTable(const std::vector<core::Config> &configs,
           const Metric &metric, int decimals)
{
    return suiteTable(configs,
                      harness::Metric{"metric", metric, decimals});
}

util::Table
suiteTable(const std::vector<core::Config> &configs,
           const harness::Metric &m)
{
    // Thin adapter: one SweepRequest expresses the whole bench
    // command line; Runner::run() routes, sweeps, and emits the
    // manifests (engine tags, suite totals, instrumentation).
    const auto workloads = harness::paperWorkloads();
    runner().warmup(workloads);

    harness::SweepRequest request = harness::SweepRequest::
        fromBenchOptions(options(), workloads, configs, m);
    request.telemetry.dedup = &emittedCells();
    const harness::SweepResult result = runner().run(request);
    if (result.manifestFailures > 0) {
        std::cerr << "failed to write run manifest under '"
                  << emitJsonDir() << "'\n";
        std::exit(1);
    }
    return result.table;
}

void
printBanner(const std::string &figure, const std::string &what)
{
    std::cout << "==========================================================\n"
              << "Reproduction of " << figure
              << " — Software Assistance for Data Caches (HPCA 1995)\n"
              << what << "\n"
              << "==========================================================\n";
}

} // namespace bench
} // namespace sac
