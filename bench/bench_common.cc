#include "bench_common.hh"

#include <iostream>

#include "src/harness/experiment.hh"

namespace sac {
namespace bench {

namespace {

harness::Runner &
runner()
{
    static harness::Runner instance;
    return instance;
}

harness::Workload
workloadOf(const std::string &name)
{
    return {name,
            [name] { return workloads::makeBenchmarkTrace(name); }};
}

} // namespace

double
amatOf(const sim::RunStats &s)
{
    return s.amat();
}

double
missRatioOf(const sim::RunStats &s)
{
    return s.missRatio();
}

double
wordsOf(const sim::RunStats &s)
{
    return s.wordsFetchedPerAccess();
}

const trace::Trace &
benchmarkTrace(const std::string &name)
{
    return runner().traceOf(workloadOf(name));
}

const sim::RunStats &
cachedRun(const std::string &bench_name, const core::Config &cfg)
{
    return runner().run(workloadOf(bench_name), cfg);
}

util::Table
suiteTable(const std::vector<core::Config> &configs,
           const Metric &metric, int decimals)
{
    harness::Metric m{"metric", metric, decimals};
    return runner().matrix(harness::paperWorkloads(), configs, m);
}

void
printBanner(const std::string &figure, const std::string &what)
{
    std::cout << "==========================================================\n"
              << "Reproduction of " << figure
              << " — Software Assistance for Data Caches (HPCA 1995)\n"
              << what << "\n"
              << "==========================================================\n";
}

} // namespace bench
} // namespace sac
