#include "bench_common.hh"

#include <cstdlib>
#include <iostream>

#include "src/harness/experiment.hh"
#include "src/util/args.hh"
#include "src/util/thread_pool.hh"

namespace sac {
namespace bench {

namespace {

unsigned &
jobsSetting()
{
    static unsigned value = util::ThreadPool::defaultThreads();
    return value;
}

harness::Runner &
runner()
{
    static harness::Runner instance;
    return instance;
}

harness::Workload
workloadOf(const std::string &name)
{
    return {name,
            [name] { return workloads::makeBenchmarkTrace(name); }};
}

} // namespace

void
initBench(int argc, const char *const *argv)
{
    util::Args args;
    if (!args.parse(argc, argv)) {
        std::cerr << "bad command line: " << args.error() << "\n";
        std::exit(2);
    }
    const auto jobs_arg = args.getInt("jobs", 0);
    if (!jobs_arg || *jobs_arg < 0) {
        std::cerr << "--jobs expects a non-negative integer\n";
        std::exit(2);
    }
    if (*jobs_arg > 0)
        jobsSetting() = static_cast<unsigned>(*jobs_arg);
}

unsigned
jobs()
{
    return jobsSetting();
}

double
amatOf(const sim::RunStats &s)
{
    return s.amat();
}

double
missRatioOf(const sim::RunStats &s)
{
    return s.missRatio();
}

double
wordsOf(const sim::RunStats &s)
{
    return s.wordsFetchedPerAccess();
}

const trace::Trace &
benchmarkTrace(const std::string &name)
{
    return runner().traceOf(workloadOf(name));
}

const sim::RunStats &
cachedRun(const std::string &bench_name, const core::Config &cfg)
{
    return runner().run(workloadOf(bench_name), cfg);
}

util::Table
suiteTable(const std::vector<core::Config> &configs,
           const Metric &metric, int decimals)
{
    harness::Metric m{"metric", metric, decimals};
    return runner().runMatrix(harness::paperWorkloads(), configs, m,
                              jobs());
}

void
printBanner(const std::string &figure, const std::string &what)
{
    std::cout << "==========================================================\n"
              << "Reproduction of " << figure
              << " — Software Assistance for Data Caches (HPCA 1995)\n"
              << what << "\n"
              << "==========================================================\n";
}

} // namespace bench
} // namespace sac
