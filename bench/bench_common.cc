#include "bench_common.hh"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <set>
#include <utility>

#include "src/harness/experiment.hh"
#include "src/util/thread_pool.hh"

namespace sac {
namespace bench {

namespace {

harness::BenchOptions &
optionsSetting()
{
    // Benches that skip initBench() still get a sensible job count.
    static harness::BenchOptions value = [] {
        harness::BenchOptions o;
        o.jobs = util::ThreadPool::defaultThreads();
        return o;
    }();
    return value;
}

/** Cells already written this process, keyed (workload, cacheKey). */
std::set<std::pair<std::string, std::string>> &
emittedCells()
{
    static std::set<std::pair<std::string, std::string>> cells;
    return cells;
}

harness::Runner &
runner()
{
    static harness::Runner instance;
    return instance;
}

harness::Workload
workloadOf(const std::string &name)
{
    const std::uint64_t seed = options().traceSeed;
    return {name,
            [name, seed] {
                return workloads::makeBenchmarkTrace(name, seed);
            },
            [name, seed](const trace::RecordSink &sink) {
                workloads::streamBenchmarkTrace(name, sink, seed);
            }};
}

} // namespace

void
initBench(int argc, const char *const *argv)
{
    optionsSetting() = harness::BenchOptions::parse(argc, argv);
}

const harness::BenchOptions &
options()
{
    return optionsSetting();
}

unsigned
jobs()
{
    return options().jobs;
}

const std::string &
emitJsonDir()
{
    return options().emitJsonDir;
}

namespace {

bool
isRegisteredBenchmark(const std::string &name)
{
    for (const auto &b : workloads::paperBenchmarks()) {
        if (b.name == name)
            return true;
    }
    return false;
}

void
writeCell(const std::string &workload, const core::Config &cfg,
          const trace::Trace *t, const sim::RunStats &stats,
          double sim_seconds)
{
    const std::string &dir = emitJsonDir();
    if (dir.empty())
        return;
    if (!emittedCells().emplace(workload, cfg.cacheKey()).second)
        return;
    const harness::BenchOptions &o = options();
    const bool instrument = o.interval > 0 || o.heatmap;
    // Suite sweeps emit by workload name only; registered benchmarks
    // resolve through the trace cache so they get instrumented too.
    if (instrument && t == nullptr && isRegisteredBenchmark(workload))
        t = &benchmarkTrace(workload);
    std::string path;
    if (instrument && t != nullptr) {
        const harness::InstrumentOptions io{o.interval, o.heatmap};
        path = harness::writeInstrumentedCellManifest(
            dir, workload, cfg, *t, stats, io, sim_seconds);
    } else {
        path = harness::writeCellManifest(dir, workload, cfg, stats,
                                          sim_seconds);
    }
    if (path.empty()) {
        std::cerr << "failed to write run manifest under '" << dir
                  << "'\n";
        std::exit(1);
    }
}

} // namespace

void
emitCellManifest(const std::string &workload, const core::Config &cfg,
                 const sim::RunStats &stats, double sim_seconds)
{
    writeCell(workload, cfg, nullptr, stats, sim_seconds);
}

void
emitCellManifest(const std::string &workload, const core::Config &cfg,
                 const trace::Trace &t, const sim::RunStats &stats,
                 double sim_seconds)
{
    writeCell(workload, cfg, &t, stats, sim_seconds);
}

sim::RunStats
runCell(const trace::Trace &t, const core::Config &cfg,
        const std::string &workload)
{
    const auto t0 = std::chrono::steady_clock::now();
    const sim::RunStats stats = core::simulateTrace(t, cfg);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const std::string &name = workload.empty() ? t.name() : workload;
    emitCellManifest(name, cfg, t, stats, seconds);
    return stats;
}

double
amatOf(const sim::RunStats &s)
{
    return s.amat();
}

double
missRatioOf(const sim::RunStats &s)
{
    return s.missRatio();
}

double
wordsOf(const sim::RunStats &s)
{
    return s.wordsFetchedPerAccess();
}

const trace::Trace &
benchmarkTrace(const std::string &name)
{
    return runner().traceOf(workloadOf(name));
}

const sim::RunStats &
cachedRun(const std::string &bench_name, const core::Config &cfg)
{
    const auto &cell = runner().cell(workloadOf(bench_name), cfg);
    emitCellManifest(bench_name, cfg, cell.stats, cell.simSeconds);
    return cell.stats;
}

std::vector<core::Config>
presetConfigs(const std::vector<std::string> &keys)
{
    std::vector<core::Config> out;
    out.reserve(keys.size());
    for (const auto &key : keys)
        out.push_back(core::presets().get(key));
    return out;
}

util::Table
suiteTable(const std::vector<core::Config> &configs,
           const Metric &metric, int decimals)
{
    return suiteTable(configs,
                      harness::Metric{"metric", metric, decimals});
}

util::Table
suiteTable(const std::vector<core::Config> &configs,
           const harness::Metric &m)
{
    const auto workloads = harness::paperWorkloads();
    runner().warmup(workloads);

    if (options().sample) {
        const harness::BenchOptions &o = options();
        const auto cells = runner().runSampled(
            workloads, configs, o.sampling, jobs(), o.checkpointDir,
            o.checkpointRebuild);
        if (!emitJsonDir().empty()) {
            // Library-served cells carry a "checkpoint" block so a
            // reader can tell an instant re-sweep from a cold warm.
            util::Json ck = util::Json::object();
            if (!o.checkpointDir.empty()) {
                for (const char *key :
                     {"checkpoint.hits", "checkpoint.misses",
                      "checkpoint.stale", "checkpoint.bytes"}) {
                    // Strip the "checkpoint." prefix inside the block.
                    ck.set(std::string(key).substr(11),
                           runner().checkpointCounter(key));
                }
            }
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                for (std::size_t ci = 0; ci < configs.size(); ++ci) {
                    if (!emittedCells()
                             .emplace(workloads[wi].name,
                                      configs[ci].cacheKey())
                             .second) {
                        continue;
                    }
                    harness::writeSampledCellManifest(
                        emitJsonDir(), workloads[wi].name,
                        configs[ci], cells[wi][ci].report,
                        o.sampling, cells[wi][ci].simSeconds,
                        cells[wi][ci].fromCheckpoints ? &ck : nullptr);
                }
            }
        }
        return harness::sampledMatrix(workloads, configs, cells, m);
    }

    util::Table table =
        runner().runMatrix(workloads, configs, m, jobs());
    if (!emitJsonDir().empty()) {
        // One manifest per sweep cell, plus one aggregate per
        // configuration folding the whole suite with RunStats::+=.
        // Cells this sweep served from a single stack pass (mirror
        // runMatrix's partition rule) are recorded as such instead of
        // being exact-replayed just for the manifest; those configs
        // get no suite-total, whose timing aggregate a stack pass
        // cannot provide.
        std::size_t family_size = 0;
        if (harness::stackDerivableMetric(m)) {
            for (const auto &cfg : configs) {
                if (harness::stackFamilyEligible(cfg))
                    ++family_size;
            }
            if (family_size < 2)
                family_size = 0;
        }
        const auto sweep = runner().lastSweep();
        util::Json phases = runner().phases().toJson();
        phases.set("sweep_jobs",
                   static_cast<std::uint64_t>(sweep.jobs));
        phases.set("worker_utilization", sweep.utilization());
        for (const auto &cfg : configs) {
            sim::RunStats suite_total;
            double suite_seconds = 0.0;
            bool stack_served = false;
            for (const auto &w : workloads) {
                const sim::RunStats *stack =
                    family_size > 0 &&
                            harness::stackFamilyEligible(cfg)
                        ? runner().stackStats(w, cfg)
                        : nullptr;
                if (stack != nullptr) {
                    stack_served = true;
                    if (emittedCells()
                            .emplace(w.name, cfg.cacheKey())
                            .second &&
                        harness::writeStackCellManifest(
                            emitJsonDir(), w.name, cfg, *stack,
                            family_size)
                            .empty()) {
                        std::cerr << "failed to write run manifest "
                                     "under '"
                                  << emitJsonDir() << "'\n";
                        std::exit(1);
                    }
                    continue;
                }
                const auto &cell = runner().cell(w, cfg);
                emitCellManifest(w.name, cfg, cell.stats,
                                 cell.simSeconds);
                suite_total += cell.stats;
                suite_seconds += cell.simSeconds;
            }
            if (!stack_served &&
                emittedCells()
                    .emplace("suite-total", cfg.cacheKey())
                    .second) {
                harness::writeCellManifest(emitJsonDir(),
                                           "suite-total", cfg,
                                           suite_total, suite_seconds,
                                           &phases);
            }
        }
    }
    return table;
}

void
printBanner(const std::string &figure, const std::string &what)
{
    std::cout << "==========================================================\n"
              << "Reproduction of " << figure
              << " — Software Assistance for Data Caches (HPCA 1995)\n"
              << what << "\n"
              << "==========================================================\n";
}

} // namespace bench
} // namespace sac
