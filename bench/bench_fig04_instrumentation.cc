/**
 * @file
 * Figure 4 reproduction: software instrumentation. 4a — fraction of
 * trace entries per temporal/spatial tag category; 4b — the
 * issue-time distribution used when generating traces.
 */

#include <iostream>

#include "bench_common.hh"
#include "src/analysis/tag_stats.hh"
#include "src/trace/timing_model.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 4",
                       "Tag fractions (4a) and issue-time model (4b)");

    std::cout << "\nFigure 4a: fraction of trace entries per tag "
                 "category\n\n";
    util::Table table({"Benchmark", "NoTemp,NoSpat", "NoTemp,Spat",
                       "Temp,NoSpat", "Temp,Spat"});
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto s =
            analysis::computeTagStats(bench::benchmarkTrace(b.name));
        const auto row = table.addRow();
        table.set(row, 0, b.name);
        table.setNumber(row, 1, s.fractionNoTemporalNoSpatial(), 3);
        table.setNumber(row, 2, s.fractionNoTemporalSpatial(), 3);
        table.setNumber(row, 3, s.fractionTemporalNoSpatial(), 3);
        table.setNumber(row, 4, s.fractionTemporalSpatial(), 3);
    }
    table.print(std::cout);

    std::cout << "\nFigure 4b: time distribution of load/store "
                 "instructions (model input)\n\n";
    const auto dist = trace::TimingModel::figure4bDistribution();
    util::Table dt({"Interval (cycles)", "Fraction"});
    for (std::size_t i = 0; i < dist.size(); ++i) {
        const auto row = dt.addRow();
        dt.set(row, 0, std::to_string(dist.value(i)));
        dt.setNumber(row, 1, dist.probability(i), 3);
    }
    dt.print(std::cout);
    std::cout << "\nMean issue interval: " << dist.mean()
              << " cycles\n";

    std::cout << "\nPaper shape check: dusty-deck Perfect codes keep a "
                 "large untagged share\n(CALL-poisoned loops); DYF has "
                 "the highest temporal fraction; spatial tags\ndominate "
                 "in the streaming codes.\n";
    return 0;
}
