/**
 * @file
 * Robustness experiment for the paper's safety claim: "note that
 * software-assisted data caches perform better than standard caches
 * in any case, so software-assistance appears to be safe"
 * (Section 3.2). We stress the claim by stripping and corrupting the
 * software tags and checking whether the assisted cache can fall
 * below the standard baseline.
 */

#include <iostream>

#include "bench_common.hh"
#include "src/analysis/tag_transform.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Tag-robustness study",
                       "Soft. AMAT under stripped / corrupted tags "
                       "vs Stand.");

    std::cout << "\nAMAT of Soft. as the tag quality degrades "
                 "(flip fraction = share of static references whose "
                 "tags are inverted)\n\n";
    util::Table table({"Benchmark", "Stand.", "Soft.", "no temp",
                       "no spat", "no tags", "flip 10%", "flip 25%",
                       "flip 50%", "flip 100%"});
    std::size_t unsafe = 0;
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto &t = bench::benchmarkTrace(b.name);
        const double stand =
            bench::cachedRun(b.name, core::presets().get("standard")).amat();
        const auto soft_cfg = core::presets().get("soft");
        auto amat_of = [&](const trace::Trace &tr,
                           const std::string &variant) {
            return bench::runCell(tr, soft_cfg,
                                  b.name + "-" + variant)
                .amat();
        };
        const double variants[] = {
            amat_of(t, "tags"),
            amat_of(analysis::stripTemporalTags(t), "notemp"),
            amat_of(analysis::stripSpatialTags(t), "nospat"),
            amat_of(analysis::stripAllTags(t), "notags"),
            amat_of(analysis::corruptTags(t, 0.10), "flip10"),
            amat_of(analysis::corruptTags(t, 0.25), "flip25"),
            amat_of(analysis::corruptTags(t, 0.50), "flip50"),
            amat_of(analysis::corruptTags(t, 1.00), "flip100"),
        };
        const auto row = table.addRow();
        table.set(row, 0, b.name);
        table.setNumber(row, 1, stand);
        for (std::size_t i = 0; i < std::size(variants); ++i) {
            table.setNumber(row, i + 2, variants[i]);
            if (variants[i] > stand * 1.02)
                ++unsafe;
        }
    }
    table.print(std::cout);

    std::cout << "\nCells exceeding Stand. by more than 2%: " << unsafe
              << "\nWith all tags stripped, Soft. degenerates to a "
                 "victim cache and can only\nhelp; corrupted tags can "
                 "hurt by fetching useless virtual lines and\n"
                 "protecting dead data, which bounds the safety claim "
                 "to *correct* (even if\nincomplete) compiler "
                 "information.\n";
    return 0;
}
