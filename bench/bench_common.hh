/**
 * @file
 * Shared infrastructure for the figure-reproduction binaries: trace
 * caching (each benchmark is generated once per process), config x
 * benchmark result matrices, and uniform headers so EXPERIMENTS.md
 * can quote the output verbatim.
 */

#ifndef SAC_BENCH_BENCH_COMMON_HH
#define SAC_BENCH_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/harness/bench_options.hh"
#include "src/harness/experiment.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

namespace sac {
namespace bench {

/** A metric extracted from a simulation run. */
using Metric = std::function<double(const sim::RunStats &)>;

/**
 * Parse the shared bench command line; call first in every main().
 * Recognized flags (see harness::BenchOptions): `--jobs N` (worker
 * threads for matrix sweeps; default: all hardware threads, `--jobs
 * 1` forces the serial path), `--emit-json DIR` (write one telemetry
 * run manifest per sweep cell under DIR; see DESIGN.md §6),
 * `--preset NAME` (a core::presets() configuration), `--trace-seed
 * N` (timing seed of the generated traces), `--trace-chunk N`
 * (records per chunk in streamed replay), `--sample` with its
 * tuning flags `--sample-window/-stride/-warmup/-ci/-error` (estimate
 * suite tables with the windowed sampling engine; cells then read
 * "estimate ±half" — see DESIGN.md §10), `--interval N` and
 * `--heatmap` (time-resolved instrumentation of every manifest cell:
 * interval JSONL series and per-set heat profiles, rendered by
 * tools/sac_report.py — see DESIGN.md §13; requires --emit-json and
 * a -DSAC_INTERVAL=ON build), and `--trace-ring N` (EventTracer ring
 * capacity). Tables are byte-identical at any job count.
 */
void initBench(int argc, const char *const *argv);

/** All shared options configured by initBench() (or defaults). */
const harness::BenchOptions &options();

/** Worker-thread count configured by initBench() (or the default). */
unsigned jobs();

/** Manifest output directory of --emit-json; empty = no emission. */
const std::string &emitJsonDir();

/**
 * Write the run manifest of one sweep cell under emitJsonDir() (a
 * no-op without --emit-json; cells are deduplicated on (workload,
 * cacheKey) so repeated cached runs emit once).
 */
void emitCellManifest(const std::string &workload,
                      const core::Config &cfg,
                      const sim::RunStats &stats,
                      double sim_seconds = 0.0);

/**
 * Trace-aware overload: under --interval/--heatmap the cell is
 * re-replayed with the time-resolved instrumentation attached, so the
 * manifest gains its "profile" block and/or the sibling
 * `<stem>.intervals.jsonl` series (harness::
 * writeInstrumentedCellManifest). Without those flags, identical to
 * the plain overload. The no-trace overload resolves registered
 * benchmark workloads through the trace cache, so suite sweeps are
 * instrumented too.
 */
void emitCellManifest(const std::string &workload,
                      const core::Config &cfg, const trace::Trace &t,
                      const sim::RunStats &stats,
                      double sim_seconds = 0.0);

/**
 * Simulate @p t under @p cfg and emit the cell's manifest when
 * --emit-json is active: the hook for benches that build ad-hoc
 * traces instead of going through the registered suite. @p workload
 * names the manifest (falls back to the trace name).
 */
sim::RunStats runCell(const trace::Trace &t, const core::Config &cfg,
                      const std::string &workload = "");

/** The AMAT metric (the paper's main y-axis). */
double amatOf(const sim::RunStats &s);

/** The miss-ratio metric (Figure 7b). */
double missRatioOf(const sim::RunStats &s);

/** The memory-traffic metric in words per reference (Figure 7a). */
double wordsOf(const sim::RunStats &s);

/**
 * The trace of a registered paper benchmark, generated once per
 * process and cached.
 */
const trace::Trace &benchmarkTrace(const std::string &name);

/** Cached simulation: one run per (benchmark, config-name) pair. */
const sim::RunStats &cachedRun(const std::string &bench_name,
                               const core::Config &cfg);

/**
 * Resolve registry preset keys into configurations, in order — the
 * replacement for the per-bench hand-maintained config lists.
 */
std::vector<core::Config>
presetConfigs(const std::vector<std::string> &keys);

/**
 * Build the classic paper table: one row per benchmark of the main
 * suite, one column per configuration, cells = metric(config run).
 * Under --sample the cells are sampled estimates; an unnamed metric
 * (this overload) then renders without a confidence interval.
 */
util::Table suiteTable(const std::vector<core::Config> &configs,
                       const Metric &metric, int decimals = 3);

/**
 * Like the above, for a named harness metric (harness::amatMetric()
 * and friends). Under --sample the three sampled metrics (AMAT, miss
 * ratio, words/ref) render as "estimate ±half" at the configured
 * confidence.
 */
util::Table suiteTable(const std::vector<core::Config> &configs,
                       const harness::Metric &metric);

/** Print a figure banner with the paper reference. */
void printBanner(const std::string &figure, const std::string &what);

} // namespace bench
} // namespace sac

#endif // SAC_BENCH_BENCH_COMMON_HH
