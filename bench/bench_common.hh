/**
 * @file
 * Shared infrastructure for the figure-reproduction binaries: trace
 * caching (each benchmark is generated once per process), config x
 * benchmark result matrices, and uniform headers so EXPERIMENTS.md
 * can quote the output verbatim.
 */

#ifndef SAC_BENCH_BENCH_COMMON_HH
#define SAC_BENCH_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

namespace sac {
namespace bench {

/** A metric extracted from a simulation run. */
using Metric = std::function<double(const sim::RunStats &)>;

/**
 * Parse the shared bench command line; call first in every main().
 * Recognized flags: `--jobs N` (worker threads for matrix sweeps;
 * default: all hardware threads, `--jobs 1` forces the serial path).
 * Tables are byte-identical at any job count.
 */
void initBench(int argc, const char *const *argv);

/** Worker-thread count configured by initBench() (or the default). */
unsigned jobs();

/** The AMAT metric (the paper's main y-axis). */
double amatOf(const sim::RunStats &s);

/** The miss-ratio metric (Figure 7b). */
double missRatioOf(const sim::RunStats &s);

/** The memory-traffic metric in words per reference (Figure 7a). */
double wordsOf(const sim::RunStats &s);

/**
 * The trace of a registered paper benchmark, generated once per
 * process and cached.
 */
const trace::Trace &benchmarkTrace(const std::string &name);

/** Cached simulation: one run per (benchmark, config-name) pair. */
const sim::RunStats &cachedRun(const std::string &bench_name,
                               const core::Config &cfg);

/**
 * Build the classic paper table: one row per benchmark of the main
 * suite, one column per configuration, cells = metric(config run).
 */
util::Table suiteTable(const std::vector<core::Config> &configs,
                       const Metric &metric, int decimals = 3);

/** Print a figure banner with the paper reference. */
void printBanner(const std::string &figure, const std::string &what);

} // namespace bench
} // namespace sac

#endif // SAC_BENCH_BENCH_COMMON_HH
