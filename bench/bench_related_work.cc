/**
 * @file
 * Related-work comparison (paper Section 5): stream buffers (Jouppi
 * 1990) against the software-assisted design. The paper argues
 * stream buffers fail when a loop body carries more miss-inducing
 * streams than there are buffers; the benchmark suite (LIV's
 * multi-stream kernels, the stencil codes) exercises exactly that.
 */

#include <iostream>

#include "bench_common.hh"
#include "src/core/column_assoc.hh"
#include "src/core/stream_buffer.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Section 5 related work",
                       "Stream buffers vs software assistance (AMAT)");

    std::cout << '\n';
    util::Table table({"Benchmark", "Stand.", "StreamBufs x1",
                       "StreamBufs x4", "StreamBufs x8",
                       "Column-assoc", "Soft.",
                       "Soft.+Prefetching"});
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto &t = bench::benchmarkTrace(b.name);
        const auto row = table.addRow();
        table.set(row, 0, b.name);
        table.setNumber(
            row, 1, bench::cachedRun(b.name, core::presets().get("standard"))
                        .amat());
        std::size_t col = 2;
        for (const std::uint32_t n : {1u, 4u, 8u}) {
            core::StreamBufferConfig cfg;
            cfg.numBuffers = n;
            table.setNumber(row, col++,
                            core::simulateStreamBuffers(t, cfg).amat());
        }
        table.setNumber(
            row, 5,
            core::simulateColumnAssoc(t, core::ColumnAssocConfig{})
                .amat());
        table.setNumber(
            row, 6,
            bench::cachedRun(b.name, core::presets().get("soft")).amat());
        table.setNumber(
            row, 7,
            bench::cachedRun(b.name, core::presets().get("soft-prefetch"))
                .amat());
    }
    table.print(std::cout);

    std::cout << "\nPaper shape check: one stream buffer thrashes on "
                 "interleaved streams; four\nrecover most streaming "
                 "misses; column associativity removes conflict "
                 "misses\nbut not pollution; the software-assisted "
                 "design protects temporal data and\nneeds no buffer "
                 "per stream.\n";
    return 0;
}
