/**
 * @file
 * Figure 10 reproduction. 10a — AMAT of the most time-consuming
 * (kernel-only, fully instrumentable) Perfect Club subroutines under
 * Standard vs Soft; 10b — the AMAT gain (Standard minus Soft) as the
 * memory latency sweeps from 5 to 30 cycles.
 */

#include <iostream>

#include "bench_common.hh"
#include "src/util/stats.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 10",
                       "Kernel-only subroutines (10a) and memory "
                       "latency (10b)");

    std::cout << "\nFigure 10a: most time-consuming Perfect Club "
                 "subroutines (AMAT)\n\n";
    util::Table ta({"Subroutine", "Stand.", "Soft.", "Improvement"});
    for (const auto &b : workloads::kernelOnlyBenchmarks()) {
        const auto t = workloads::makeTaggedTrace(b.build());
        const std::string cell = b.name + "-kernel";
        const auto stand =
            bench::runCell(t, core::presets().get("standard"), cell);
        const auto soft = bench::runCell(t, core::presets().get("soft"), cell);
        const auto row = ta.addRow();
        ta.set(row, 0, b.name);
        ta.setNumber(row, 1, stand.amat());
        ta.setNumber(row, 2, soft.amat());
        ta.set(row, 3,
               util::formatPercent(1.0 - soft.amat() / stand.amat()));
    }
    ta.print(std::cout);

    std::cout << "\nFigure 10b: influence of memory latency "
                 "(AMAT Stand. - AMAT Soft.)\n\n";
    const Cycle latencies[] = {5, 10, 15, 20, 25, 30};
    std::vector<std::string> headers{"Benchmark"};
    for (const auto lat : latencies)
        headers.push_back("lat=" + std::to_string(lat));
    util::Table tb(std::move(headers));
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto row = tb.addRow();
        tb.set(row, 0, b.name);
        for (std::size_t c = 0; c < std::size(latencies); ++c) {
            auto stand = core::presets().get("standard");
            auto soft = core::presets().get("soft");
            stand.timing.memoryLatency = latencies[c];
            soft.timing.memoryLatency = latencies[c];
            stand.name += " lat" + std::to_string(latencies[c]);
            soft.name += " lat" + std::to_string(latencies[c]);
            const double gap =
                bench::cachedRun(b.name, stand).amat() -
                bench::cachedRun(b.name, soft).amat();
            tb.setNumber(row, c + 1, gap, 3);
        }
    }
    tb.print(std::cout);

    std::cout << "\nPaper shape check: fully instrumented kernels gain "
                 "clearly more than the\nCALL-poisoned full codes; the "
                 "gain grows very regularly with memory latency\nand is "
                 "small below ~10 cycles.\n";
    return 0;
}
