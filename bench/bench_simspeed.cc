/**
 * @file
 * Simulator throughput benchmarks (google-benchmark): trace
 * generation speed, simulation speed per configuration, the
 * feature-specialized fast path against the forced-general path, and
 * the streaming engine against materialize-then-replay. These are
 * engineering benchmarks of the reproduction itself, not paper
 * figures.
 *
 * The perf leg of tools/check.sh runs this binary with a JSON
 * reporter and diffs items_per_second against the committed
 * BENCH_simspeed.json baseline (tools/perf_compare.py).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/check/auditor.hh"
#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/harness/bench_options.hh"
#include "src/harness/experiment.hh"
#include "src/sim/sampling.hh"
#include "src/sim/stack_engine.hh"
#include "src/telemetry/interval.hh"
#include "src/telemetry/set_profile.hh"
#include "src/trace/trace_source.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;
using core::DispatchMode;

const trace::Trace &
mvTrace()
{
    static const trace::Trace t =
        workloads::makeTaggedTrace(workloads::buildMv(200));
    return t;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const auto t = workloads::makeTaggedTrace(
            workloads::buildMv(100), seed++);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * (100 * 100 * 2 + 100 * 2)));
}
BENCHMARK(BM_TraceGeneration);

void
BM_LocalityAnalysis(benchmark::State &state)
{
    for (auto _ : state) {
        auto p = workloads::buildLiv(workloads::Scale{0.1});
        p.finalize();
        const auto r = locality::analyze(p);
        benchmark::DoNotOptimize(r.tags.size());
    }
}
BENCHMARK(BM_LocalityAnalysis);

void
simulateConfig(benchmark::State &state, const core::Config &cfg,
               DispatchMode dispatch = DispatchMode::Auto)
{
    const auto &t = mvTrace();
    core::SoftwareAssistedCache probe(cfg, dispatch);
    state.SetLabel(toString(probe.featureSet()));
    for (auto _ : state) {
        const auto s = core::simulateTrace(t, cfg, dispatch);
        benchmark::DoNotOptimize(s.totalAccessCycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * t.size()));
}

// Fast-path / general-path pairs: the same configuration replayed
// through the auto-selected specialized access path and through
// dispatch forced to the fully-general path (the engine of PR 3).
// perf_compare.py asserts on the within-run ratio of each pair.

void
BM_SimulateStandard(benchmark::State &state)
{
    simulateConfig(state, core::presets().get("standard"));
}
BENCHMARK(BM_SimulateStandard);

void
BM_SimulateStandardGeneral(benchmark::State &state)
{
    simulateConfig(state, core::presets().get("standard"),
                   DispatchMode::General);
}
BENCHMARK(BM_SimulateStandardGeneral);

void
BM_SimulateSoft(benchmark::State &state)
{
    simulateConfig(state, core::presets().get("soft"));
}
BENCHMARK(BM_SimulateSoft);

void
BM_SimulateSoftGeneral(benchmark::State &state)
{
    simulateConfig(state, core::presets().get("soft"),
                   DispatchMode::General);
}
BENCHMARK(BM_SimulateSoftGeneral);

void
BM_SimulateSoftPrefetch(benchmark::State &state)
{
    simulateConfig(state, core::presets().get("soft-prefetch"));
}
BENCHMARK(BM_SimulateSoftPrefetch);

void
BM_SimulateSoftPrefetchGeneral(benchmark::State &state)
{
    simulateConfig(state, core::presets().get("soft-prefetch"),
                   DispatchMode::General);
}
BENCHMARK(BM_SimulateSoftPrefetchGeneral);

/**
 * Same workload as BM_SimulateSoft but with a check::Auditor
 * attached. With SAC_AUDIT=OFF the hook is compiled out and this must
 * time identically to BM_SimulateSoft; with SAC_AUDIT=ON it measures
 * the full per-access invariant sweep.
 */
void
BM_SimulateSoftAudited(benchmark::State &state)
{
    const auto &t = mvTrace();
    const core::Config cfg = core::presets().get("soft");
    for (auto _ : state) {
        core::SoftwareAssistedCache sim(cfg);
        check::Auditor auditor(check::Auditor::OnViolation::Panic);
        sim.attachAuditor(&auditor);
        sim.run(t);
        benchmark::DoNotOptimize(sim.stats().totalAccessCycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * t.size()));
    state.SetLabel(check::Auditor::hooksCompiledIn()
                       ? "audit-on"
                       : "audit-compiled-out");
}
BENCHMARK(BM_SimulateSoftAudited);

/**
 * Same workload as BM_SimulateSoft but with an IntervalRecorder and a
 * SetProfiler attached. With SAC_INTERVAL=OFF both hooks are compiled
 * out and this must time identically to BM_SimulateSoft (the <=1%
 * floor in perf_compare.py); with SAC_INTERVAL=ON it measures the
 * per-access countdown plus the per-set counter updates.
 */
void
BM_SimulateSoftInterval(benchmark::State &state)
{
    const auto &t = mvTrace();
    const core::Config cfg = core::presets().get("soft");
    for (auto _ : state) {
        core::SoftwareAssistedCache sim(cfg);
        telemetry::IntervalRecorder recorder(10000);
        telemetry::SetProfiler profiler(sim.mainArray().numSets());
        sim.attachIntervalRecorder(&recorder);
        sim.attachSetProfiler(&profiler);
        sim.run(t);
        benchmark::DoNotOptimize(sim.stats().totalAccessCycles);
        benchmark::DoNotOptimize(profiler.totalMisses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * t.size()));
    state.SetLabel(
        core::SoftwareAssistedCache::intervalHooksCompiledIn()
            ? "interval-on"
            : "interval-compiled-out");
}
BENCHMARK(BM_SimulateSoftInterval);

/**
 * Functional-warming pair: the same trace and configuration as
 * BM_SimulateSoft, replayed in StatsMode::Warming, where the stats
 * counters, miss classifier, tracer and audit hooks are compiled out
 * and only architectural state advances. perf_compare.py asserts the
 * warming path runs at least 2x the detailed path.
 */
void
BM_SimulateSoftWarming(benchmark::State &state)
{
    const auto &t = mvTrace();
    const core::Config cfg = core::presets().get("soft");
    for (auto _ : state) {
        core::SoftwareAssistedCache sim(cfg);
        sim.runWarming(t.data(), t.size());
        benchmark::DoNotOptimize(sim.procReadyAt());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_SimulateSoftWarming);

void
BM_SimulateNoClassifier(benchmark::State &state)
{
    auto cfg = core::presets().get("soft");
    cfg.classifyMisses = false;
    simulateConfig(state, cfg);
}
BENCHMARK(BM_SimulateNoClassifier);

// Streaming vs. materialized: end-to-end "generate the MV trace and
// replay it under Soft." — first as the classic materialize-then-
// simulate sequence, then through the streaming engine, where
// generation runs on a producer thread and overlaps simulation while
// memory stays bounded by the chunk queue.

void
BM_GenerateThenSimulateMaterialized(benchmark::State &state)
{
    const core::Config cfg = core::presets().get("soft");
    std::int64_t records = 0;
    for (auto _ : state) {
        const auto t = workloads::makeBenchmarkTrace("MV");
        const auto s = core::simulateTrace(t, cfg);
        benchmark::DoNotOptimize(s.totalAccessCycles);
        records = static_cast<std::int64_t>(t.size());
    }
    state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_GenerateThenSimulateMaterialized)->UseRealTime();

void
BM_GenerateThenSimulateStreamed(benchmark::State &state)
{
    const core::Config cfg = core::presets().get("soft");
    std::int64_t records = 0;
    for (auto _ : state) {
        const auto src = workloads::benchmarkTraceSource("MV");
        const auto s = core::simulateSource(*src, cfg);
        benchmark::DoNotOptimize(s.totalAccessCycles);
        records = static_cast<std::int64_t>(s.accesses);
    }
    state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_GenerateThenSimulateStreamed)->UseRealTime();

/** In-memory chunked replay: the streaming loop's pure overhead. */
void
BM_ReplayStreamedMemory(benchmark::State &state)
{
    const core::Config cfg = core::presets().get("soft");
    const auto &t = mvTrace();
    for (auto _ : state) {
        trace::MemoryTraceSource src(t);
        const auto s = core::simulateSource(src, cfg);
        benchmark::DoNotOptimize(s.totalAccessCycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_ReplayStreamedMemory);

/**
 * Full-matrix sweep through harness::Runner::runMatrix at a given
 * worker count (Arg). Traces are pre-generated so the benchmark
 * isolates the sweep executor itself; a fresh Runner per iteration
 * keeps every cell uncached.
 */
const std::vector<trace::Trace> &
sweepTraces()
{
    static const std::vector<trace::Trace> traces = [] {
        std::vector<trace::Trace> out;
        for (int i = 0; i < 4; ++i) {
            auto t = workloads::makeTaggedTrace(
                workloads::buildMv(180), 0x7ac3ull + i);
            t.setName("MV" + std::to_string(i));
            out.push_back(std::move(t));
        }
        return out;
    }();
    return traces;
}

const std::vector<core::Config> &
sweepConfigs()
{
    static const std::vector<core::Config> cfgs = {
        core::presets().get("standard"),
        core::presets().get("soft-temporal"),
        core::presets().get("soft-spatial"),
        core::presets().get("soft")};
    return cfgs;
}

void
BM_MatrixSweep(benchmark::State &state)
{
    const auto jobs = static_cast<unsigned>(state.range(0));
    const auto &traces = sweepTraces();
    std::vector<harness::Workload> ws;
    for (std::size_t i = 0; i < traces.size(); ++i)
        ws.push_back({traces[i].name(),
                      [&traces, i] { return traces[i]; }, nullptr});
    for (auto _ : state) {
        harness::Runner r;
        const auto table = r.runMatrix(ws, sweepConfigs(),
                                       harness::amatMetric(), jobs);
        benchmark::DoNotOptimize(table.rows());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * traces.front().size() * ws.size() *
        sweepConfigs().size()));
}
BENCHMARK(BM_MatrixSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Streamed one-pass sweep (Runner::runStreamed): one workload under
 * every sweep configuration without materializing the trace, at a
 * given worker count (Arg).
 */
// Sampled vs. full-detail sweep: the MV trace under every sweep
// configuration, first simulated in full detail, then estimated by
// the windowed sampling engine (detailed windows + functional warming
// + fast-forward skip). Both report items = records *covered*, so the
// within-run items_per_second ratio is the end-to-end sweep speedup
// perf_compare.py asserts on (floor 5x). The geometry is the
// deep-warmup re-sweep shape of the EXPERIMENTS.md checkpoint recipe
// (window 512, stride 32768, warmup 10240): warming dominates the
// sampled cost, which is exactly what a live-point library
// (BM_SweepSampledCheckpointed below) exists to amortize, while the
// stride/window ratio keeps the sampled sweep itself >=5x full
// detail. Warming is bit-exact functional simulation, so deeper
// warmup only improves accuracy over the 2048-record minimum the
// SampledDifferential tests certify.

sim::SamplingOptions
sweepSamplingOptions()
{
    sim::SamplingOptions opt;
    opt.window = 512;
    opt.stride = 32768;
    opt.warmup = 10240;
    return opt;
}

void
BM_SweepFullDetail(benchmark::State &state)
{
    const auto &t = mvTrace();
    for (auto _ : state) {
        for (const auto &cfg : sweepConfigs()) {
            const auto s = core::simulateTrace(t, cfg);
            benchmark::DoNotOptimize(s.totalAccessCycles);
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * t.size() * sweepConfigs().size()));
}
BENCHMARK(BM_SweepFullDetail);

void
BM_SweepSampled(benchmark::State &state)
{
    const auto &t = mvTrace();
    const sim::SampledEngine engine(sweepSamplingOptions());
    std::uint64_t windows = 0;
    for (auto _ : state) {
        for (const auto &cfg : sweepConfigs()) {
            trace::MemoryTraceSource src(t);
            core::SoftwareAssistedCache sim(cfg);
            const auto rep = engine.run(src, sim);
            benchmark::DoNotOptimize(rep.recordsTotal);
            windows = rep.windows;
        }
    }
    state.SetLabel("windows=" + std::to_string(windows));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * t.size() * sweepConfigs().size()));
}
BENCHMARK(BM_SweepSampled);

/**
 * The same sampled sweep served from a warm live-point library: the
 * per-configuration checkpoint libraries are built once outside the
 * timed loop (the one-time warming pass --checkpoint-dir persists),
 * then every iteration restores each window's architectural state and
 * replays only the detailed windows, skipping functional warming
 * entirely. Items = records covered, like BM_SweepSampled, so the
 * within-run items_per_second ratio against BM_SweepSampled is the
 * warm re-sweep speedup perf_compare.py asserts on (floor 5x). The
 * Checkpoint tests prove the restored runs are bit-identical in
 * RunStats to the warmed runs, so the speedup is free of accuracy
 * loss.
 */
void
BM_SweepSampledCheckpointed(benchmark::State &state)
{
    const auto &t = mvTrace();
    const sim::SampledEngine engine(sweepSamplingOptions());
    static const std::vector<sim::CheckpointLibrary> libs = [] {
        const sim::SampledEngine eng(sweepSamplingOptions());
        std::vector<sim::CheckpointLibrary> out(
            sweepConfigs().size());
        for (std::size_t i = 0; i < sweepConfigs().size(); ++i) {
            core::SoftwareAssistedCache warmer(sweepConfigs()[i]);
            trace::MemoryTraceSource src(mvTrace());
            eng.buildLibrary(src, warmer, out[i]);
        }
        return out;
    }();
    std::uint64_t windows = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < sweepConfigs().size(); ++i) {
            trace::MemoryTraceSource src(t);
            core::SoftwareAssistedCache sim(sweepConfigs()[i]);
            const auto rep = engine.runCheckpointed(src, sim, libs[i]);
            benchmark::DoNotOptimize(rep.recordsTotal);
            windows = rep.windows;
        }
    }
    state.SetLabel("windows=" + std::to_string(windows));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * t.size() * sweepConfigs().size()));
}
BENCHMARK(BM_SweepSampledCheckpointed);

/**
 * Denser live-point lattice for the parallel scaling pair: the
 * shared sweep geometry leaves only ~3 full windows in the MV trace,
 * which would cap 8-way fan-out at 3 batches. The same 512-record
 * windows at a 2 K stride plan ~50 of them, so the /8 arm measures
 * real batch parallelism instead of the partition floor.
 */
sim::SamplingOptions
parallelSamplingOptions()
{
    sim::SamplingOptions opt;
    opt.window = 512;
    opt.stride = 2048;
    opt.warmup = 1024;
    return opt;
}

/**
 * The checkpointed sweep with the window replay sharded across a
 * worker pool (Arg = workers; Arg 1 routes through the serial
 * fallback and must time like a serial replay of the same plan).
 * Same libraries, same items accounting, and the
 * ParallelDifferential tests prove the report is bit-identical to
 * the serial replay, so the within-run ratio of /8 against /1 is
 * pure intra-trace speedup (perf_compare.py floors it at 3x on
 * multi-core hosts).
 */
void
BM_SweepSampledCheckpointedParallel(benchmark::State &state)
{
    const auto workers = static_cast<unsigned>(state.range(0));
    const auto &t = mvTrace();
    const sim::SampledEngine engine(parallelSamplingOptions());
    static const std::vector<sim::CheckpointLibrary> libs = [] {
        const sim::SampledEngine eng(parallelSamplingOptions());
        std::vector<sim::CheckpointLibrary> out(
            sweepConfigs().size());
        for (std::size_t i = 0; i < sweepConfigs().size(); ++i) {
            core::SoftwareAssistedCache warmer(sweepConfigs()[i]);
            trace::MemoryTraceSource src(mvTrace());
            eng.buildLibrary(src, warmer, out[i]);
        }
        return out;
    }();
    util::ThreadPool pool(workers);
    std::uint64_t windows = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < sweepConfigs().size(); ++i) {
            trace::MemoryTraceSource src(t);
            const core::Config &cfg = sweepConfigs()[i];
            const auto rep = engine.runCheckpointedParallel(
                src,
                [&cfg] { return core::SoftwareAssistedCache(cfg); },
                libs[i], pool, workers);
            benchmark::DoNotOptimize(rep.recordsTotal);
            windows = rep.windows;
        }
    }
    state.SetLabel("windows=" + std::to_string(windows));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * t.size() * sweepConfigs().size()));
}
BENCHMARK(BM_SweepSampledCheckpointedParallel)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Single-pass stack sweep vs. per-configuration replay: the MV trace
// across the 8-cell standard family of Fig 9 ({4,8,16,32} KB x
// {1,2}-way, 32-byte lines), first replayed through the exact
// simulator once per configuration, then answered by ONE Mattson
// stack-distance traversal (sim::StackDistanceEngine). Both report
// items = records x configurations, so the within-run
// items_per_second ratio is the sweep speedup perf_compare.py asserts
// on (floor 4x). The StackDifferential tests prove the two produce
// bit-identical miss counts, so the speedup is free of accuracy loss.

const std::vector<core::Config> &
stackSweepConfigs()
{
    static const std::vector<core::Config> cfgs = [] {
        std::vector<core::Config> out;
        for (const std::uint64_t kb : {4, 8, 16, 32}) {
            for (const std::uint32_t ways : {1u, 2u}) {
                core::Config cfg = core::scaledConfig(
                    core::presets().get("standard"), kb * 1024, 32);
                cfg.assoc = ways;
                cfg.name += " A=" + std::to_string(ways);
                cfg.validate();
                out.push_back(std::move(cfg));
            }
        }
        return out;
    }();
    return cfgs;
}

void
BM_SweepPerConfigReplay(benchmark::State &state)
{
    const auto &t = mvTrace();
    for (auto _ : state) {
        for (const auto &cfg : stackSweepConfigs()) {
            const auto s = core::simulateTrace(t, cfg);
            benchmark::DoNotOptimize(s.misses);
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * t.size() * stackSweepConfigs().size()));
}
BENCHMARK(BM_SweepPerConfigReplay);

void
BM_SweepStackSinglePass(benchmark::State &state)
{
    const auto &t = mvTrace();
    std::vector<sim::StackPoint> points;
    for (const auto &cfg : stackSweepConfigs())
        points.push_back(harness::stackPointOf(cfg));
    for (auto _ : state) {
        sim::StackDistanceEngine eng(points);
        trace::MemoryTraceSource src(t);
        eng.run(src);
        std::uint64_t misses = 0;
        for (const auto &p : points)
            misses += eng.missCount(p);
        benchmark::DoNotOptimize(misses);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * t.size() * stackSweepConfigs().size()));
}
BENCHMARK(BM_SweepStackSinglePass);

/**
 * The same single-pass stack sweep sharded by set index across a
 * worker pool (Arg = shards; Arg 1 is one unsharded engine on the
 * calling thread). Every shard traverses the full trace but touches
 * only its own sets, and the absorbed histograms are exactly the
 * unsharded counts (ShardedStackDifferential), so the within-run
 * ratio of /8 against /1 is pure set-level parallel speedup
 * (perf_compare.py floors it at 2x on multi-core hosts).
 */
void
BM_SweepStackSharded(benchmark::State &state)
{
    const auto shards = static_cast<unsigned>(state.range(0));
    const auto &t = mvTrace();
    std::vector<sim::StackPoint> points;
    for (const auto &cfg : stackSweepConfigs())
        points.push_back(harness::stackPointOf(cfg));
    util::ThreadPool pool(shards);
    for (auto _ : state) {
        std::vector<sim::StackDistanceEngine> slices;
        slices.reserve(shards);
        for (unsigned s = 0; s < shards; ++s)
            slices.emplace_back(points, s, shards);
        std::vector<std::future<void>> tasks;
        for (unsigned s = 0; s < shards; ++s) {
            tasks.push_back(pool.submit([&t, &slices, s] {
                trace::MemoryTraceSource src(t);
                slices[s].run(src);
            }));
        }
        for (auto &task : tasks)
            task.get();
        for (unsigned s = 1; s < shards; ++s)
            slices[0].absorb(slices[s]);
        std::uint64_t misses = 0;
        for (const auto &p : points)
            misses += slices[0].missCount(p);
        benchmark::DoNotOptimize(misses);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * t.size() * stackSweepConfigs().size()));
}
BENCHMARK(BM_SweepStackSharded)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_StreamedSweep(benchmark::State &state)
{
    const auto jobs = static_cast<unsigned>(state.range(0));
    const harness::Workload w{
        "MV", [] { return workloads::makeBenchmarkTrace("MV"); },
        [](const trace::RecordSink &sink) {
            workloads::streamBenchmarkTrace("MV", sink);
        }};
    std::int64_t records = 0;
    for (auto _ : state) {
        harness::Runner r;
        const auto stats = r.runStreamed(w, sweepConfigs(), jobs);
        benchmark::DoNotOptimize(stats.size());
        records = static_cast<std::int64_t>(stats.front().accesses);
    }
    state.SetItemsProcessed(state.iterations() * records *
                            static_cast<std::int64_t>(
                                sweepConfigs().size()));
}
BENCHMARK(BM_StreamedSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects
 * flags it does not know, so the command line is split first —
 * --benchmark_* flags go to benchmark::Initialize, everything else to
 * the shared harness::BenchOptions parser (--emit-json, --jobs,
 * --preset, ...). With --emit-json set, one manifest per timed
 * simulator configuration is written after the benchmarks run.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> bench_args{argv[0]};
    std::vector<const char *> opt_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]).rfind("--benchmark", 0) == 0)
            bench_args.push_back(argv[i]);
        else
            opt_args.push_back(argv[i]);
    }
    const auto opts = harness::BenchOptions::parse(
        static_cast<int>(opt_args.size()), opt_args.data());

    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (!opts.emitJsonDir.empty()) {
        for (const auto &key :
             {"standard", "soft", "soft-prefetch"}) {
            const core::Config cfg = core::presets().get(key);
            const auto t0 = std::chrono::steady_clock::now();
            const auto stats = core::simulateTrace(mvTrace(), cfg);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (harness::writeCellManifest(opts.emitJsonDir,
                                           "MV-simspeed", cfg, stats,
                                           secs)
                    .empty()) {
                std::cerr << "failed to write manifest under "
                          << opts.emitJsonDir << '\n';
                return 1;
            }
        }
    }
    return 0;
}
