/**
 * @file
 * Simulator throughput benchmarks (google-benchmark): trace
 * generation speed and simulation speed per configuration. These are
 * engineering benchmarks of the reproduction itself, not paper
 * figures.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/check/auditor.hh"
#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/harness/experiment.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;

const trace::Trace &
mvTrace()
{
    static const trace::Trace t =
        workloads::makeTaggedTrace(workloads::buildMv(200));
    return t;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const auto t = workloads::makeTaggedTrace(
            workloads::buildMv(100), seed++);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * (100 * 100 * 2 + 100 * 2)));
}
BENCHMARK(BM_TraceGeneration);

void
BM_LocalityAnalysis(benchmark::State &state)
{
    for (auto _ : state) {
        auto p = workloads::buildLiv(workloads::Scale{0.1});
        p.finalize();
        const auto r = locality::analyze(p);
        benchmark::DoNotOptimize(r.tags.size());
    }
}
BENCHMARK(BM_LocalityAnalysis);

void
simulateConfig(benchmark::State &state, const core::Config &cfg)
{
    const auto &t = mvTrace();
    for (auto _ : state) {
        const auto s = core::simulateTrace(t, cfg);
        benchmark::DoNotOptimize(s.totalAccessCycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * t.size()));
}

void
BM_SimulateStandard(benchmark::State &state)
{
    simulateConfig(state, core::standardConfig());
}
BENCHMARK(BM_SimulateStandard);

void
BM_SimulateSoft(benchmark::State &state)
{
    simulateConfig(state, core::softConfig());
}
BENCHMARK(BM_SimulateSoft);

void
BM_SimulateSoftPrefetch(benchmark::State &state)
{
    simulateConfig(state, core::softPrefetchConfig());
}
BENCHMARK(BM_SimulateSoftPrefetch);

/**
 * Same workload as BM_SimulateSoft but with a check::Auditor
 * attached. With SAC_AUDIT=OFF the hook is compiled out and this must
 * time identically to BM_SimulateSoft; with SAC_AUDIT=ON it measures
 * the full per-access invariant sweep.
 */
void
BM_SimulateSoftAudited(benchmark::State &state)
{
    const auto &t = mvTrace();
    const core::Config cfg = core::softConfig();
    for (auto _ : state) {
        core::SoftwareAssistedCache sim(cfg);
        check::Auditor auditor(check::Auditor::OnViolation::Panic);
        sim.attachAuditor(&auditor);
        sim.run(t);
        benchmark::DoNotOptimize(sim.stats().totalAccessCycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * t.size()));
    state.SetLabel(check::Auditor::hooksCompiledIn()
                       ? "audit-on"
                       : "audit-compiled-out");
}
BENCHMARK(BM_SimulateSoftAudited);

void
BM_SimulateNoClassifier(benchmark::State &state)
{
    auto cfg = core::softConfig();
    cfg.classifyMisses = false;
    simulateConfig(state, cfg);
}
BENCHMARK(BM_SimulateNoClassifier);

/**
 * Full-matrix sweep through harness::Runner::runMatrix at a given
 * worker count (Arg). Traces are pre-generated so the benchmark
 * isolates the sweep executor itself; a fresh Runner per iteration
 * keeps every cell uncached.
 */
const std::vector<trace::Trace> &
sweepTraces()
{
    static const std::vector<trace::Trace> traces = [] {
        std::vector<trace::Trace> out;
        for (int i = 0; i < 4; ++i) {
            auto t = workloads::makeTaggedTrace(
                workloads::buildMv(180), 0x7ac3ull + i);
            t.setName("MV" + std::to_string(i));
            out.push_back(std::move(t));
        }
        return out;
    }();
    return traces;
}

void
BM_MatrixSweep(benchmark::State &state)
{
    const auto jobs = static_cast<unsigned>(state.range(0));
    const auto &traces = sweepTraces();
    std::vector<harness::Workload> ws;
    for (std::size_t i = 0; i < traces.size(); ++i)
        ws.push_back({traces[i].name(),
                      [&traces, i] { return traces[i]; }});
    const std::vector<core::Config> cfgs{
        core::standardConfig(), core::softTemporalOnlyConfig(),
        core::softSpatialOnlyConfig(), core::softConfig()};
    for (auto _ : state) {
        harness::Runner r;
        const auto table =
            r.runMatrix(ws, cfgs, harness::amatMetric(), jobs);
        benchmark::DoNotOptimize(table.rows());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * traces.front().size() * ws.size() *
        cfgs.size()));
}
BENCHMARK(BM_MatrixSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects
 * flags it does not know, so the shared --emit-json flag is stripped
 * before Initialize. With --emit-json set, one manifest per timed
 * simulator configuration is written after the benchmarks run.
 */
int
main(int argc, char **argv)
{
    std::string emit_dir;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--emit-json") {
            if (i + 1 >= argc || argv[i + 1][0] == '\0') {
                std::cerr << "--emit-json requires a directory\n";
                return 2;
            }
            emit_dir = argv[++i];
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (!emit_dir.empty()) {
        for (const auto &cfg :
             {core::standardConfig(), core::softConfig(),
              core::softPrefetchConfig()}) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto stats = core::simulateTrace(mvTrace(), cfg);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (harness::writeCellManifest(emit_dir, "MV-simspeed",
                                           cfg, stats, secs)
                    .empty()) {
                std::cerr << "failed to write manifest under "
                          << emit_dir << '\n';
                return 1;
            }
        }
    }
    return 0;
}
