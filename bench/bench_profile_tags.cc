/**
 * @file
 * Tag-quality headroom experiment, extending Figure 10a's question:
 * how much of the gap left by the simple compile-time analysis could
 * better information recover? Compares AMAT under no tags, the
 * Section-2.3 compiler tags, and profile-derived tags (which see
 * through CALLs, aliasing and indirection).
 */

#include <iostream>

#include "bench_common.hh"
#include "src/util/stats.hh"
#include "src/analysis/tag_transform.hh"
#include "src/locality/profile_tagger.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Tag-quality headroom (extends Figure 10a)",
                       "No tags vs compiler tags vs profile tags "
                       "(AMAT, Soft.)");

    std::cout << '\n';
    util::Table table({"Benchmark", "Stand.", "Soft. no tags",
                       "Soft. compiler tags", "Soft. profile tags",
                       "headroom recovered"});
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto &t = bench::benchmarkTrace(b.name);
        const double stand =
            bench::cachedRun(b.name, core::presets().get("standard")).amat();
        const double none =
            bench::runCell(analysis::stripAllTags(t),
                           core::presets().get("soft"), b.name + "-notags")
                .amat();
        const double compiler =
            bench::cachedRun(b.name, core::presets().get("soft")).amat();
        const double profile =
            bench::runCell(locality::retagFromProfile(t),
                           core::presets().get("soft"),
                           b.name + "-profiletags")
                .amat();
        const auto row = table.addRow();
        table.set(row, 0, b.name);
        table.setNumber(row, 1, stand);
        table.setNumber(row, 2, none);
        table.setNumber(row, 3, compiler);
        table.setNumber(row, 4, profile);
        // Of the distance from no-tags to the better of the two
        // informed variants, how much does the compiler already get?
        const double best = std::min(compiler, profile);
        const double recovered =
            none - best > 1e-9 ? (none - compiler) / (none - best)
                               : 1.0;
        table.set(row, 5, util::formatPercent(recovered));
    }
    table.print(std::cout);

    std::cout << "\nExpected: profile tags beat compiler tags most "
                 "on the CALL-poisoned\ndusty-deck proxies (MDG, BDN, "
                 "TRF) — the paper's Figure-10a observation that\n"
                 "instrumentation coverage, not the mechanisms, is "
                 "the limiter.\n";
    return 0;
}
