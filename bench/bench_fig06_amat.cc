/**
 * @file
 * Figure 6 reproduction: performance of software-assisted caches (I).
 * 6a — AMAT for Standard, temporal-only, spatial-only and the full
 * mechanism; 6b — repartition of cache hits between the main cache
 * and the bounce-back cache under the full mechanism.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 6",
                       "AMAT of software control (6a) and hit "
                       "repartition (6b)");

    std::cout << "\nFigure 6a: performance of software control "
                 "(AMAT)\n\n";
    bench::suiteTable(bench::presetConfigs({"standard", "soft-temporal",
                                            "soft-spatial", "soft"}),
                      harness::amatMetric())
        .print(std::cout);

    std::cout << "\nFigure 6b: repartition of cache hits (Soft.)\n\n";
    util::Table table({"Benchmark", "Main cache", "Bounce-back"});
    const auto soft = core::presets().get("soft");
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto &s = bench::cachedRun(b.name, soft);
        const auto row = table.addRow();
        table.set(row, 0, b.name);
        table.setNumber(row, 1, s.mainHitShare(), 3);
        table.setNumber(row, 2, s.auxHitShare(), 3);
    }
    table.print(std::cout);

    std::cout << "\nPaper shape check: the combined mechanism always "
                 "wins; software control is\nnever worse than Standard; "
                 "most hits stay in the main cache thanks to the\n"
                 "bounce-back mechanism.\n";
    return 0;
}
