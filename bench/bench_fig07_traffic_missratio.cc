/**
 * @file
 * Figure 7 reproduction: performance of software-assisted caches
 * (II). 7a — memory traffic in (4-byte) words fetched per reference;
 * 7b — miss ratio. Both for the Standard, temporal-only,
 * spatial-only and full configurations.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 7", "Memory traffic (7a) and miss "
                                   "ratio (7b)");

    const auto configs = bench::presetConfigs(
        {"standard", "soft-temporal", "soft-spatial", "soft"});

    std::cout << "\nFigure 7a: words fetched / number of references\n\n";
    bench::suiteTable(configs, harness::wordsPerAccessMetric())
        .print(std::cout);

    std::cout << "\nFigure 7b: miss ratio\n\n";
    bench::suiteTable(configs, harness::missRatioMetric())
        .print(std::cout);

    std::cout << "\nPaper shape check: spatial-only control raises "
                 "traffic (virtual lines);\nthe combined mechanism "
                 "barely does, while cutting the miss ratio (up to\n"
                 "~62% on MV in the paper).\n";
    return 0;
}
