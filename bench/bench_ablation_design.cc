/**
 * @file
 * Ablation studies of the design choices the paper discusses in
 * prose (Sections 2.1, 2.2, 3.2, 4.4):
 *  - bounce-back cache size ("small bounce-back caches perform
 *    nearly as well as large ones");
 *  - bounce-back associativity ("a 4-way bounce-back cache would
 *    perform reasonably well");
 *  - aux access time (the conservative 3-cycle choice);
 *  - the dynamic temporal-bit reset (pollution by dead data);
 *  - the virtual-line coherence check (traffic saved);
 *  - variable-length virtual lines (Section 3.2 extension);
 *  - prefetch degree across memory latencies (Section 4.4).
 */

#include <iostream>

#include "bench_common.hh"
#include "src/util/distribution.hh"
#include "src/util/stats.hh"
#include "src/trace/timing_model.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Design ablations",
                       "Tradeoffs discussed in the paper's prose");

    std::cout << "\nBounce-back cache size (AMAT, Soft.)\n\n";
    {
        const std::uint32_t sizes[] = {2, 4, 8, 16, 32, 64};
        std::vector<core::Config> configs;
        for (const auto n : sizes) {
            auto c = core::presets().get("soft");
            c.auxLines = n;
            c.name = "BB=" + std::to_string(n * 32) + "B";
            configs.push_back(c);
        }
        bench::suiteTable(configs, bench::amatOf).print(std::cout);
    }

    std::cout << "\nBounce-back associativity (AMAT, Soft., 8 lines)\n\n";
    {
        std::vector<core::Config> configs;
        for (const std::uint32_t assoc : {1u, 2u, 4u, 0u}) {
            auto c = core::presets().get("soft");
            c.auxAssoc = assoc;
            c.name = assoc == 0 ? "BB full-assoc"
                                : "BB " + std::to_string(assoc) +
                                      "-way";
            configs.push_back(c);
        }
        bench::suiteTable(configs, bench::amatOf).print(std::cout);
    }

    std::cout << "\nAux access time (AMAT, Soft.)\n\n";
    {
        std::vector<core::Config> configs;
        for (const Cycle t : {2u, 3u, 5u}) {
            auto c = core::presets().get("soft");
            c.timing.auxHitTime = t;
            c.name = "BB access " + std::to_string(t) + "cy";
            configs.push_back(c);
        }
        bench::suiteTable(configs, bench::amatOf).print(std::cout);
    }

    std::cout << "\nDynamic temporal-bit reset (AMAT, Soft.)\n\n";
    {
        auto on = core::presets().get("soft");
        on.name = "reset on (paper)";
        auto off = core::presets().get("soft");
        off.resetTemporalBitOnBounce = false;
        off.name = "reset off";
        bench::suiteTable({on, off}, bench::amatOf).print(std::cout);
    }

    std::cout << "\nVirtual-line coherence check (words/ref, Soft.)\n\n";
    {
        auto on = core::presets().get("soft");
        on.name = "check on (paper)";
        auto off = core::presets().get("soft");
        off.virtualLineCoherenceCheck = false;
        off.name = "check off";
        bench::suiteTable({on, off}, bench::wordsOf).print(std::cout);
    }

    std::cout << "\nVariable-length virtual lines (AMAT; Section 3.2 "
                 "extension)\n\n";
    bench::suiteTable({core::presets().get("soft"), core::presets().get("variable")},
                      bench::amatOf)
        .print(std::cout);

    std::cout << "\nPrefetch degree x memory latency (AMAT on MV, "
                 "Soft.+Prefetching)\n\n";
    {
        util::Table table({"Latency", "degree 1", "degree 2",
                           "degree 4"});
        for (const Cycle lat : {15u, 20u, 25u, 30u, 40u}) {
            const auto row = table.addRow();
            table.set(row, 0, std::to_string(lat));
            std::size_t col = 1;
            for (const std::uint32_t degree : {1u, 2u, 4u}) {
                auto c = core::presets().get("soft-prefetch");
                c.timing.memoryLatency = lat;
                c.prefetchDegree = degree;
                c.name = "pf d" + std::to_string(degree) + " l" +
                         std::to_string(lat);
                table.setNumber(row, col++,
                                bench::cachedRun("MV", c).amat());
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nPhysical line size under software assistance "
                 "(AMAT; paper Section 3.2:\n16-byte and 32-byte "
                 "physical lines proved similar)\n\n";
    {
        auto half = core::presets().get("soft");
        half.lineBytes = 16;
        half.name = "Soft. Ls=16";
        auto full = core::presets().get("soft");
        full.name = "Soft. Ls=32";
        bench::suiteTable({half, full}, bench::amatOf)
            .print(std::cout);
    }

    std::cout << "\nWrite buffer depth (AMAT, Soft.)\n\n";
    {
        std::vector<core::Config> configs;
        for (const std::uint32_t n : {1u, 2u, 8u, 32u}) {
            auto c = core::presets().get("soft");
            c.writeBufferEntries = n;
            c.name = "WB " + std::to_string(n);
            configs.push_back(c);
        }
        bench::suiteTable(configs, bench::amatOf).print(std::cout);
    }

    std::cout << "\nIssue-rate sensitivity (AMAT on MV; the paper notes cache designs are\n"
                 "sensitive to the processor request issue rate)\n\n";
    {
        struct Rate
        {
            const char *label;
            util::DiscreteDistribution dist;
        };
        const Rate rates[] = {
            {"1 ref/cycle (superscalar)",
             util::DiscreteDistribution({{1, 1.0}})},
            {"Figure 4b (paper)",
             trace::TimingModel::figure4bDistribution()},
            {"1 ref / 8 cycles (slow)",
             util::DiscreteDistribution({{8, 1.0}})},
        };
        util::Table table({"Issue rate", "Stand.", "Soft.",
                           "Soft.+Prefetching"});
        for (const auto &rate : rates) {
            const auto t = workloads::makeTaggedTraceWithTiming(
                workloads::buildMv(), rate.dist);
            const auto row = table.addRow();
            table.set(row, 0, rate.label);
            const std::string cell = std::string("MV-issue-rate-") +
                                     rate.label;
            table.setNumber(
                row, 1,
                bench::runCell(t, core::presets().get("standard"), cell)
                    .amat());
            table.setNumber(
                row, 2,
                bench::runCell(t, core::presets().get("soft"), cell).amat());
            table.setNumber(
                row, 3,
                bench::runCell(t, core::presets().get("soft-prefetch"), cell)
                    .amat());
        }
        table.print(std::cout);
    }

    std::cout << "\nExpected: small bounce-back caches rival large "
                 "ones; 4-way rivals fully\nassociative; deeper "
                 "prefetching only pays at long latencies. In the\n"
                 "blocking model the plain mechanisms are issue-rate "
                 "insensitive (no overlap\nto exploit), while "
                 "prefetching needs issue slack to land its lines.\n";
    return 0;
}
