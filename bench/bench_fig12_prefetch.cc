/**
 * @file
 * Figure 12 reproduction: software-assisted progressive prefetching.
 * AMAT for Standard, Standard+Prefetching, Soft and
 * Soft+Prefetching.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 12", "Prefetching (AMAT)");
    std::cout << '\n';

    bench::suiteTable(
        bench::presetConfigs({"standard", "standard-prefetch", "soft",
                              "soft-prefetch"}),
        bench::amatOf)
        .print(std::cout);

    std::cout << "\nPaper shape check: prefetching hides compulsory "
                 "and capacity misses of\nvector accesses; the "
                 "software-assisted variant avoids wrong predictions "
                 "by\nprefetching only on spatially tagged misses.\n";
    return 0;
}
