/**
 * @file
 * Figure 11 reproduction: software-assisted caches as support for
 * software optimizations. 11a — AMAT of blocked matrix-vector
 * multiply across block sizes, Standard vs Soft; 11b — AMAT of
 * blocked matrix-matrix multiply with and without data copying as
 * the array leading dimension sweeps 116..126.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 11",
                       "Blocking (11a) and data copying (11b)");

    std::cout << "\nFigure 11a: optimal block size for blocked "
                 "matrix-vector multiply (AMAT)\n\n";
    const std::int64_t n = 1200;
    const std::int64_t blocks[] = {10,  20,  30,  40,  50,
                                   100, 400, 600, 1200};
    util::Table ta({"Block size", "Stand.", "Soft."});
    for (const auto b : blocks) {
        const auto t = workloads::makeTaggedTrace(
            workloads::buildBlockedMv(n, b));
        const auto row = ta.addRow();
        ta.set(row, 0, std::to_string(b));
        const std::string cell =
            "BlockedMV-b" + std::to_string(b);
        ta.setNumber(row, 1,
                     bench::runCell(t, core::presets().get("standard"), cell)
                         .amat());
        ta.setNumber(
            row, 2,
            bench::runCell(t, core::presets().get("soft"), cell).amat());
    }
    ta.print(std::cout);

    std::cout << "\nFigure 11b: data copying for blocked matrix "
                 "multiply (AMAT), leading dimension sweep\n\n";
    util::Table tb({"Leading dim", "NoCopy (stand.)", "Copy (stand.)",
                    "NoCopy (soft.)", "Copy (soft.)"});
    const std::int64_t mm_n = 80;
    const std::int64_t mm_block = 16;
    for (std::int64_t ld = 116; ld <= 126; ++ld) {
        const auto plain = workloads::makeTaggedTrace(
            workloads::buildCopiedMm(mm_n, ld, mm_block, false));
        const auto copied = workloads::makeTaggedTrace(
            workloads::buildCopiedMm(mm_n, ld, mm_block, true));
        const auto row = tb.addRow();
        tb.set(row, 0, std::to_string(ld));
        const std::string plain_cell =
            "CopiedMM-nocopy-ld" + std::to_string(ld);
        const std::string copied_cell =
            "CopiedMM-copy-ld" + std::to_string(ld);
        tb.setNumber(
            row, 1,
            bench::runCell(plain, core::presets().get("standard"), plain_cell)
                .amat());
        tb.setNumber(
            row, 2,
            bench::runCell(copied, core::presets().get("standard"),
                           copied_cell)
                .amat());
        tb.setNumber(
            row, 3,
            bench::runCell(plain, core::presets().get("soft"), plain_cell)
                .amat());
        tb.setNumber(
            row, 4,
            bench::runCell(copied, core::presets().get("soft"), copied_cell)
                .amat());
    }
    tb.print(std::cout);

    std::cout << "\nPaper shape check: software control tolerates "
                 "larger block sizes before\npollution hurts; copying "
                 "flattens the leading-dimension sensitivity, and\n"
                 "software assistance lowers the copying cost.\n";
    return 0;
}
