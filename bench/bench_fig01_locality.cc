/**
 * @file
 * Figure 1 reproduction: temporal and spatial reuse in numerical
 * codes. 1a — distribution of references among reuse-distance
 * buckets; 1b — distribution of references among the vector lengths
 * of per-instruction streams.
 */

#include <iostream>

#include "bench_common.hh"
#include "src/analysis/reuse_profiler.hh"
#include "src/analysis/stream_profiler.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;
    using analysis::ReuseBucket;
    using analysis::VectorBucket;

    bench::printBanner(
        "Figure 1",
        "Reuse-distance and vector-length distributions per benchmark");

    std::cout << "\nFigure 1a: distance of reuse (fraction of "
                 "references per bucket)\n\n";
    {
        std::vector<std::string> headers{"Benchmark"};
        for (std::size_t b = 0;
             b < static_cast<std::size_t>(ReuseBucket::Count); ++b) {
            headers.push_back(analysis::reuseBucketLabel(
                static_cast<ReuseBucket>(b)));
        }
        util::Table table(std::move(headers));
        for (const auto &b : workloads::paperBenchmarks()) {
            const auto profile =
                analysis::profileReuse(bench::benchmarkTrace(b.name));
            const auto row = table.addRow();
            table.set(row, 0, b.name);
            for (std::size_t k = 0;
                 k < static_cast<std::size_t>(ReuseBucket::Count); ++k) {
                table.setNumber(
                    row, k + 1,
                    profile.fraction(static_cast<ReuseBucket>(k)), 3);
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nFigure 1b: vector length of reference streams "
                 "(fraction of references per bucket)\n\n";
    {
        std::vector<std::string> headers{"Benchmark"};
        for (std::size_t b = 0;
             b < static_cast<std::size_t>(VectorBucket::Count); ++b) {
            headers.push_back(analysis::vectorBucketLabel(
                static_cast<VectorBucket>(b)));
        }
        util::Table table(std::move(headers));
        for (const auto &b : workloads::paperBenchmarks()) {
            const auto profile =
                analysis::profileStreams(bench::benchmarkTrace(b.name));
            const auto row = table.addRow();
            table.set(row, 0, b.name);
            for (std::size_t k = 0;
                 k < static_cast<std::size_t>(VectorBucket::Count);
                 ++k) {
                table.setNumber(
                    row, k + 1,
                    profile.fraction(static_cast<VectorBucket>(k)), 3);
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper shape check: sizeable no-reuse share, many "
                 "reuse distances > 1000 refs,\nand vector lengths "
                 "frequently exceeding the 32-byte line.\n";
    return 0;
}
