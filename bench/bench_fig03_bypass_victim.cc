/**
 * @file
 * Figure 3 reproduction: current techniques for reducing cache
 * pollution and interferences. 3a — efficiency of bypassing (raw and
 * through a one-line buffer); 3b — efficiency of victim caches versus
 * full software control. AMAT in cycles.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    sac::bench::initBench(argc, argv);
    using namespace sac;

    bench::printBanner("Figure 3",
                       "Bypassing (3a) and victim caches (3b), AMAT");

    std::cout << "\nFigure 3a: efficiency of bypassing (AMAT)\n\n";
    bench::suiteTable(
        bench::presetConfigs({"standard", "bypass", "bypass-buffer"}),
        bench::amatOf)
        .print(std::cout);

    std::cout << "\nFigure 3b: efficiency of victim caches (AMAT)\n\n";
    bench::suiteTable(
        bench::presetConfigs({"standard", "victim", "soft"}),
        bench::amatOf)
        .print(std::cout);

    std::cout << "\nPaper shape check: raw bypassing is far worse than "
                 "a standard cache\n(spatial locality lost); the "
                 "buffered variant recovers part of it; victim\n"
                 "caches help but less than full software "
                 "assistance.\n";
    return 0;
}
