/**
 * @file
 * Loop order and software assistance (paper Section 3.2): "many
 * loops were also badly ordered, inducing non stride-one references,
 * and preventing the use of virtual lines." This example builds the
 * same 2-D update in both loop orders and shows that software
 * assistance amplifies — but cannot replace — a good loop order,
 * while the temporal mechanism still salvages part of a bad one.
 */

#include <iostream>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/loopnest/builder.hh"
#include "src/util/stats.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;
using namespace sac::loopnest::builder;

/**
 * B(i,j) = A(i,j) * s over an m x m matrix, column-major.
 * good_order: i innermost (stride one); bad order: j innermost
 * (stride m elements — a parametric stride, never tagged spatial).
 */
loopnest::Program
sweep(std::int64_t m, bool good_order, std::int64_t reps)
{
    loopnest::Program p(good_order ? "sweep-ji" : "sweep-ij");
    const auto A = p.addArray("A", {m, m});
    const auto B = p.addArray("B", {m, m});
    const auto i = p.addVar("i");
    const auto j = p.addVar("j");
    for (std::int64_t r = 0; r < reps; ++r) {
        if (good_order) {
            p.addStmt(loop(j, 0, m - 1,
                           {loop(i, 0, m - 1,
                                 {read(A, {v(i), v(j)}),
                                  write(B, {v(i), v(j)})})}));
        } else {
            p.addStmt(loop(i, 0, m - 1,
                           {loop(j, 0, m - 1,
                                 {read(A, {v(i), v(j)}),
                                  write(B, {v(i), v(j)})})}));
        }
    }
    return p;
}

} // namespace

int
main()
{
    using namespace sac;

    std::cout << "Loop order study (paper Section 3.2: badly ordered "
                 "loops prevent virtual lines)\n\n";

    const std::int64_t m = 120; // 113 KB per matrix
    util::Table table({"Loop order", "tags (T/S %)", "Stand.",
                       "Soft.", "Soft. gain"});
    for (const bool good : {false, true}) {
        locality::AnalysisResult analysis;
        auto program = sweep(m, good, 4);
        const auto t = workloads::makeTaggedTrace(std::move(program),
                                                  0x10, &analysis);
        const double stand =
            core::simulateTrace(t, core::presets().get("standard")).amat();
        const double soft =
            core::simulateTrace(t, core::presets().get("soft")).amat();
        const auto row = table.addRow();
        table.set(row, 0, good ? "ji (stride-1)" : "ij (stride-m)");
        table.set(row, 1,
                  std::to_string(100 * analysis.stats.temporalRefs /
                                 analysis.stats.totalRefs) +
                      "/" +
                      std::to_string(100 * analysis.stats.spatialRefs /
                                     analysis.stats.totalRefs));
        table.setNumber(row, 2, stand);
        table.setNumber(row, 3, soft);
        table.set(row, 4,
                  util::formatPercent(1.0 - soft / stand));
    }
    table.print(std::cout);

    std::cout << "\nThe badly ordered sweep carries no spatial tags "
                 "(parametric stride), so the\nvirtual-line mechanism "
                 "is inert; interchange restores stride-one access "
                 "and\nlets software assistance halve the remaining "
                 "miss cost — the compiler\ntransformation and the "
                 "hardware assist are complements, not substitutes.\n";
    return 0;
}
