/**
 * @file
 * Differential fuzz driver and repro replayer.
 *
 * Three modes:
 *  - replay:  fuzz_replay --case 0xSEED [--trace file.sactrace]
 *             Rebuild one case from its seed (optionally overriding
 *             the trace with a written repro) and re-run the diff.
 *  - budget:  fuzz_replay --cases N [--master-seed S] [--out dir]
 *             The fixed-seed CI sweep: N cases, exit 1 on the first
 *             divergence or audit violation after shrinking it to a
 *             minimal repro and writing the trace file.
 *  - soak:    fuzz_replay --seconds N [--master-seed S] [--out dir]
 *             Run cases until the deadline (local fuzzing).
 */

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <set>
#include <string>

#include "src/check/shrinker.hh"
#include "src/check/trace_fuzzer.hh"
#include "src/trace/trace_io.hh"
#include "src/util/args.hh"

namespace {

using namespace sac;

/** Parse a full-width 64-bit seed ("0x..." or decimal). */
std::optional<std::uint64_t>
parseSeed(const util::Args &args, const std::string &key,
          std::uint64_t fallback)
{
    if (!args.has(key))
        return fallback;
    const std::string v = args.getString(key);
    errno = 0;
    char *end = nullptr;
    const unsigned long long s = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<std::uint64_t>(s);
}

/** Print a failing outcome and the exact way to reproduce it. */
void
reportFailure(const check::FuzzCase &c, const check::CaseOutcome &out,
              const std::string &out_dir)
{
    std::cout << "FAIL: case seed 0x" << std::hex << c.seed << std::dec
              << " (" << c.trace.size() << " records, config "
              << c.config.cacheKey() << ")\n";
    if (out.diverged)
        std::cout << out.divergence;
    if (out.dispatchDiverged)
        std::cout << out.dispatchDivergence << "\n";
    if (out.auditViolations > 0) {
        std::cout << out.auditViolations << " audit violation(s); first: "
                  << out.firstAuditViolation << "\n";
    }

    // Shrink to a minimal repro preserving "this case still fails".
    const check::Shrinker shrinker;
    const auto still_fails = [&](const trace::Trace &t) {
        return !check::runCase(t, c.config).ok();
    };
    const auto shrunk = shrinker.minimize(c.trace, still_fails);
    std::cout << "shrunk " << shrunk.originalSize << " -> "
              << shrunk.trace.size() << " records ("
              << shrunk.probes << " probes)\n";

    if (const auto repro =
            check::writeRepro(shrunk.trace, c.seed, out_dir)) {
        std::cout << "repro written to " << repro->path << "\n"
                  << "replay with: " << repro->command << "\n";
    } else {
        std::cout << "could not write the repro under '" << out_dir
                  << "'\n";
    }
}

/** Run one generated case; returns true when it passed. */
bool
runOne(const check::FuzzCase &c, std::set<std::string> &config_keys,
       const std::string &out_dir)
{
    config_keys.insert(c.config.cacheKey());
    const auto out = check::runCase(c);
    if (out.ok())
        return true;
    reportFailure(c, out, out_dir);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Args args;
    if (!args.parse(argc, argv)) {
        std::cerr << "bad command line: " << args.error() << "\n";
        return 2;
    }

    const std::string out_dir = args.getString("out", "fuzz-repros");
    const auto master = parseSeed(
        args, "master-seed", check::TraceFuzzer::defaultMasterSeed);
    const auto cases = args.getInt("cases", 0);
    const auto seconds = args.getInt("seconds", 0);
    if (!master || !cases || !seconds) {
        std::cerr << "--master-seed/--cases/--seconds expect integers\n";
        return 2;
    }

    // Replay mode: one case from its seed, trace optionally replaced
    // by a written repro file.
    if (args.has("case")) {
        const auto seed = parseSeed(args, "case", 0);
        if (!seed) {
            std::cerr << "--case expects the case seed\n";
            return 2;
        }
        check::FuzzCase c = check::TraceFuzzer::caseFromSeed(*seed);
        if (args.has("trace")) {
            const std::string path = args.getString("trace");
            trace::Trace loaded;
            if (!trace::readTraceFile(path, loaded)) {
                std::cerr << "cannot read trace file '" << path
                          << "'\n";
                return 2;
            }
            c.trace = std::move(loaded);
        }
        const auto out = check::runCase(c);
        if (out.ok()) {
            std::cout << "case 0x" << std::hex << c.seed << std::dec
                      << " passed (" << c.trace.size()
                      << " records)\n";
            return 0;
        }
        std::cout << "case 0x" << std::hex << c.seed << std::dec
                  << " FAILS (" << c.trace.size() << " records)\n";
        if (out.diverged)
            std::cout << out.divergence;
        if (out.dispatchDiverged)
            std::cout << out.dispatchDivergence << "\n";
        if (out.auditViolations > 0) {
            std::cout << out.auditViolations
                      << " audit violation(s); first: "
                      << out.firstAuditViolation << "\n";
        }
        return 1;
    }

    if (*cases <= 0 && *seconds <= 0) {
        std::cerr
            << "usage: fuzz_replay --case 0xSEED [--trace file]\n"
            << "       fuzz_replay --cases N [--master-seed S] "
               "[--out dir]\n"
            << "       fuzz_replay --seconds N [--master-seed S] "
               "[--out dir]\n";
        return 2;
    }

    const check::TraceFuzzer fuzzer(
        static_cast<std::uint64_t>(*master));
    std::set<std::string> config_keys;
    std::uint64_t ran = 0;

    if (*cases > 0) {
        for (std::int64_t i = 0; i < *cases; ++i, ++ran) {
            if (!runOne(fuzzer.makeCase(i), config_keys, out_dir))
                return 1;
        }
    } else {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(*seconds);
        for (std::uint64_t i = 0;
             std::chrono::steady_clock::now() < deadline;
             ++i, ++ran) {
            if (!runOne(fuzzer.makeCase(i), config_keys, out_dir))
                return 1;
        }
    }

    std::cout << "fuzz: " << ran << " cases, "
              << config_keys.size()
              << " distinct configurations, master seed 0x" << std::hex
              << fuzzer.masterSeed() << std::dec
              << ", 0 divergences, 0 audit violations\n";
    return 0;
}
