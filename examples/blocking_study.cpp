/**
 * @file
 * Blocking and data copying under software-assisted caches (paper
 * Sections 4.2-4.3): a compact exploration of block-size choice for
 * blocked matrix-vector multiply and of copying's leading-dimension
 * robustness for blocked matrix multiply.
 */

#include <iostream>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

int
main()
{
    using namespace sac;

    std::cout << "Blocking and copying study (paper Sections "
                 "4.2-4.3)\n\n";

    std::cout << "Blocked MV (n = 600): best block per "
                 "configuration\n\n";
    util::Table ta({"Block", "Stand.", "Soft."});
    double best_stand = 1e9, best_soft = 1e9;
    std::int64_t best_stand_b = 0, best_soft_b = 0;
    for (const std::int64_t b : {25, 50, 100, 200, 300, 600}) {
        const auto t = workloads::makeTaggedTrace(
            workloads::buildBlockedMv(600, b));
        const double stand =
            core::simulateTrace(t, core::presets().get("standard")).amat();
        const double soft =
            core::simulateTrace(t, core::presets().get("soft")).amat();
        const auto row = ta.addRow();
        ta.set(row, 0, std::to_string(b));
        ta.setNumber(row, 1, stand);
        ta.setNumber(row, 2, soft);
        if (stand < best_stand) {
            best_stand = stand;
            best_stand_b = b;
        }
        if (soft < best_soft) {
            best_soft = soft;
            best_soft_b = b;
        }
    }
    ta.print(std::cout);
    std::cout << "\nBest block: Stand. " << best_stand_b << ", Soft. "
              << best_soft_b
              << " — software control tolerates larger blocks "
                 "(Section 4.2).\n";

    std::cout << "\nBlocked MM (n = 64, block = 16): copying versus "
                 "leading dimension\n\n";
    util::Table tb({"Leading dim", "NoCopy stand.", "Copy stand.",
                    "NoCopy soft.", "Copy soft."});
    for (const std::int64_t ld : {64, 96, 120, 128}) {
        const auto plain = workloads::makeTaggedTrace(
            workloads::buildCopiedMm(64, ld, 16, false));
        const auto copied = workloads::makeTaggedTrace(
            workloads::buildCopiedMm(64, ld, 16, true));
        const auto row = tb.addRow();
        tb.set(row, 0, std::to_string(ld));
        tb.setNumber(
            row, 1,
            core::simulateTrace(plain, core::presets().get("standard")).amat());
        tb.setNumber(
            row, 2,
            core::simulateTrace(copied, core::presets().get("standard")).amat());
        tb.setNumber(
            row, 3,
            core::simulateTrace(plain, core::presets().get("soft")).amat());
        tb.setNumber(
            row, 4,
            core::simulateTrace(copied, core::presets().get("soft")).amat());
    }
    tb.print(std::cout);
    std::cout << "\nCopying trades fixed overhead for robustness "
                 "against pathological leading\ndimensions (ld = 128 "
                 "aligns columns to the same sets); software "
                 "assistance\ncuts the copy-loop cost via virtual "
                 "lines and protects the local array.\n";
    return 0;
}
