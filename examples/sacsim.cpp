/**
 * @file
 * sacsim — the full-configuration command-line simulator. Every knob
 * of the software-assisted cache design is a flag, so any point of
 * the paper's design space (and beyond) can be simulated on any
 * registered benchmark without writing code.
 *
 * Examples:
 *   sacsim --benchmark=MV                       # standard cache
 *   sacsim --benchmark=MV --preset=soft         # the paper's design
 *   sacsim --benchmark=SpMV --cache-kb=16 --assoc=2 \
 *          --aux-lines=8 --bounce-back --temporal-bits \
 *          --virtual-line=128 --latency=30
 *   sacsim --benchmark=DYF --preset=soft --prefetch --csv=out.csv
 */

#include <iostream>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/harness/bench_options.hh"
#include "src/harness/experiment.hh"
#include "src/util/args.hh"
#include "src/util/stats.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;

void
usage()
{
    std::cout <<
        "sacsim — software-assisted cache simulator (HPCA 1995)\n\n"
        "  --benchmark=<name>    MDG BDN DYF TRF NAS Slalom LIV MV "
        "SpMV (required)\n"
        "  --preset=<p>          a registry preset:\n";
    for (const auto &p : core::presets().all()) {
        std::cout << "                          " << p.key << " — "
                  << p.description << "\n";
    }
    std::cout <<
        "  --cache-kb=<n>        main cache size in KB (default 8)\n"
        "  --line=<n>            physical line bytes (default 32)\n"
        "  --assoc=<n>           main associativity (default 1)\n"
        "  --aux-lines=<n>       bounce-back/victim lines (default 0)\n"
        "  --aux-assoc=<n>       aux associativity (0 = full)\n"
        "  --victims             victims enter the aux cache\n"
        "  --bounce-back         temporal bounce-back\n"
        "  --temporal-bits       honor temporal tags\n"
        "  --virtual-line=<n>    virtual line bytes (enables them)\n"
        "  --variable-vl         per-reference virtual line lengths\n"
        "  --prefer-non-temporal replacement priority (Fig 9b)\n"
        "  --prefetch            progressive prefetching\n"
        "  --prefetch-degree=<n> lines per prefetch (default 1)\n"
        "  --latency=<n>         memory latency cycles (default 20)\n"
        "  --bus=<n>             bus bytes/cycle (default 16)\n"
        "  --write-buffer=<n>    write buffer entries (default 8)\n"
        "  --seed=<n>            trace timing seed (default 0x7ac3)\n"
        "  --csv=<file>          also write a one-row CSV summary\n";
}

std::optional<core::Config>
buildConfig(const util::Args &args,
            const harness::BenchOptions &opts)
{
    // --preset resolves through the registry (BenchOptions already
    // rejected unknown names); the remaining flags override fields.
    core::Config cfg =
        opts.preset ? *opts.preset : core::presets().get("standard");
    const std::string preset =
        opts.preset ? opts.presetName : "standard";

    auto geti = [&](const char *key, std::int64_t fallback)
        -> std::optional<std::int64_t> {
        const auto v = args.getInt(key, fallback);
        if (!v)
            std::cerr << "bad integer for --" << key << "\n";
        return v;
    };

    const auto kb = geti("cache-kb", static_cast<std::int64_t>(
                                         cfg.cacheSizeBytes / 1024));
    const auto line = geti("line", cfg.lineBytes);
    const auto assoc = geti("assoc", cfg.assoc);
    const auto aux = geti("aux-lines", cfg.auxLines);
    const auto aux_assoc = geti("aux-assoc", cfg.auxAssoc);
    const auto degree = geti("prefetch-degree", cfg.prefetchDegree);
    const auto latency =
        geti("latency", static_cast<std::int64_t>(
                            cfg.timing.memoryLatency));
    const auto bus = geti("bus", cfg.timing.busBytesPerCycle);
    const auto wb = geti("write-buffer", cfg.writeBufferEntries);
    if (!kb || !line || !assoc || !aux || !aux_assoc || !degree ||
        !latency || !bus || !wb) {
        return std::nullopt;
    }

    cfg.cacheSizeBytes = static_cast<std::uint64_t>(*kb) * 1024;
    cfg.lineBytes = static_cast<std::uint32_t>(*line);
    cfg.assoc = static_cast<std::uint32_t>(*assoc);
    cfg.auxLines = static_cast<std::uint32_t>(*aux);
    cfg.auxAssoc = static_cast<std::uint32_t>(*aux_assoc);
    cfg.prefetchDegree = static_cast<std::uint32_t>(*degree);
    cfg.timing.memoryLatency = static_cast<Cycle>(*latency);
    cfg.timing.busBytesPerCycle = static_cast<std::uint32_t>(*bus);
    cfg.writeBufferEntries = static_cast<std::uint32_t>(*wb);

    if (args.has("victims"))
        cfg.auxReceivesVictims = args.getBool("victims", true);
    if (args.has("bounce-back"))
        cfg.bounceBack = args.getBool("bounce-back", true);
    if (args.has("temporal-bits"))
        cfg.temporalBits = args.getBool("temporal-bits", true);
    if (args.has("virtual-line")) {
        const auto vl = geti("virtual-line", cfg.virtualLineBytes);
        if (!vl)
            return std::nullopt;
        cfg.virtualLineBytes = static_cast<std::uint32_t>(*vl);
        cfg.virtualLines = cfg.virtualLineBytes > cfg.lineBytes;
    }
    if (args.has("variable-vl"))
        cfg.variableVirtualLines = args.getBool("variable-vl", true);
    if (args.has("prefer-non-temporal")) {
        cfg.preferNonTemporalReplacement =
            args.getBool("prefer-non-temporal", true);
    }
    if (args.has("prefetch"))
        cfg.prefetch = args.getBool("prefetch", true);
    // The bounce-back cache is also a victim cache by definition.
    if (cfg.bounceBack)
        cfg.auxReceivesVictims = true;

    cfg.name = preset + " (custom)";
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Args args;
    if (!args.parse(argc, argv)) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }
    if (args.has("help") || !args.has("benchmark")) {
        usage();
        return args.has("help") ? 0 : 2;
    }

    const auto opts = harness::BenchOptions::parse(args);
    const auto cfg = buildConfig(args, opts);
    if (!cfg)
        return 2;

    const std::string bench = args.getString("benchmark");
    const auto seed = args.getInt(
        "seed", static_cast<std::int64_t>(opts.traceSeed));
    if (!seed) {
        std::cerr << "bad --seed\n";
        return 2;
    }

    const auto t = workloads::makeBenchmarkTrace(
        bench, static_cast<std::uint64_t>(*seed));
    std::cout << "benchmark " << bench << ": " << t.size()
              << " references\nconfiguration: " << cfg->name << "\n\n";

    core::SoftwareAssistedCache sim(*cfg);
    sim.run(t);
    sim.stats().print(std::cout);

    if (args.has("csv")) {
        util::Table row({"benchmark", "config", "amat", "miss_ratio",
                         "words_per_ref", "bounces", "swaps"});
        const auto &s = sim.stats();
        row.addRow({bench, cfg->name, util::formatFixed(s.amat(), 4),
                    util::formatFixed(s.missRatio(), 5),
                    util::formatFixed(s.wordsFetchedPerAccess(), 4),
                    std::to_string(s.bounces),
                    std::to_string(s.swaps)});
        const std::string path = args.getString("csv");
        if (!harness::writeCsvFile(row, path)) {
            std::cerr << "error: cannot write " << path << "\n";
            return 1;
        }
        std::cout << "\nwrote summary to " << path << "\n";
    }
    return 0;
}
