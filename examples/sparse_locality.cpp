/**
 * @file
 * Scarce locality in sparse codes (paper Section 4.1): the sparse
 * matrix-vector product reuses each X element only as often as its
 * column has non-zeros (10-80 in 3-D problems), through randomizing
 * indirection. No compiler can tag X — the paper proposes user
 * directives. This example sweeps the density and toggles the
 * directive to show when protecting X pays.
 */

#include <iostream>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/loopnest/builder.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;

/** SpMV with or without the user directive on X. */
loopnest::Program
spmv(std::int64_t n, std::int64_t nnz, bool directive)
{
    using namespace loopnest::builder;
    auto p = workloads::buildSpMv(n, nnz);
    if (!directive) {
        // Strip the directive: X stays untagged, as a compiler
        // without sparse support would leave it.
        auto &outer = p.statements()[0].loop();
        auto &inner = outer.body[1].loop();
        inner.body[1].ref().userTemporal.reset();
    }
    return p;
}

} // namespace

int
main()
{
    using namespace sac;

    std::cout << "Sparse matrix-vector multiply: scarce locality "
                 "(paper Section 4.1)\n\n";

    std::cout << "AMAT versus average non-zeros per column "
                 "(n = 1200 columns):\n\n";
    util::Table table({"avg nnz/col", "Stand.", "Soft. (no directive)",
                       "Soft. (X tagged temporal)"});
    for (const std::int64_t nnz : {5, 10, 20, 40, 80}) {
        const auto plain = workloads::makeTaggedTrace(
            spmv(1200, nnz, false));
        const auto tagged = workloads::makeTaggedTrace(
            spmv(1200, nnz, true));
        const auto row = table.addRow();
        table.set(row, 0, std::to_string(nnz));
        table.setNumber(
            row, 1,
            core::simulateTrace(plain, core::presets().get("standard")).amat());
        table.setNumber(
            row, 2,
            core::simulateTrace(plain, core::presets().get("soft")).amat());
        table.setNumber(
            row, 3,
            core::simulateTrace(tagged, core::presets().get("soft")).amat());
    }
    table.print(std::cout);

    std::cout << "\nThe directive matters most at moderate densities: "
                 "with more reuses per\nelement, protecting X from "
                 "pollution by the A and Index streams converts\n"
                 "indirect gathers into cache hits; virtual lines "
                 "serve the streams either way.\n";
    return 0;
}
