/**
 * @file
 * sacd — the sweep service daemon. Serves framed JSON sweep requests
 * (submit / status / metrics / shutdown) on a Unix-domain socket,
 * sharing one harness::Runner across every client so overlapping
 * lattices reuse traces, exact cells, stack passes, sampled replays
 * and checkpoint libraries. Drive it with sacctl.
 *
 *   sacd --socket=/tmp/sacd.sock [--workers=N] [--queue-cap=N]
 *
 * SIGTERM/SIGINT (or a client "shutdown" request) trigger a graceful
 * drain: admitted sweeps finish and stream their results before the
 * socket is released.
 */

#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include "src/service/server.hh"
#include "src/util/thread_pool.hh"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

bool
flagValue(const std::string &arg, const std::string &name,
          std::string &out)
{
    const std::string prefix = name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

void
usage()
{
    std::cerr
        << "usage: sacd --socket=PATH [--workers=N] [--queue-cap=N]\n"
        << "  --socket=PATH    Unix socket to serve on (required)\n"
        << "  --workers=N      concurrent sweep executors (default: "
        << sac::util::ThreadPool::defaultThreads() << ")\n"
        << "  --queue-cap=N    admission bound on queued+active sweeps"
           " (default: 8)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    sac::service::ServerOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (flagValue(arg, "--socket", value)) {
            options.socketPath = value;
        } else if (flagValue(arg, "--workers", value)) {
            options.workers =
                static_cast<unsigned>(std::stoul(value));
        } else if (flagValue(arg, "--queue-cap", value)) {
            options.maxQueue = std::stoul(value);
        } else {
            usage();
            return 2;
        }
    }
    if (options.socketPath.empty()) {
        usage();
        return 2;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    // Streaming to a client that disappeared must surface as a failed
    // write (handled per frame), never a process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    sac::service::SweepServer server(options);
    if (!server.start())
        return 1;
    std::cout << "sacd: serving on " << options.socketPath
              << std::endl;

    // Wake regularly so a delivered SIGTERM is noticed promptly even
    // when no client ever sends a "shutdown" request.
    while (!g_stop.load() && !server.shutdownRequested())
        server.waitForShutdown(100);

    std::cout << "sacd: draining" << std::endl;
    server.drain();
    std::cout << "sacd: stopped" << std::endl;
    return 0;
}
