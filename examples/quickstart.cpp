/**
 * @file
 * Quickstart: build the paper's matrix-vector multiply loop nest, let
 * the locality analyzer tag its references, generate a trace, and
 * compare a standard 8-KB cache against the software-assisted design
 * (virtual lines + bounce-back cache).
 *
 * Expected outcome (paper Figure 6a): the software-assisted cache has
 * a markedly lower AMAT and miss ratio on MV.
 */

#include <iostream>

#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/loopnest/builder.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

int
main()
{
    using namespace sac;

    // 1. Build the loop nest (or use workloads::buildMv()):
    //      DO j1: reg = Y(j1)
    //        DO j2: reg += A(j2,j1) * X(j2)
    //      Y(j1) = reg
    using namespace loopnest::builder;
    loopnest::Program program("MV");
    const std::int64_t n = 500;
    const auto A = program.addArray("A", {n, n});
    const auto X = program.addArray("X", {n});
    const auto Y = program.addArray("Y", {n});
    const auto j1 = program.addVar("j1");
    const auto j2 = program.addVar("j2");
    program.addStmt(loop(j1, 0, n - 1,
                         {read(Y, {v(j1)}),
                          loop(j2, 0, n - 1,
                               {read(A, {v(j2), v(j1)}),
                                read(X, {v(j2)})}),
                          write(Y, {v(j1)})}));

    // 2. Analyze + trace: the compiler pass tags X temporal+spatial,
    //    A spatial only, Y temporal+spatial (Figure 5 rules).
    locality::AnalysisResult analysis;
    const trace::Trace trace =
        workloads::makeTaggedTrace(std::move(program), /*seed=*/1,
                                   &analysis);
    std::cout << "trace: " << trace.size() << " references, "
              << trace.temporalCount() << " temporal-tagged, "
              << trace.spatialCount() << " spatial-tagged\n\n";

    // 3. Simulate both cache organizations on the same trace.
    util::Table table({"config", "AMAT", "miss ratio", "words/ref"});
    for (const auto &cfg :
         {core::presets().get("standard"), core::presets().get("soft")}) {
        const sim::RunStats stats = core::simulateTrace(trace, cfg);
        const auto row = table.addRow();
        table.set(row, 0, cfg.name);
        table.setNumber(row, 1, stats.amat());
        table.setNumber(row, 2, stats.missRatio(), 4);
        table.setNumber(row, 3, stats.wordsFetchedPerAccess());
    }
    table.print(std::cout);
    return 0;
}
