/**
 * @file
 * Command-line trace workbench: generate benchmark traces to disk,
 * inspect them (tag fractions, reuse distances, stream lengths), and
 * simulate a trace file under any named configuration — the workflow
 * the paper's authors ran by hand with Spa and their simulator.
 *
 * Usage:
 *   trace_tools gen <benchmark> <file>     generate + save a trace
 *   trace_tools info <file>                profile a trace file
 *   trace_tools sim <file> <config>        simulate a trace file
 *   trace_tools list                       list benchmarks + configs
 *
 * Configs: standard, victim, soft, soft-temporal, soft-spatial,
 *          soft-variable, bypass, bypass-buffer, 2way, soft-2way,
 *          simplified-2way, prefetch, soft-prefetch.
 */

#include <iostream>
#include <string>

#include "src/analysis/reuse_profiler.hh"
#include "src/analysis/stream_profiler.hh"
#include "src/analysis/tag_stats.hh"
#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/trace/trace_io.hh"
#include "src/util/logging.hh"
#include "src/util/stats.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;

core::Config
configByName(const std::string &name)
{
    // Historical aliases kept for script compatibility; everything
    // else resolves straight through the preset registry.
    if (name == "soft-variable")
        return core::presets().get("variable");
    if (name == "simplified-2way")
        return core::presets().get("simplified-soft-2way");
    if (name == "prefetch")
        return core::presets().get("standard-prefetch");
    return core::presets().get(name);
}

int
cmdGen(const std::string &bench, const std::string &path)
{
    const auto t = workloads::makeBenchmarkTrace(bench);
    if (!trace::writeTraceFile(t, path)) {
        std::cerr << "error: cannot write " << path << "\n";
        return 1;
    }
    std::cout << "wrote " << t.size() << " references of " << bench
              << " to " << path << "\n";
    return 0;
}

int
cmdInfo(const std::string &path)
{
    trace::Trace t;
    if (!trace::readTraceFile(path, t)) {
        std::cerr << "error: cannot read " << path << "\n";
        return 1;
    }
    std::cout << "trace " << t.name() << ": " << t.size()
              << " references, " << t.writeCount() << " writes, "
              << t.totalIssueCycles() << " issue cycles\n\n";

    const auto tags = analysis::computeTagStats(t);
    std::cout << "tags: temporal "
              << util::formatPercent(tags.fractionTemporal())
              << ", spatial "
              << util::formatPercent(tags.fractionSpatial())
              << ", untagged "
              << util::formatPercent(
                     tags.fractionNoTemporalNoSpatial())
              << "\n";

    const auto reuse = analysis::profileReuse(t);
    std::cout << "reuse: no-reuse "
              << util::formatPercent(
                     reuse.fraction(analysis::ReuseBucket::NoReuse))
              << ", >10^3 refs "
              << util::formatPercent(
                     reuse.fraction(analysis::ReuseBucket::UpTo10k) +
                     reuse.fraction(
                         analysis::ReuseBucket::Beyond10k))
              << ", mean distance "
              << util::formatFixed(reuse.meanReuseDistance, 1) << "\n";

    const auto streams = analysis::profileStreams(t);
    std::cout << "streams: " << streams.streams
              << " detected, mean span "
              << util::formatFixed(streams.meanStreamBytes, 1)
              << " bytes, >64B refs "
              << util::formatPercent(
                     streams.fraction(
                         analysis::VectorBucket::UpTo128) +
                     streams.fraction(
                         analysis::VectorBucket::UpTo256) +
                     streams.fraction(
                         analysis::VectorBucket::UpTo512) +
                     streams.fraction(
                         analysis::VectorBucket::Beyond512))
              << "\n";
    return 0;
}

int
cmdSim(const std::string &path, const std::string &config)
{
    trace::Trace t;
    if (!trace::readTraceFile(path, t)) {
        std::cerr << "error: cannot read " << path << "\n";
        return 1;
    }
    const auto cfg = configByName(config);
    std::cout << "simulating " << t.size() << " references under "
              << cfg.name << "\n\n";
    core::SoftwareAssistedCache sim(cfg);
    sim.run(t);
    sim.stats().print(std::cout);
    return 0;
}

int
cmdList()
{
    std::cout << "benchmarks:";
    for (const auto &b : workloads::paperBenchmarks())
        std::cout << ' ' << b.name;
    std::cout << "\nconfigs: standard victim soft soft-temporal "
                 "soft-spatial soft-variable bypass bypass-buffer "
                 "2way soft-2way simplified-2way prefetch "
                 "soft-prefetch\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "gen" && argc == 4)
        return cmdGen(argv[2], argv[3]);
    if (cmd == "info" && argc == 3)
        return cmdInfo(argv[2]);
    if (cmd == "sim" && argc == 4)
        return cmdSim(argv[2], argv[3]);
    if (cmd == "list")
        return cmdList();

    std::cout << "usage:\n"
              << "  trace_tools gen <benchmark> <file>\n"
              << "  trace_tools info <file>\n"
              << "  trace_tools sim <file> <config>\n"
              << "  trace_tools list\n";
    // Demo mode when invoked without arguments: round-trip MV.
    if (cmd.empty()) {
        std::cout << "\nrunning demo: gen MV -> info -> sim soft\n\n";
        const std::string path = "/tmp/sac_demo_trace.bin";
        if (cmdGen("MV", path) != 0)
            return 1;
        std::cout << '\n';
        if (cmdInfo(path) != 0)
            return 1;
        std::cout << '\n';
        return cmdSim(path, "soft");
    }
    return 2;
}
