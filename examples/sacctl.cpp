/**
 * @file
 * sacctl — command-line client of the sacd sweep service.
 *
 *   sacctl --socket=PATH submit --workloads=MV,SpMV \
 *          --presets=standard,soft [--metric=miss-ratio]
 *          [--engine=auto] [--priority=N] [--jobs=N] [--intra-jobs=N]
 *          [--out=DIR]
 *          [--sample-window=W --sample-stride=S --sample-warmup=U]
 *          [--checkpoint-dir=DIR]
 *   sacctl --socket=PATH status
 *   sacctl --socket=PATH metrics
 *   sacctl --socket=PATH shutdown
 *
 * submit streams the sweep's manifests as they finish; with --out=DIR
 * each streamed document is written byte-identically under DIR, so
 * the client-side files match what --emit-json would have produced
 * locally (modulo the wall-clock "timing" object).
 */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "src/service/protocol.hh"

namespace {

using sac::service::readFrame;
using sac::service::writeFrame;
using sac::util::Json;

bool
flagValue(const std::string &arg, const std::string &name,
          std::string &out)
{
    const std::string prefix = name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

std::vector<std::string>
splitCommas(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
connectTo(const std::string &path)
{
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        std::cerr << "sacctl: invalid socket path '" << path << "'\n";
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::cerr << "sacctl: socket: " << std::strerror(errno)
                  << "\n";
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::cerr << "sacctl: connect '" << path
                  << "': " << std::strerror(errno) << "\n";
        ::close(fd);
        return -1;
    }
    return fd;
}

/** One-frame verbs: send the request, print one response field. */
int
simpleVerb(const std::string &socket, const std::string &verb,
           const std::string &print_member)
{
    const int fd = connectTo(socket);
    if (fd < 0)
        return 1;
    Json req = Json::object();
    req.set("verb", verb);
    std::string payload;
    if (!writeFrame(fd, req.dump(0)) || !readFrame(fd, payload)) {
        std::cerr << "sacctl: connection lost\n";
        ::close(fd);
        return 1;
    }
    ::close(fd);
    const auto doc = Json::parse(payload);
    if (!doc) {
        std::cerr << "sacctl: malformed response\n";
        return 1;
    }
    if (const Json *err = doc->find("error")) {
        std::cerr << "sacctl: " << err->asString() << "\n";
        return 1;
    }
    if (print_member.empty()) {
        std::cout << doc->dump(2) << "\n";
    } else if (const Json *member = doc->find(print_member)) {
        std::cout << member->asString();
    }
    return 0;
}

int
submit(const std::string &socket, const Json &request,
       const std::string &out_dir)
{
    const int fd = connectTo(socket);
    if (fd < 0)
        return 1;
    if (!writeFrame(fd, request.dump(0))) {
        std::cerr << "sacctl: connection lost\n";
        ::close(fd);
        return 1;
    }
    std::size_t manifests = 0;
    std::string payload;
    while (readFrame(fd, payload)) {
        const auto doc = Json::parse(payload);
        if (!doc || !doc->isObject()) {
            std::cerr << "sacctl: malformed response frame\n";
            ::close(fd);
            return 1;
        }
        const Json *type = doc->find("type");
        const std::string t =
            type != nullptr ? type->asString() : "";
        if (t == "error") {
            std::cerr << "sacctl: "
                      << doc->find("error")->asString() << "\n";
            ::close(fd);
            return 1;
        }
        if (t == "accepted") {
            std::cerr << "sacctl: accepted as request #"
                      << doc->find("id")->asUint() << "\n";
        } else if (t == "manifest") {
            ++manifests;
            if (!out_dir.empty()) {
                std::filesystem::create_directories(out_dir);
                const std::string file =
                    doc->find("file")->asString();
                std::ofstream os(out_dir + "/" + file,
                                 std::ios::binary);
                os << doc->find("document")->asString();
                if (!os) {
                    std::cerr << "sacctl: failed to write " << file
                              << "\n";
                    ::close(fd);
                    return 1;
                }
            }
        } else if (t == "done") {
            std::cout << doc->find("table")->asString();
            std::cerr << "sacctl: " << doc->find("cells")->asUint()
                      << " cells, " << manifests
                      << " manifests streamed\n";
            ::close(fd);
            return 0;
        }
    }
    std::cerr << "sacctl: server closed before completing\n";
    ::close(fd);
    return 1;
}

void
usage()
{
    std::cerr
        << "usage: sacctl --socket=PATH "
           "(submit|status|metrics|shutdown) [flags]\n"
        << "submit flags:\n"
        << "  --workloads=A,B   benchmark names (required)\n"
        << "  --presets=a,b     configuration presets (required)\n"
        << "  --metric=NAME     miss-ratio|amat|words|"
           "main-hit-share|aux-hit-share\n"
        << "  --engine=NAME     auto|exact|sampled|"
           "sampled-livepoint|stack\n"
        << "  --priority=N      higher runs sooner (default 0)\n"
        << "  --jobs=N          per-sweep worker hint\n"
        << "  --intra-jobs=N    workers per cell (0 = auto)\n"
        << "  --out=DIR         write streamed manifests under DIR\n"
        << "  --sample-window=W --sample-stride=S --sample-warmup=U\n"
        << "  --checkpoint-dir=DIR  live-point library "
           "(sampled-livepoint)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket, verb, out_dir;
    Json request = Json::object();
    request.set("verb", "");
    Json sampling = Json::object();
    bool has_sampling = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (flagValue(arg, "--socket", value)) {
            socket = value;
        } else if (arg == "submit" || arg == "status" ||
                   arg == "metrics" || arg == "shutdown") {
            verb = arg;
            request.set("verb", arg);
        } else if (flagValue(arg, "--workloads", value)) {
            Json list = Json::array();
            for (const auto &w : splitCommas(value))
                list.push(w);
            request.set("workloads", list);
        } else if (flagValue(arg, "--presets", value)) {
            Json list = Json::array();
            for (const auto &p : splitCommas(value))
                list.push(p);
            request.set("presets", list);
        } else if (flagValue(arg, "--metric", value)) {
            request.set("metric", value);
        } else if (flagValue(arg, "--engine", value)) {
            request.set("engine", value);
        } else if (flagValue(arg, "--priority", value)) {
            request.set("priority",
                        static_cast<std::int64_t>(std::stol(value)));
        } else if (flagValue(arg, "--jobs", value)) {
            request.set("jobs",
                        static_cast<std::uint64_t>(
                            std::stoul(value)));
        } else if (flagValue(arg, "--intra-jobs", value)) {
            request.set("intra_jobs",
                        static_cast<std::uint64_t>(
                            std::stoul(value)));
        } else if (flagValue(arg, "--out", value)) {
            out_dir = value;
        } else if (flagValue(arg, "--sample-window", value)) {
            sampling.set("window", static_cast<std::uint64_t>(
                                       std::stoull(value)));
            has_sampling = true;
        } else if (flagValue(arg, "--sample-stride", value)) {
            sampling.set("stride", static_cast<std::uint64_t>(
                                       std::stoull(value)));
            has_sampling = true;
        } else if (flagValue(arg, "--sample-warmup", value)) {
            sampling.set("warmup", static_cast<std::uint64_t>(
                                       std::stoull(value)));
            has_sampling = true;
        } else if (flagValue(arg, "--checkpoint-dir", value)) {
            request.set("checkpoint_dir", value);
        } else {
            usage();
            return 2;
        }
    }
    if (socket.empty() || verb.empty()) {
        usage();
        return 2;
    }
    if (has_sampling)
        request.set("sampling", sampling);

    if (verb == "status")
        return simpleVerb(socket, "status", "");
    if (verb == "metrics")
        return simpleVerb(socket, "metrics", "prometheus");
    if (verb == "shutdown")
        return simpleVerb(socket, "shutdown", "");
    return submit(socket, request, out_dir);
}
