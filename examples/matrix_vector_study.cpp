/**
 * @file
 * Deep-dive on the paper's motivating example (Section 2.2): the
 * matrix-vector multiply. Shows how the streaming matrix A flushes
 * the reused vector X from a standard cache, and how each mechanism
 * (victim cache, bounce-back, virtual lines) changes the picture as
 * the problem size sweeps from cache-resident to far beyond.
 */

#include <iostream>

#include "src/analysis/array_breakdown.hh"
#include "src/core/config.hh"
#include "src/core/soft_cache.hh"
#include "src/util/table.hh"
#include "src/workloads/workloads.hh"

int
main()
{
    using namespace sac;

    std::cout << "Matrix-vector multiply study (paper Section 2.2)\n"
              << "Cache: 8 KB direct-mapped, 32-byte lines; X is "
              << "reused every row.\n\n";

    // 1. Size sweep: when X (N doubles) no longer fits next to a
    //    streaming column of A, pollution breaks its reuse.
    std::cout << "AMAT versus problem size N:\n\n";
    util::Table sweep({"N", "X bytes", "Stand.", "Stand.+Victim",
                       "Soft. Temp. only", "Soft."});
    for (const std::int64_t n : {64, 128, 256, 500, 750, 1000}) {
        const auto t =
            workloads::makeTaggedTrace(workloads::buildMv(n));
        const auto row = sweep.addRow();
        sweep.set(row, 0, std::to_string(n));
        sweep.set(row, 1, std::to_string(n * 8));
        sweep.setNumber(
            row, 2,
            core::simulateTrace(t, core::presets().get("standard")).amat());
        sweep.setNumber(
            row, 3,
            core::simulateTrace(t, core::presets().get("victim")).amat());
        sweep.setNumber(
            row, 4,
            core::simulateTrace(t, core::presets().get("soft-temporal"))
                .amat());
        sweep.setNumber(
            row, 5, core::simulateTrace(t, core::presets().get("soft")).amat());
    }
    sweep.print(std::cout);

    // 2. Per-array anatomy at N = 500: the paper's X-vs-A story.
    auto program = workloads::buildMv(500);
    const auto t = workloads::makeTaggedTrace(std::move(program), 1);
    auto ranged = workloads::buildMv(500);
    ranged.finalize();
    std::cout << "\nPer-array breakdown (reuse window 2500 refs):\n\n";
    const auto breakdown = analysis::breakdownByArray(
        t, analysis::arrayRanges(ranged));
    analysis::breakdownTable(breakdown, t.size()).print(std::cout);

    // 3. Mechanism anatomy at N = 500: what each event counter says.
    std::cout << "\nMechanism anatomy at N = 500 (Soft.):\n\n";
    core::SoftwareAssistedCache sim(core::presets().get("soft"));
    sim.run(t);
    sim.stats().print(std::cout);

    std::cout << "\nReading guide: the bounce-back count is X "
                 "returning to the main cache\nafter pollution by A; "
                 "extra lines fetched are the second halves of "
                 "64-byte\nvirtual lines serving A's stream.\n";
    return 0;
}
