/**
 * @file
 * Tests of the profile-based tagger: temporal/spatial detection from
 * observed behavior, immunity to CALL poisoning, and retagging.
 */

#include <gtest/gtest.h>

#include "src/analysis/tag_stats.hh"
#include "src/locality/profile_tagger.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;
using locality::profileTags;
using locality::ProfileTaggerParams;
using locality::retagFromProfile;
using trace::Record;
using trace::Trace;

Record
rec(Addr addr, RefId ref)
{
    Record r;
    r.addr = addr;
    r.ref = ref;
    return r;
}

TEST(ProfileTagger, StreamingReferenceIsSpatialNotTemporal)
{
    Trace t("s");
    for (int i = 0; i < 200; ++i)
        t.push(rec(8 * static_cast<Addr>(i), 0));
    const auto p = profileTags(t);
    ASSERT_EQ(p.tags.size(), 1u);
    EXPECT_FALSE(p.tags[0].temporal);
    EXPECT_TRUE(p.tags[0].spatial);
    // A 1600-byte stream grades to the largest virtual line.
    EXPECT_EQ(p.tags[0].spatialLevel, 3u);
}

TEST(ProfileTagger, HotDatumIsTemporalNotSpatial)
{
    Trace t("h");
    for (int i = 0; i < 100; ++i)
        t.push(rec(0x1000 + (i % 4) * 4096, 1));
    const auto p = profileTags(t);
    EXPECT_TRUE(p.tags[1].temporal);   // re-touched every 4 refs
    EXPECT_FALSE(p.tags[1].spatial);   // 4-KB strides
}

TEST(ProfileTagger, FarReuseIsNotCredited)
{
    ProfileTaggerParams params;
    params.maxReuseDistance = 10;
    Trace t("far");
    t.push(rec(0, 0));
    for (int i = 0; i < 50; ++i)
        t.push(rec(0x100000 + 8 * static_cast<Addr>(i), 1));
    t.push(rec(0, 0)); // distance 51 > 10
    const auto p = profileTags(t, params);
    EXPECT_FALSE(p.tags[0].temporal);
}

TEST(ProfileTagger, CrossReferenceReuseCreditsThePreviousToucher)
{
    // Ref 0 writes a datum; ref 1 re-reads it soon after: ref 0's
    // data is reused, so ref 0 earns the temporal tag.
    Trace t("x");
    for (int i = 0; i < 50; ++i) {
        t.push(rec(8 * static_cast<Addr>(i % 8), 0));
        t.push(rec(8 * static_cast<Addr>(i % 8), 1));
    }
    const auto p = profileTags(t);
    EXPECT_TRUE(p.tags[0].temporal);
    EXPECT_TRUE(p.tags[1].temporal);
}

TEST(ProfileTagger, ProfilesCountersAreExact)
{
    Trace t("c");
    t.push(rec(0, 0));
    t.push(rec(8, 0));
    t.push(rec(16, 0));
    t.push(rec(4096, 0)); // breaks the stream
    const auto p = profileTags(t);
    const auto &prof = p.profiles[0];
    EXPECT_EQ(prof.accesses, 4u);
    EXPECT_EQ(prof.pairs, 3u);
    EXPECT_EQ(prof.spatialPairs, 2u);
    EXPECT_EQ(prof.streams, 2u);
}

TEST(ProfileTagger, EmptyTrace)
{
    Trace t;
    const auto p = profileTags(t);
    EXPECT_TRUE(p.tags.empty());
}

TEST(ProfileTagger, RetagPreservesEverythingButTags)
{
    const auto orig = workloads::makeBenchmarkTrace("MV");
    const auto t = retagFromProfile(orig);
    ASSERT_EQ(t.size(), orig.size());
    for (std::size_t i = 0; i < t.size(); i += 971) {
        EXPECT_EQ(t[i].addr, orig[i].addr);
        EXPECT_EQ(t[i].delta, orig[i].delta);
        EXPECT_EQ(t[i].ref, orig[i].ref);
    }
}

TEST(ProfileTagger, AgreesWithCompilerOnMv)
{
    // MV is fully analyzable: profile and compiler tags should
    // broadly coincide (X and Y temporal, A spatial).
    const auto orig = workloads::makeBenchmarkTrace("MV");
    const auto prof = retagFromProfile(orig);
    const auto a = analysis::computeTagStats(orig);
    const auto b = analysis::computeTagStats(prof);
    EXPECT_NEAR(a.fractionTemporal(), b.fractionTemporal(), 0.15);
    EXPECT_NEAR(a.fractionSpatial(), b.fractionSpatial(), 0.15);
}

TEST(ProfileTagger, SeesThroughCallPoisoning)
{
    // MDG's compiler tags lose the poisoned nests; the profiler
    // recovers tags there, so its tagged fraction is higher.
    const auto orig = workloads::makeBenchmarkTrace("MDG");
    const auto prof = retagFromProfile(orig);
    const auto a = analysis::computeTagStats(orig);
    const auto b = analysis::computeTagStats(prof);
    EXPECT_LT(b.fractionNoTemporalNoSpatial(),
              a.fractionNoTemporalNoSpatial());
}

} // namespace
