/**
 * @file
 * Tests of the Conditional IR statement: guarded execution in the
 * generator, transparent tagging in the analyzer, and reference
 * numbering.
 */

#include <gtest/gtest.h>

#include "src/locality/analyzer.hh"
#include "src/loopnest/builder.hh"
#include "src/loopnest/generator.hh"
#include "src/trace/timing_model.hh"

namespace {

using namespace sac;
using namespace sac::loopnest::builder;
using loopnest::Program;
using loopnest::TagVector;

trace::Trace
execute(Program &p)
{
    p.finalize();
    TagVector tags(p.refCount());
    trace::TimingModel tm(util::DiscreteDistribution({{1, 1.0}}), 0);
    loopnest::TraceGenerator gen(p, tags, tm);
    trace::Trace t;
    gen.run(t);
    return t;
}

TEST(ConditionalTest, GuardSelectsResidues)
{
    // Body runs when i mod 4 < 1: iterations 0, 4, 8, 12.
    Program p("c");
    const auto A = p.addArray("A", {16});
    const auto i = p.addVar("i");
    p.addStmt(loop(i, 0, 15,
                   {when(v(i), 4, 1, {read(A, {v(i)})})}));
    const auto t = execute(p);
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].addr, loopnest::Program::baseAddress);
    EXPECT_EQ(t[1].addr, loopnest::Program::baseAddress + 4 * 8);
}

TEST(ConditionalTest, ThresholdControlsDensity)
{
    Program p("c");
    const auto A = p.addArray("A", {100});
    const auto i = p.addVar("i");
    p.addStmt(loop(i, 0, 99,
                   {when(v(i), 10, 3, {read(A, {v(i)})})}));
    EXPECT_EQ(execute(p).size(), 30u);
}

TEST(ConditionalTest, NegativeExpressionsWrapCorrectly)
{
    // (i - 8) mod 4 must behave like a mathematical modulus.
    Program p("c");
    const auto A = p.addArray("A", {8});
    const auto i = p.addVar("i");
    p.addStmt(loop(i, 0, 7,
                   {when(v(i) - 8, 4, 1, {read(A, {v(i)})})}));
    const auto t = execute(p);
    ASSERT_EQ(t.size(), 2u); // i = 0 and i = 4
}

TEST(ConditionalTest, NestedStatementsExecute)
{
    Program p("c");
    const auto A = p.addArray("A", {8, 8});
    const auto i = p.addVar("i");
    const auto j = p.addVar("j");
    p.addStmt(loop(
        i, 0, 7,
        {when(v(i), 2, 1,
              {loop(j, 0, 7, {read(A, {v(j), v(i)})})})}));
    EXPECT_EQ(execute(p).size(), 4u * 8u);
}

TEST(ConditionalTest, AnalyzerTagsGuardedRefsNormally)
{
    Program p("c");
    const auto X = p.addArray("X", {8});
    const auto i = p.addVar("i");
    const auto j = p.addVar("j");
    p.addStmt(loop(
        i, 0, 7,
        {loop(j, 0, 7,
              {when(v(j), 2, 1, {read(X, {v(j)})})})}));
    p.finalize();
    const auto r = locality::analyze(p);
    EXPECT_TRUE(r.tags[0].temporal); // invariant w.r.t. i
    EXPECT_TRUE(r.tags[0].spatial);
}

TEST(ConditionalTest, CallInsideGuardPoisons)
{
    Program p("c");
    const auto X = p.addArray("X", {8});
    const auto i = p.addVar("i");
    p.addStmt(loop(i, 0, 7,
                   {when(v(i), 2, 1, {call(), read(X, {v(i)})})}));
    p.finalize();
    const auto r = locality::analyze(p);
    EXPECT_FALSE(r.tags[0].temporal);
    EXPECT_FALSE(r.tags[0].spatial);
    EXPECT_EQ(r.stats.poisonedRefs, 1u);
}

TEST(ConditionalTest, RefIdsNumberedInsideGuards)
{
    Program p("c");
    const auto X = p.addArray("X", {8});
    const auto i = p.addVar("i");
    p.addStmt(loop(i, 0, 7,
                   {read(X, {v(i)}),
                    when(v(i), 2, 1, {write(X, {v(i)})}),
                    read(X, {c(0)})}));
    p.finalize();
    EXPECT_EQ(p.refCount(), 3u);
    const auto &body = p.statements()[0].loop().body;
    EXPECT_EQ(body[0].ref().ref, 0u);
    EXPECT_EQ(body[1].conditional().body[0].ref().ref, 1u);
    EXPECT_EQ(body[2].ref().ref, 2u);
}

TEST(ConditionalTest, ZeroThresholdNeverExecutes)
{
    Program p("c");
    const auto A = p.addArray("A", {8});
    const auto i = p.addVar("i");
    p.addStmt(loop(i, 0, 7, {when(v(i), 2, 0, {read(A, {v(i)})})}));
    EXPECT_TRUE(execute(p).empty());
}

} // namespace
