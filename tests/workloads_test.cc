/**
 * @file
 * Tests of the benchmark suite: every builder produces a runnable,
 * deterministic program whose tag profile matches the properties the
 * paper reports for the corresponding code.
 */

#include <gtest/gtest.h>

#include "src/analysis/tag_stats.hh"
#include "src/workloads/workloads.hh"

namespace {

using namespace sac;
using workloads::makeBenchmarkTrace;
using workloads::makeTaggedTrace;

TEST(Workloads, RegistryHasTheNinePaperBenchmarks)
{
    const auto &list = workloads::paperBenchmarks();
    ASSERT_EQ(list.size(), 9u);
    EXPECT_EQ(list[0].name, "MDG");
    EXPECT_EQ(list[8].name, "SpMV");
}

TEST(Workloads, KernelOnlyRegistryHasSeven)
{
    EXPECT_EQ(workloads::kernelOnlyBenchmarks().size(), 7u);
}

TEST(Workloads, FindBenchmarkByName)
{
    EXPECT_EQ(workloads::findBenchmark("MV").name, "MV");
    EXPECT_EXIT(workloads::findBenchmark("nope"),
                testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Workloads, EveryBenchmarkBuildsAndTraces)
{
    for (const auto &b : workloads::paperBenchmarks()) {
        const auto t = makeBenchmarkTrace(b.name);
        EXPECT_GT(t.size(), 10000u) << b.name;
        EXPECT_LT(t.size(), 10'000'000u) << b.name;
        EXPECT_EQ(t.name(), b.name);
    }
}

TEST(Workloads, EveryKernelOnlyVariantBuildsAndTraces)
{
    for (const auto &b : workloads::kernelOnlyBenchmarks()) {
        const auto t = makeTaggedTrace(b.build());
        EXPECT_GT(t.size(), 5000u) << b.name;
    }
}

TEST(Workloads, TracesAreDeterministicPerSeed)
{
    const auto a = makeBenchmarkTrace("MV", 7);
    const auto b = makeBenchmarkTrace("MV", 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 997)
        EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(a.totalIssueCycles(), b.totalIssueCycles());
}

TEST(Workloads, DifferentSeedsChangeOnlyTiming)
{
    const auto a = makeBenchmarkTrace("MV", 1);
    const auto b = makeBenchmarkTrace("MV", 2);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a[5].addr, b[5].addr);
    EXPECT_EQ(a[5].temporal, b[5].temporal);
    EXPECT_NE(a.totalIssueCycles(), b.totalIssueCycles());
}

TEST(Workloads, MvTagProfileMatchesPaper)
{
    // MV: X and Y temporal+spatial, A spatial-only; roughly half the
    // references are temporal and all are spatial.
    const auto t = makeBenchmarkTrace("MV");
    const auto s = analysis::computeTagStats(t);
    EXPECT_NEAR(s.fractionTemporal(), 0.5, 0.05);
    EXPECT_GT(s.fractionSpatial(), 0.95);
}

TEST(Workloads, SpMvHasUntaggableIndirection)
{
    const auto t = makeBenchmarkTrace("SpMV");
    const auto s = analysis::computeTagStats(t);
    // A and Index stream (spatial, no temporal); X is temporal via
    // user directive; D bound loads are temporal.
    EXPECT_GT(s.fractionSpatial(), 0.4);
    EXPECT_GT(s.fractionTemporal(), 0.2);
    EXPECT_LT(s.fractionTemporal(), 0.7);
}

TEST(Workloads, DyfHasHighTemporalFraction)
{
    // The paper singles out DYF for its high temporal-tag share.
    const auto t = makeBenchmarkTrace("DYF");
    const auto s = analysis::computeTagStats(t);
    EXPECT_GT(s.fractionTemporal(), 0.5);
}

TEST(Workloads, PerfectProxiesHaveUntaggedShare)
{
    // CALL-poisoned loops leave a sizable fraction untagged in the
    // dusty-deck proxies (Figure 4a).
    for (const std::string name : {"MDG", "BDN", "TRF"}) {
        const auto t = makeBenchmarkTrace(name);
        const auto s = analysis::computeTagStats(t);
        EXPECT_GT(s.fractionNoTemporalNoSpatial(), 0.1) << name;
    }
}

TEST(Workloads, KernelOnlyVariantsAreFullyTagged)
{
    // Figure 10a: the hand-instrumented subroutines have no CALLs, so
    // the untagged share collapses.
    const auto full = analysis::computeTagStats(makeBenchmarkTrace("TRF"));
    const auto kernel = analysis::computeTagStats(
        makeTaggedTrace(workloads::buildKernelOnly("TRF")));
    EXPECT_LT(kernel.fractionNoTemporalNoSpatial(),
              full.fractionNoTemporalNoSpatial());
}

TEST(Workloads, BlockedMvCoversRemainder)
{
    // n not divisible by the block size still touches every column.
    auto t = makeTaggedTrace(workloads::buildBlockedMv(100, 30));
    auto full = makeTaggedTrace(workloads::buildBlockedMv(100, 100));
    // Same number of A accesses in both schedules: count reads.
    std::size_t a_refs = 0, a_refs_full = 0;
    for (const auto &r : t)
        a_refs += r.isRead() ? 1 : 0;
    for (const auto &r : full)
        a_refs_full += r.isRead() ? 1 : 0;
    // Blocked version re-reads Y per block: more Y reads, same A+X.
    EXPECT_GT(a_refs, a_refs_full);
}

TEST(Workloads, CopiedMmAddsCopyTraffic)
{
    const auto plain =
        makeTaggedTrace(workloads::buildCopiedMm(32, 36, 16, false));
    const auto copied =
        makeTaggedTrace(workloads::buildCopiedMm(32, 36, 16, true));
    EXPECT_GT(copied.size(), plain.size());
}

TEST(Workloads, ScaleShrinksPrograms)
{
    const auto small = makeTaggedTrace(
        workloads::buildDyf(workloads::Scale{0.3}));
    const auto normal = makeTaggedTrace(workloads::buildDyf());
    EXPECT_LT(small.size(), normal.size());
}

TEST(Workloads, SpMvParametersControlDensity)
{
    const auto sparse =
        makeTaggedTrace(workloads::buildSpMv(500, 4, 1));
    const auto dense =
        makeTaggedTrace(workloads::buildSpMv(500, 40, 1));
    EXPECT_GT(dense.size(), sparse.size() * 4);
}

TEST(Workloads, LivSuiteTouchesItsKernelArrays)
{
    auto p = workloads::buildLiv();
    const auto t = workloads::makeTaggedTrace(workloads::buildLiv());
    p.finalize();
    // Twelve kernels over five shared vectors plus the kernel-21
    // block matrices and the kernel-13 index array.
    EXPECT_GE(p.arrayCount(), 9u);
    EXPECT_GT(t.size(), 100000u);
}

TEST(Workloads, LivHasStridedAndIndirectReferences)
{
    // Kernels 4/8 stride, kernel 13 gathers: the trace must contain
    // non-stride-one and repeated-address behavior beyond plain
    // streams (distinguishes the suite from a memcpy loop).
    const auto t = makeBenchmarkTrace("LIV");
    const auto s = analysis::computeTagStats(t);
    EXPECT_GT(s.fractionTemporal(), 0.3);
    EXPECT_LT(s.fractionSpatial(), 0.99);
}

TEST(Workloads, MvOrderParameterControlsFootprint)
{
    const auto small = makeTaggedTrace(workloads::buildMv(64));
    const auto large = makeTaggedTrace(workloads::buildMv(128));
    EXPECT_NEAR(static_cast<double>(large.size()) / small.size(), 4.0,
                0.5);
}

TEST(Workloads, KernelOnlyDropsPoisonedShare)
{
    for (const std::string name : {"MDG", "BDN", "DYF"}) {
        const auto full =
            analysis::computeTagStats(makeBenchmarkTrace(name));
        const auto kernel = analysis::computeTagStats(
            makeTaggedTrace(workloads::buildKernelOnly(name)));
        EXPECT_LE(kernel.fractionNoTemporalNoSpatial(),
                  full.fractionNoTemporalNoSpatial())
            << name;
    }
}

TEST(Workloads, CopiedMmRejectsBadParameters)
{
    EXPECT_DEATH(workloads::buildCopiedMm(64, 32, 16, false),
                 "bad copied-MM parameters"); // ld < n
    EXPECT_DEATH(workloads::buildCopiedMm(64, 64, 17, false),
                 "bad copied-MM parameters"); // block does not divide
}

} // namespace
